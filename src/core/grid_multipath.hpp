// Multiple-path embeddings of grids and tori (Section 4.5, Corollaries 1–2).
//
// Grids/tori are cross products of paths/cycles, and hypercubes are cross
// products of hypercubes, so each grid axis is embedded by Theorem 1 into
// its own factor subcube and the product inherits the bundles: an axis-a
// grid edge's paths are the axis embedding's paths with every other axis's
// address bits held fixed.
//
//   * Corollary 1: the k-axis grid/torus with all sides 2^a embeds in
//     Q_{ak} with width ⌊a/2⌋ (2⌊a/4⌋+1 paths per edge) and cost 3.
//   * Sides that are not powers of two are rounded up per axis (expansion
//     ≤ 2 per axis, ≤ 2^k overall = the paper's k+1-ish factor).  The
//     paper's Corollary 2 reduces this to O(1) via grid squaring [2, 18];
//     Section 9 lists the unequal-sides case as open, and we document the
//     rounding substitution in DESIGN.md.
//
// The guest is the *directed* grid graph (each axis oriented +1, the
// orientation Theorem 1's directed cycles provide).  Bidirectional traffic
// runs as one phase per direction — the relaxation bench does exactly that
// — because simultaneous full-width traffic in both directions would
// oversubscribe every node's first-edge dimensions.
#pragma once

#include "embed/embedding.hpp"
#include "graph/builders.hpp"

namespace hyperpath {

/// True iff every axis of the spec is supported (its rounded-up bit width b
/// satisfies cycle_multipath_supported(b), and the total fits Q_30).
bool grid_multipath_supported(const GridSpec& spec);

/// The multipath grid/torus embedding.  Axis sides are rounded up to powers
/// of two internally; wrap (torus) edges require the side to be exactly a
/// power of two.  Verified before return.
MultiPathEmbedding grid_multipath_embedding(const GridSpec& spec);

/// §8.1: multiple-copy embeddings of tori, from the Lemma-1 cycle copies
/// combined with the cross-product decomposition — copy i uses directed
/// Hamiltonian cycle i of every axis subcube.  min_a 2⌊b_a/2⌋ copies of
/// the directed torus with dilation 1 and joint edge-congestion 1 on the
/// axis dimensions.  All sides must be powers of two ≥ 4.
KCopyEmbedding multicopy_torus(const GridSpec& spec);

}  // namespace hyperpath
