#include "core/bitserial.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/moment.hpp"
#include "graph/builders.hpp"

namespace hyperpath {

std::vector<Node> ccc_route(int n, Node src, Node dst) {
  const LevelColumnLayout lay = ccc_layout(n);
  std::vector<Node> path{src};
  int level = lay.level_of(src);
  Node col = lay.column_of(src);
  const int dst_level = lay.level_of(dst);
  const Node dst_col = lay.column_of(dst);

  // One full sweep of the levels, correcting each column bit at its level.
  for (int step = 0; step < n; ++step) {
    if (test_bit(col ^ dst_col, level)) {
      col ^= bit(level);
      path.push_back(lay.id(level, col));  // cross edge
    }
    if (col == dst_col && level == dst_level) return path;
    level = (level + 1) % n;
    path.push_back(lay.id(level, col));  // straight edge
    if (col == dst_col && level == dst_level) return path;
  }
  // Column now correct; walk straight to the destination level.
  while (level != dst_level) {
    level = (level + 1) % n;
    path.push_back(lay.id(level, col));
  }
  return path;
}

namespace {

/// Expands a CCC path into a host path through copy `k`.
HostPath host_path_through_copy(const KCopyEmbedding& emb, int copy,
                                const std::vector<Node>& ccc_path) {
  HostPath p;
  p.reserve(ccc_path.size());
  for (Node v : ccc_path) p.push_back(emb.host_of(copy, v));
  return p;
}

/// Recovers the CCC stage count n from a guest with n·2^n vertices.
int stages_from_guest(const Digraph& g) {
  for (int n = 2; n <= 24; ++n) {
    if (static_cast<std::uint64_t>(n) * pow2(n) == g.num_nodes()) return n;
  }
  throw Error("guest is not an n-stage CCC (n·2^n vertices expected)");
}

}  // namespace

std::vector<Worm> ccc_split_worms(const KCopyEmbedding& emb,
                                  const Pattern& pattern, int total_flits) {
  const int copies = emb.num_copies();
  HP_CHECK(total_flits >= copies, "message too small to split");
  HP_CHECK(pattern.size() == emb.host().num_nodes(),
           "pattern must cover every host node");

  const int stages = stages_from_guest(emb.guest());
  // Inverse node maps per copy.
  std::vector<std::vector<Node>> inv(copies);
  for (int k = 0; k < copies; ++k) {
    inv[k].assign(emb.host().num_nodes(), kNoNode);
    for (Node v = 0; v < emb.guest().num_nodes(); ++v) {
      inv[k][emb.host_of(k, v)] = v;
    }
  }

  const int piece = (total_flits + copies - 1) / copies;
  std::vector<Worm> worms;
  worms.reserve(pattern.size() * static_cast<std::size_t>(copies));
  for (Node v = 0; v < pattern.size(); ++v) {
    if (pattern[v] == v) continue;
    for (int k = 0; k < copies; ++k) {
      const Node s = inv[k][v];
      const Node d = inv[k][pattern[v]];
      HP_CHECK(s != kNoNode && d != kNoNode, "host node missing from copy");
      Worm w;
      w.route = host_path_through_copy(emb, k, ccc_route(stages, s, d));
      w.flits = piece;
      worms.push_back(std::move(w));
    }
  }
  return worms;
}

std::vector<Worm> ecube_worms(int dims, const Pattern& pattern,
                              int total_flits) {
  const Hypercube q(dims);
  HP_CHECK(pattern.size() == q.num_nodes(), "pattern size mismatch");
  std::vector<Worm> worms;
  worms.reserve(pattern.size());
  for (Node v = 0; v < pattern.size(); ++v) {
    if (pattern[v] == v) continue;
    Worm w;
    w.route = ecube_route(q, v, pattern[v]);
    w.flits = total_flits;
    worms.push_back(std::move(w));
  }
  return worms;
}

std::vector<Node> butterfly_route(int m, Node src, Node dst) {
  const LevelColumnLayout lay = butterfly_layout(m);
  std::vector<Node> path{src};
  int level = lay.level_of(src);
  Node col = lay.column_of(src);
  const int dst_level = lay.level_of(dst);
  const Node dst_col = lay.column_of(dst);

  // One sweep over the levels; at level ℓ the cross edge flips column bit ℓ
  // while advancing a level, the straight edge just advances.
  for (int step = 0; step < m; ++step) {
    if (col == dst_col && level == dst_level) return path;
    if (test_bit(col ^ dst_col, level)) col ^= bit(level);
    level = (level + 1) % m;
    path.push_back(lay.id(level, col));
  }
  while (level != dst_level) {
    level = (level + 1) % m;
    path.push_back(lay.id(level, col));
  }
  return path;
}

std::vector<Node> x_two_phase_route(int m, const KCopyEmbedding& copies,
                                    Node src, Node dst) {
  const int n = copies.host().dims();
  const Node big = static_cast<Node>(pow2(n));
  const Node i1 = src / big, j1 = src % big;
  const Node i2 = dst / big, j2 = dst % big;

  // φ and φ^{-1} for the two copies involved.
  const auto copy_of = [&](Node line) {
    return static_cast<int>(moment(line) % static_cast<Node>(n));
  };
  const auto inv_of = [&](int c, Node pos) {
    for (Node w = 0; w < big; ++w) {
      if (copies.host_of(c, w) == pos) return w;
    }
    throw Error("position missing from copy");
  };

  std::vector<Node> path{src};
  // Phase 1: row i1, butterfly copy M(i1), from position j1 to j2.
  if (j1 != j2) {
    const int c = copy_of(i1);
    const auto r = butterfly_route(m, inv_of(c, j1), inv_of(c, j2));
    for (std::size_t t = 1; t < r.size(); ++t) {
      path.push_back(i1 * big + copies.host_of(c, r[t]));
    }
  }
  // Phase 2: column j2, butterfly copy M(j2), from row-coordinate i1 to i2.
  if (i1 != i2) {
    const int c = copy_of(j2);
    const auto r = butterfly_route(m, inv_of(c, i1), inv_of(c, i2));
    for (std::size_t t = 1; t < r.size(); ++t) {
      path.push_back(copies.host_of(c, r[t]) * big + j2);
    }
  }
  return path;
}

std::vector<Worm> x_two_phase_worms(int m, const MultiPathEmbedding& x,
                                    const KCopyEmbedding& copies,
                                    const Pattern& pattern, int total_flits) {
  const int n = copies.host().dims();
  HP_CHECK(pattern.size() == x.guest().num_nodes(),
           "pattern must cover every X vertex");
  HP_CHECK(total_flits >= n, "message too small to split n ways");
  const int piece = (total_flits + n - 1) / n;

  std::vector<Worm> worms;
  for (Node v = 0; v < pattern.size(); ++v) {
    if (pattern[v] == v) continue;
    const auto xroute = x_two_phase_route(m, copies, v, pattern[v]);
    // Piece k expands each X hop through bundle path k.
    for (int k = 0; k < n; ++k) {
      HostPath host{x.host_of(xroute.front())};
      for (std::size_t t = 0; t + 1 < xroute.size(); ++t) {
        const std::size_t xe = x.guest().find_edge(xroute[t], xroute[t + 1]);
        HP_CHECK(xe != static_cast<std::size_t>(-1),
                 "two-phase route leaves X(butterfly)");
        const auto bundle = x.paths(xe);
        const HostPath& seg = bundle[static_cast<std::size_t>(k) %
                                     bundle.size()];
        HP_CHECK(seg.front() == host.back(), "route discontinuity");
        host.insert(host.end(), seg.begin() + 1, seg.end());
      }
      Worm w;
      w.route = erase_loops(host);
      w.flits = piece;
      worms.push_back(std::move(w));
    }
  }
  return worms;
}

std::vector<Worm> ccc_single_copy_worms(const KCopyEmbedding& emb, int copy,
                                        const Pattern& pattern,
                                        int total_flits) {
  HP_CHECK(copy >= 0 && copy < emb.num_copies(), "copy index out of range");
  const int stages = stages_from_guest(emb.guest());
  std::vector<Node> inv(emb.host().num_nodes(), kNoNode);
  for (Node v = 0; v < emb.guest().num_nodes(); ++v) {
    inv[emb.host_of(copy, v)] = v;
  }
  std::vector<Worm> worms;
  for (Node v = 0; v < pattern.size(); ++v) {
    if (pattern[v] == v) continue;
    Worm w;
    w.route = host_path_through_copy(emb, copy,
                                     ccc_route(stages, inv[v], inv[pattern[v]]));
    w.flits = total_flits;
    worms.push_back(std::move(w));
  }
  return worms;
}

}  // namespace hyperpath
