#include "core/largecopy.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"
#include "graph/builders.hpp"
#include "hamdecomp/decomposition.hpp"
#include "hamdecomp/directed.hpp"
#include "obs/profile.hpp"
#include "par/task_pool.hpp"

namespace hyperpath {

namespace {

/// Sharded per-edge fan-out shared by the large-copy constructions: every
/// guest edge maps to the single direct path between its endpoints' images.
void set_direct_paths(MultiPathEmbedding& emb) {
  const Digraph& g = emb.guest();
  par::parallel_for(
      0, g.num_edges(), par::suggested_grain(g.num_edges()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
          const Edge& ge = g.edge(e);
          emb.set_paths(e, {{emb.host_of(ge.from), emb.host_of(ge.to)}});
        }
      });
}

}  // namespace

MultiPathEmbedding largecopy_directed_cycle(int n) {
  HP_PROFILE_SPAN("construct/largecopy_directed");
  const DirectedCycleFamily fam(n);
  const int copies = fam.num_cycles();
  const std::uint64_t n_nodes = pow2(n);
  const Node guest_len = static_cast<Node>(copies * n_nodes);

  MultiPathEmbedding emb(directed_cycle(guest_len), n);

  // Traverse cycle 0 fully from node 0, then cycle 1 from node 0, etc.;
  // the wrap from each cycle's last node back to node 0 is that cycle's own
  // closing edge, so consecutive guest nodes are always hypercube-adjacent.
  std::vector<Node> eta;
  eta.reserve(guest_len);
  for (int c = 0; c < copies; ++c) {
    const auto seq = fam.sequence(c, 0);
    eta.insert(eta.end(), seq.begin(), seq.end());
  }
  emb.set_node_map(std::move(eta));

  set_direct_paths(emb);
  emb.verify_or_throw(/*expected_width=*/1, /*expected_load=*/copies);
  return emb;
}

MultiPathEmbedding largecopy_undirected_cycle(int n) {
  HP_PROFILE_SPAN("construct/largecopy_undirected");
  const auto& d = hamiltonian_decomposition(n);
  const std::uint64_t n_nodes = pow2(n);
  const Node guest_len = static_cast<Node>(d.cycles.size() * n_nodes);
  HP_CHECK(guest_len >= 2, "need at least one Hamiltonian cycle");

  MultiPathEmbedding emb(directed_cycle(guest_len), n);
  // Traverse each undirected cycle once, in its stored orientation, all
  // starting from node 0 (every Hamiltonian cycle visits node 0, so the
  // rotation exists and the wrap between cycles is that cycle's own edge).
  std::vector<Node> eta;
  eta.reserve(guest_len);
  for (const auto& cyc : d.cycles) {
    std::size_t at0 = 0;
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      if (cyc[i] == 0) at0 = i;
    }
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      eta.push_back(cyc[(at0 + i) % cyc.size()]);
    }
  }
  emb.set_node_map(std::move(eta));
  set_direct_paths(emb);
  emb.verify_or_throw(/*expected_width=*/1,
                      /*expected_load=*/static_cast<int>(d.cycles.size()));
  // Undirected-congestion-1: each undirected host link carries exactly one
  // guest edge (the decomposition is a partition), checked directly.
  const auto cong = emb.congestion_per_link();
  const Hypercube& q = emb.host();
  for (Node v = 0; v < q.num_nodes(); ++v) {
    for (Dim dd = 0; dd < q.dims(); ++dd) {
      if (test_bit(v, dd)) continue;  // canonical endpoint only
      const auto fwd = cong[q.edge_id(v, dd)];
      const auto rev = cong[q.edge_id(q.neighbor(v, dd), dd)];
      HP_CHECK(fwd + rev == 1, "undirected link not used exactly once");
    }
  }
  return emb;
}

namespace {

/// Shared collapse for CCC / butterfly / FFT: every vertex ⟨ℓ, c⟩ maps to
/// hypercube node c; intra-column edges become internal (single-node
/// paths); cross/column-changing edges become the dimension edge.
MultiPathEmbedding collapse_columns(Digraph guest, const LevelColumnLayout& lay,
                                    int load) {
  HP_PROFILE_SPAN("construct/largecopy_collapse");
  MultiPathEmbedding emb(std::move(guest), lay.cube_dims);
  std::vector<Node> eta(emb.guest().num_nodes());
  for (Node v = 0; v < eta.size(); ++v) eta[v] = lay.column_of(v);
  emb.set_node_map(std::move(eta));

  const Digraph& g = emb.guest();
  par::parallel_for(
      0, g.num_edges(), par::suggested_grain(g.num_edges()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
          const Edge& ge = g.edge(e);
          const Node a = emb.host_of(ge.from);
          const Node b = emb.host_of(ge.to);
          if (a == b) {
            emb.set_paths(e, {{a}});  // internal: zero communication
          } else {
            emb.set_paths(e, {{a, b}});
          }
        }
      });
  emb.verify_or_throw(/*expected_width=*/1, /*expected_load=*/load);
  return emb;
}

}  // namespace

MultiPathEmbedding largecopy_ccc(int n) {
  return collapse_columns(ccc_directed(n), ccc_layout(n), n);
}

MultiPathEmbedding largecopy_butterfly(int n) {
  return collapse_columns(butterfly_directed(n), butterfly_layout(n), n);
}

MultiPathEmbedding largecopy_fft(int n) {
  return collapse_columns(fft_directed(n), fft_layout(n), n + 1);
}

}  // namespace hyperpath
