#include "core/tree_multipath.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/moment.hpp"
#include "ccc/ccc_embed.hpp"
#include "ccc/netmaps.hpp"
#include "core/transform.hpp"
#include "graph/builders.hpp"
#include "obs/profile.hpp"
#include "par/task_pool.hpp"

namespace hyperpath {

KCopyEmbedding butterfly_multicopy_embedding(int m) {
  HP_PROFILE_SPAN("construct/butterfly_multicopy");
  // Symmetric networks throughout so trees can route both edge directions;
  // the symmetric CCC needs m >= 3 (and powers of two for the windows).
  HP_CHECK(m >= 4 && is_pow2(static_cast<std::uint64_t>(m)),
           "butterfly multicopy needs m a power of two, m >= 4");
  const int r = floor_log2(static_cast<std::uint64_t>(m));
  const KCopyEmbedding ccc = ccc_multicopy_embedding_undirected(m);
  const GraphEmbedding bfly = butterfly_into_ccc_symmetric(m);

  KCopyEmbedding out(bfly.guest(), m + r);
  // Copies compose independently from the shared CCC/butterfly maps: build
  // each into its pre-sized slot in parallel, append serially in copy order.
  std::vector<std::vector<Node>> etas(m);
  std::vector<std::vector<HostPath>> copy_paths(m);
  par::parallel_for(
      0, static_cast<std::size_t>(m), /*grain=*/1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const int ki = static_cast<int>(k);
          // Compose: butterfly vertex → CCC vertex (identity) → hypercube
          // node; butterfly edge → CCC path (≤ 2 hops) → hypercube path
          // (same length, every CCC edge maps to a single hypercube edge in
          // copy k).
          std::vector<Node> eta(bfly.guest().num_nodes());
          for (Node v = 0; v < eta.size(); ++v) {
            eta[v] = ccc.host_of(ki, bfly.host_of(v));
          }
          std::vector<HostPath> paths(bfly.guest().num_edges());
          for (std::size_t e = 0; e < bfly.guest().num_edges(); ++e) {
            const auto& mid = bfly.path(e);  // CCC node sequence
            HostPath p;
            p.reserve(mid.size());
            for (Node cv : mid) p.push_back(ccc.host_of(ki, cv));
            paths[e] = std::move(p);
          }
          etas[k] = std::move(eta);
          copy_paths[k] = std::move(paths);
        }
      });
  for (int k = 0; k < m; ++k) {
    out.add_copy(std::move(etas[k]), std::move(copy_paths[k]));
  }
  return out;
}

GraphEmbedding cbt_into_x_butterfly(int m, const Digraph& xguest,
                                    const KCopyEmbedding& copies) {
  const int n = copies.host().dims();
  const Node big = static_cast<Node>(pow2(n));
  HP_CHECK(copies.guest().num_nodes() == big, "copies must fill Q_n");
  const LevelColumnLayout lay = butterfly_layout(m);

  // φ_k and φ_k^{-1}.
  std::vector<std::vector<Node>> phi(n), phi_inv(n);
  for (int k = 0; k < n; ++k) {
    const auto span = copies.node_map(k);
    phi[k].assign(span.begin(), span.end());
    phi_inv[k].assign(big, kNoNode);
    for (Node v = 0; v < big; ++v) phi_inv[k][phi[k][v]] = v;
  }
  const auto copy_of = [&](Node line) {
    return static_cast<int>(moment(line) % static_cast<Node>(n));
  };

  // Natural CBT subtree of a butterfly rooted at ⟨l0, c0⟩: subtree node at
  // depth d, offset o sits at level (l0+d) mod m, column c0 ⊕ Σ p_t·2^{(l0+t)
  // mod m} with p_t = bit (d−1−t) of o (first descent = most significant).
  const auto subtree_vertex = [&](int l0, Node c0, int d, Node o) {
    Node col = c0;
    for (int t = 0; t < d; ++t) {
      if (test_bit(o, d - 1 - t)) col ^= bit((l0 + t) % m);
    }
    return lay.id((l0 + d) % m, col);
  };

  const int levels = 2 * m;
  GraphEmbedding emb(complete_binary_tree(levels), xguest);
  const Node n_tree = emb.guest().num_nodes();

  // η, by depth bands.
  std::vector<Node> eta(n_tree, kNoNode);
  const auto x_id = [&](Node row, Node pos) { return row * big + pos; };
  for (Node t = 0; t < n_tree; ++t) {
    const int d = floor_log2(static_cast<std::uint64_t>(t) + 1);
    const Node o = t + 1 - static_cast<Node>(pow2(d));
    if (d <= m - 1) {
      // Row tree: row 0 carries copy M(0) = 0.
      const Node w = subtree_vertex(0, 0, d, o);
      eta[t] = x_id(0, phi[copy_of(0)][w]);
    } else if (d <= 2 * m - 2) {
      // Column trees: ancestor leaf at depth m−1 selects the column.
      const int dd = d - (m - 1);                 // depth within column tree
      const Node o_leaf = o >> dd;
      const Node oo = o & static_cast<Node>(pow2(dd) - 1);
      const Node j =
          phi[copy_of(0)][subtree_vertex(0, 0, m - 1, o_leaf)];  // column
      const int c = copy_of(j);
      const Node w_root = phi_inv[c][0];  // column position 0 = the leaf
      const Node w =
          subtree_vertex(lay.level_of(w_root), lay.column_of(w_root), dd, oo);
      eta[t] = x_id(phi[c][w], j);
    } else {
      // Final level: children across the parent's *row* butterfly.
      const Node parent = (t - 1) / 2;
      HP_CHECK(eta[parent] != kNoNode, "parent not yet placed");
      const Node i_row = eta[parent] / big;
      const Node j_pos = eta[parent] % big;
      const int c = copy_of(i_row);
      const Node u = phi_inv[c][j_pos];
      const int lu = lay.level_of(u);
      const Node cu = lay.column_of(u);
      const Node child = test_bit(o, 0)
                             ? lay.id((lu + 1) % m, cu ^ bit(lu))  // cross
                             : lay.id((lu + 1) % m, cu);           // straight
      eta[t] = x_id(i_row, phi[c][child]);
    }
  }
  emb.set_node_map(std::move(eta));

  // Every CBT edge is a single X edge by construction.
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    emb.set_path(e, {emb.host_of(ge.from), emb.host_of(ge.to)});
  }
  emb.verify_or_throw(/*max_dilation=*/1);
  return emb;
}

MultiPathEmbedding theorem5_cbt_embedding(int m) {
  HP_PROFILE_SPAN("construct/theorem5_cbt");
  const int r = floor_log2(static_cast<std::uint64_t>(m));
  const int n = m + r;
  const KCopyEmbedding copies =
      repeat_copies(butterfly_multicopy_embedding(m), n);
  const MultiPathEmbedding x = theorem4_transform(copies);
  GraphEmbedding cbt = [&] {
    HP_PROFILE_SPAN("cbt_into_x");
    return cbt_into_x_butterfly(m, x.guest(), copies);
  }();
  HP_PROFILE_SPAN("compose");
  return compose_multipath(x, cbt);
}

MultiPathEmbedding arbitrary_tree_multipath(const Digraph& tree,
                                            const std::vector<Node>& parent,
                                            int m) {
  HP_PROFILE_SPAN("construct/arbitrary_tree");
  const MultiPathEmbedding cbt_mp = theorem5_cbt_embedding(m);
  const GraphEmbedding t2c = tree_into_cbt(tree, parent, 2 * m);
  // Compose tree → CBT → Q: expand each CBT hop of the tree paths through
  // the CBT multipath bundles.
  GraphEmbedding inner(tree, cbt_mp.guest());
  {
    std::vector<Node> eta(tree.num_nodes());
    for (Node v = 0; v < tree.num_nodes(); ++v) eta[v] = t2c.host_of(v);
    inner.set_node_map(std::move(eta));
    for (std::size_t e = 0; e < tree.num_edges(); ++e) {
      inner.set_path(e, t2c.path(e));
    }
  }
  return compose_multipath(cbt_mp, inner);
}

}  // namespace hyperpath
