// Theorem 5 and Section 6.2: multiple-path embeddings of trees.
//
// Pipeline (for m a power of two, n = m + log m):
//
//   1. Theorem 3 embeds m copies of the m-stage CCC into Q_n; composing
//      with the butterfly → CCC embedding (§5.4) yields m one-to-one copies
//      of the m-stage butterfly (m·2^m = 2^n vertices) with O(1) cost;
//      repeat_copies pads them to n copies.
//   2. Theorem 4 turns the n-copy embedding into a width-n embedding of the
//      induced cross product X(butterfly) into Q_{2n}.
//   3. The 2m-level complete binary tree embeds into X with dilation 1 and
//      O(1) load, exactly as Theorem 5's proof lays out: the top m levels
//      follow the natural CBT subtree of the row-0 butterfly; each level-
//      (m−1) vertex doubles as the root of an m-level CBT in its *column's*
//      butterfly; each column-tree leaf finally gets two children across
//      its row butterfly's straight and cross edges.
//   4. Composing 3 with 2 gives the width-n, O(1)-cost embedding of the
//      CBT into Q_{2n}.
//
// (We build the CBT on the natural spanning subtrees rather than the dense
// packing of reference [4]; see DESIGN.md §1.3 — the width/cost claims are
// preserved, the constant-factor node utilization is not.)
//
// §6.2: an arbitrary binary tree is first embedded in the CBT (heuristic,
// load 1 — see ccc/netmaps.hpp) and then composed with the Theorem 5
// embedding, giving a width-n embedding whose cost scales with the
// tree → CBT dilation/congestion.
#pragma once

#include "embed/embedding.hpp"
#include "embed/graph_embedding.hpp"

namespace hyperpath {

/// The n-copy butterfly embedding of step 1 (exposed for tests/benches):
/// n = m + log m copies of the m-stage butterfly in Q_n.
KCopyEmbedding butterfly_multicopy_embedding(int m);

/// Step 3 alone: the 2m-level CBT into X(butterfly) with dilation 1.
/// `xguest` must be the guest of theorem4_transform(butterfly copies);
/// `copies` the same copies passed to the transform.
GraphEmbedding cbt_into_x_butterfly(int m, const Digraph& xguest,
                                    const KCopyEmbedding& copies);

/// Theorem 5: the (2^{2m} − 1)-node CBT into Q_{2(m+log m)} with width
/// m + log m, O(1) load, verified.  m must be a power of two ≥ 4 (the
/// symmetric CCC underneath degenerates at m = 2); m = 4 → Q_12 host.
MultiPathEmbedding theorem5_cbt_embedding(int m);

/// §6.2: an arbitrary binary tree (rooted at node 0 with the given parent
/// array, at most 2^{2m}−1 nodes) through the CBT into Q_{2(m+log m)}.
MultiPathEmbedding arbitrary_tree_multipath(const Digraph& tree,
                                            const std::vector<Node>& parent,
                                            int m);

}  // namespace hyperpath
