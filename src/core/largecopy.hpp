// Large-copy embeddings (Section 8.1, Corollary 3, Lemma 9).
//
// Instead of widening paths, a large-copy embedding packs an n·2^n-node
// guest onto Q_n with load n so that guest edges spread evenly over all
// hypercube links — no forwarding, dilation ≤ 1:
//
//   * Corollary 3: the n·2^n-node directed cycle traverses the Lemma-1
//     directed Hamiltonian cycles in sequence — every directed hypercube
//     edge is used exactly once (even n);
//   * Lemma 9: the n·2^n-node CCC collapses each column cycle onto its
//     hypercube node (straight edges become internal, cross edges map to
//     dimension edges — congestion 1); FFT and butterfly collapse the same
//     way with congestion ≤ 2.
#pragma once

#include "embed/embedding.hpp"

namespace hyperpath {

/// Corollary 3: the (2⌊n/2⌋)·2^n-node directed cycle into Q_n, load
/// 2⌊n/2⌋, dilation 1, congestion 1.  For even n this is the n·2^n-node
/// cycle using every directed link exactly once.
MultiPathEmbedding largecopy_directed_cycle(int n);

/// Corollary 3's undirected half: the ⌊n/2⌋·2^n-node cycle that traverses
/// each *undirected* Hamiltonian cycle of the decomposition once — every
/// undirected hypercube link carries exactly one cycle edge (even n).
/// Load ⌊n/2⌋, dilation 1.
MultiPathEmbedding largecopy_undirected_cycle(int n);

/// Lemma 9: the n·2^n-node directed CCC into Q_n (straight edges internal,
/// cross edges dilation 1, congestion 1, load n).
MultiPathEmbedding largecopy_ccc(int n);

/// Lemma 9: the n-level directed wrapped butterfly into Q_n (straight edges
/// internal, cross edges dilation 1, load n).
MultiPathEmbedding largecopy_butterfly(int n);

/// Lemma 9: the (n+1)-level FFT graph into Q_n (load n+1).
MultiPathEmbedding largecopy_fft(int n);

}  // namespace hyperpath
