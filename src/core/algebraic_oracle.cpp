#include "core/algebraic_oracle.hpp"

#include <algorithm>
#include <utility>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/moment.hpp"
#include "core/cycle_multipath.hpp"
#include "hamdecomp/directed.hpp"

namespace hyperpath {

namespace {

// ---------------------------------------------------------------------------
// Theorem-1 closed form, shared by the cycle oracle and the grid axes
// ---------------------------------------------------------------------------

/// All state the Theorem-1 formulas need: the directed-cycle family of the
/// Q_{2k} column subcube plus its per-cycle sequence/rank tables (≤ 8
/// cycles × 2^{2k} entries).  Everything else is arithmetic.
struct Theorem1Core {
  int n = 0, k = 0, r = 0, col_bits = 0;
  std::uint64_t num_nodes = 0;  // 2^n
  std::uint64_t col_size = 0;   // 2^{2k}
  std::vector<std::vector<Node>> seq;           // [cycle][rank] -> node
  std::vector<std::vector<std::uint32_t>> rank;  // [cycle][node] -> rank
  std::vector<Node> prev0;    // prev_c(0)
  std::vector<Node> prev0_2;  // prev_c(prev_c(0))

  explicit Theorem1Core(int n_in) : n(n_in) {
    HP_CHECK(cycle_multipath_supported(n),
             "n outside theorem1_cycle_embedding's range");
    k = n / 4;
    r = n % 4;
    col_bits = 2 * k + r;
    num_nodes = pow2(n);
    col_size = pow2(2 * k);
    const DirectedCycleFamily fam(2 * k);
    const int cycles = fam.num_cycles();
    seq.reserve(cycles);
    rank.assign(cycles, std::vector<std::uint32_t>(col_size, 0));
    for (int c = 0; c < cycles; ++c) {
      seq.push_back(fam.sequence(c, 0));
      for (std::uint32_t i = 0; i < col_size; ++i) rank[c][seq[c][i]] = i;
      prev0.push_back(fam.prev(c, 0));
      prev0_2.push_back(fam.prev(c, prev0.back()));
    }
  }

  /// Entry row of column step t.  Aligned 4-groups of columns carry the
  /// special cycles (σ, σ, σ̄, σ̄) — positions x, x⊕1, x⊕3, x⊕2 have
  /// moments M, M, M⊕1, M⊕1 and prev_σ̄ == next_σ — so the prev-chain of
  /// exit rows telescopes: 0, prev_σ(0), prev_σ²(0), prev_σ(0), 0, …
  Node entry_row(std::uint64_t t) const {
    const int q = static_cast<int>(t & 3);
    if (q == 0) return 0;
    const std::uint64_t tb = t & ~std::uint64_t{3};
    const int sigma = static_cast<int>(
        moment(static_cast<Node>((tb ^ (tb >> 1)) & (col_size - 1))));
    return q == 2 ? prev0_2[sigma] : prev0[sigma];
  }

  /// η(g) for guest cycle node g = t·2^{2k} + s: the column address is the
  /// bit-permuted Gray value t ^ (t >> 1) (low 2k Gray dims land on
  /// position bits r..r+2k−1, high r dims on block bits 0..r−1), and the
  /// row is s steps along special cycle moment(position) from the entry
  /// row, via the rank/sequence tables.
  Node eta(std::uint64_t g) const {
    const std::uint64_t t = g >> (2 * k);
    const std::uint64_t s = g & (col_size - 1);
    const Node gray = static_cast<Node>(t ^ (t >> 1));
    const Node pos = gray & static_cast<Node>(col_size - 1);
    const Node col = (pos << r) | (gray >> (2 * k));
    const int cyc = static_cast<int>(moment(pos));
    const std::uint64_t at = (rank[cyc][entry_row(t)] + s) & (col_size - 1);
    return col | (seq[cyc][at] << col_bits);
  }

  int width() const { return 2 * k + 1; }

  std::uint32_t path_hops(int index) const {
    HP_CHECK(index >= 0 && index <= 2 * k, "bundle path index out of range");
    return index < 2 * k ? 3 : 1;
  }

  /// Streams bundle path `index` of guest edge (from, from+1 mod 2^n):
  /// Theorem 1's detours cross a free dimension of the opposite field
  /// (paths 0..2k−1, in field order), the direct edge rides last.
  template <typename Emit>
  void path(std::uint64_t from, int index, Emit&& emit) const {
    const Node a = eta(from);
    const Node b = eta((from + 1) & (num_nodes - 1));
    if (index == 2 * k) {  // the direct path
      emit(a);
      emit(b);
      return;
    }
    HP_CHECK(index >= 0 && index < 2 * k, "bundle path index out of range");
    const Dim edge_dim = count_trailing_zeros(a ^ b);
    // Row-dimension edges detour through position bits, column-dimension
    // edges through row bits — matching cycle_multipath.cpp's
    // col_detours/row_detours order exactly.
    const Dim d = edge_dim >= col_bits ? static_cast<Dim>(r + index)
                                       : static_cast<Dim>(col_bits + index);
    emit(a);
    emit(flip_bit(a, d));
    emit(flip_bit(b, d));
    emit(b);
  }
};

/// Adapter: forward a Theorem1Core emit stream into a NodeSink, optionally
/// through an affine field transform (the grid composition).
struct SinkEmit {
  NodeSink& sink;
  void operator()(Node v) const { sink.push(v); }
};

// ---------------------------------------------------------------------------
// Theorem-1 cycle oracle
// ---------------------------------------------------------------------------

class Theorem1Oracle final : public PathOracle {
 public:
  explicit Theorem1Oracle(int n) : core_(n) {}

  int host_dims() const override { return core_.n; }
  OracleId guest_nodes() const override { return core_.num_nodes; }
  OracleId guest_edges() const override { return core_.num_nodes; }

  Node host_of(OracleId guest) const override {
    HP_CHECK(guest < core_.num_nodes, "guest node id out of range");
    return core_.eta(guest);
  }

  int out_degree(OracleId guest) const override {
    HP_CHECK(guest < core_.num_nodes, "guest node id out of range");
    return 1;
  }

  OracleEdge out_edge(OracleId guest, int slot) const override {
    HP_CHECK(guest < core_.num_nodes, "guest node id out of range");
    HP_CHECK(slot == 0, "out-edge slot out of range");
    return {guest, (guest + 1) & (core_.num_nodes - 1)};
  }

  int width(const OracleEdge& edge) const override {
    check_edge(edge);
    return core_.width();
  }

  std::uint32_t path_hops(const OracleEdge& edge, int index) const override {
    check_edge(edge);
    return core_.path_hops(index);
  }

  void path(const OracleEdge& edge, int index,
            NodeSink& sink) const override {
    check_edge(edge);
    core_.path(edge.from, index, SinkEmit{sink});
  }

  const char* family() const override { return "theorem1"; }

 private:
  void check_edge(const OracleEdge& edge) const {
    HP_CHECK(edge.from < core_.num_nodes &&
                 edge.to == ((edge.from + 1) & (core_.num_nodes - 1)),
             "no such guest edge");
  }

  Theorem1Core core_;
};

// ---------------------------------------------------------------------------
// Cross-product grid oracle
// ---------------------------------------------------------------------------

class GridOracle final : public PathOracle {
 public:
  explicit GridOracle(GridSpec spec) : spec_(std::move(spec)) {
    HP_CHECK(algebraic_grid_supported(spec_),
             "grid spec unsupported (axis widths must satisfy "
             "cycle_multipath_supported; torus sides must be powers of two; "
             "total host dimension at most 30)");
    const int k = spec_.num_axes();
    bits_.resize(k);
    offset_.resize(k);
    axes_.reserve(k);
    for (int a = 0; a < k; ++a) {
      bits_[a] = ceil_log2(spec_.sides[a]);
      axes_.emplace_back(bits_[a]);
    }
    offset_[k - 1] = 0;
    for (int a = k - 1; a-- > 0;) offset_[a] = offset_[a + 1] + bits_[a + 1];
    total_ = offset_[0] + bits_[0];
    num_edges_ = 0;
    for (int a = 0; a < k; ++a) {
      const std::uint64_t along =
          spec_.wrap ? spec_.sides[a] : spec_.sides[a] - 1;
      num_edges_ += along * (spec_.num_nodes() / spec_.sides[a]);
    }
  }

  int host_dims() const override { return total_; }
  OracleId guest_nodes() const override { return spec_.num_nodes(); }
  OracleId guest_edges() const override { return num_edges_; }

  Node host_of(OracleId guest) const override {
    const auto coords =
        spec_.coords(checked_u32(guest, "guest node id exceeds 32 bits"));
    Node addr = 0;
    for (int a = 0; a < spec_.num_axes(); ++a) {
      addr |= axes_[a].eta(coords[a]) << offset_[a];
    }
    return addr;
  }

  int out_degree(OracleId guest) const override {
    const auto coords =
        spec_.coords(checked_u32(guest, "guest node id exceeds 32 bits"));
    int deg = 0;
    for (int a = 0; a < spec_.num_axes(); ++a) {
      if (spec_.wrap || coords[a] + 1 < spec_.sides[a]) ++deg;
    }
    return deg;
  }

  OracleEdge out_edge(OracleId guest, int slot) const override {
    const Node from = checked_u32(guest, "guest node id exceeds 32 bits");
    auto coords = spec_.coords(from);
    // Successor along each live axis, in ascending target order (Digraph
    // storage order).  At most 5 axes fit in 30 host bits, so the sort is
    // a handful of comparisons.
    Node targets[30];
    int deg = 0;
    for (int a = 0; a < spec_.num_axes(); ++a) {
      if (!spec_.wrap && coords[a] + 1 >= spec_.sides[a]) continue;
      const Node c = coords[a];
      coords[a] = (c + 1) % spec_.sides[a];
      targets[deg++] = spec_.index(coords);
      coords[a] = c;
    }
    HP_CHECK(slot >= 0 && slot < deg, "out-edge slot out of range");
    std::sort(targets, targets + deg);
    return {from, targets[slot]};
  }

  int width(const OracleEdge& edge) const override {
    return axes_[edge_axis(edge)].width();
  }

  std::uint32_t path_hops(const OracleEdge& edge, int index) const override {
    return axes_[edge_axis(edge)].path_hops(index);
  }

  void path(const OracleEdge& edge, int index,
            NodeSink& sink) const override {
    const int a = edge_axis(edge);
    const Node from_coord =
        spec_.coords(static_cast<Node>(edge.from))[static_cast<std::size_t>(a)];
    const Node axis_mask =
        static_cast<Node>((pow2(bits_[a]) - 1) << offset_[a]);
    const Node fixed = host_of(edge.from) & ~axis_mask;
    const int off = offset_[a];
    struct FieldEmit {
      NodeSink& sink;
      Node fixed;
      int off;
      void operator()(Node v) const { sink.push(fixed | (v << off)); }
    };
    axes_[a].path(from_coord, index, FieldEmit{sink, fixed, off});
  }

  const char* family() const override { return "grid"; }

 private:
  /// The single axis the edge advances (+1, or the torus wrap); throws if
  /// the pair is not a grid edge.
  int edge_axis(const OracleEdge& edge) const {
    const auto cf =
        spec_.coords(checked_u32(edge.from, "guest node id exceeds 32 bits"));
    const auto ct =
        spec_.coords(checked_u32(edge.to, "guest node id exceeds 32 bits"));
    int axis = -1;
    for (int a = 0; a < spec_.num_axes(); ++a) {
      if (cf[a] == ct[a]) continue;
      HP_CHECK(axis < 0, "no such guest edge (changes two axes)");
      HP_CHECK(ct[a] == (cf[a] + 1) % spec_.sides[a] &&
                   (spec_.wrap || cf[a] + 1 < spec_.sides[a]),
               "no such guest edge (not the +1 direction)");
      axis = a;
    }
    HP_CHECK(axis >= 0, "no such guest edge (degenerate)");
    return axis;
  }

  GridSpec spec_;
  std::vector<Theorem1Core> axes_;
  std::vector<int> bits_, offset_;
  int total_ = 0;
  std::uint64_t num_edges_ = 0;
};

// ---------------------------------------------------------------------------
// Large-copy cycle oracle
// ---------------------------------------------------------------------------

class LargecopyOracle final : public PathOracle {
 public:
  explicit LargecopyOracle(int n) : n_(n) {
    HP_CHECK(n >= 2 && n <= 15, "large-copy oracle needs 2 <= n <= 15");
    const DirectedCycleFamily fam(n);
    cycle_len_ = pow2(n);
    for (int c = 0; c < fam.num_cycles(); ++c) {
      seq_.push_back(fam.sequence(c, 0));
    }
    guest_nodes_ = static_cast<OracleId>(seq_.size()) * cycle_len_;
  }

  int host_dims() const override { return n_; }
  OracleId guest_nodes() const override { return guest_nodes_; }
  OracleId guest_edges() const override { return guest_nodes_; }

  Node host_of(OracleId guest) const override {
    HP_CHECK(guest < guest_nodes_, "guest node id out of range");
    return seq_[guest >> n_][guest & (cycle_len_ - 1)];
  }

  int out_degree(OracleId guest) const override {
    HP_CHECK(guest < guest_nodes_, "guest node id out of range");
    return 1;
  }

  OracleEdge out_edge(OracleId guest, int slot) const override {
    HP_CHECK(guest < guest_nodes_, "guest node id out of range");
    HP_CHECK(slot == 0, "out-edge slot out of range");
    const OracleId next = guest + 1;
    return {guest, next == guest_nodes_ ? 0 : next};
  }

  int width(const OracleEdge& edge) const override {
    check_edge(edge);
    return 1;
  }

  std::uint32_t path_hops(const OracleEdge& edge, int index) const override {
    check_edge(edge);
    HP_CHECK(index == 0, "bundle path index out of range");
    return 1;
  }

  void path(const OracleEdge& edge, int index,
            NodeSink& sink) const override {
    check_edge(edge);
    HP_CHECK(index == 0, "bundle path index out of range");
    sink.push(host_of(edge.from));
    sink.push(host_of(edge.to));
  }

  const char* family() const override { return "largecopy"; }

 private:
  void check_edge(const OracleEdge& edge) const {
    const OracleId next = edge.from + 1;
    HP_CHECK(edge.from < guest_nodes_ &&
                 edge.to == (next == guest_nodes_ ? 0 : next),
             "no such guest edge");
  }

  int n_;
  std::uint64_t cycle_len_ = 0;
  OracleId guest_nodes_ = 0;
  std::vector<std::vector<Node>> seq_;  // [cycle][step] -> host node
};

}  // namespace

std::unique_ptr<PathOracle> algebraic_theorem1_oracle(int n) {
  return std::make_unique<Theorem1Oracle>(n);
}

bool algebraic_grid_supported(const GridSpec& spec) {
  int total = 0;
  for (Node side : spec.sides) {
    if (side < 2) return false;
    const int b = ceil_log2(side);
    if (!cycle_multipath_supported(b)) return false;
    if (spec.wrap && !is_pow2(side)) return false;
    total += b;
  }
  return total >= 1 && total <= 30;
}

std::unique_ptr<PathOracle> algebraic_grid_oracle(const GridSpec& spec) {
  return std::make_unique<GridOracle>(spec);
}

std::unique_ptr<PathOracle> algebraic_largecopy_oracle(int n) {
  return std::make_unique<LargecopyOracle>(n);
}

}  // namespace hyperpath
