#include "core/lower_bounds.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {

int lemma3_min_dilation(int width) {
  HP_CHECK(width >= 1, "width must be positive");
  if (width == 1) return 1;
  // Two or more edge-disjoint paths between adjacent nodes: at most one can
  // be the direct edge; every other path has odd length >= 3 (Q_n is
  // bipartite).  Lemma 3 states the w > 2 case; adjacency makes it hold
  // from w = 2 already.
  return 3;
}

int lemma3_max_cost3_packets(int n) {
  HP_CHECK(n >= 1, "dimension must be positive");
  return n / 2;
}

PhaseCongestionBounds phase_congestion_bounds(const MultiPathEmbedding& emb,
                                              int packets_per_edge) {
  HP_CHECK(packets_per_edge >= 1, "need at least one packet per edge");
  PhaseCongestionBounds b;
  const Hypercube& host = emb.host();
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const auto bundle = emb.paths(e);
    HP_CHECK(!bundle.empty(), "guest edge without paths");
    const HostPath& any = bundle.front();
    b.demand_edges += static_cast<std::int64_t>(packets_per_edge) *
                      host.distance(any.front(), any.back());
  }
  const auto links = static_cast<std::int64_t>(host.num_directed_edges());
  b.floor = (b.demand_edges + links - 1) / links;
  const int width = emb.width();
  HP_CHECK(width >= 1, "embedding has empty bundles");
  const std::int64_t per_path =
      (packets_per_edge + width - 1) / width;  // ⌈p / w⌉ via round-robin
  b.ceiling = static_cast<std::int64_t>(emb.congestion()) * per_path;
  return b;
}

OraclePhaseFloor oracle_phase_floor(const PathOracle& oracle,
                                    std::span<const OracleEdge> edges,
                                    int packets_per_edge) {
  HP_CHECK(packets_per_edge >= 1, "need at least one packet per edge");
  OraclePhaseFloor b;
  const int n = oracle.host_dims();
  std::vector<Node> sources;
  sources.reserve(edges.size());
  for (const OracleEdge& e : edges) {
    const Node hu = oracle.host_of(e.from);
    const Node hv = oracle.host_of(e.to);
    b.demand_edges += static_cast<std::int64_t>(packets_per_edge) *
                      std::popcount(hu ^ hv);
    sources.push_back(hu);
  }
  const std::int64_t links =
      static_cast<std::int64_t>(n) * static_cast<std::int64_t>(pow2(n));
  b.floor = (b.demand_edges + links - 1) / links;
  // Source cut: the longest run in the sorted image list is the busiest
  // origin; its p·out(x) packets share n outgoing links.
  std::sort(sources.begin(), sources.end());
  std::int64_t run = 0;
  Node prev = kNoNode;
  for (const Node s : sources) {
    run = (s == prev) ? run + 1 : 1;
    prev = s;
    const std::int64_t cut =
        (run * packets_per_edge + n - 1) / n;  // ⌈p·out(x) / n⌉
    if (cut > b.floor) b.floor = cut;
  }
  return b;
}

std::int64_t edge_slot_slack(const MultiPathEmbedding& emb, int cost) {
  HP_CHECK(cost >= 1, "cost must be positive");
  std::int64_t used = 0;
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    for (const HostPath& p : emb.paths(e)) {
      used += static_cast<std::int64_t>(p.size()) - 1;
    }
  }
  const std::int64_t available =
      static_cast<std::int64_t>(emb.host().num_directed_edges()) * cost;
  return available - used;
}

}  // namespace hyperpath
