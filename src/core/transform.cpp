#include "core/transform.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/moment.hpp"
#include "graph/products.hpp"

namespace hyperpath {

MultiPathEmbedding theorem4_transform(const KCopyEmbedding& copies) {
  const int n = copies.host().dims();
  const Node big = copies.guest().num_nodes();
  HP_CHECK(n >= 1 && n <= 14, "transform host dimension out of range");
  HP_CHECK(big == static_cast<Node>(pow2(n)),
           "Theorem 4 needs a guest with exactly 2^n vertices");
  HP_CHECK(copies.num_copies() == n, "Theorem 4 needs exactly n copies");

  // Automorphisms φ_k from the copies' node maps.
  std::vector<std::vector<Node>> automorphs(n);
  for (int k = 0; k < n; ++k) {
    const auto span = copies.node_map(k);
    automorphs[k].assign(span.begin(), span.end());
  }

  const Digraph x = induced_cross_product(copies.guest(), n, automorphs);
  MultiPathEmbedding emb(x, 2 * n);

  // Vertex ⟨i, j⟩ ↦ (i << n) | j: the identity on the product structure.
  {
    std::vector<Node> eta(x.num_nodes());
    for (Node v = 0; v < x.num_nodes(); ++v) eta[v] = v;
    emb.set_node_map(std::move(eta));
  }

  // Bundles.  We re-enumerate X(G)'s edges exactly as the product was
  // built, looking each up in the digraph to attach its bundle.
  const auto bundle_for_row_edge = [&](Node i, const HostPath& copy_path) {
    // Path lives in the low n bits; detours flip high bits n + k.
    std::vector<HostPath> bundle;
    bundle.reserve(n);
    const Node row_base = i << n;
    for (int k = 0; k < n; ++k) {
      const Node detour_base = (i ^ bit(k)) << n;
      HostPath p;
      p.reserve(copy_path.size() + 2);
      p.push_back(row_base | copy_path.front());
      for (Node hop : copy_path) p.push_back(detour_base | hop);
      p.push_back(row_base | copy_path.back());
      bundle.push_back(std::move(p));
    }
    return bundle;
  };
  const auto bundle_for_col_edge = [&](Node j, const HostPath& copy_path) {
    // Path lives in the high n bits; detours flip low bits k.
    std::vector<HostPath> bundle;
    bundle.reserve(n);
    for (int k = 0; k < n; ++k) {
      const Node detour_col = j ^ bit(k);
      HostPath p;
      p.reserve(copy_path.size() + 2);
      p.push_back((copy_path.front() << n) | j);
      for (Node hop : copy_path) p.push_back((hop << n) | detour_col);
      p.push_back((copy_path.back() << n) | j);
      bundle.push_back(std::move(p));
    }
    return bundle;
  };

  const Digraph& g = copies.guest();
  for (Node line = 0; line < big; ++line) {
    const int k = static_cast<int>(moment(line) % static_cast<Node>(n));
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const HostPath& p = copies.path(k, e);
      // Row `line`: X edge from ⟨line, p.front()⟩ to ⟨line, p.back()⟩.
      {
        const std::size_t xe = x.find_edge((line << n) | p.front(),
                                           (line << n) | p.back());
        HP_CHECK(xe != static_cast<std::size_t>(-1),
                 "row edge missing from X(G)");
        emb.set_paths(xe, bundle_for_row_edge(line, p));
      }
      // Column `line`: X edge from ⟨p.front(), line⟩ to ⟨p.back(), line⟩.
      {
        const std::size_t xe = x.find_edge((p.front() << n) | line,
                                           (p.back() << n) | line);
        HP_CHECK(xe != static_cast<std::size_t>(-1),
                 "column edge missing from X(G)");
        emb.set_paths(xe, bundle_for_col_edge(line, p));
      }
    }
  }

  emb.verify_or_throw(/*expected_width=*/n, /*expected_load=*/1);
  return emb;
}

KCopyEmbedding repeat_copies(const KCopyEmbedding& emb, int target) {
  HP_CHECK(emb.num_copies() >= 1, "need at least one copy to repeat");
  HP_CHECK(target >= emb.num_copies(), "target below current copy count");
  KCopyEmbedding out(emb.guest(), emb.host().dims());
  for (int k = 0; k < target; ++k) {
    const int src = k % emb.num_copies();
    const auto span = emb.node_map(src);
    std::vector<Node> eta(span.begin(), span.end());
    std::vector<HostPath> paths(emb.guest().num_edges());
    for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
      paths[e] = emb.path(src, e);
    }
    out.add_copy(std::move(eta), std::move(paths));
  }
  return out;
}

}  // namespace hyperpath
