#include "core/cycle_multipath.hpp"

#include <algorithm>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/gray.hpp"
#include "base/moment.hpp"
#include "graph/builders.hpp"
#include "graph/euler.hpp"
#include "hamdecomp/directed.hpp"
#include "obs/profile.hpp"
#include "par/task_pool.hpp"

namespace hyperpath {

namespace {

/// Field geometry shared by Theorems 1 and 2: n = 4k + r with address
/// fields [row: 2k][position: 2k][block: r], block least significant.
struct Fields {
  int n = 0, k = 0, r = 0;
  int col_bits = 0;  // 2k + r

  explicit Fields(int n_in) : n(n_in) {
    HP_CHECK(n >= 4, "cycle multipath constructions need n >= 4");
    k = n / 4;
    r = n % 4;
    col_bits = 2 * k + r;
    HP_CHECK(is_pow2(static_cast<std::uint64_t>(2 * k)),
             "construction requires the column factor width 2k to be a power "
             "of two (moments must index its 2k directed cycles exactly)");
  }

  Node column(Node v) const { return bit_field(v, 0, col_bits); }
  Node row(Node v) const { return bit_field(v, col_bits, 2 * k); }
  Node position(Node v) const { return bit_field(v, r, 2 * k); }
  Node with_row(Node column_part, Node row_value) const {
    return column_part | (row_value << col_bits);
  }
  bool is_row_dim(Dim d) const { return d >= col_bits; }
};

/// The detour bundle of Theorems 1/2: for guest edge (a, b) across
/// dimension `edge_dim`, the j-th path crosses dimension detour_dims[j],
/// follows the projected edge, and crosses back.
std::vector<HostPath> detour_bundle(Node a, Node b, Dim edge_dim,
                                    const std::vector<Dim>& detour_dims) {
  std::vector<HostPath> bundle;
  bundle.reserve(detour_dims.size());
  for (Dim d : detour_dims) {
    const Node a1 = flip_bit(a, d);
    bundle.push_back({a, a1, flip_bit(a1, edge_dim), b});
  }
  return bundle;
}

}  // namespace

bool cycle_multipath_supported(int n) {
  if (n < 4) return false;
  const int k = n / 4;
  return is_pow2(static_cast<std::uint64_t>(2 * k)) && 2 * k + 3 <= 15;
}

// ---------------------------------------------------------------------------
// Theorem 1
// ---------------------------------------------------------------------------

MultiPathEmbedding theorem1_cycle_embedding(int n) {
  HP_PROFILE_SPAN("construct/theorem1_cycle");
  const Fields f(n);
  const DirectedCycleFamily fam(2 * f.k);
  const std::uint64_t num_cols = pow2(f.col_bits);
  const std::uint64_t col_size = pow2(2 * f.k);

  // Gray order over columns, with the Gray code's two busiest dimensions
  // remapped to *position* bits 0 and 1 so that each aligned 4-group of
  // columns carries special cycles (σ, σ, σ̄, σ̄): positions x, x⊕1, x⊕3,
  // x⊕2 have moments M, M, M⊕1, M⊕1, and cycles 2i/2i+1 are mutual
  // reverses.  (Gray dimension g < 2k toggles column bit r+g; g ≥ 2k
  // toggles block bit g−2k.)
  auto column_bit_of_gray_dim = [&](Dim g) {
    return g < 2 * f.k ? f.r + g : g - 2 * f.k;
  };

  // Walk the guest cycle C.
  std::vector<Node> c_nodes;
  c_nodes.reserve(pow2(n));
  {
    HP_PROFILE_SPAN("guest_walk");
    Node col = 0;
    Node row = 0;
    for (std::uint64_t t = 0; t < num_cols; ++t) {
      const int cyc = static_cast<int>(moment(f.position(col)));
      Node v = row;
      for (std::uint64_t s = 0; s < col_size; ++s) {
        c_nodes.push_back(f.with_row(col, v));
        v = fam.next(cyc, v);
      }
      HP_CHECK(v == row, "special cycle traversal did not wrap");
      row = fam.prev(cyc, row);  // exit row: one step short of closing
      col = flip_bit(col, column_bit_of_gray_dim(
                              gray_transition_at(f.col_bits, t)));
    }
    HP_CHECK(col == 0 && row == 0,
             "guest cycle does not close at row 0 of column 0 (4-group "
             "orientation pairing violated)");
  }

  MultiPathEmbedding emb(directed_cycle(static_cast<Node>(pow2(n))), n);
  emb.set_node_map(std::move(c_nodes));

  std::vector<Dim> col_detours, row_detours;
  for (int j = 0; j < 2 * f.k; ++j) col_detours.push_back(f.r + j);
  for (int j = 0; j < 2 * f.k; ++j) row_detours.push_back(f.col_bits + j);

  {
    HP_PROFILE_SPAN("bundles");
    // Per-edge fan-out: every iteration writes its own bundle slot, so the
    // edge range shards onto the pool directly.
    const Digraph& g = emb.guest();
    par::parallel_for(
        0, g.num_edges(), par::suggested_grain(g.num_edges()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t e = lo; e < hi; ++e) {
            const Edge& ge = g.edge(e);
            const Node a = emb.host_of(ge.from);
            const Node b = emb.host_of(ge.to);
            const Dim i = count_trailing_zeros(a ^ b);
            std::vector<HostPath> bundle = detour_bundle(
                a, b, i, f.is_row_dim(i) ? col_detours : row_detours);
            bundle.push_back({a, b});  // the direct path (the 2k+1st)
            emb.set_paths(e, std::move(bundle));
          }
        });
  }
  HP_PROFILE_SPAN("verify");
  emb.verify_or_throw(/*expected_width=*/2 * f.k + 1, /*expected_load=*/1);
  return emb;
}

std::vector<Packet> theorem1_schedule_packets(const MultiPathEmbedding& emb,
                                              int p) {
  HP_CHECK(p >= 1, "need at least one packet per edge");
  std::vector<Packet> packets;
  packets.reserve(emb.guest().num_edges() * static_cast<std::size_t>(p));
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const auto bundle = emb.paths(e);
    const std::size_t w = bundle.size();
    // bundle layout from theorem1_cycle_embedding: detours first, direct
    // last.  Packet 0 rides the direct path at step 1; packets 1..w−1 ride
    // the detours; packet w goes direct again, released for step 3.
    const std::size_t direct = w - 1;
    for (int j = 0; j < p; ++j) {
      Packet pk;
      pk.tag = static_cast<std::uint32_t>(e);
      if (j == 0) {
        pk.route = bundle[direct];
      } else if (static_cast<std::size_t>(j) < w) {
        pk.route = bundle[j - 1];
      } else if (static_cast<std::size_t>(j) == w) {
        pk.route = bundle[direct];
        pk.release = 2;
      } else {
        pk.route = bundle[j % w];  // overflow: round-robin, natural queueing
      }
      packets.push_back(std::move(pk));
    }
  }
  return packets;
}

// ---------------------------------------------------------------------------
// Theorem 2
// ---------------------------------------------------------------------------

namespace {

MultiPathEmbedding theorem2_impl(int n, bool use_moments) {
  HP_PROFILE_SPAN("construct/theorem2_cycle");
  const Fields f(n);
  const DirectedCycleFamily col_fam(2 * f.k);
  const DirectedCycleFamily row_fam(f.col_bits);
  HP_CHECK(row_fam.num_cycles() >= 2 * f.k,
           "row factor must offer at least 2k directed cycles");

  const std::uint64_t n_nodes = pow2(n);

  // The spanning 2-in/2-out digraph: each node's column special edge (cycle
  // M(position) of its Q_{2k} column subcube, moving through row bits) and
  // row special edge (cycle M(row) of its Q_{2k+r} row subcube, moving
  // through the low bits).  The naive ablation pins both selections to
  // cycle 0 — see theorem2_cycle_embedding_naive.
  EdgeList special{static_cast<Node>(n_nodes), {}};
  special.edges.reserve(2 * n_nodes);
  {
    HP_PROFILE_SPAN("special_edges");
    for (Node v = 0; v < n_nodes; ++v) {
      const int ccyc =
          use_moments ? static_cast<int>(moment(f.position(v))) : 0;
      const Node next_row = col_fam.next(ccyc, f.row(v));
      special.edges.emplace_back(v, f.with_row(f.column(v), next_row));

      const int rcyc = use_moments ? static_cast<int>(moment(f.row(v))) : 0;
      const Node next_low = row_fam.next(rcyc, f.column(v));
      special.edges.emplace_back(v, f.with_row(next_low, f.row(v)));
    }
  }

  std::vector<Node> tour;
  {
    HP_PROFILE_SPAN("euler_tour");
    tour = eulerian_circuit(special, 0);
  }
  HP_CHECK(tour.size() == 2 * n_nodes + 1, "Eulerian tour has wrong length");

  MultiPathEmbedding emb(directed_cycle(static_cast<Node>(2 * n_nodes)), n);
  {
    std::vector<Node> eta(tour.begin(), tour.end() - 1);
    emb.set_node_map(std::move(eta));
  }

  std::vector<Dim> col_detours, row_detours;
  for (int j = 0; j < 2 * f.k; ++j) col_detours.push_back(f.r + j);
  for (int j = 0; j < 2 * f.k; ++j) row_detours.push_back(f.col_bits + j);

  {
    HP_PROFILE_SPAN("bundles");
    const Digraph& g = emb.guest();
    par::parallel_for(
        0, g.num_edges(), par::suggested_grain(g.num_edges()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t e = lo; e < hi; ++e) {
            const Edge& ge = g.edge(e);
            const Node a = emb.host_of(ge.from);
            const Node b = emb.host_of(ge.to);
            const Dim i = count_trailing_zeros(a ^ b);
            // Column special edges flip row dimensions and detour through
            // position neighbors; row special edges flip low dimensions and
            // detour through row neighbors.  No direct path exists (Theorem
            // 2's proof): each family's direct edges are consumed by the
            // other family's first and last edges.
            emb.set_paths(e, detour_bundle(a, b, i,
                                           f.is_row_dim(i) ? col_detours
                                                           : row_detours));
          }
        });
  }
  HP_PROFILE_SPAN("verify");
  emb.verify_or_throw(/*expected_width=*/2 * f.k, /*expected_load=*/2);
  return emb;
}

}  // namespace

MultiPathEmbedding theorem2_cycle_embedding(int n) {
  return theorem2_impl(n, /*use_moments=*/true);
}

MultiPathEmbedding theorem2_cycle_embedding_naive(int n) {
  return theorem2_impl(n, /*use_moments=*/false);
}

}  // namespace hyperpath
