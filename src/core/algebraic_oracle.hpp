// Algebraic PathOracle backends: closed-form routing without bundles.
//
// The paper's three embedding families are all arithmetic, so the oracle
// queries of embed/path_oracle.hpp have direct formulas:
//
//   * Theorem-1 cycle (algebraic_theorem1_oracle) — guest node g splits
//     into (column step t, in-column step s).  The column address is the
//     bit-permuted Gray value t ^ (t >> 1) (the construction's remap of
//     Gray dimensions onto position/block bits is a fixed bit permutation,
//     and a permutation of XOR-accumulated transitions is the permutation
//     of the accumulated value); the special cycle is moment(position)
//     (Lemma 2); the entry row follows the 4-group identity — aligned
//     column groups carry cycles (σ, σ, σ̄, σ̄), whose prev-chain closes
//     back to row 0 at every 4th column, so the entry row is one of
//     {0, prev_σ(0), prev_σ²(0)} by t mod 4.  In-column position is
//     rank/unrank on precomputed per-cycle sequence tables of the Q_{2k}
//     column subcube (≤ 8 cycles × 2^{2k} entries — a few KiB, the
//     oracle's whole state).  Bundles are Theorem 1's 2k length-3 detours
//     plus the direct edge, emitted hop by hop.
//
//   * Cross-product grid (algebraic_grid_oracle) — per-axis Theorem-1
//     generators composed by field concatenation: η is the OR of shifted
//     per-axis images, a bundle is the changing axis's bundle shifted
//     into its field with the other fields held fixed.  Because state is
//     per *axis* (not per node), total host dimension extends past the
//     materialized builder's 24-bit cap to Q_30.
//
//   * Large-copy cycle (algebraic_largecopy_oracle) — guest node g is
//     (cycle c, step s) of Lemma 1's directed Hamiltonian family; η is a
//     table lookup in the family's own successor structure and every
//     bundle is the single direct edge.
//
// Every generator is cross-checked bit-for-bit against the materialized
// construction at small n (tests/property/oracle_equiv_test.cpp) and
// spot-sampled at Q_20–Q_30 (oracle_sample_check).
#pragma once

#include <memory>

#include "embed/path_oracle.hpp"
#include "graph/builders.hpp"

namespace hyperpath {

/// Closed-form Theorem-1 oracle over Q_n.  Requires
/// cycle_multipath_supported(n); identical to wrapping
/// theorem1_cycle_embedding(n) in a MaterializedOracle, without building
/// the embedding.
std::unique_ptr<PathOracle> algebraic_theorem1_oracle(int n);

/// The grid spec range the algebraic backend accepts: every axis must
/// satisfy cycle_multipath_supported(axis bits) (torus sides must be
/// powers of two, as in the materialized builder), but the *total* host
/// dimension extends to 30 — the materialized builder's 24-bit cap is a
/// RAM limit the oracle does not have.
bool algebraic_grid_supported(const GridSpec& spec);

/// Closed-form Corollary-1 grid/torus oracle (per-axis Theorem-1
/// composition).  Guest is grid_graph_directed(spec).
std::unique_ptr<PathOracle> algebraic_grid_oracle(const GridSpec& spec);

/// Closed-form Lemma-1 large-copy oracle: the ⌊n/2⌋·2 directed
/// Hamiltonian cycles of Q_n traversed back to back, width 1.  Guest ids
/// are 64-bit (the guest has 2⌊n/2⌋·2^n nodes).  Requires 2 ≤ n ≤ 15
/// (the decomposition table range).
std::unique_ptr<PathOracle> algebraic_largecopy_oracle(int n);

}  // namespace hyperpath
