// Section 7: bit-serial (wormhole) message routing on the hypercube.
//
// For permutations of M-packet messages:
//
//   * store-and-forward on e-cube routes queues whole messages: with high
//     congestion a message waits Θ(M) per queue, so completion is Θ(nM);
//   * the multiple-copy CCC embedding (Theorem 3) lets each message be
//     split into n pieces of M/n flits, piece k wormhole-routed through
//     copy k of the CCC — copies are edge-disjoint up to the factor-2
//     congestion, so completion drops to O(M) (the paper's headline claim);
//   * the width-n X(butterfly) embedding routes in two phases (row
//     butterfly, then column butterfly — end of Section 7).
//
// We implement the CCC-split router in full (route computation on the CCC,
// host paths through Theorem 3's copies, wormhole execution), plus the
// store-and-forward and single-copy wormhole baselines the benches compare.
#pragma once

#include "ccc/ccc_embed.hpp"
#include "sim/wormhole.hpp"
#include "sim/workloads.hpp"

namespace hyperpath {

/// A route on the n-stage CCC from vertex `src` to vertex `dst` (vertex ids
/// in ccc_layout(n)): ascend levels, fixing column bit ℓ with a cross edge
/// at level ℓ, then continue to the destination level.  Length ≤ 2n + n.
std::vector<Node> ccc_route(int n, Node src, Node dst);

/// The CCC-split router of Section 7: host node v sends an M-flit message
/// to pattern[v]; the message splits into one piece per CCC copy, piece k
/// wormhole-routed between the copy-k CCC vertices of source and
/// destination.  Returns the worms (ready for WormholeSim on
/// emb.host().dims()).
std::vector<Worm> ccc_split_worms(const KCopyEmbedding& emb,
                                  const Pattern& pattern, int total_flits);

/// Baseline: the same permutation as whole messages on e-cube routes.
std::vector<Worm> ecube_worms(int dims, const Pattern& pattern,
                              int total_flits);

/// Baseline: whole messages wormhole-routed through a single CCC copy.
std::vector<Worm> ccc_single_copy_worms(const KCopyEmbedding& emb, int copy,
                                        const Pattern& pattern,
                                        int total_flits);

// ---------------------------------------------------------------------------
// Two-phase routing on X(butterfly) — the closing scheme of Section 7
// ---------------------------------------------------------------------------

/// A greedy route on the m-stage wrapped butterfly: sweep the levels once,
/// fixing column bit ℓ with a cross edge at level ℓ, then continue straight
/// to the destination level.  Vertex ids per butterfly_layout(m).
std::vector<Node> butterfly_route(int m, Node src, Node dst);

/// The two-phase route between X(butterfly) vertices ⟨i1,j1⟩ → ⟨i2,j2⟩:
/// along row i1's butterfly to ⟨i1, j2⟩, then along column j2's butterfly
/// to the destination.  Returns the path as a sequence of X node ids.
/// `copies` are the butterfly copies the transform was built from; m their
/// stage count.
std::vector<Node> x_two_phase_route(int m, const KCopyEmbedding& copies,
                                    Node src, Node dst);

/// Wormhole workload for a (partial) permutation of X nodes: each message
/// takes its two-phase X route and is split across the width-n bundles —
/// piece k expands every X hop through bundle path k (loop-erased).
/// `pattern[v] == v` means no message.  Requires x = theorem4_transform of
/// `copies`.
std::vector<Worm> x_two_phase_worms(int m, const MultiPathEmbedding& x,
                                    const KCopyEmbedding& copies,
                                    const Pattern& pattern, int total_flits);

}  // namespace hyperpath
