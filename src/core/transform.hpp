// Theorem 4 (Section 6): the general multiple-copy → multiple-path
// transform.
//
// Given an n-copy embedding of a graph G with 2^n vertices into Q_n (copy k
// is the automorphism φ_k, i.e. a one-to-one node map, plus one host path
// per guest edge), the transform produces a width-n embedding of the
// *induced cross product* X(G) into Q_{2n}:
//
//   * X(G)'s vertex ⟨i, j⟩ is hypercube node (i << n) | j;
//   * row i and column i both carry the automorph G_{φ_{M(i)}};
//   * a row edge whose copy-path is x_0 … x_L gets, for every column
//     dimension k < n, the path that crosses 2^{n+k} into row i ⊕ 2^k,
//     follows the projected copy path, and crosses back — the n detour rows
//     carry the n *distinct* copies M(i) ⊕ b(k) (Lemma 2), which makes the
//     middle segments exactly one n-copy embedding per row;
//   * column edges are treated symmetrically.
//
// If the multiple-copy embedding has cost c and G has max out-degree δ, the
// n-packet cost of the result is c + 2δ (measured by the benches).
#pragma once

#include "embed/embedding.hpp"

namespace hyperpath {

/// Applies Theorem 4.  `copies` must hold exactly n = host dims copies of a
/// guest with 2^n vertices, each one-to-one.  The result is a width-n
/// embedding of X(G) into Q_{2n}, verified before return.
MultiPathEmbedding theorem4_transform(const KCopyEmbedding& copies);

/// Pads a multiple-copy embedding to exactly `target` copies by repeating
/// existing copies round-robin (Theorem 5 does this to turn m butterfly
/// copies into m + log m; the repeats at most double the congestion of the
/// repeated copies).
KCopyEmbedding repeat_copies(const KCopyEmbedding& emb, int target);

}  // namespace hyperpath
