// Lemma 3 (Section 4.4): limits on width and cost.
//
//   (a) Any width-w embedding with w > 2 has dilation ≥ 3 (two distinct
//       hypercube nodes admit at most 2 edge-disjoint paths of length ≤ 2,
//       and bipartiteness forces odd/even path-length parity).
//   (b) No p-packet-cost-3 embedding of the 2^{n+1}-node cycle in Q_n has
//       p > ⌊n/2⌋: counting edge slots, 2^{n+1}·(w−1)·3 path-edges must fit
//       in 3·n·2^n available directed-edge slots.
//
// These are *checkable* bounds: the audit functions below recompute the
// counting argument on concrete embeddings, so benches can show the
// Theorem 1/2 constructions sit at the bound.
#pragma once

#include <span>

#include "embed/embedding.hpp"
#include "embed/path_oracle.hpp"

namespace hyperpath {

/// Minimum possible dilation of any width-w embedding (Lemma 3a):
/// 1 for w = 1, 3 for w ≥ 2 between *adjacent* images (the direct edge plus
/// any second edge-disjoint path, which must have odd length ≥ 3; the
/// paper states the w > 2 case).
int lemma3_min_dilation(int width);

/// The largest p for which a p-packet cost-3 embedding of the 2^{n+1}-node
/// cycle in Q_n can exist (Lemma 3b): ⌊n/2⌋.
int lemma3_max_cost3_packets(int n);

/// The counting-argument audit: total path-edges used by the embedding
/// must not exceed cost · (number of directed host edges).  Returns the
/// slack (available − used); negative would disprove the claimed cost.
std::int64_t edge_slot_slack(const MultiPathEmbedding& emb, int cost);

/// Analytic bracket on the *measured* edge congestion of a phase workload:
/// p packets per guest edge, round-robined over each bundle (sim/phase.hpp),
/// counted as transmissions per directed host link.
///
///   floor    — averaging/demand bound in the Rajan et al. style: every
///              routing of the phase traffic, on any paths whatsoever, must
///              move p·dist(η(u), η(v)) link crossings per guest edge, so
///              some directed link carries at least ⌈total demand / #links⌉.
///   ceiling  — what the construction guarantees: each bundle is edge-
///              disjoint (≤1 of its paths on any link) and round-robin puts
///              at most ⌈p / w⌉ packets on one path, so a link used by c
///              bundles carries at most congestion · ⌈p / w⌉ packets.
///
/// A simulated phase whose measured peak falls outside [floor, ceiling]
/// has a routing or accounting bug; trace-driven measurements are checked
/// against this bracket in tests and benches.
struct PhaseCongestionBounds {
  std::int64_t floor = 0;
  std::int64_t ceiling = 0;
  /// Total demand: Σ_e p · dist(η(u), η(v)) directed-link crossings.
  std::int64_t demand_edges = 0;

  bool contains(std::int64_t measured) const {
    return floor <= measured && measured <= ceiling;
  }
};

PhaseCongestionBounds phase_congestion_bounds(const MultiPathEmbedding& emb,
                                              int packets_per_edge);

/// Analytic congestion floor for an oracle-fed phase over a *demanded
/// subset* of guest edges (sim/oracle_sim.hpp) — the huge-host counterpart
/// of phase_congestion_bounds, computable without materializing anything:
///
///   averaging  — Σ_e p · hamming(η(u), η(v)) link crossings must happen
///                somewhere, so some directed link of Q_n carries at least
///                ⌈demand / n·2^n⌉.
///   source cut — all p·out(x) packets originating at host image x leave
///                through x's n outgoing links, so one of them carries at
///                least ⌈p·out(x) / n⌉; the floor takes the max over x.
///
/// For sparse sampled demand the averaging bound is usually 1 and the
/// source cut is the binding term.  run_oracle_phase's measured
/// peak_congestion must be ≥ floor; bench_oracle gates on it.
struct OraclePhaseFloor {
  std::int64_t floor = 0;
  std::int64_t demand_edges = 0;  // Σ_e p · hamming distance
};

OraclePhaseFloor oracle_phase_floor(const PathOracle& oracle,
                                    std::span<const OracleEdge> edges,
                                    int packets_per_edge);

}  // namespace hyperpath
