#include "core/grid_multipath.hpp"

#include <algorithm>
#include <climits>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "core/cycle_multipath.hpp"
#include "hamdecomp/directed.hpp"
#include "obs/profile.hpp"
#include "par/task_pool.hpp"

namespace hyperpath {

namespace {

int axis_bits(Node side) { return ceil_log2(side); }

}  // namespace

bool grid_multipath_supported(const GridSpec& spec) {
  int total = 0;
  for (Node side : spec.sides) {
    if (side < 2) return false;
    const int b = axis_bits(side);
    if (!cycle_multipath_supported(b)) return false;
    if (spec.wrap && !is_pow2(side)) return false;
    total += b;
  }
  return total >= 1 && total <= 24;
}

MultiPathEmbedding grid_multipath_embedding(const GridSpec& spec) {
  HP_PROFILE_SPAN("construct/grid");
  HP_CHECK(grid_multipath_supported(spec),
           "grid spec unsupported (axis widths must satisfy "
           "cycle_multipath_supported; torus sides must be powers of two)");
  const int k = spec.num_axes();

  // Per-axis Theorem 1 embeddings and field offsets (axis 0 most
  // significant, matching GridSpec's row-major indexing).
  std::vector<MultiPathEmbedding> axis;
  std::vector<int> bits(k), offset(k);
  axis.reserve(k);
  {
    HP_PROFILE_SPAN("axis_embeddings");
    for (int a = 0; a < k; ++a) {
      bits[a] = axis_bits(spec.sides[a]);
      axis.push_back(theorem1_cycle_embedding(bits[a]));
    }
  }
  offset[k - 1] = 0;
  for (int a = k - 1; a-- > 0;) offset[a] = offset[a + 1] + bits[a + 1];
  int total = offset[0] + bits[0];

  MultiPathEmbedding emb(grid_graph_directed(spec), total);

  // η: concatenate per-axis cycle positions' host addresses.
  {
    HP_PROFILE_SPAN("node_map");
    const Node n_guest = spec.num_nodes();
    std::vector<Node> eta(n_guest);
    for (Node v = 0; v < n_guest; ++v) {
      const auto coords = spec.coords(v);
      Node addr = 0;
      for (int a = 0; a < k; ++a) {
        addr |= axis[a].host_of(coords[a]) << offset[a];
      }
      eta[v] = addr;
    }
    emb.set_node_map(std::move(eta));
  }

  // Bundles: for a grid edge along axis a between coordinates c and c+1
  // (or the wrap pair), take the axis cycle embedding's bundle for the
  // corresponding directed cycle edge, shift it into the axis field, keep
  // all other fields fixed; the reverse grid direction reverses the paths.
  {
  HP_PROFILE_SPAN("bundles");
  // Edges translate independently (reads of the per-axis embeddings are
  // shared, each write lands in its own bundle slot), so the edge range
  // shards onto the pool.
  const Digraph& g = emb.guest();
  par::parallel_for(
      0, g.num_edges(), par::suggested_grain(g.num_edges()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t e = lo; e < hi; ++e) {
          const Edge& ge = g.edge(e);
          const auto cf = spec.coords(ge.from);
          const auto ct = spec.coords(ge.to);
          int a = -1;
          for (int i = 0; i < k; ++i) {
            if (cf[i] != ct[i]) {
              HP_CHECK(a < 0, "grid edge changes two axes");
              a = i;
            }
          }
          HP_CHECK(a >= 0, "degenerate grid edge");

          // The guest is directed: every edge goes c → c+1 (or the wrap
          // side−1 → 0), matching the axis cycle's orientation.
          const std::size_t cycle_edge =
              axis[a].guest().find_edge(cf[a], ct[a]);
          HP_CHECK(cycle_edge != static_cast<std::size_t>(-1),
                   "axis cycle edge missing");

          const Node fixed =
              emb.host_of(ge.from) & ~((bit(bits[a]) - 1) << offset[a]);
          std::vector<HostPath> bundle;
          for (const HostPath& p : axis[a].paths(cycle_edge)) {
            HostPath q;
            q.reserve(p.size());
            for (Node hop : p) q.push_back(fixed | (hop << offset[a]));
            bundle.push_back(std::move(q));
          }
          emb.set_paths(e, std::move(bundle));
        }
      });
  }

  HP_PROFILE_SPAN("verify");
  emb.verify_or_throw();
  return emb;
}

KCopyEmbedding multicopy_torus(const GridSpec& spec) {
  HP_PROFILE_SPAN("construct/multicopy_torus");
  HP_CHECK(spec.wrap, "multicopy_torus needs a torus spec");
  const int k = spec.num_axes();
  HP_CHECK(k >= 1, "empty spec");

  std::vector<int> bits(k), offset(k);
  int copies = INT_MAX;
  std::vector<DirectedCycleFamily> fam;
  fam.reserve(k);
  for (int a = 0; a < k; ++a) {
    HP_CHECK(is_pow2(spec.sides[a]) && spec.sides[a] >= 4,
             "sides must be powers of two >= 4");
    bits[a] = floor_log2(spec.sides[a]);
    fam.emplace_back(bits[a]);
    copies = std::min(copies, fam.back().num_cycles());
  }
  offset[k - 1] = 0;
  for (int a = k - 1; a-- > 0;) offset[a] = offset[a + 1] + bits[a + 1];
  const int total = offset[0] + bits[0];
  HP_CHECK(total <= 24, "torus too large");

  KCopyEmbedding emb(grid_graph_directed(spec), total);
  const Node n_guest = spec.num_nodes();
  // Copies are independent: build each copy's η and paths in parallel
  // (one copy per task), then append serially in copy order so the
  // embedding's copy indices never depend on the schedule.
  std::vector<std::vector<Node>> etas(copies);
  std::vector<std::vector<HostPath>> copy_paths(copies);
  par::parallel_for(
      0, static_cast<std::size_t>(copies), /*grain=*/1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          // Copy c: coordinate x along axis a sits at the x-th node of
          // directed cycle c of that axis's subcube.
          std::vector<std::vector<Node>> seq(k);
          for (int a = 0; a < k; ++a) {
            seq[a] = fam[a].sequence(static_cast<int>(c), 0);
          }

          std::vector<Node> eta(n_guest);
          for (Node v = 0; v < n_guest; ++v) {
            const auto coords = spec.coords(v);
            Node addr = 0;
            for (int a = 0; a < k; ++a) addr |= seq[a][coords[a]] << offset[a];
            eta[v] = addr;
          }
          std::vector<HostPath> paths(emb.guest().num_edges());
          for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
            const Edge& ge = emb.guest().edge(e);
            paths[e] = {eta[ge.from], eta[ge.to]};
          }
          etas[c] = std::move(eta);
          copy_paths[c] = std::move(paths);
        }
      });
  for (int c = 0; c < copies; ++c) {
    emb.add_copy(std::move(etas[c]), std::move(copy_paths[c]));
  }
  emb.verify_or_throw(/*expected_congestion=*/1);
  return emb;
}

}  // namespace hyperpath
