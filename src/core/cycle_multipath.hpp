// Multiple-path embeddings of cycles (Section 4, Theorems 1 and 2).
//
// Theorem 1: the 2^n-node directed cycle embeds in Q_n with load 1 and
// width ⌊n/2⌋ (in fact 2k+1 paths per edge where n = 4k+r), with
// ⌊n/2⌋-packet cost 3.
//
// Construction (following the proof exactly):
//   * addresses split into fields  [row: 2k][position: 2k][block: r]  (block
//     least significant);
//   * every column (low 2k+r bits) selects the *special* directed
//     Hamiltonian cycle number M(position) from the Lemma-1 family of its
//     Q_{2k} column subcube;
//   * the guest cycle C takes 2^{2k}−1 consecutive special-cycle edges per
//     column and hops to the next column in a Gray-code column order chosen
//     so that each aligned group of four consecutive columns carries
//     cycles (σ, σ, σ̄, σ̄) — which is what returns C to row 0 (the Gray
//     dimensions are remapped so its two busiest dimensions toggle
//     *position* bits 0 and 1: moment shifts b(0) = 0 and b(1) = 1);
//   * each special edge (dimension i, a row dimension) is replaced by the
//     direct edge plus 2k length-3 paths u → u⊕2^{r+j} → ⊕2^i → v that
//     detour through the 2k neighboring columns of u's block — edge-disjoint
//     because those neighbors' moments are pairwise distinct (Lemma 2);
//   * row edges are widened symmetrically, detouring through neighbor rows.
//
// Theorem 2: the 2^{n+1}-node directed cycle embeds with load 2 and width
// w(n), w(n)-packet cost 3, where w(n) = 2k for n = 4k+r.  Every node lies
// on one *column* special cycle (cycle M(position) of its Q_{2k} column
// subcube) and one *row* special cycle (cycle M(row) of its Q_{2k+r} row
// subcube); the union is a spanning 2-in/2-out digraph whose Eulerian tour
// is the guest cycle.  Widening detours column edges through position
// neighbors and row edges through row neighbors; no direct paths exist
// (each family's direct edges are consumed by the other family's first/last
// edges, as the proof notes).
//
// Both constructions require the column factor Q_{2k} to have 2k a power of
// two so that moments index its 2k directed cycles exactly; the paper
// implicitly assumes the same (its moment range is 2^{⌈log 2k⌉}).
// Supported n: k ∈ {1, 2, 4} → n ∈ {4..11, 16..19} (larger n exceed
// laptop-scale simulation anyway).
#pragma once

#include "embed/embedding.hpp"
#include "sim/packet.hpp"

namespace hyperpath {

/// True iff theorem1/theorem2 support this n (k = ⌊n/4⌋ must be a power of
/// two with 2k within the Hamiltonian-decomposition table range).
bool cycle_multipath_supported(int n);

/// Theorem 1: width-(2k+1) ⊇ width-⌊n/2⌋, load-1 embedding of the
/// 2^n-node directed cycle into Q_n.  Verified before return.
MultiPathEmbedding theorem1_cycle_embedding(int n);

/// Theorem 2: width-2k, load-2 embedding of the 2^{n+1}-node directed cycle
/// into Q_n.  Verified before return.
MultiPathEmbedding theorem2_cycle_embedding(int n);

/// Ablation: Theorem 2 with the moment-based special-cycle selection
/// replaced by a constant (every column and every row uses cycle 0).  The
/// guest cycle still exists (the Eulerian tour does not care), the bundles
/// are still internally edge-disjoint — but Lemma 2's guarantee is gone, so
/// all 2k neighbor projections collide on the same host edges and the
/// measured w-packet cost degrades from 3 to Θ(k).  Exists to demonstrate
/// that the moment labeling is what the paper's speed-up rests on.
MultiPathEmbedding theorem2_cycle_embedding_naive(int n);

/// The packets of a p-packet Theorem-1 phase with the paper's schedule: the
/// direct path carries packets at steps 1 and 3 (release 0 and 2), the
/// length-3 paths one packet each.  For p ≤ 2k+2 this realizes cost 3.
std::vector<Packet> theorem1_schedule_packets(const MultiPathEmbedding& emb,
                                              int p);

}  // namespace hyperpath
