#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>

#include "base/error.hpp"
#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hyperpath::obs {

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread CPU seconds (user + system).  RUSAGE_THREAD is Linux-specific;
// elsewhere fall back to the whole process, which still satisfies the
// "CPU ≤ wall × threads" sanity bound the tests check.
double cpu_now_seconds() {
#if defined(RUSAGE_THREAD)
  struct rusage ru;
  if (getrusage(RUSAGE_THREAD, &ru) != 0) return 0;
#elif defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#else
  return 0;
#endif
#if defined(__unix__) || defined(__APPLE__)
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + 1e-6 * t.tv_usec;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
#endif
}

// Process peak resident set in KiB.  ru_maxrss is kilobytes on Linux and
// bytes on macOS; normalized here.  Monotone, so span-entry/exit deltas
// capture only growth to a new high-water mark.
std::uint64_t rss_peak_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
#else
  return 0;
#endif
}

// Each thread caches its ThreadProfile per profiler; the vector is tiny
// (the global profiler plus any test instances).
struct TlsEntry {
  const Profiler* profiler;
  void* profile;
};
thread_local std::vector<TlsEntry> tls_entries;

}  // namespace

Profiler& Profiler::global() {
  static Profiler* p = new Profiler;  // never destroyed
  return *p;
}

Profiler::~Profiler() {
  // Instance profilers (tests) are used from the threads that created
  // them; unhook this thread's cache and free the per-thread data.  The
  // global profiler is never destroyed.
  for (std::size_t i = 0; i < tls_entries.size();) {
    if (tls_entries[i].profiler == this) {
      tls_entries.erase(tls_entries.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (ThreadProfile* tp : threads_) delete tp;
}

Profiler::ThreadProfile& Profiler::this_thread() {
  for (const TlsEntry& e : tls_entries) {
    if (e.profiler == this) return *static_cast<ThreadProfile*>(e.profile);
  }
  auto* tp = new ThreadProfile;
  {
    std::scoped_lock lock(mu_);
    if (epoch_ns_ == 0) epoch_ns_ = wall_now_ns();
    tp->tid = threads_.size() + 1;
    threads_.push_back(tp);
  }
  tls_entries.push_back({this, tp});
  return *tp;
}

std::int32_t Profiler::child_named(ThreadProfile& tp, std::int32_t parent,
                                   const char* name) const {
  // Walk the existing children first (no allocation on a revisit); only a
  // first visit appends a node.
  std::int32_t* head = parent < 0 ? nullptr : &tp.nodes[parent].first_child;
  if (parent < 0) {
    for (std::int32_t r : tp.roots) {
      const Node& n = tp.nodes[r];
      if (n.name == name || !std::strcmp(n.name, name)) return r;
    }
  } else {
    for (std::int32_t c = *head; c >= 0; c = tp.nodes[c].next_sibling) {
      const Node& n = tp.nodes[c];
      if (n.name == name || !std::strcmp(n.name, name)) return c;
    }
  }
  const auto idx = static_cast<std::int32_t>(tp.nodes.size());
  Node node;
  node.name = name;
  node.parent = parent;
  if (parent < 0) {
    tp.roots.push_back(idx);
  } else {
    // Append at the head: sibling order is newest-first internally and
    // restored to creation order at export.
    node.next_sibling = tp.nodes[parent].first_child;
    tp.nodes.push_back(node);
    tp.nodes[parent].first_child = idx;
    return idx;
  }
  tp.nodes.push_back(node);
  return idx;
}

void Profiler::begin(const char* name) {
  ThreadProfile& tp = this_thread();
  const std::int32_t parent =
      tp.stack.empty() ? -1 : tp.stack.back().node;
  const std::int32_t node = child_named(tp, parent, name);
  tp.stack.push_back({node, wall_now_ns(), cpu_now_seconds(), rss_peak_kb()});
}

void Profiler::end() {
  ThreadProfile& tp = this_thread();
  HP_CHECK(!tp.stack.empty(), "ProfileSpan end without begin");
  const Frame f = tp.stack.back();
  tp.stack.pop_back();
  const std::uint64_t wall_end = wall_now_ns();
  const std::uint64_t rss_end = rss_peak_kb();
  const std::uint64_t rss_delta =
      rss_end > f.rss_start_kb ? rss_end - f.rss_start_kb : 0;
  Node& node = tp.nodes[f.node];
  ++node.count;
  node.wall_seconds += 1e-9 * static_cast<double>(wall_end - f.wall_start_ns);
  node.cpu_seconds += cpu_now_seconds() - f.cpu_start;
  node.max_rss_delta_kb = std::max(node.max_rss_delta_kb, rss_delta);

  Occurrence occ;
  occ.name = node.name;
  occ.start_us = (f.wall_start_ns - epoch_ns_) / 1000;
  occ.dur_us = (wall_end - f.wall_start_ns) / 1000;
  occ.depth = static_cast<std::int32_t>(tp.stack.size());
  occ.rss_delta_kb = rss_delta;
  if (tp.events.size() < kMaxEvents) {
    tp.events.push_back(occ);
  } else {
    tp.events[tp.event_head] = occ;
    tp.event_head = (tp.event_head + 1) % kMaxEvents;
  }
  ++tp.events_total;
}

std::vector<Profiler::NodeView> Profiler::nodes() const {
  std::scoped_lock lock(mu_);
  std::vector<NodeView> out;
  for (const ThreadProfile* tp : threads_) {
    // Preorder DFS; children are reversed back to creation order.
    struct Item {
      std::int32_t node;
      int depth;
    };
    std::vector<Item> work;
    for (auto it = tp->roots.rbegin(); it != tp->roots.rend(); ++it) {
      work.push_back({*it, 0});
    }
    while (!work.empty()) {
      const Item item = work.back();
      work.pop_back();
      const Node& n = tp->nodes[item.node];
      out.push_back({n.name, item.depth, n.count, n.wall_seconds,
                     n.cpu_seconds, n.max_rss_delta_kb});
      // first_child is newest-first, so a straight push yields creation
      // order when popped.
      for (std::int32_t c = n.first_child; c >= 0;
           c = tp->nodes[c].next_sibling) {
        work.push_back({c, item.depth + 1});
      }
    }
  }
  return out;
}

namespace {

struct MergeItem {
  const std::vector<Profiler::NodeView>* views;
  std::size_t index;
};

}  // namespace

void Profiler::write_json(JsonWriter& w) const {
  // Merge the flattened per-thread trees by name, level by level: spans
  // with the same name under the same parent (across threads) become one
  // aggregated node.
  const std::vector<NodeView> flat = nodes();

  // children_of(i): indices whose depth == depth(i)+1 between i and the
  // next node with depth <= depth(i).
  const auto children_of = [&](std::size_t i) {
    std::vector<std::size_t> out;
    if (i == static_cast<std::size_t>(-1)) {  // virtual root: depth-0 nodes
      for (std::size_t j = 0; j < flat.size(); ++j) {
        if (flat[j].depth == 0) out.push_back(j);
      }
      return out;
    }
    for (std::size_t j = i + 1; j < flat.size(); ++j) {
      if (flat[j].depth <= flat[i].depth) break;
      if (flat[j].depth == flat[i].depth + 1) out.push_back(j);
    }
    return out;
  };

  const std::function<void(const std::vector<std::size_t>&)> emit_level =
      [&](const std::vector<std::size_t>& level) {
        w.begin_object();
        std::vector<std::size_t> done;
        for (std::size_t i = 0; i < level.size(); ++i) {
          const NodeView& v = flat[level[i]];
          bool seen = false;
          for (std::size_t d : done) {
            if (flat[d].name == v.name) seen = true;
          }
          if (seen) continue;
          done.push_back(level[i]);
          std::uint64_t count = 0;
          double wall = 0, cpu = 0;
          std::uint64_t rss = 0;
          std::vector<std::size_t> kids;
          for (std::size_t j = i; j < level.size(); ++j) {
            const NodeView& u = flat[level[j]];
            if (u.name != v.name) continue;
            count += u.count;
            wall += u.wall_seconds;
            cpu += u.cpu_seconds;
            rss = std::max(rss, u.max_rss_delta_kb);
            for (std::size_t c : children_of(level[j])) kids.push_back(c);
          }
          w.key(v.name).begin_object();
          w.field("count", count);
          w.field("wall_seconds", wall);
          w.field("cpu_seconds", cpu);
          w.field("max_rss_delta_kb", rss);
          w.key("children");
          emit_level(kids);
          w.end_object();
        }
        w.end_object();
      };

  emit_level(children_of(static_cast<std::size_t>(-1)));
}

std::string Profiler::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

void Profiler::write_chrome_trace(JsonWriter& w) const {
  std::scoped_lock lock(mu_);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const ThreadProfile* tp : threads_) {
    // Ring order: oldest event first.
    const std::size_t n = tp->events.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Occurrence& o =
          tp->events[(tp->event_head + i) % (n ? n : 1)];
      w.begin_object();
      w.field("name", o.name);
      w.field("cat", "hyperpath");
      w.field("ph", "X");
      w.field("ts", o.start_us);
      w.field("dur", o.dur_us);
      w.field("pid", std::uint64_t{1});
      w.field("tid", tp->tid);
      w.key("args").begin_object();
      w.field("rss_delta_kb", o.rss_delta_kb);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
}

std::string Profiler::chrome_trace_json() const {
  JsonWriter w;
  write_chrome_trace(w);
  return w.str();
}

bool Profiler::dump_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string doc = chrome_trace_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

std::uint64_t Profiler::events_dropped() const {
  std::scoped_lock lock(mu_);
  std::uint64_t dropped = 0;
  for (const ThreadProfile* tp : threads_) {
    dropped += tp->events_total - tp->events.size();
  }
  return dropped;
}

void Profiler::reset() {
  std::scoped_lock lock(mu_);
  for (ThreadProfile* tp : threads_) {
    HP_CHECK(tp->stack.empty(), "Profiler::reset with open spans");
    tp->nodes.clear();
    tp->roots.clear();
    tp->events.clear();
    tp->event_head = 0;
    tp->events_total = 0;
  }
}

}  // namespace hyperpath::obs
