#include "obs/json_parse.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/error.hpp"

namespace hyperpath::obs {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(Array a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<Array>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(Object o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<Object>(std::move(o));
  return v;
}

bool JsonValue::as_bool() const {
  HP_CHECK(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  HP_CHECK(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  HP_CHECK(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  HP_CHECK(kind_ == Kind::kArray, "JSON value is not an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  HP_CHECK(kind_ == Kind::kObject, "JSON value is not an object");
  return *object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : *object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(JsonParseError* error) {
    std::optional<JsonValue> v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v && error) *error = {err_pos_, err_msg_};
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  std::nullopt_t fail(const char* msg) {
    if (err_msg_.empty()) {
      err_msg_ = msg;
      err_pos_ = pos_;
    }
    return std::nullopt;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': return literal("null") ? std::optional<JsonValue>(JsonValue())
                                       : fail("bad literal");
      case 't': return literal("true")
                           ? std::optional(JsonValue::make_bool(true))
                           : fail("bad literal");
      case 'f': return literal("false")
                           ? std::optional(JsonValue::make_bool(false))
                           : fail("bad literal");
      case '"': return parse_string();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) return fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) return fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::optional<std::uint32_t> hex4() {
    if (pos_ + 4 > text_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return std::nullopt;
    }
    pos_ += 4;
    return v;
  }

  std::optional<JsonValue> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return JsonValue::make_string(std::move(out));
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            auto cp = hex4();
            if (!cp) return fail("invalid \\u escape");
            // Surrogate pair → one code point.
            if (*cp >= 0xd800 && *cp <= 0xdbff &&
                text_.compare(pos_, 2, "\\u") == 0) {
              pos_ += 2;
              const auto lo = hex4();
              if (!lo || *lo < 0xdc00 || *lo > 0xdfff) {
                return fail("invalid surrogate pair");
              }
              append_utf8(out, 0x10000 + ((*cp - 0xd800) << 10) +
                                   (*lo - 0xdc00));
            } else {
              append_utf8(out, *cp);
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      if (c < 0x20) return fail("unescaped control character");
      out += static_cast<char>(c);  // UTF-8 bytes pass through untouched
      ++pos_;
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonValue::Array items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      auto v = parse_value();
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return JsonValue::make_array(std::move(items));
      if (c != ',') {
        --pos_;
        return fail("expected ',' or ']'");
      }
    }
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue::Object members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      auto v = parse_value();
      if (!v) return std::nullopt;
      members.emplace_back(key->as_string(), std::move(*v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return JsonValue::make_object(std::move(members));
      if (c != ',') {
        --pos_;
        return fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t err_pos_ = 0;
  std::string err_msg_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    JsonParseError* error) {
  return Parser(text).run(error);
}

std::optional<JsonValue> json_parse_file(const std::string& path,
                                         JsonParseError* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (error) *error = {0, "cannot open " + path};
    return std::nullopt;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return json_parse(text, error);
}

JsonlReader::JsonlReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")) {
  if (!file_) error_ = {0, "cannot open " + path};
}

JsonlReader::~JsonlReader() {
  if (file_) std::fclose(file_);
}

bool JsonlReader::next(JsonValue* out) {
  if (!file_ || failed()) return false;
  buf_.clear();
  int c;
  while (true) {
    // Read one line (the current record); skip it entirely if blank.
    while ((c = std::fgetc(file_)) != EOF && c != '\n') {
      buf_ += static_cast<char>(c);
    }
    ++line_;
    if (!buf_.empty() && buf_.back() == '\r') buf_.pop_back();
    const bool blank =
        buf_.find_first_not_of(" \t") == std::string::npos;
    if (!blank) break;
    if (c == EOF) return false;  // clean EOF
    buf_.clear();
  }
  JsonParseError err;
  auto v = json_parse(buf_, &err);
  if (!v) {
    // Report the line number where callers expect a position; the byte
    // offset within the line rides along in the message.
    error_ = {line_, "line " + std::to_string(line_) + ", offset " +
                         std::to_string(err.offset) + ": " + err.message};
    return false;
  }
  *out = std::move(*v);
  return true;
}

}  // namespace hyperpath::obs
