// Step-level simulator tracing.
//
// The simulators accept an optional `TraceSink*`; when it is null no event
// is ever constructed (the recorder's enabled() check is a single branch on
// a pointer), so tracing is zero-overhead when disabled.  When a sink is
// attached the simulators emit one TraceEvent per observable occurrence:
//
//   kRelease    packet enters the network        (link = its first link)
//   kTransmit   packet crosses a directed link   (value = queue depth seen)
//   kStall      waiting packets a link could not serve this step
//                                                (value = how many waited)
//   kQueueDepth a link queue reached a new per-link high-water mark
//                                                (value = the new depth)
//   kArrive     packet delivered                 (value = latency in steps)
//   kDrop       packet dropped by fault injection (link = first dead link;
//               for mid-run truncation, value = hops completed at the break)
//   kWormStart  wormhole message acquired its whole route (value = flits)
//   kWormDone   wormhole message fully delivered (value = completion step)
//   kFault      a scheduled fault activated a directed link (link = its id)
//   kRepair     a scheduled repair revived a directed link (link = its id)
//   kRetransmit sender re-injected a lost fragment on a surviving path
//               (packet = message id, link = first link of the new route,
//               value = attempt number)
//
// Events are buffered per step by StepTrace and forwarded to the sink in a
// canonical sorted order at the step barrier.  The parallel simulator feeds
// shard-local buffers into the same recorder at its merge point, so a traced
// parallel run emits a byte-identical event stream to the serial simulator.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hyperpath::obs {

enum class TraceEventKind : std::uint8_t {
  kRelease = 0,
  kTransmit,
  kStall,
  kQueueDepth,
  kArrive,
  kDrop,
  kWormStart,
  kWormDone,
  kFault,
  kRepair,
  kRetransmit,
};

/// Number of distinct TraceEventKind values (per-kind counter array size).
inline constexpr std::size_t kNumTraceEventKinds = 11;

/// Stable lowercase name used in the JSONL encoding.
const char* to_string(TraceEventKind kind);

/// Inverse of to_string (the JSONL decode side).  False when `name` is not
/// a known kind; `out` is untouched then.
bool trace_event_kind_from_string(std::string_view name, TraceEventKind* out);

struct TraceEvent {
  static constexpr std::uint32_t kNoPacket = 0xffffffffu;
  static constexpr std::uint64_t kNoLink = ~std::uint64_t{0};

  std::int32_t step = 0;
  TraceEventKind kind = TraceEventKind::kTransmit;
  std::uint32_t packet = kNoPacket;
  std::uint64_t link = kNoLink;
  std::uint64_t value = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;

  /// Canonical intra-step order: kind, then link, then packet, then value.
  /// Total on the events one step can produce, which is what makes traced
  /// parallel runs byte-identical to serial ones.
  friend bool operator<(const TraceEvent& a, const TraceEvent& b) {
    if (a.step != b.step) return a.step < b.step;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.link != b.link) return a.link < b.link;
    if (a.packet != b.packet) return a.packet < b.packet;
    return a.value < b.value;
  }
};

/// Receives batches of trace events.  Implementations need not be
/// thread-safe: the simulators deliver from one thread only.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_events(std::span<const TraceEvent> events) = 0;
  virtual void flush() {}
};

/// Fixed-capacity in-memory sink: keeps the newest `capacity` events and
/// counts everything it ever saw (so totals stay exact when the ring wraps).
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = std::size_t{1} << 20);

  void on_events(std::span<const TraceEvent> events) override;

  /// Events still in the ring, oldest first.
  std::vector<TraceEvent> events() const;

  std::uint64_t total() const { return total_; }
  std::uint64_t total(TraceEventKind kind) const {
    return by_kind_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(size_);
  }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t by_kind_[kNumTraceEventKinds] = {};
};

/// Streaming JSONL sink: one JSON object per line, e.g.
///   {"step":3,"kind":"transmit","packet":17,"link":42,"value":2}
/// `packet` / `link` are omitted when not applicable.  Buffered stdio keeps
/// the per-event cost at a formatted append.
class JsonlFileSink final : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  void on_events(std::span<const TraceEvent> events) override;
  void flush() override;

  /// Optional header line `{"kind":"meta","dims":N,"packets":M}` carrying
  /// run parameters the event stream cannot encode (the host dimension in
  /// particular — dense link ids are only decodable knowing n).  Call once,
  /// before any event is written; readers treat the line as metadata, not
  /// an event.
  void write_meta(int dims, std::uint64_t packets);

  std::uint64_t total() const { return total_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_;
  std::uint64_t total_ = 0;
};

/// Per-run recorder the simulators write through.  Buffers the current
/// step's events, sorts them canonically at end_step(), and forwards the
/// batch to the sink.  With a null sink every method is a no-op and
/// enabled() lets call sites skip event construction entirely.
class StepTrace {
 public:
  explicit StepTrace(TraceSink* sink) : sink_(sink) {}

  bool enabled() const { return sink_ != nullptr; }

  void record(const TraceEvent& e) { buf_.push_back(e); }
  void record(std::span<const TraceEvent> events) {
    buf_.insert(buf_.end(), events.begin(), events.end());
  }

  /// Sorts and flushes the current step's buffer to the sink.
  void end_step();

  /// Final flush (call once, after the last end_step()).
  void finish();

 private:
  TraceSink* sink_;
  std::vector<TraceEvent> buf_;
};

}  // namespace hyperpath::obs
