// Live telemetry: a process-wide TelemetryBus sampling running simulations.
//
// Everything else in the observability layer is post-hoc — traces, flight
// records and bench reports exist only after a run finishes.  The bus is
// the live counterpart: simulators push a gauge snapshot every
// `period_steps` simulator steps, the bus enriches it with process-wide
// state (work-stealing pool stats, recovery-engine counters, resident-set
// size) and retains it in a bounded ring buffer, optionally streaming every
// sample to a JSONL time-series file.  MetricsRegistry::expose_prometheus
// renders the whole registry in Prometheus text exposition format — the
// snapshot a future `hyperpathd` serves as /metrics, validated in-tree by
// validate_prometheus_text (a promtool-shaped checker with no external
// dependency).
//
// Determinism contract: sampling is driven by the *simulator step counter*,
// never by wall-clock, and the sampler only reads simulator state — so
// telemetry on/off and any sampling period produce bit-identical SimResults
// and trace streams.  tests/property/telemetry_equiv_test.cpp enforces
// this across periods {1, 7, 64} and thread counts {1, 2, 8}.
//
// Cost model ("lock-light"): the per-step fast path is should_sample() —
// one relaxed atomic load plus a modulo.  The mutex inside sample() is
// taken once per period, and only ever by the simulator's main thread plus
// the rare snapshot() reader, so the hot loop never contends.
//
// Layering: obs does not depend on par.  The task pool registers a worker
// stats provider at static-init time (task_pool.cpp), mirroring how
// RunMetadata::set_effective_threads keeps the dependency arrow pointing
// one way.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hyperpath::obs {

/// Bucket count of the per-sample queue-depth histogram: exponential bounds
/// 1, 2, 4, ..., 2^11 — deeper queues than 2048 land in the overflow
/// bucket (and would mean the routing theorems failed badly anyway).
inline constexpr int kTelemetryDepthBuckets = 12;

/// A fresh histogram with the canonical per-sample depth bounds.
FixedHistogram telemetry_depth_histogram();

/// Gauges a simulator reads off its own state at end-of-step.  The values
/// describe the queues *after* this step's arrivals, i.e. the state the
/// next step starts from.
struct SimTelemetry {
  int step = -1;                     // simulator step; -1 = idle baseline
  std::uint64_t active_links = 0;    // links with a nonempty queue
  std::uint64_t queued_packets = 0;  // packets waiting in some queue
  std::uint64_t max_queue_depth = 0;
  std::uint64_t undelivered = 0;     // packets not yet at destination
  std::uint64_t transmissions = 0;   // cumulative over the run so far
  FixedHistogram depth_hist;         // depths of the active links

  friend bool operator==(const SimTelemetry&, const SimTelemetry&) = default;
};

/// Lifetime stats of the work-stealing pool, captured by the provider the
/// par layer registers.  Empty (all zero) when no pool exists yet.
struct WorkerSnapshot {
  std::uint64_t regions = 0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  std::vector<double> busy_seconds;  // per participant, worker order
};
using WorkerStatsProvider = std::function<WorkerSnapshot()>;

/// One ring-buffer slot: the simulator's gauges plus the process-wide state
/// the bus sampled alongside them.
struct TelemetrySample {
  std::uint64_t seq = 0;
  double wall_seconds = 0;  // since enable(); diagnostic only
  /// Simulated packet-steps/second since the previous sample (whole-run
  /// average at the first) — the live view of the simulators' first-class
  /// throughput metric (SimResult::packet_steps_per_sec).  Wall-clock
  /// derived, diagnostic only; never part of the determinism contract.
  double packet_steps_per_sec = 0;
  SimTelemetry sim;
  WorkerSnapshot par;
  // Recovery-engine live counters (0 until a recovery run is in flight).
  std::uint64_t fragments_delivered = 0;
  std::uint64_t fragments_lost = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t messages_complete = 0;
  std::uint64_t rss_kb = 0;
};

class TelemetryBus {
 public:
  struct Config {
    /// Sample every `period_steps` simulator steps (step % period == 0).
    int period_steps = 64;
    /// Ring buffer slots retained for snapshot(); older samples are
    /// overwritten (the JSONL stream, if any, keeps everything).
    std::size_t ring_capacity = 1024;
    /// Stream every sample to this JSONL file; empty = ring only.
    std::string jsonl_path;
  };

  /// The process-wide bus.  First use reads HYPERPATH_TELEMETRY (a JSONL
  /// path, or "ring" for ring-buffer-only) and HYPERPATH_TELEMETRY_PERIOD,
  /// so any binary becomes telemetry-capable without a flag.
  static TelemetryBus& global();

  TelemetryBus() = default;
  ~TelemetryBus();
  TelemetryBus(const TelemetryBus&) = delete;
  TelemetryBus& operator=(const TelemetryBus&) = delete;

  /// (Re)starts sampling: resets the ring and sequence numbers, opens the
  /// JSONL stream and writes its header line.
  void enable(Config config);
  /// Stops sampling and closes the stream.  Idempotent.
  void disable();

  bool enabled() const {
    return period_.load(std::memory_order_relaxed) > 0;
  }
  int period_steps() const { return period_.load(std::memory_order_relaxed); }

  /// Path of the active JSONL stream; empty when ring-only or disabled.
  std::string jsonl_path() const {
    std::lock_guard<std::mutex> lock(mu_);
    return config_.jsonl_path;
  }

  /// The per-step fast path: true when the bus is enabled and `step` is a
  /// sampling step.  One relaxed load + one modulo; no locks.
  bool should_sample(int step) const {
    const int p = period_.load(std::memory_order_relaxed);
    return p > 0 && step % p == 0;
  }

  /// Records one sample: stamps seq/wall-clock, pulls pool stats, recovery
  /// counters and RSS, stores into the ring and streams to JSONL.  Called
  /// by the simulators' main thread; never from workers.
  void sample(SimTelemetry&& sim);

  /// Ring contents in ascending seq order (oldest retained first).
  std::vector<TelemetrySample> snapshot() const;

  /// Samples taken since the last enable() (including overwritten ones).
  std::uint64_t total_samples() const;

  /// Registered once by the par layer; replaces any previous provider.
  static void set_worker_stats_provider(WorkerStatsProvider provider);

 private:
  void write_header_locked();
  void write_sample_locked(const TelemetrySample& s);
  void close_locked();

  std::atomic<int> period_{0};
  mutable std::mutex mu_;
  Config config_;
  std::vector<TelemetrySample> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t seq_ = 0;
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point t0_{};
  /// Live throughput gauge ("sim.packet_steps_per_sec"), created once at
  /// enable() — the sampling path must never grow the registry.  Registry
  /// entry addresses are stable, so the pointer stays valid.
  Gauge* pps_gauge_ = nullptr;
  std::uint64_t prev_tx_ = 0;   // transmissions at the previous sample
  double prev_wall_ = 0;        // wall_seconds at the previous sample
  bool have_prev_ = false;
};

/// Current resident-set size in kB via /proc/self/statm (0 where absent).
std::uint64_t rss_now_kb();

/// Checks `text` against the Prometheus text exposition format rules that
/// promtool enforces: metric/label name charsets, one TYPE per metric and
/// before its samples, samples of one metric contiguous, histogram bucket
/// counts cumulative with a +Inf bucket, no duplicate sample lines, and
/// parseable float values (including NaN/+Inf/-Inf).  Returns true when
/// valid; otherwise fills `error` (if given) with a line-numbered reason.
bool validate_prometheus_text(const std::string& text,
                              std::string* error = nullptr);

}  // namespace hyperpath::obs
