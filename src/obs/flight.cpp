#include "obs/flight.hpp"

#include <algorithm>

#include "obs/json_parse.hpp"

namespace hyperpath::obs {

void FlightRecorder::on_events(std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) add(e);
}

void FlightRecorder::note_inconsistency(const TraceEvent& e,
                                        const char* what) {
  ++inconsistencies_;
  if (first_inconsistency_.empty()) {
    first_inconsistency_ = std::string(what) + " (step " +
                           std::to_string(e.step) + ", kind " +
                           to_string(e.kind) + ", packet " +
                           std::to_string(e.packet) + ")";
  }
}

FlightRecord& FlightRecorder::open_flight(std::uint32_t packet,
                                          std::int32_t release_step) {
  if (packet >= open_.size()) {
    open_.resize(packet + 1, npos);
    generations_.resize(packet + 1, 0);
  }
  FlightRecord rec;
  rec.packet = packet;
  rec.generation = generations_[packet]++;
  max_generation_ = std::max(max_generation_, rec.generation);
  rec.release_step = release_step;
  open_[packet] = records_.size();
  records_.push_back(std::move(rec));
  pending_.push_back({});
  return records_.back();
}

LinkUse& FlightRecorder::link_slot(std::uint64_t link) {
  if (link >= links_.size()) links_.resize(link + 1);
  return links_[link];
}

std::size_t FlightRecorder::flight_of(std::uint32_t packet) const {
  if (packet < open_.size() && open_[packet] != npos) return open_[packet];
  // Terminated flights: scan backwards for the latest generation.  Rarely
  // needed (callers mostly iterate records()); kept simple.
  for (std::size_t i = records_.size(); i-- > 0;) {
    if (records_[i].packet == packet) return i;
  }
  return npos;
}

void FlightRecorder::add(const TraceEvent& e) {
  any_events_ = true;
  ++events_seen_;
  last_step_ = std::max(last_step_, e.step);
  switch (e.kind) {
    case TraceEventKind::kRelease: {
      if (e.packet < open_.size() && open_[e.packet] != npos) {
        // A release while a flight is open never happens in well-formed
        // streams; close the stale record so the new one can proceed.
        note_inconsistency(e, "release while a flight is already open");
        open_[e.packet] = npos;
      }
      open_flight(e.packet, e.step);
      pending_.back() = {e.link, e.step};
      ++releases_;
      break;
    }
    case TraceEventKind::kTransmit: {
      ++transmissions_;
      LinkUse& lu = link_slot(e.link);
      ++lu.transmissions;
      if (lu.first_step < 0) lu.first_step = e.step;
      lu.last_step = e.step;
      if (e.packet == TraceEvent::kNoPacket) break;  // defensive
      std::size_t idx =
          e.packet < open_.size() ? open_[e.packet] : npos;
      if (idx == npos) {
        // Wormhole traces emit a worm's kTransmit batch *before* its
        // kWormStart within the acquisition step (kTransmit sorts ahead of
        // kWormStart), so an implicit open here is normal — the kWormStart
        // claims it moments later.  An implicit open that no kWormStart
        // ever claims is a malformed packet stream; inconsistencies()
        // folds the unclaimed count in.
        ++unclaimed_implicit_;
        open_flight(e.packet, /*release_step=*/-1);
        idx = open_[e.packet];
        pending_[idx] = {e.link, e.step};
      }
      FlightRecord& rec = records_[idx];
      PendingHop& p = pending_[idx];
      std::int32_t enq;
      if (p.enqueue_step >= 0) {
        enq = p.enqueue_step;
        if (p.link != TraceEvent::kNoLink && p.link != e.link) {
          note_inconsistency(e, "transmit on a different link than queued");
        }
      } else if (!rec.hops.empty()) {
        enq = rec.hops.back().transmit_step + 1;
      } else {
        enq = e.step;
      }
      // Worm acquisition transmits all share one step; no wait semantics.
      if (enq > e.step) enq = e.step;
      rec.hops.push_back({e.link, enq, e.step,
                          static_cast<std::uint32_t>(e.value)});
      // The next hop's link is unknown until an event names it.
      p = {TraceEvent::kNoLink, e.step + 1};
      break;
    }
    case TraceEventKind::kArrive: {
      ++delivered_;
      const std::size_t idx =
          e.packet < open_.size() ? open_[e.packet] : npos;
      if (idx == npos) {
        note_inconsistency(e, "arrival for a packet never released");
        break;
      }
      FlightRecord& rec = records_[idx];
      rec.fate = FlightRecord::Fate::kDelivered;
      rec.end_step = e.step;
      rec.latency = e.value;
      if (rec.release_step >= 0 &&
          static_cast<std::uint64_t>(e.step + 1 - rec.release_step) !=
              e.value) {
        note_inconsistency(e, "arrival latency disagrees with release step");
      }
      open_[e.packet] = npos;
      break;
    }
    case TraceEventKind::kDrop: {
      ++dropped_;
      const std::size_t idx =
          e.packet < open_.size() ? open_[e.packet] : npos;
      if (idx == npos) {
        // Dropped before release: the packet's route was cut by a standing
        // fault, so it never entered the network.  (Note these ids index
        // the submitted workload, which may collide with a later wave's
        // wave-local ids — generations keep the records distinct.)
        FlightRecord& rec = open_flight(e.packet, /*release_step=*/-1);
        rec.fate = FlightRecord::Fate::kDropped;
        rec.end_step = e.step;
        rec.drop_link = e.link;
        open_[e.packet] = npos;
        break;
      }
      FlightRecord& rec = records_[idx];
      rec.fate = FlightRecord::Fate::kDropped;
      rec.end_step = e.step;
      rec.drop_link = e.link;
      rec.pending_enqueue_step = pending_[idx].enqueue_step;
      if (e.value != rec.hops.size()) {
        note_inconsistency(e, "drop hop count disagrees with record");
      }
      open_[e.packet] = npos;
      break;
    }
    case TraceEventKind::kStall:
      stalled_ += e.value;
      break;
    case TraceEventKind::kQueueDepth: {
      LinkUse& lu = link_slot(e.link);
      lu.peak_queue =
          std::max(lu.peak_queue, static_cast<std::uint32_t>(e.value));
      break;
    }
    case TraceEventKind::kWormStart: {
      worm_trace_ = true;
      // The worm's kTransmit batch this step already opened its record.
      const std::size_t idx =
          e.packet < open_.size() ? open_[e.packet] : npos;
      if (idx == npos) {
        open_flight(e.packet, e.step);
      } else {
        if (records_[idx].release_step < 0 && unclaimed_implicit_ > 0) {
          --unclaimed_implicit_;
        }
        records_[idx].release_step = e.step;
      }
      ++releases_;
      break;
    }
    case TraceEventKind::kWormDone: {
      worm_trace_ = true;
      const std::size_t idx =
          e.packet < open_.size() ? open_[e.packet] : npos;
      if (idx == npos) {
        note_inconsistency(e, "worm_done for a worm never started");
        break;
      }
      FlightRecord& rec = records_[idx];
      rec.fate = FlightRecord::Fate::kDelivered;
      rec.end_step = e.step;
      rec.latency = e.value;  // completion span: done step - release step
      ++delivered_;
      open_[e.packet] = npos;
      break;
    }
    case TraceEventKind::kFault:
      fault_events_.push_back({e.step, e.link, false});
      break;
    case TraceEventKind::kRepair:
      fault_events_.push_back({e.step, e.link, true});
      break;
    case TraceEventKind::kRetransmit:
      retransmits_.push_back({e.step, e.packet, e.link, e.value});
      break;
  }
}

int FlightRecorder::makespan() const {
  if (!any_events_) return 0;
  return worm_trace_ ? last_step_ : last_step_ + 1;
}

std::uint64_t FlightRecorder::peak_congestion() const {
  std::uint64_t peak = 0;
  for (const LinkUse& lu : links_) peak = std::max(peak, lu.transmissions);
  return peak;
}

std::uint64_t FlightRecorder::peak_congestion_link() const {
  const std::uint64_t peak = peak_congestion();
  if (peak == 0) return TraceEvent::kNoLink;
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (links_[l].transmissions == peak) return l;
  }
  return TraceEvent::kNoLink;
}

bool trace_event_from_json(const JsonValue& v, TraceEvent* out, bool* is_meta,
                           std::string* error) {
  *is_meta = false;
  if (!v.is_object()) {
    if (error) *error = "trace record is not an object";
    return false;
  }
  const JsonValue* kind = v.find("kind");
  if (!kind || !kind->is_string()) {
    if (error) *error = "trace record has no \"kind\"";
    return false;
  }
  if (kind->as_string() == "meta") {
    *is_meta = true;
    return false;
  }
  TraceEvent e;
  if (!trace_event_kind_from_string(kind->as_string(), &e.kind)) {
    if (error) *error = "unknown trace event kind \"" + kind->as_string() +
                        "\"";
    return false;
  }
  const JsonValue* step = v.find("step");
  if (!step || !step->is_number()) {
    if (error) *error = "trace record has no numeric \"step\"";
    return false;
  }
  e.step = static_cast<std::int32_t>(step->as_number());
  if (const JsonValue* p = v.find("packet"); p && p->is_number()) {
    e.packet = static_cast<std::uint32_t>(p->as_number());
  }
  if (const JsonValue* l = v.find("link"); l && l->is_number()) {
    e.link = static_cast<std::uint64_t>(l->as_number());
  }
  if (const JsonValue* val = v.find("value"); val && val->is_number()) {
    e.value = static_cast<std::uint64_t>(val->as_number());
  }
  *out = e;
  return true;
}

TraceLoadResult load_trace_jsonl(const std::string& path,
                                 FlightRecorder& rec) {
  TraceLoadResult out;
  JsonlReader reader(path);
  if (!reader.ok()) {
    out.error = reader.error().message;
    return out;
  }
  JsonValue v;
  while (reader.next(&v)) {
    ++out.lines;
    TraceEvent e;
    bool is_meta = false;
    std::string err;
    if (trace_event_from_json(v, &e, &is_meta, &err)) {
      rec.add(e);
      ++out.events;
      continue;
    }
    if (is_meta) {
      if (const JsonValue* d = v.find("dims"); d && d->is_number()) {
        out.dims = static_cast<int>(d->as_number());
      }
      if (const JsonValue* p = v.find("packets"); p && p->is_number()) {
        out.meta_packets = static_cast<std::uint64_t>(p->as_number());
      }
      continue;
    }
    out.error = "line " + std::to_string(reader.line()) + ": " + err;
    return out;
  }
  if (reader.failed()) {
    out.error = reader.error().message;
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace hyperpath::obs
