#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "base/error.hpp"

namespace hyperpath::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // DEL is escaped alongside the mandatory C0 range: valid either
        // way, but raw 0x7f confuses line-oriented consumers.  Multi-byte
        // UTF-8 (>= 0x80) passes through untouched.
        if (c < 0x20 || c == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows its key; no separator
  }
  if (!scopes_.empty()) {
    if (nonempty_.back()) out_ += ',';
    nonempty_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  scopes_.push_back(true);
  nonempty_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HP_CHECK(!scopes_.empty() && scopes_.back(), "end_object outside object");
  out_ += '}';
  scopes_.pop_back();
  nonempty_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  scopes_.push_back(false);
  nonempty_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HP_CHECK(!scopes_.empty() && !scopes_.back(), "end_array outside array");
  out_ += ']';
  scopes_.pop_back();
  nonempty_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  HP_CHECK(!scopes_.empty() && scopes_.back(), "key outside object");
  HP_CHECK(!after_key_, "two keys in a row");
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

const std::string& JsonWriter::str() const {
  HP_CHECK(scopes_.empty(), "unclosed JSON scope");
  return out_;
}

}  // namespace hyperpath::obs
