#include "obs/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "base/error.hpp"
#include "obs/json.hpp"
#include "obs/run_metadata.hpp"

namespace hyperpath::obs {

namespace {

std::mutex& provider_mu() {
  static std::mutex m;
  return m;
}

WorkerStatsProvider& provider_slot() {
  static WorkerStatsProvider p;
  return p;
}

}  // namespace

FixedHistogram telemetry_depth_histogram() {
  return FixedHistogram::exponential(kTelemetryDepthBuckets);
}

std::uint64_t rss_now_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long pages = 0, resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &pages, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096) / 1024;
#else
  return 0;
#endif
}

// ---------------------------------------------------------------------------
// TelemetryBus
// ---------------------------------------------------------------------------

TelemetryBus& TelemetryBus::global() {
  static TelemetryBus* bus = [] {
    auto* b = new TelemetryBus;  // never destroyed
    if (const char* env = std::getenv("HYPERPATH_TELEMETRY")) {
      Config c;
      if (std::strcmp(env, "ring") != 0) c.jsonl_path = env;
      if (const char* p = std::getenv("HYPERPATH_TELEMETRY_PERIOD")) {
        const int v = std::atoi(p);
        if (v > 0) c.period_steps = v;
      }
      b->enable(std::move(c));
    }
    return b;
  }();
  return *bus;
}

TelemetryBus::~TelemetryBus() {
  std::scoped_lock lock(mu_);
  close_locked();
}

void TelemetryBus::set_worker_stats_provider(WorkerStatsProvider provider) {
  std::scoped_lock lock(provider_mu());
  provider_slot() = std::move(provider);
}

void TelemetryBus::enable(Config config) {
  HP_CHECK(config.period_steps > 0, "telemetry period must be positive");
  HP_CHECK(config.ring_capacity > 0, "telemetry ring needs at least 1 slot");
  std::scoped_lock lock(mu_);
  close_locked();
  config_ = std::move(config);
  ring_.clear();
  ring_next_ = 0;
  seq_ = 0;
  t0_ = std::chrono::steady_clock::now();
  if (!config_.jsonl_path.empty()) {
    file_ = std::fopen(config_.jsonl_path.c_str(), "w");
    HP_CHECK(file_ != nullptr,
             "cannot open telemetry stream " + config_.jsonl_path);
    write_header_locked();
  }
  // The live throughput gauge is created here, never inside sample() — the
  // sampling path must not grow the registry (see the non-creating-reads
  // comment there), so the registry contents are identical at any period.
  pps_gauge_ = &MetricsRegistry::global().gauge("sim.packet_steps_per_sec");
  pps_gauge_->set(0);
  prev_tx_ = 0;
  prev_wall_ = 0;
  have_prev_ = false;
  period_.store(config_.period_steps, std::memory_order_relaxed);
}

void TelemetryBus::disable() {
  std::scoped_lock lock(mu_);
  period_.store(0, std::memory_order_relaxed);
  close_locked();
}

void TelemetryBus::close_locked() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void TelemetryBus::sample(SimTelemetry&& sim) {
  // Snapshot the pool provider outside any bus state: the provider locks
  // the par layer's own mutex and must never nest inside ours in a fixed
  // order other than bus -> par.
  WorkerStatsProvider provider;
  {
    std::scoped_lock plock(provider_mu());
    provider = provider_slot();
  }

  std::scoped_lock lock(mu_);
  if (period_.load(std::memory_order_relaxed) <= 0) return;

  TelemetrySample s;
  s.seq = seq_++;
  s.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0_)
                       .count();
  s.sim = std::move(sim);
  // Live throughput: simulated packet-steps/second since the previous
  // sample (whole-run average at the first).  A transmissions counter
  // below the previous sample's means a new run started; its cumulative
  // count is the delta.  Derived from values already being sampled and
  // never fed back into the simulation, so the zero-perturbation contract
  // holds at any period.
  {
    const std::uint64_t tx = s.sim.transmissions;
    const std::uint64_t dtx =
        (have_prev_ && tx >= prev_tx_) ? tx - prev_tx_ : tx;
    const double dwall =
        have_prev_ ? s.wall_seconds - prev_wall_ : s.wall_seconds;
    s.packet_steps_per_sec =
        dwall > 0 ? static_cast<double>(dtx) / dwall : 0.0;
    prev_tx_ = tx;
    prev_wall_ = s.wall_seconds;
    have_prev_ = true;
    if (pps_gauge_ != nullptr) pps_gauge_->set(s.packet_steps_per_sec);
  }
  if (provider) s.par = provider();
  // Non-creating reads: sampling must not grow the registry, or a traced
  // bench run would export different metric documents with telemetry on.
  const auto& reg = MetricsRegistry::global();
  s.fragments_delivered = reg.counter_value("recovery.fragments_delivered");
  s.fragments_lost = reg.counter_value("recovery.fragments_lost");
  s.retransmissions = reg.counter_value("recovery.retransmissions");
  s.messages_complete = reg.counter_value("recovery.messages_complete");
  s.rss_kb = rss_now_kb();

  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(s);
  } else {
    ring_[ring_next_] = s;
    ring_next_ = (ring_next_ + 1) % config_.ring_capacity;
  }
  if (file_ != nullptr) write_sample_locked(s);
}

std::vector<TelemetrySample> TelemetryBus::snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<TelemetrySample> out;
  out.reserve(ring_.size());
  // ring_next_ is the oldest slot once the ring wrapped (it is only
  // advanced on overwrite), and 0 before that.
  const std::size_t n = ring_.size();
  const std::size_t start = n < config_.ring_capacity ? 0 : ring_next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % n]);
  }
  return out;
}

std::uint64_t TelemetryBus::total_samples() const {
  std::scoped_lock lock(mu_);
  return seq_;
}

void TelemetryBus::write_header_locked() {
  const RunMetadata meta = RunMetadata::collect();
  JsonWriter w;
  w.begin_object();
  w.field("kind", "telemetry_meta");
  w.field("version", std::uint64_t{1});
  w.field("period_steps", config_.period_steps);
  w.field("ring_capacity", static_cast<std::uint64_t>(config_.ring_capacity));
  w.field("effective_threads", meta.effective_threads);
  w.field("git_sha", meta.git_sha);
  w.field("hostname", meta.hostname);
  w.field("timestamp", meta.timestamp);
  w.field("compiler", meta.compiler);
  w.end_object();
  std::fprintf(file_, "%s\n", w.str().c_str());
  std::fflush(file_);
}

void TelemetryBus::write_sample_locked(const TelemetrySample& s) {
  JsonWriter w;
  w.begin_object();
  w.field("kind", "sample");
  w.field("seq", s.seq);
  w.field("step", s.sim.step);
  w.field("wall_seconds", s.wall_seconds);
  w.field("active_links", s.sim.active_links);
  w.field("queued_packets", s.sim.queued_packets);
  w.field("max_queue_depth", s.sim.max_queue_depth);
  w.field("undelivered", s.sim.undelivered);
  w.field("transmissions", s.sim.transmissions);
  w.field("packet_steps_per_sec", s.packet_steps_per_sec);
  w.key("depth_hist");
  s.sim.depth_hist.write_json(w);
  w.key("par").begin_object();
  w.field("regions", s.par.regions);
  w.field("tasks", s.par.tasks);
  w.field("steals", s.par.steals);
  w.key("busy_seconds").begin_array();
  for (double b : s.par.busy_seconds) w.value(b);
  w.end_array();
  w.end_object();
  w.key("recovery").begin_object();
  w.field("fragments_delivered", s.fragments_delivered);
  w.field("fragments_lost", s.fragments_lost);
  w.field("retransmissions", s.retransmissions);
  w.field("messages_complete", s.messages_complete);
  w.end_object();
  w.field("rss_kb", s.rss_kb);
  w.end_object();
  std::fprintf(file_, "%s\n", w.str().c_str());
  // Flush per sample so `hyperpath_cli watch --follow` reads a live file;
  // samples are rare (once per period), so this costs nothing measurable.
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

namespace {

bool prom_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool prom_name_char(char c) {
  return prom_name_start(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool prom_label_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool prom_label_char(char c) {
  return prom_label_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

/// Registry names ("recovery.fragments_lost", "par.worker0.busy") mapped to
/// the Prometheus charset, namespaced under hyperpath_.
std::string prom_sanitize(const std::string& name) {
  std::string out = "hyperpath_";
  for (char c : name) out.push_back(prom_name_char(c) ? c : '_');
  return out;
}

std::string prom_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::expose_prometheus() const {
  std::scoped_lock lock(mu_);
  std::string out;
  // First-wins on sanitized-name collisions, in a fixed section order
  // (counters, gauges, histograms, timings) so the exposition is
  // deterministic for a given registry state.
  std::set<std::string> emitted;
  const auto claim = [&](const std::string& name) {
    return emitted.insert(name).second;
  };

  for (const auto& [name, c] : counters_) {
    const std::string p = prom_sanitize(name) + "_total";
    if (!claim(p)) continue;
    out += "# HELP " + p + " Counter " + name + "\n";
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_sanitize(name);
    if (!claim(p)) continue;
    out += "# HELP " + p + " Gauge " + name + "\n";
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + prom_double(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_sanitize(name);
    if (!claim(p) || !claim(p + "_bucket") || !claim(p + "_sum") ||
        !claim(p + "_count")) {
      continue;
    }
    out += "# HELP " + p + " Histogram " + name + "\n";
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cum = 0;
    const auto& bounds = h->bounds();
    const auto& counts = h->counts();
    for (std::size_t i = 0; i < bounds.size() && i < counts.size(); ++i) {
      cum += counts[i];
      out += p + "_bucket{le=\"" + prom_double(bounds[i]) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += p + "_sum " + prom_double(h->sum()) + "\n";
    out += p + "_count " + std::to_string(h->count()) + "\n";
  }
  for (const auto& [name, span] : timings_) {
    const std::string p = prom_sanitize(name);
    const std::string secs = p + "_seconds_total";
    const std::string calls = p + "_calls_total";
    if (!claim(secs) || !claim(calls)) continue;
    out += "# HELP " + secs + " Accumulated span seconds " + name + "\n";
    out += "# TYPE " + secs + " counter\n";
    out += secs + " " + prom_double(span.seconds) + "\n";
    out += "# HELP " + calls + " Span count " + name + "\n";
    out += "# TYPE " + calls + " counter\n";
    out += calls + " " + std::to_string(span.count) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exposition validator (promtool text-format rules, in-tree)
// ---------------------------------------------------------------------------

namespace {

struct PromGroup {
  bool has_type = false;
  bool has_help = false;
  std::string type;
  bool saw_samples = false;
  bool closed = false;  // another metric's samples appeared after ours
  std::set<std::string> series;
  // Histogram bookkeeping (appearance order).
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  bool has_inf = false;
  double inf_count = 0;
  bool has_count = false;
  double count_value = 0;
};

bool valid_metric_name(const std::string& s) {
  if (s.empty() || !prom_name_start(s[0])) return false;
  for (char c : s) {
    if (!prom_name_char(c)) return false;
  }
  return true;
}

bool parse_prom_float(const std::string& s, double* out) {
  if (s == "+Inf" || s == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

bool validate_prometheus_text(const std::string& text, std::string* error) {
  std::map<std::string, PromGroup> groups;
  std::string current;  // metric family whose samples are in flight
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;

  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };

  // The family a sample name belongs to: histogram series use the declared
  // base name so foo_bucket/foo_sum/foo_count group under foo.
  const auto family_of = [&](const std::string& name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t n = std::strlen(suffix);
      if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
        const std::string base = name.substr(0, name.size() - n);
        const auto it = groups.find(base);
        if (it != groups.end() && it->second.type == "histogram") return base;
      }
    }
    return name;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Leading whitespace is not allowed on sample lines by the exposition
    // format; tolerate fully blank lines only.
    if (line.empty()) continue;

    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, word;
      ls >> hash >> word;
      if (word != "TYPE" && word != "HELP") continue;  // plain comment
      std::string name;
      ls >> name;
      if (!valid_metric_name(name)) {
        return fail("invalid metric name in # " + word + ": '" + name + "'");
      }
      PromGroup& g = groups[name];
      if (word == "TYPE") {
        std::string type;
        ls >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail("unknown TYPE '" + type + "' for " + name);
        }
        if (g.has_type) return fail("second TYPE line for " + name);
        if (g.saw_samples) return fail("TYPE after samples of " + name);
        g.has_type = true;
        g.type = type;
      } else {
        if (g.has_help) return fail("second HELP line for " + name);
        g.has_help = true;
      }
      continue;
    }

    // Sample line:  name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && prom_name_char(line[i])) ++i;
    const std::string name = line.substr(0, i);
    if (!valid_metric_name(name)) return fail("invalid sample metric name");

    std::string labels_canonical;
    double le = 0;
    bool has_le = false;
    if (i < line.size() && line[i] == '{') {
      ++i;
      std::vector<std::pair<std::string, std::string>> labels;
      while (i < line.size() && line[i] != '}') {
        std::size_t j = i;
        while (j < line.size() && prom_label_char(line[j])) ++j;
        const std::string lname = line.substr(i, j - i);
        if (lname.empty() || !prom_label_start(lname[0])) {
          return fail("invalid label name");
        }
        if (j >= line.size() || line[j] != '=') return fail("expected '='");
        ++j;
        if (j >= line.size() || line[j] != '"') {
          return fail("label value must be quoted");
        }
        ++j;
        std::string val;
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\') {
            ++j;
            if (j >= line.size() ||
                (line[j] != '\\' && line[j] != '"' && line[j] != 'n')) {
              return fail("invalid escape in label value");
            }
          }
          val.push_back(line[j]);
          ++j;
        }
        if (j >= line.size()) return fail("unterminated label value");
        ++j;  // closing quote
        labels.emplace_back(lname, val);
        if (j < line.size() && line[j] == ',') ++j;
        i = j;
      }
      if (i >= line.size()) return fail("unterminated label set");
      ++i;  // '}'
      std::sort(labels.begin(), labels.end());
      for (std::size_t k = 0; k + 1 < labels.size(); ++k) {
        if (labels[k].first == labels[k + 1].first) {
          return fail("duplicate label '" + labels[k].first + "'");
        }
      }
      for (const auto& [k, v] : labels) {
        labels_canonical += k + "=" + v + ";";
        if (k == "le") {
          if (!parse_prom_float(v, &le)) return fail("unparsable le value");
          has_le = true;
        }
      }
    }

    if (i >= line.size() || line[i] != ' ') {
      return fail("expected space before value");
    }
    std::istringstream rest(line.substr(i + 1));
    std::string value_str, ts_str, extra;
    rest >> value_str;
    double value = 0;
    if (!parse_prom_float(value_str, &value)) {
      return fail("unparsable sample value '" + value_str + "'");
    }
    if (rest >> ts_str) {
      double ts = 0;
      char* end = nullptr;
      ts = std::strtod(ts_str.c_str(), &end);
      (void)ts;
      if (end != ts_str.c_str() + ts_str.size()) {
        return fail("unparsable timestamp");
      }
      if (rest >> extra) return fail("trailing data after timestamp");
    }

    const std::string fam = family_of(name);
    if (fam != current) {
      if (groups.count(fam) != 0 && groups[fam].closed) {
        return fail("samples of " + fam + " are not contiguous");
      }
      if (!current.empty()) groups[current].closed = true;
      current = fam;
    }
    PromGroup& g = groups[fam];
    g.saw_samples = true;
    if (!g.series.insert(name + "{" + labels_canonical + "}").second) {
      return fail("duplicate sample " + name + "{" + labels_canonical + "}");
    }

    if (g.type == "histogram") {
      if (name == fam + "_bucket") {
        if (!has_le) return fail("histogram bucket without le label");
        if (std::isinf(le) && le > 0) {
          g.has_inf = true;
          g.inf_count = value;
        }
        if (!g.buckets.empty()) {
          if (le <= g.buckets.back().first) {
            return fail("histogram buckets of " + fam +
                        " not in ascending le order");
          }
          if (value < g.buckets.back().second) {
            return fail("histogram bucket counts of " + fam +
                        " not cumulative");
          }
        }
        g.buckets.emplace_back(le, value);
      } else if (name == fam + "_count") {
        g.has_count = true;
        g.count_value = value;
      }
    }
  }

  lineno = 0;  // final checks are whole-document, not line-anchored
  for (const auto& [name, g] : groups) {
    if (g.type == "histogram" && !g.buckets.empty()) {
      if (!g.has_inf) {
        return fail("histogram " + name + " lacks a le=\"+Inf\" bucket");
      }
      if (g.has_count && g.inf_count != g.count_value) {
        return fail("histogram " + name + ": +Inf bucket (" +
                    prom_double(g.inf_count) + ") != _count (" +
                    prom_double(g.count_value) + ")");
      }
    }
  }
  return true;
}

}  // namespace hyperpath::obs
