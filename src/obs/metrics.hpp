// Process-wide metrics: named counters, gauges, fixed-bucket histograms and
// wall-clock timer spans, all exportable as one JSON document.
//
// Two layers:
//
//   * Plain value types (FixedHistogram, UtilizationProfile) with no
//     locking — embedded in results (SimResult) and registry entries alike.
//   * MetricsRegistry — a process-wide named registry.  Creation of entries
//     is mutex-protected; Counter/Gauge updates are atomic and can be hit
//     from any thread.  Histogram observation is single-writer (the
//     simulators deliver from one thread).
//
// ScopedTimer measures a wall-clock span (RAII) and accumulates it into the
// registry's timings section, so benches can bracket "construct" vs
// "simulate" phases and export both.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hyperpath::obs {

class JsonWriter;

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over fixed, caller-supplied bucket upper bounds (ascending).
/// A sample lands in the first bucket whose bound is >= the sample; samples
/// beyond the last bound land in an implicit overflow bucket.
class FixedHistogram {
 public:
  FixedHistogram() = default;
  explicit FixedHistogram(std::vector<double> bounds);

  /// Bounds 1, 2, 4, ..., 2^(buckets-1): the right shape for step latencies
  /// and queue depths, which the paper's constructions keep near-constant
  /// but adversarial workloads spread over orders of magnitude.
  static FixedHistogram exponential(int buckets = 20);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  double max() const { return max_; }

  /// Quantile estimate by linear interpolation within buckets: bucket i
  /// covers (lower, bounds()[i]] with lower = 0 for the first bucket, and
  /// ranks spread uniformly inside it.  Exact at bucket edges — a rank
  /// landing on a bucket's cumulative count returns that bucket's upper
  /// bound — and the overflow bucket interpolates up to max(), so
  /// quantile(1) == max() whenever the largest sample overflowed the
  /// bounds.  The result never exceeds max().  `q` is clamped to [0, 1];
  /// an empty histogram yields 0.
  double quantile(double q) const;

  /// Folds `other` into this histogram.  Requires identical bounds (an
  /// empty histogram adopts the other's shape), so per-worker histograms
  /// built from the same template combine deterministically when merged in
  /// worker order — the telemetry reducer's contract.  Equivalent to
  /// observing both sample multisets into one histogram: counts, count,
  /// sum and max all add/maximize exactly.
  void merge(const FixedHistogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts().size() == bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  void write_json(JsonWriter& w) const;

  friend bool operator==(const FixedHistogram&,
                         const FixedHistogram&) = default;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

/// Memory-bounded per-step utilization record: an exact running mean plus a
/// downsampled profile of at most kMaxSlots slots.  Each slot is the exact
/// mean of `granularity()` consecutive steps; when a run outgrows the slot
/// budget adjacent slots are merged and the granularity doubles, so memory
/// stays O(kMaxSlots) no matter how many steps the simulation runs.
class UtilizationProfile {
 public:
  static constexpr std::size_t kMaxSlots = 512;

  void add(double u);

  /// Exact mean over every recorded step.
  double average() const { return steps_ ? sum_ / steps_ : 0.0; }

  std::size_t steps() const { return steps_; }
  bool empty() const { return steps_ == 0; }

  /// Steps per slot (a power of two).
  std::uint64_t granularity() const { return granularity_; }

  /// Per-slot means, oldest first.  For runs of <= kMaxSlots steps this is
  /// exactly the per-step utilization sequence.
  std::vector<double> profile() const;

  void write_json(JsonWriter& w) const;

  friend bool operator==(const UtilizationProfile&,
                         const UtilizationProfile&) = default;

 private:
  struct Slot {
    double sum = 0;
    std::uint32_t count = 0;
    friend bool operator==(const Slot&, const Slot&) = default;
  };

  std::vector<Slot> slots_;
  std::uint64_t granularity_ = 1;
  double sum_ = 0;
  std::size_t steps_ = 0;
};

/// Named registry of counters, gauges, histograms and timer spans.  Entry
/// addresses are stable for the registry's lifetime, so call sites may
/// cache the reference returned by counter()/gauge()/histogram().
class MetricsRegistry {
 public:
  /// The process-wide registry used by ScopedTimer and the bench harness.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Value of `name` if that counter exists, else 0 — without creating an
  /// entry.  The telemetry sampler reads through this so sampling never
  /// changes what a later metrics export contains.
  std::uint64_t counter_value(const std::string& name) const;
  /// Creates with the given bounds on first use; later calls ignore
  /// `bounds` and return the existing histogram.
  FixedHistogram& histogram(const std::string& name,
                            std::vector<double> bounds);

  /// Accumulates one wall-clock span measurement under `name`.
  void record_span(const std::string& name, double seconds);

  /// Snapshot of every recorded timer span.
  struct SpanView {
    std::string name;
    double seconds = 0;
    std::uint64_t count = 0;
  };
  std::vector<SpanView> timings() const;

  /// One JSON document: {"counters":{...},"gauges":{...},
  /// "histograms":{...},"timings":{...}}.
  std::string to_json() const;

  /// Emits the same document into an open writer (as an object value).
  void write_json(JsonWriter& w) const;

  /// The whole registry in Prometheus text exposition format (the /metrics
  /// payload hyperpathd will serve): counters as `hyperpath_<name>_total`,
  /// gauges verbatim, histograms as cumulative `_bucket{le=...}` series
  /// with `_sum`/`_count`, timing spans as `_seconds_total`/`_calls_total`
  /// counter pairs.  Names are sanitized to the Prometheus charset;
  /// defined in telemetry.cpp next to validate_prometheus_text.
  std::string expose_prometheus() const;

  /// Drops every entry (tests and repeated bench runs).
  void reset();

 private:
  struct Span {
    double seconds = 0;
    std::uint64_t count = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_;
  std::map<std::string, Span> timings_;
};

/// RAII wall-clock span: records elapsed seconds into the registry's
/// timings on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name,
                       MetricsRegistry* registry = &MetricsRegistry::global())
      : name_(std::move(name)),
        registry_(registry),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_->record_span(
        name_, std::chrono::duration<double>(elapsed).count());
  }

 private:
  std::string name_;
  MetricsRegistry* registry_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hyperpath::obs
