#include "obs/run_metadata.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <thread>

#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

// Configure-time provenance, injected by src/obs/CMakeLists.txt onto this
// file only (so a sha change rebuilds one translation unit).
#ifndef HP_GIT_SHA
#define HP_GIT_SHA "unknown"
#endif
#ifndef HP_COMPILER
#define HP_COMPILER "unknown"
#endif
#ifndef HP_CXX_FLAGS
#define HP_CXX_FLAGS ""
#endif
#ifndef HP_BUILD_TYPE
#define HP_BUILD_TYPE "unknown"
#endif

namespace hyperpath::obs {

namespace {
std::atomic<int> g_effective_threads{0};
}  // namespace

void RunMetadata::set_effective_threads(int threads) {
  g_effective_threads.store(threads, std::memory_order_relaxed);
}

RunMetadata RunMetadata::collect() {
  RunMetadata m;
  m.git_sha = HP_GIT_SHA;
  m.compiler = HP_COMPILER;
  m.flags = HP_CXX_FLAGS;
  m.build_type = HP_BUILD_TYPE;
  m.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  m.effective_threads = g_effective_threads.load(std::memory_order_relaxed);

#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {};
  if (gethostname(host, sizeof host - 1) == 0) m.hostname = host;
#endif
  if (m.hostname.empty()) m.hostname = "unknown";

  const std::time_t now = std::time(nullptr);
  std::tm utc = {};
#if defined(__unix__) || defined(__APPLE__)
  gmtime_r(&now, &utc);
#else
  utc = *std::gmtime(&now);
#endif
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
  m.timestamp = stamp;
  return m;
}

void RunMetadata::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("git_sha", git_sha);
  w.field("compiler", compiler);
  w.field("flags", flags);
  w.field("build_type", build_type);
  w.field("hostname", hostname);
  w.field("timestamp", timestamp);
  w.field("hardware_threads", hardware_threads);
  w.field("effective_threads", effective_threads);
  w.end_object();
}

}  // namespace hyperpath::obs
