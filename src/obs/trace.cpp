#include "obs/trace.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "obs/json.hpp"

namespace hyperpath::obs {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRelease: return "release";
    case TraceEventKind::kTransmit: return "transmit";
    case TraceEventKind::kStall: return "stall";
    case TraceEventKind::kQueueDepth: return "queue_depth";
    case TraceEventKind::kArrive: return "arrive";
    case TraceEventKind::kDrop: return "drop";
    case TraceEventKind::kWormStart: return "worm_start";
    case TraceEventKind::kWormDone: return "worm_done";
    case TraceEventKind::kFault: return "fault";
    case TraceEventKind::kRepair: return "repair";
    case TraceEventKind::kRetransmit: return "retransmit";
  }
  return "unknown";
}

bool trace_event_kind_from_string(std::string_view name,
                                  TraceEventKind* out) {
  for (std::size_t i = 0; i < kNumTraceEventKinds; ++i) {
    const auto kind = static_cast<TraceEventKind>(i);
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void RingBufferSink::on_events(std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    size_ = std::min(size_ + 1, ring_.size());
    ++total_;
    ++by_kind_[static_cast<std::size_t>(e.kind)];
  }
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : path_(path), file_(std::fopen(path.c_str(), "w")) {
  HP_CHECK(file_ != nullptr, "cannot open trace file " + path);
}

JsonlFileSink::~JsonlFileSink() {
  if (file_) std::fclose(file_);
}

void JsonlFileSink::on_events(std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    std::fprintf(file_, "{\"step\":%d,\"kind\":\"%s\"", e.step,
                 to_string(e.kind));
    if (e.packet != TraceEvent::kNoPacket) {
      std::fprintf(file_, ",\"packet\":%u", e.packet);
    }
    if (e.link != TraceEvent::kNoLink) {
      std::fprintf(file_, ",\"link\":%llu",
                   static_cast<unsigned long long>(e.link));
    }
    std::fprintf(file_, ",\"value\":%llu}\n",
                 static_cast<unsigned long long>(e.value));
    ++total_;
  }
}

void JsonlFileSink::write_meta(int dims, std::uint64_t packets) {
  HP_CHECK(total_ == 0, "trace meta must precede every event");
  std::fprintf(file_, "{\"kind\":\"meta\",\"dims\":%d,\"packets\":%llu}\n",
               dims, static_cast<unsigned long long>(packets));
}

void JsonlFileSink::flush() { std::fflush(file_); }

void StepTrace::end_step() {
  if (!enabled() || buf_.empty()) return;
  std::sort(buf_.begin(), buf_.end());
  sink_->on_events(buf_);
  buf_.clear();
}

void StepTrace::finish() {
  end_step();
  if (enabled()) sink_->flush();
}

}  // namespace hyperpath::obs
