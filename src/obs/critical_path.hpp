// Causal critical-path extraction and congestion analysis over assembled
// flight records.
//
// The store-and-forward model admits an exact blocking explanation.  Link
// arbitration is work-conserving — a nonempty queue transmits exactly one
// packet every step — so a packet that waited on link L from step e until
// its transmit at step t did so only because L was serving someone else at
// every step of [e, t); the packet that crossed L at step t-1 is its
// *proximate blocker*.  Walking that relation backwards from the run's
// last terminal event visits one transmission per step: the
// makespan-determining causal chain.  Each walk iteration moves exactly
// one step into the past (a blocked hop jumps to the blocker's transmit at
// t-1; an unblocked hop steps to the packet's own previous transmit), so
// the chain's span equals the makespan whenever it roots at a step-0
// release — the chain *is* the reason the run took as long as it did.
//
// analyze_flights() also cross-checks the records against the redundant
// depth information in the stream: the queue depth reconstructed from hop
// spans at every transmit must equal the depth the sweep recorded in that
// kTransmit's value, and each link's reconstructed peak must equal its
// last kQueueDepth high-water mark.  A trace that passes has provably
// consistent per-link timelines.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace hyperpath::obs {

/// Per-link transmit timeline: resolves which flight crossed `link` at
/// `step` — the proximate blocker of anyone waiting on the link then.
class TransmitIndex {
 public:
  static constexpr std::size_t npos = FlightRecorder::npos;

  struct Ref {
    std::size_t flight = npos;  // index into FlightRecorder::records()
    std::uint32_t hop = 0;
    bool valid() const { return flight != npos; }
  };

  explicit TransmitIndex(const FlightRecorder& rec);

  Ref at(std::uint64_t link, std::int32_t step) const;

 private:
  struct Entry {
    std::int32_t step;
    std::uint32_t hop;
    std::size_t flight;
  };
  // Indexed by dense link id; each timeline sorted by step (unique: one
  // transmit per link per step).
  std::vector<std::vector<Entry>> by_link_;
};

/// One node of the causal chain: `flight` transmitted (or was dropped) on
/// `link` at `step`.
struct ChainNode {
  std::size_t flight = FlightRecorder::npos;
  std::uint32_t packet = TraceEvent::kNoPacket;
  std::uint32_t generation = 0;
  std::uint64_t link = TraceEvent::kNoLink;
  std::int32_t step = 0;
  /// True when the *next* chain node (one step later) waited behind this
  /// transmission — i.e. this node was reached by a blocking jump.
  bool blocks_successor = false;
};

struct CriticalPath {
  /// Chronological (earliest first); empty for worm traces or empty runs.
  std::vector<ChainNode> nodes;
  std::int32_t start_step = 0;  // release step of the chain's origin
  std::int32_t end_step = -1;   // final terminal step
  /// Steps the chain spans; equals the makespan when the origin released
  /// at step 0 (phase workloads always do).
  int length() const {
    return nodes.empty() ? 0 : end_step - start_step + 1;
  }
  /// Blocking jumps: how many times the chain changed packets because a
  /// queue, not the packet's own progress, set the pace.
  int handoffs = 0;
};

/// Walks the blocking graph backwards from the terminal event of `flight`
/// (records()[terminal]).  `index` must be built over the same recorder.
CriticalPath extract_critical_path(const FlightRecorder& rec,
                                   const TransmitIndex& index,
                                   std::size_t terminal);

/// Everything trace_query and the benches report about one trace.
struct TraceAnalysis {
  int makespan = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t releases = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t faults = 0;
  std::uint64_t repairs = 0;

  /// Measured edge congestion: max transmissions over any directed link.
  std::uint64_t peak_congestion = 0;
  std::uint64_t peak_congestion_link = TraceEvent::kNoLink;
  /// Links that transmitted at least once.
  std::uint64_t links_used = 0;
  std::uint32_t max_queue = 0;

  FixedHistogram queue_wait;  // per completed hop, in steps
  FixedHistogram total_wait;  // per flight, total queued steps
  FixedHistogram latency;     // per delivered flight (kArrive values)

  CriticalPath critical_path;

  /// Transmits whose reconstructed queue depth disagrees with the recorded
  /// sweep depth, plus links whose reconstructed peak misses the recorded
  /// high-water mark.  0 for a complete, well-formed trace.
  std::uint64_t depth_mismatches = 0;
  /// Stream-level violations the recorder counted during assembly.
  std::uint64_t inconsistencies = 0;
};

/// Runs the full analysis: aggregates, per-hop histograms, the critical
/// path from the last terminal event, and the depth cross-check.  Critical
/// path and depth validation are skipped for wormhole traces (their hop
/// spans carry no queue semantics).
TraceAnalysis analyze_flights(const FlightRecorder& rec);

/// Index into records() of the flight whose terminal event decides the
/// makespan: latest end_step, ties broken by smallest (packet, generation).
/// npos when no flight terminated.
std::size_t makespan_terminal(const FlightRecorder& rec);

}  // namespace hyperpath::obs
