// Minimal streaming JSON writer used by the observability layer.
//
// Produces compact, valid JSON with correct string escaping and no external
// dependencies.  The writer is deliberately tiny: objects/arrays are opened
// and closed explicitly, keys are emitted with key(), and scalar values with
// value().  Comma placement is handled automatically.  Misuse (e.g. a value
// where a key is required) is a programming error and trips HP_CHECK.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hyperpath::obs {

/// Escapes a string for inclusion inside JSON quotes (adds no quotes).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object and followed by a value
  /// or a begin_object()/begin_array().
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Appends an already-encoded JSON fragment as one value (caller
  /// guarantees validity).  For callers that pre-encode heterogenous
  /// scalars.
  JsonWriter& raw_value(std::string_view json);

  /// Shorthand for key(k) followed by value(v).
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The finished document.  All scopes must be closed.
  const std::string& str() const;

 private:
  void comma();

  std::string out_;
  // One entry per open scope: true = object (expects keys), false = array.
  std::vector<bool> scopes_;
  // Whether the current scope already holds at least one element.
  std::vector<bool> nonempty_;
  bool after_key_ = false;
};

}  // namespace hyperpath::obs
