#include "obs/regress.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "obs/json_parse.hpp"

namespace hyperpath::obs {

namespace {

constexpr double kEpsilon = 1e-12;

double rel_change(double baseline, double current) {
  return (current - baseline) / std::max(std::abs(baseline), kEpsilon);
}

/// name → report object, accepting a suite or a bare report.
JsonValue::Object normalize(const JsonValue& doc) {
  HP_CHECK(doc.is_object(), "bench document is not a JSON object");
  if (const JsonValue* reports = doc.find("reports")) {
    HP_CHECK(reports->is_object(), "\"reports\" is not a JSON object");
    return reports->as_object();
  }
  const JsonValue* name = doc.find("experiment");
  HP_CHECK(name && name->is_string(),
           "document has neither \"reports\" nor \"experiment\"");
  return {{name->as_string(), doc}};
}

const JsonValue* find_report(const JsonValue::Object& reports,
                             const std::string& name) {
  for (const auto& [k, v] : reports) {
    if (k == name) return &v;
  }
  return nullptr;
}

void compare_metrics(const std::string& report, const JsonValue* cur,
                     const JsonValue* base, double tol,
                     std::vector<Delta>& out) {
  if (!base || !base->is_object()) return;
  for (const auto& [key, bval] : base->as_object()) {
    if (!bval.is_number()) continue;
    const JsonValue* cval = cur ? cur->find(key) : nullptr;
    if (!cval || !cval->is_number()) {
      out.push_back({report, key, false, bval.as_number(), 0, 0,
                     DeltaKind::kMissing});
      continue;
    }
    const double b = bval.as_number();
    const double c = cval->as_number();
    const double rel = rel_change(b, c);
    out.push_back({report, key, false, b, c, rel,
                   std::abs(rel) > tol ? DeltaKind::kRegression
                                       : DeltaKind::kOk});
  }
  if (!cur || !cur->is_object()) return;
  for (const auto& [key, cval] : cur->as_object()) {
    if (!cval.is_number() || base->find(key)) continue;
    out.push_back(
        {report, key, false, 0, cval.as_number(), 0, DeltaKind::kNew});
  }
}

double timing_seconds(const JsonValue& t) {
  const JsonValue* s = t.find("seconds");
  return s && s->is_number() ? s->as_number() : 0;
}

void compare_timings(const std::string& report, const JsonValue* cur,
                     const JsonValue* base, double tol,
                     std::vector<Delta>& out) {
  if (tol < 0 || !base || !base->is_object()) return;
  for (const auto& [key, bval] : base->as_object()) {
    if (!bval.is_object()) continue;
    const double b = timing_seconds(bval);
    const JsonValue* cval = cur ? cur->find(key) : nullptr;
    if (!cval || !cval->is_object()) {
      out.push_back({report, key, true, b, 0, 0, DeltaKind::kMissing});
      continue;
    }
    const double c = timing_seconds(*cval);
    const double rel = rel_change(b, c);
    DeltaKind kind = DeltaKind::kOk;
    if (rel > tol) kind = DeltaKind::kRegression;       // slower
    else if (rel < -tol) kind = DeltaKind::kImprovement;  // faster
    out.push_back({report, key, true, b, c, rel, kind});
  }
}

}  // namespace

const char* to_string(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kOk: return "ok";
    case DeltaKind::kRegression: return "REGRESSION";
    case DeltaKind::kImprovement: return "improvement";
    case DeltaKind::kMissing: return "missing";
    case DeltaKind::kNew: return "new";
  }
  return "?";
}

std::size_t CompareResult::regressions() const {
  std::size_t n = 0;
  for (const Delta& d : deltas) n += (d.kind == DeltaKind::kRegression);
  return n;
}

std::size_t CompareResult::compared() const {
  std::size_t n = 0;
  for (const Delta& d : deltas) {
    n += (d.kind == DeltaKind::kOk || d.kind == DeltaKind::kRegression ||
          d.kind == DeltaKind::kImprovement);
  }
  return n;
}

CompareResult compare_suites(const JsonValue& current,
                             const JsonValue& baseline,
                             const CompareOptions& options) {
  const JsonValue::Object cur = normalize(current);
  const JsonValue::Object base = normalize(baseline);

  CompareResult result;
  for (const auto& [name, breport] : base) {
    const JsonValue* creport = find_report(cur, name);
    if (!creport) {
      result.deltas.push_back(
          {name, "", false, 0, 0, 0, DeltaKind::kMissing});
      continue;
    }
    compare_metrics(name, creport->find("metrics"), breport.find("metrics"),
                    options.metric_tol, result.deltas);
    compare_timings(name, creport->find("timings"), breport.find("timings"),
                    options.timing_tol, result.deltas);
  }
  for (const auto& member : cur) {
    if (!find_report(base, member.first)) {
      result.deltas.push_back(
          {member.first, "", false, 0, 0, 0, DeltaKind::kNew});
    }
  }
  return result;
}

}  // namespace hyperpath::obs
