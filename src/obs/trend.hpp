// Cross-run performance ledger and drift detection: the analysis core of
// tools/bench_trend.
//
// bench_runner --history appends one LedgerEntry line per suite run to
// bench/history/BENCH_HISTORY.jsonl: run provenance (git sha, host,
// compiler, flags) plus every report metric flattened to
// "<bench>.<metric>" and every timing span to "<bench>.<span>" seconds.
// analyze_trend reads the last N entries that share a comparison key —
// host | compiler | flags | effective_threads | telemetry_period_steps;
// series recorded under different thread counts or sampling rates are
// never compared — and looks for step changes:
//
//   * metrics  — deterministic outputs; median-based step detection with
//     tolerance 0 by default, so any persistent change is a step (a noisy
//     single-run blip moves the split-medians much less than a real step).
//   * timings  — wall-clock; same detector with a generous default
//     tolerance, reported but never gating unless --gate-timings.
//   * bounds   — any "<base>_floor"/"<base>_ceiling" metric pair must
//     bracket the measured "<base>" (or "<base>" with "congestion" →
//     "peak_congestion", matching the congestion benches) in the newest
//     run, and any "*_in_bounds" metric must equal 1.  This keeps the
//     analytic floor/ceiling argument attached to the trend gate.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hyperpath::obs {

class JsonValue;
class JsonWriter;

/// One suite run in the ledger (one JSONL line).
struct LedgerEntry {
  std::string timestamp;
  std::string git_sha;
  std::string hostname;
  std::string compiler;
  std::string flags;
  std::string build_type;
  int effective_threads = 0;
  /// Telemetry sampling period the suite ran with; 0 = telemetry off.
  int telemetry_period_steps = 0;
  std::map<std::string, double> metrics;  // "<bench>.<metric>" -> value
  std::map<std::string, double> timings;  // "<bench>.<span>" -> seconds
};

/// Series sampled under different configurations are incomparable; this is
/// the grouping key ("host|compiler|flags|threads=N|period=P").
std::string comparison_key(const LedgerEntry& e);

/// Parses one ledger line; nullopt (with `error`) on shape mismatch.
std::optional<LedgerEntry> parse_ledger_entry(const JsonValue& doc,
                                              std::string* error = nullptr);

/// Emits `e` as one object value into an open writer.
void write_ledger_entry(JsonWriter& w, const LedgerEntry& e);

/// Flattens a BENCH_SUITE.json document (object with "reports") into a
/// LedgerEntry: provenance from "meta", reports.<name>.metrics.* (numbers
/// only) and reports.<name>.timings.*.seconds.  `telemetry_period_steps`
/// is stamped by the caller (the suite itself does not know it).
LedgerEntry flatten_suite(const JsonValue& suite);

struct TrendOptions {
  /// Newest runs (sharing the newest entry's comparison key) to analyze.
  std::size_t window = 8;
  /// Relative step tolerance for metrics (0 = any persistent change).
  double metric_tol = 0.0;
  /// Relative step tolerance for timings.
  double timing_tol = 0.30;
};

/// A detected step change in one series.
struct TrendFinding {
  std::string name;
  bool is_timing = false;
  std::size_t split = 0;   // first analyzed-run index after the step
  double median_before = 0;
  double median_after = 0;
  double rel_change = 0;   // (after - before) / max(|before|, eps)
};

struct TrendReport {
  std::string key;          // comparison key analyzed
  std::size_t runs = 0;     // entries analyzed (<= window)
  std::size_t series = 0;   // metric series examined
  std::vector<TrendFinding> metric_steps;
  std::vector<TrendFinding> timing_steps;
  std::vector<std::string> bounds_violations;
  /// Comparison keys present in the ledger but excluded from this
  /// analysis (different host/threads/sampling rate).
  std::vector<std::string> skipped_keys;

  /// The gate: no metric steps and no bounds violations.  Timing steps
  /// are informational.
  bool stable() const {
    return metric_steps.empty() && bounds_violations.empty();
  }
};

/// Analyzes the ledger (entries in append order; the newest entry picks
/// the comparison key).  Metrics absent from some runs of the window are
/// skipped — suites grow, and a missing series is not a step.
TrendReport analyze_trend(const std::vector<LedgerEntry>& entries,
                          const TrendOptions& options = {});

/// Largest median step in `values` (chronological): max over split points
/// k of |median(values[k..]) - median(values[..k])| relative to the
/// earlier median.  Returns nullopt for fewer than 2 values or when no
/// split exceeds `tol`.
std::optional<TrendFinding> detect_step(const std::string& name,
                                        const std::vector<double>& values,
                                        double tol);

}  // namespace hyperpath::obs
