// Build/run provenance stamped into every bench::Report and BENCH_SUITE.
//
// A perf number without its provenance is unusable for regression tracking:
// the same bench on a different commit, compiler or machine is a different
// experiment.  RunMetadata carries what configure-time CMake knows (git
// sha, compiler id/version, flags, build type — compiled in via HP_GIT_SHA
// and friends on this translation unit) plus what only the run knows
// (hostname, UTC timestamp, hardware thread count).
#pragma once

#include <string>

namespace hyperpath::obs {

class JsonWriter;

struct RunMetadata {
  std::string git_sha;      // "unknown" outside a git checkout
  std::string compiler;     // e.g. "GNU 12.2.0"
  std::string flags;        // CXX flags + build type
  std::string build_type;   // e.g. "RelWithDebInfo"
  std::string hostname;
  std::string timestamp;    // UTC, ISO 8601
  int hardware_threads = 0;
  /// Thread count the par::TaskPool actually runs with (HYPERPATH_THREADS /
  /// --threads resolved), 0 until any pool exists.  A parallel measurement
  /// without its thread count is as unusable as one without its sha.
  int effective_threads = 0;

  /// Compile-time fields + live hostname/timestamp.
  static RunMetadata collect();

  /// Records the resolved pool size for collect() to pick up.  Called by
  /// par::TaskPool when the global pool is created or resized; obs stays
  /// dependency-free of par.
  static void set_effective_threads(int threads);

  /// {"git_sha":...,"compiler":...,...} as one object value.
  void write_json(JsonWriter& w) const;
};

}  // namespace hyperpath::obs
