// Benchmark regression diffing: the comparison core of tools/bench_compare.
//
// Compares a current BENCH_SUITE.json (or a single BENCH_<name>.json
// report) against a committed baseline, metric by metric:
//
//   * reports.<name>.metrics.*          — deterministic quantities
//     (makespans, widths, congestion).  Any relative deviation beyond
//     `metric_tol` (default 0: exact) in either direction is a regression —
//     a changed deterministic metric is a behavioral change.
//   * reports.<name>.timings.*.seconds  — wall-clock spans, noisy by
//     nature.  Skipped unless `timing_tol` >= 0; then only slower-than
//     baseline × (1 + tol) regresses, faster is an improvement.
//
// Reports present on one side only are surfaced as kMissing/kNew, never as
// regressions (suites grow; baselines trail).  Pure data transformation —
// printing and exit codes stay in the tool.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hyperpath::obs {

class JsonValue;

enum class DeltaKind {
  kOk,           // within tolerance
  kRegression,   // beyond tolerance (the gating kind)
  kImprovement,  // timing faster than baseline beyond tolerance
  kMissing,      // in baseline, absent from current
  kNew,          // in current, absent from baseline
};

const char* to_string(DeltaKind kind);

struct Delta {
  std::string report;    // experiment name ("theorem1")
  std::string key;       // metric or timing name ("worst_phase_cost")
  bool is_timing = false;
  double baseline = 0;
  double current = 0;
  /// (current - baseline) / max(|baseline|, epsilon); 0 for one-sided.
  double rel_change = 0;
  DeltaKind kind = DeltaKind::kOk;
};

struct CompareOptions {
  /// Relative tolerance for metrics; 0 = exact match required.
  double metric_tol = 0.0;
  /// Relative tolerance for timings; negative = do not compare timings.
  double timing_tol = -1.0;
};

struct CompareResult {
  std::vector<Delta> deltas;

  std::size_t regressions() const;
  std::size_t compared() const;  // kOk + kRegression + kImprovement
  bool pass() const { return regressions() == 0; }
};

/// `current` and `baseline` each accept either a suite document (object
/// with "reports") or a bare report (object with "experiment"), which is
/// treated as a one-report suite.  Throws hyperpath::Error on any other
/// shape.
CompareResult compare_suites(const JsonValue& current,
                             const JsonValue& baseline,
                             const CompareOptions& options = {});

}  // namespace hyperpath::obs
