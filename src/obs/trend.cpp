#include "obs/trend.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "base/error.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace hyperpath::obs {

namespace {

constexpr double kEpsilon = 1e-12;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

std::string string_field(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

int int_field(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  return v != nullptr && v->is_number() ? static_cast<int>(v->as_number())
                                        : 0;
}

void read_number_map(const JsonValue* obj, std::map<std::string, double>* out) {
  if (obj == nullptr || !obj->is_object()) return;
  for (const auto& [key, val] : obj->as_object()) {
    if (val.is_number()) (*out)[key] = val.as_number();
  }
}

void write_number_map(JsonWriter& w, const std::map<std::string, double>& m) {
  w.begin_object();
  for (const auto& [key, val] : m) w.field(key, val);
  w.end_object();
}

}  // namespace

std::string comparison_key(const LedgerEntry& e) {
  return e.hostname + "|" + e.compiler + "|" + e.flags +
         "|threads=" + std::to_string(e.effective_threads) +
         "|period=" + std::to_string(e.telemetry_period_steps);
}

std::optional<LedgerEntry> parse_ledger_entry(const JsonValue& doc,
                                              std::string* error) {
  if (!doc.is_object()) {
    if (error != nullptr) *error = "ledger entry is not a JSON object";
    return std::nullopt;
  }
  const std::string kind = string_field(doc, "kind");
  if (!kind.empty() && kind != "bench_run") {
    if (error != nullptr) *error = "unexpected ledger kind '" + kind + "'";
    return std::nullopt;
  }
  LedgerEntry e;
  e.timestamp = string_field(doc, "timestamp");
  e.git_sha = string_field(doc, "git_sha");
  e.hostname = string_field(doc, "hostname");
  e.compiler = string_field(doc, "compiler");
  e.flags = string_field(doc, "flags");
  e.build_type = string_field(doc, "build_type");
  e.effective_threads = int_field(doc, "effective_threads");
  e.telemetry_period_steps = int_field(doc, "telemetry_period_steps");
  read_number_map(doc.find("metrics"), &e.metrics);
  read_number_map(doc.find("timings"), &e.timings);
  if (e.metrics.empty()) {
    if (error != nullptr) *error = "ledger entry carries no metrics";
    return std::nullopt;
  }
  return e;
}

void write_ledger_entry(JsonWriter& w, const LedgerEntry& e) {
  w.begin_object();
  w.field("kind", "bench_run");
  w.field("timestamp", e.timestamp);
  w.field("git_sha", e.git_sha);
  w.field("hostname", e.hostname);
  w.field("compiler", e.compiler);
  w.field("flags", e.flags);
  w.field("build_type", e.build_type);
  w.field("effective_threads", e.effective_threads);
  w.field("telemetry_period_steps", e.telemetry_period_steps);
  w.key("metrics");
  write_number_map(w, e.metrics);
  w.key("timings");
  write_number_map(w, e.timings);
  w.end_object();
}

LedgerEntry flatten_suite(const JsonValue& suite) {
  HP_CHECK(suite.is_object(), "suite document is not a JSON object");
  const JsonValue* reports = suite.find("reports");
  HP_CHECK(reports != nullptr && reports->is_object(),
           "suite document has no \"reports\" object");

  LedgerEntry e;
  if (const JsonValue* meta = suite.find("meta")) {
    e.timestamp = string_field(*meta, "timestamp");
    e.git_sha = string_field(*meta, "git_sha");
    e.hostname = string_field(*meta, "hostname");
    e.compiler = string_field(*meta, "compiler");
    e.flags = string_field(*meta, "flags");
    e.build_type = string_field(*meta, "build_type");
    e.effective_threads = int_field(*meta, "effective_threads");
  }
  for (const auto& [name, report] : reports->as_object()) {
    if (const JsonValue* metrics = report.find("metrics");
        metrics != nullptr && metrics->is_object()) {
      for (const auto& [key, val] : metrics->as_object()) {
        if (val.is_number()) e.metrics[name + "." + key] = val.as_number();
      }
    }
    if (const JsonValue* timings = report.find("timings");
        timings != nullptr && timings->is_object()) {
      for (const auto& [key, val] : timings->as_object()) {
        const JsonValue* secs = val.find("seconds");
        if (secs != nullptr && secs->is_number()) {
          e.timings[name + "." + key] = secs->as_number();
        }
      }
    }
  }
  return e;
}

std::optional<TrendFinding> detect_step(const std::string& name,
                                        const std::vector<double>& values,
                                        double tol) {
  const std::size_t n = values.size();
  if (n < 2) return std::nullopt;
  TrendFinding best;
  double best_abs = tol;
  bool found = false;
  for (std::size_t k = 1; k < n; ++k) {
    const double m1 =
        median(std::vector<double>(values.begin(), values.begin() + k));
    const double m2 =
        median(std::vector<double>(values.begin() + k, values.end()));
    const double rel = (m2 - m1) / std::max(std::abs(m1), kEpsilon);
    if (std::abs(rel) > best_abs) {
      best_abs = std::abs(rel);
      best = {name, false, k, m1, m2, rel};
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return best;
}

TrendReport analyze_trend(const std::vector<LedgerEntry>& entries,
                          const TrendOptions& options) {
  TrendReport report;
  if (entries.empty()) return report;

  report.key = comparison_key(entries.back());
  std::vector<const LedgerEntry*> group;
  std::set<std::string> skipped;
  for (const LedgerEntry& e : entries) {
    const std::string key = comparison_key(e);
    if (key == report.key) {
      group.push_back(&e);
    } else {
      skipped.insert(key);
    }
  }
  report.skipped_keys.assign(skipped.begin(), skipped.end());
  if (group.size() > options.window) {
    group.erase(group.begin(),
                group.end() - static_cast<std::ptrdiff_t>(options.window));
  }
  report.runs = group.size();

  // Series present in every run of the window (suites grow; a series that
  // appears or disappears is surfaced by bench_compare, not as a step).
  const auto collect = [&](bool timings) {
    std::vector<std::pair<std::string, std::vector<double>>> out;
    const auto& first = timings ? group.front()->timings
                                : group.front()->metrics;
    for (const auto& [name, v0] : first) {
      std::vector<double> series{v0};
      bool complete = true;
      for (std::size_t i = 1; i < group.size(); ++i) {
        const auto& m = timings ? group[i]->timings : group[i]->metrics;
        const auto it = m.find(name);
        if (it == m.end()) {
          complete = false;
          break;
        }
        series.push_back(it->second);
      }
      if (complete) out.emplace_back(name, std::move(series));
    }
    return out;
  };

  if (!group.empty()) {
    for (auto& [name, series] : collect(/*timings=*/false)) {
      ++report.series;
      if (auto f = detect_step(name, series, options.metric_tol)) {
        report.metric_steps.push_back(std::move(*f));
      }
    }
    for (auto& [name, series] : collect(/*timings=*/true)) {
      if (auto f = detect_step(name, series, options.timing_tol)) {
        f->is_timing = true;
        report.timing_steps.push_back(std::move(*f));
      }
    }
  }

  // Analytic-bounds check on the newest run: every floor/ceiling pair must
  // bracket its measured series, and every *_in_bounds flag must hold.
  if (!group.empty()) {
    const auto& metrics = group.back()->metrics;
    for (const auto& [name, floor_v] : metrics) {
      const std::string suffix = "_floor";
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
      const std::string base = name.substr(0, name.size() - suffix.size());
      // Measured series: "<base>", or the congestion benches' convention
      // "<...>_peak_congestion" bracketed by "<...>_congestion_floor".
      const auto measured_it = [&] {
        auto it = metrics.find(base);
        if (it != metrics.end()) return it;
        std::string alt = base;
        const std::size_t pos = alt.rfind("congestion");
        if (pos != std::string::npos) {
          alt.replace(pos, std::strlen("congestion"), "peak_congestion");
          return metrics.find(alt);
        }
        return metrics.end();
      }();
      if (measured_it == metrics.end()) continue;
      const double measured = measured_it->second;
      if (measured < floor_v) {
        report.bounds_violations.push_back(
            measured_it->first + " = " + std::to_string(measured) +
            " below analytic floor " + name + " = " +
            std::to_string(floor_v));
      }
      const auto ceil_it = metrics.find(base + "_ceiling");
      if (ceil_it != metrics.end() && measured > ceil_it->second) {
        report.bounds_violations.push_back(
            measured_it->first + " = " + std::to_string(measured) +
            " above ceiling " + ceil_it->first + " = " +
            std::to_string(ceil_it->second));
      }
    }
    for (const auto& [name, v] : metrics) {
      const std::string suffix = "_in_bounds";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0 &&
          v != 1.0) {
        report.bounds_violations.push_back(name + " = " + std::to_string(v) +
                                           " (expected 1)");
      }
    }
  }
  return report;
}

}  // namespace hyperpath::obs
