#include "obs/critical_path.hpp"

#include <algorithm>

namespace hyperpath::obs {

TransmitIndex::TransmitIndex(const FlightRecorder& rec) {
  by_link_.resize(rec.links().size());
  const auto& records = rec.records();
  for (std::size_t f = 0; f < records.size(); ++f) {
    const FlightRecord& r = records[f];
    for (std::uint32_t h = 0; h < r.hops.size(); ++h) {
      const HopSpan& hop = r.hops[h];
      if (hop.link >= by_link_.size()) by_link_.resize(hop.link + 1);
      by_link_[hop.link].push_back({hop.transmit_step, h, f});
    }
  }
  for (auto& timeline : by_link_) {
    std::sort(timeline.begin(), timeline.end(),
              [](const Entry& a, const Entry& b) { return a.step < b.step; });
  }
}

TransmitIndex::Ref TransmitIndex::at(std::uint64_t link,
                                     std::int32_t step) const {
  if (link >= by_link_.size()) return {};
  const auto& timeline = by_link_[link];
  const auto it = std::lower_bound(
      timeline.begin(), timeline.end(), step,
      [](const Entry& e, std::int32_t s) { return e.step < s; });
  if (it == timeline.end() || it->step != step) return {};
  return {it->flight, it->hop};
}

std::size_t makespan_terminal(const FlightRecorder& rec) {
  const auto& records = rec.records();
  std::size_t best = FlightRecorder::npos;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FlightRecord& r = records[i];
    if (r.end_step < 0) continue;
    if (best == FlightRecorder::npos) {
      best = i;
      continue;
    }
    const FlightRecord& b = records[best];
    if (r.end_step != b.end_step) {
      if (r.end_step > b.end_step) best = i;
    } else if (r.packet != b.packet) {
      if (r.packet < b.packet) best = i;
    } else if (r.generation < b.generation) {
      best = i;
    }
  }
  return best;
}

CriticalPath extract_critical_path(const FlightRecorder& rec,
                                   const TransmitIndex& index,
                                   std::size_t terminal) {
  CriticalPath cp;
  const auto& records = rec.records();
  if (terminal == FlightRecorder::npos || terminal >= records.size()) {
    return cp;
  }
  const FlightRecord& term = records[terminal];
  if (term.end_step < 0) return cp;
  cp.end_step = term.end_step;
  cp.start_step = term.end_step;

  const auto push = [&](std::size_t f, std::uint64_t link, std::int32_t step,
                        bool via_block) {
    const FlightRecord& r = records[f];
    cp.nodes.push_back({f, r.packet, r.generation, link, step, via_block});
  };

  // Current position in the backward walk: hop `hop` of flight `f`, or
  // none yet when the terminal needs a pseudo-node first.
  std::size_t f = terminal;
  std::uint32_t hop = 0;
  bool have_hop = false;
  bool via_block = false;

  if (term.dropped()) {
    // The drop itself ends the run; the packet sat waiting on the dead
    // link since pending_enqueue_step, blocked until the fault hit.
    push(terminal, term.drop_link, term.end_step, false);
    if (term.pending_enqueue_step >= 0 &&
        term.pending_enqueue_step < term.end_step) {
      const auto b = index.at(term.drop_link, term.end_step - 1);
      if (b.valid()) {
        f = b.flight;
        hop = b.hop;
        have_hop = true;
        via_block = true;
        ++cp.handoffs;
      }
    } else if (!term.hops.empty()) {
      hop = static_cast<std::uint32_t>(term.hops.size() - 1);
      have_hop = true;
    }
    if (!have_hop) {
      cp.start_step = term.release_step >= 0 ? term.release_step
                                             : term.end_step;
      std::reverse(cp.nodes.begin(), cp.nodes.end());
      return cp;
    }
  } else {
    // Delivered: the arrival step is the last hop's transmit step.
    if (term.hops.empty()) {
      cp.start_step = term.release_step >= 0 ? term.release_step
                                             : term.end_step;
      return cp;
    }
    hop = static_cast<std::uint32_t>(term.hops.size() - 1);
    have_hop = true;
  }

  while (have_hop) {
    const HopSpan& h = records[f].hops[hop];
    push(f, h.link, h.transmit_step, via_block);
    if (h.transmit_step > h.enqueue_step) {
      // The packet waited: the link served someone else at every step of
      // the wait, so the transmit one step earlier is the blocker.
      const auto b = index.at(h.link, h.transmit_step - 1);
      if (!b.valid()) {
        // Unexplainable wait — incomplete trace; stop here.
        cp.start_step = h.transmit_step;
        break;
      }
      f = b.flight;
      hop = b.hop;
      via_block = true;
      ++cp.handoffs;
    } else if (hop > 0) {
      --hop;
      via_block = false;
    } else {
      const FlightRecord& r = records[f];
      cp.start_step =
          r.release_step >= 0 ? r.release_step : h.enqueue_step;
      break;
    }
  }
  std::reverse(cp.nodes.begin(), cp.nodes.end());
  return cp;
}

namespace {

/// Cross-checks reconstructed queue depths against the redundant depth
/// values the sweep recorded.  Returns the number of disagreements.
std::uint64_t validate_depths(const FlightRecorder& rec) {
  struct Diff {
    std::int32_t step;
    std::int32_t delta;
  };
  struct Query {
    std::int32_t step;
    std::uint32_t expect;
  };
  std::vector<std::vector<Diff>> diffs(rec.links().size());
  std::vector<std::vector<Query>> queries(rec.links().size());
  for (const FlightRecord& r : rec.records()) {
    for (const HopSpan& h : r.hops) {
      // Present in the queue at every sweep from enqueue to transmit.
      diffs[h.link].push_back({h.enqueue_step, +1});
      diffs[h.link].push_back({h.transmit_step + 1, -1});
      queries[h.link].push_back({h.transmit_step, h.depth_seen});
    }
    if (r.dropped() && r.pending_enqueue_step >= 0 &&
        r.drop_link != TraceEvent::kNoLink &&
        r.drop_link < diffs.size()) {
      // Waiting on the dead link until the drop pass removed it, which
      // runs *before* the sweep of the drop step.
      if (r.pending_enqueue_step < r.end_step) {
        diffs[r.drop_link].push_back({r.pending_enqueue_step, +1});
        diffs[r.drop_link].push_back({r.end_step, -1});
      }
    }
  }

  std::uint64_t mismatches = 0;
  for (std::size_t l = 0; l < diffs.size(); ++l) {
    auto& d = diffs[l];
    auto& q = queries[l];
    if (q.empty() && d.empty()) continue;
    std::sort(d.begin(), d.end(),
              [](const Diff& a, const Diff& b) { return a.step < b.step; });
    std::sort(q.begin(), q.end(), [](const Query& a, const Query& b) {
      return a.step < b.step;
    });
    std::int64_t depth = 0;
    std::uint32_t peak_at_sweeps = 0;
    std::size_t di = 0;
    for (const Query& query : q) {
      while (di < d.size() && d[di].step <= query.step) {
        depth += d[di].delta;
        ++di;
      }
      if (depth != static_cast<std::int64_t>(query.expect)) ++mismatches;
      peak_at_sweeps =
          std::max(peak_at_sweeps, static_cast<std::uint32_t>(depth));
    }
    // The link's recorded high-water mark is the max depth over its
    // sweeps, and every sweep of a nonempty queue transmits.
    if (l < rec.links().size() &&
        peak_at_sweeps != rec.links()[l].peak_queue) {
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

TraceAnalysis analyze_flights(const FlightRecorder& rec) {
  TraceAnalysis a;
  a.makespan = rec.makespan();
  a.delivered = rec.delivered();
  a.dropped = rec.dropped();
  a.releases = rec.releases();
  a.transmissions = rec.transmissions();
  a.retransmissions = rec.retransmits().size();
  for (const LinkFaultEvent& fe : rec.fault_events()) {
    ++(fe.repaired ? a.repairs : a.faults);
  }
  a.peak_congestion = rec.peak_congestion();
  a.peak_congestion_link = rec.peak_congestion_link();
  for (const LinkUse& lu : rec.links()) {
    if (lu.transmissions > 0) ++a.links_used;
    a.max_queue = std::max(a.max_queue, lu.peak_queue);
  }

  a.queue_wait = FixedHistogram::exponential();
  a.total_wait = FixedHistogram::exponential();
  a.latency = FixedHistogram::exponential();
  for (const FlightRecord& r : rec.records()) {
    for (const HopSpan& h : r.hops) a.queue_wait.observe(h.queue_wait());
    if (!r.hops.empty()) a.total_wait.observe(r.total_queue_wait());
    if (r.delivered()) a.latency.observe(static_cast<double>(r.latency));
  }

  if (!rec.worm_trace()) {
    const TransmitIndex index(rec);
    a.critical_path =
        extract_critical_path(rec, index, makespan_terminal(rec));
    a.depth_mismatches = validate_depths(rec);
  }
  a.inconsistencies = rec.inconsistencies();
  return a;
}

}  // namespace hyperpath::obs
