// Minimal JSON parser — the read-side counterpart of JsonWriter.
//
// Parses one complete document into a JsonValue tree (null / bool / number
// / string / array / object).  Object member order is preserved.  Strict
// where it matters for round-tripping our own output (UTF-8 passthrough,
// \uXXXX escapes, numbers via strtod) and deliberately small: no comments,
// no trailing commas, no streaming.  Errors carry the byte offset of the
// failure.  Used by bench_compare and the profiler/report tests to consume
// BENCH_*.json, BENCH_SUITE.json and chrome-trace documents.
#pragma once

#include <cstddef>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hyperpath::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Members in document order.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array a);
  static JsonValue make_object(Object o);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;
  /// Chained lookup: find("a", "b") == find("a")->find("b").
  template <typename... Keys>
  const JsonValue* find(std::string_view key, Keys... rest) const {
    const JsonValue* v = find(key);
    return v ? v->find(rest...) : nullptr;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

struct JsonParseError {
  std::size_t offset = 0;
  std::string message;
};

/// Parses a complete document (surrounding whitespace allowed).  Returns
/// nullopt and fills `error` (if given) on malformed input.
std::optional<JsonValue> json_parse(std::string_view text,
                                    JsonParseError* error = nullptr);

/// Reads and parses a whole file; nullopt on I/O or parse failure.
std::optional<JsonValue> json_parse_file(const std::string& path,
                                         JsonParseError* error = nullptr);

/// Streaming JSONL (one JSON document per line) reader.  Iterates records
/// without buffering the whole file — trace files reach hundreds of MB —
/// holding only the current line in memory.  Blank lines are skipped;
/// trailing data after the document on a line is a parse error.  Errors
/// carry the 1-based line number of the offending line.
class JsonlReader {
 public:
  explicit JsonlReader(const std::string& path);
  JsonlReader(const JsonlReader&) = delete;
  JsonlReader& operator=(const JsonlReader&) = delete;
  ~JsonlReader();

  /// False when the file could not be opened (error() says why).
  bool ok() const { return file_ != nullptr && error_.message.empty(); }

  /// Parses the next non-blank line into `out`.  Returns false at
  /// end-of-file or on a malformed line; the two are distinguished by
  /// failed(): a parse failure sets error() (with line()) and poisons the
  /// reader, clean EOF does not.
  bool next(JsonValue* out);

  /// 1-based number of the line most recently returned by next() (or, after
  /// a failure, of the malformed line).
  std::size_t line() const { return line_; }
  bool failed() const { return !error_.message.empty(); }
  const JsonParseError& error() const { return error_; }

 private:
  std::FILE* file_ = nullptr;
  std::string buf_;
  std::size_t line_ = 0;
  JsonParseError error_;
};

}  // namespace hyperpath::obs
