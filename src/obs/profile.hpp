// Hierarchical construction/simulation profiler.
//
// ProfileSpan is a nestable RAII span.  Spans on one thread form a call
// tree: entering "construct" inside "trace_grid" creates (or re-visits) the
// child node "construct" under "trace_grid", and every visit accumulates
// into that node, so a loop that enters the same span 1000 times costs one
// node, not 1000.  Each node records call count, wall time
// (steady_clock), CPU time (getrusage) and the largest peak-RSS growth
// (getrusage ru_maxrss delta, KiB) any single visit caused — memory
// blowups show up in the span tree the same way time regressions do.
//
// Two exports:
//
//   * write_json        — the aggregated span tree, nested objects mirroring
//                         the call structure.  Embedded in MetricsRegistry
//                         documents and bench::Report records as "profile".
//   * write_chrome_trace — chrome://tracing "traceEvents" JSON ("X" complete
//                         events, microsecond timestamps), loadable in
//                         Perfetto / chrome://tracing.  Individual span
//                         occurrences are kept in a bounded per-thread log
//                         (kMaxEvents newest); the aggregated tree stays
//                         exact even when the event log wraps.
//
// Cost model: the profiler is disabled by default.  A ProfileSpan
// constructed while disabled performs exactly one relaxed atomic load and
// one branch — no clock reads, no allocation, nothing in the destructor
// (HP_PROFILE_SPAN in hot paths is safe to leave in production builds).
// While enabled, entering a previously-seen span does no allocation either:
// node lookup walks the parent's existing children (spans per level are
// few), and only a first visit appends a node.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hyperpath::obs {

class JsonWriter;

class Profiler {
 public:
  /// Newest chrome-trace events retained per thread.
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 16;

  /// The process-wide profiler used by ProfileSpan and HP_PROFILE_SPAN.
  static Profiler& global();

  Profiler() = default;
  /// Instance profilers (tests) must be destroyed on the thread that used
  /// them; the global profiler is never destroyed.
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Enabling resets nothing: spans accumulate until reset().
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Span entry/exit.  Callers go through ProfileSpan, which guarantees
  /// begin/end pairing per thread; `name` must outlive the profiler's next
  /// reset() (string literals in practice).
  void begin(const char* name);
  void end();

  /// One aggregated node, preorder with depth (children follow parents).
  struct NodeView {
    std::string name;
    int depth = 0;           // 0 = root span of its thread
    std::uint64_t count = 0;
    double wall_seconds = 0;
    double cpu_seconds = 0;
    /// Largest growth of the process peak RSS (getrusage ru_maxrss, KiB)
    /// observed across this span's visits.  Nonzero only for visits that
    /// pushed the process to a new memory high-water mark, so construction
    /// -phase blowups land on the span that allocated them.
    std::uint64_t max_rss_delta_kb = 0;
  };
  /// Aggregated tree over every thread that ever recorded a span, threads
  /// in registration order.  Safe to call while disabled.
  std::vector<NodeView> nodes() const;

  /// {"<name>":{"count":..,"wall_seconds":..,"cpu_seconds":..,
  ///  "children":{...}}} — one object value merging all threads (span names
  ///  colliding across threads aggregate into one node).
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

  /// {"traceEvents":[{"name":..,"ph":"X","ts":..,"dur":..,"pid":..,
  ///  "tid":..},...],"displayTimeUnit":"ms"} — timestamps are microseconds
  ///  since the first enable.
  void write_chrome_trace(JsonWriter& w) const;
  std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() + newline to `path`; false on I/O failure.
  bool dump_chrome_trace(const std::string& path) const;

  /// Total events dropped from the bounded chrome-trace logs.
  std::uint64_t events_dropped() const;

  /// Drops all recorded spans and events (tests, repeated bench runs).
  /// Must not race with in-flight spans.
  void reset();

 private:
  struct Node {
    const char* name = nullptr;
    std::int32_t parent = -1;      // index into nodes, -1 = thread root list
    std::int32_t first_child = -1;
    std::int32_t next_sibling = -1;
    std::uint64_t count = 0;
    double wall_seconds = 0;
    double cpu_seconds = 0;
    std::uint64_t max_rss_delta_kb = 0;  // largest single-visit peak growth
  };

  struct Occurrence {
    const char* name;
    std::uint64_t start_us;  // since profiler epoch
    std::uint64_t dur_us;
    std::int32_t depth;
    std::uint64_t rss_delta_kb;  // peak-RSS growth during this occurrence
  };

  struct Frame {
    std::int32_t node;
    std::uint64_t wall_start_ns;
    double cpu_start;
    std::uint64_t rss_start_kb;  // process peak RSS at entry
  };

  /// All per-thread state; registered once per thread, torn down only by
  /// the profiler (thread exit leaves the data for export).
  struct ThreadProfile {
    std::vector<Node> nodes;
    std::vector<std::int32_t> roots;   // top-level spans, creation order
    std::vector<Frame> stack;
    std::vector<Occurrence> events;    // ring buffer, newest kMaxEvents
    std::size_t event_head = 0;
    std::uint64_t events_total = 0;
    std::uint64_t tid = 0;
  };

  ThreadProfile& this_thread();
  std::int32_t child_named(ThreadProfile& tp, std::int32_t parent,
                           const char* name) const;

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;  // steady_clock origin for chrome timestamps

  mutable std::mutex mu_;  // guards threads_ registration and exports
  std::vector<ThreadProfile*> threads_;
};

/// RAII span.  Disabled profiler: constructor is one relaxed load + branch,
/// destructor one branch.  A span that observed `enabled` at construction
/// closes itself even if the profiler is disabled mid-span, keeping the
/// per-thread stack balanced.
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name,
                       Profiler* p = &Profiler::global()) : p_(p) {
    if (p_->enabled()) {
      active_ = true;
      p_->begin(name);
    }
  }

  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

  ~ProfileSpan() {
    if (active_) p_->end();
  }

 private:
  Profiler* p_;
  bool active_ = false;
};

}  // namespace hyperpath::obs

/// Span over the enclosing scope; hot-path friendly (see cost model above).
#define HP_PROFILE_CONCAT2(a, b) a##b
#define HP_PROFILE_CONCAT(a, b) HP_PROFILE_CONCAT2(a, b)
#define HP_PROFILE_SPAN(name) \
  ::hyperpath::obs::ProfileSpan HP_PROFILE_CONCAT(hp_profile_span_, \
                                                  __LINE__)(name)
