#include "obs/metrics.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"

namespace hyperpath::obs {

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  HP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
           "histogram bounds must be ascending");
}

FixedHistogram FixedHistogram::exponential(int buckets) {
  HP_CHECK(buckets >= 1, "histogram needs at least one bucket");
  std::vector<double> bounds(buckets);
  double b = 1;
  for (int i = 0; i < buckets; ++i, b *= 2) bounds[i] = b;
  return FixedHistogram(std::move(bounds));
}

void FixedHistogram::observe(double v) {
  if (counts_.empty()) counts_.assign(1, 0);  // default-constructed: 1 bucket
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  max_ = std::max(max_, v);
}

void FixedHistogram::merge(const FixedHistogram& other) {
  if (other.count_ == 0 && other.bounds_.empty()) return;  // nothing to add
  if (count_ == 0 && bounds_.empty()) {
    *this = other;
    return;
  }
  HP_CHECK(bounds_ == other.bounds_,
           "histogram merge requires identical bounds");
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  if (!other.counts_.empty()) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double FixedHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (rank <= next) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : max_;
      if (upper <= lower) return std::min(upper, max_);
      const double frac = (rank - cum) / (next - cum);
      return std::min(lower + (upper - lower) * frac, max_);
    }
    cum = next;
  }
  return max_;
}

void FixedHistogram::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("count", count_);
  w.field("sum", sum_);
  w.field("mean", mean());
  w.field("max", max_);
  w.key("bounds").begin_array();
  for (double b : bounds_) w.value(b);
  w.end_array();
  w.key("counts").begin_array();
  for (std::uint64_t c : counts_) w.value(c);
  w.end_array();
  w.end_object();
}

void UtilizationProfile::add(double u) {
  sum_ += u;
  ++steps_;
  if (slots_.empty() || slots_.back().count == granularity_) {
    if (slots_.size() == kMaxSlots) {
      // Merge adjacent slot pairs; the profile halves, granularity doubles.
      for (std::size_t i = 0; i + 1 < slots_.size(); i += 2) {
        slots_[i / 2] = {slots_[i].sum + slots_[i + 1].sum,
                         slots_[i].count + slots_[i + 1].count};
      }
      slots_.resize(kMaxSlots / 2);
      granularity_ *= 2;
    }
    slots_.push_back({});
  }
  slots_.back().sum += u;
  ++slots_.back().count;
}

std::vector<double> UtilizationProfile::profile() const {
  std::vector<double> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    out.push_back(s.count ? s.sum / s.count : 0.0);
  }
  return out;
}

void UtilizationProfile::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("steps", steps_);
  w.field("average", average());
  w.field("granularity", granularity_);
  w.key("profile").begin_array();
  for (double v : profile()) w.value(v);
  w.end_array();
  w.end_object();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry;  // never destroyed
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::scoped_lock lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           std::vector<double> bounds) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<FixedHistogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::record_span(const std::string& name, double seconds) {
  std::scoped_lock lock(mu_);
  Span& s = timings_[name];
  s.seconds += seconds;
  ++s.count;
}

std::vector<MetricsRegistry::SpanView> MetricsRegistry::timings() const {
  std::scoped_lock lock(mu_);
  std::vector<SpanView> out;
  out.reserve(timings_.size());
  for (const auto& [name, s] : timings_) {
    out.push_back({name, s.seconds, s.count});
  }
  return out;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  std::scoped_lock lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    h->write_json(w);
  }
  w.end_object();
  w.key("timings").begin_object();
  for (const auto& [name, s] : timings_) {
    w.key(name).begin_object();
    w.field("seconds", s.seconds);
    w.field("count", s.count);
    w.end_object();
  }
  w.end_object();
  // The process-wide span tree rides along in every metrics document;
  // empty object when nothing was profiled.
  w.key("profile");
  Profiler::global().write_json(w);
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  timings_.clear();
}

}  // namespace hyperpath::obs
