// Per-packet flight records assembled from the canonical trace stream.
//
// A FlightRecord is the packet's-eye view of one simulation: when the
// packet entered the network, every hop it completed — split into
// queue-wait and transit per directed link — and how it ended (delivered,
// truncated at a dead link, or still in flight when the stream stopped).
// The FlightRecorder consumes the exact event stream the simulators emit
// (obs/trace.hpp), either live as the TraceSink attached to a run or
// offline from a JSONL trace file via load_trace_jsonl(); both roads yield
// identical records because traced parallel runs are byte-identical to
// serial ones.
//
// Reconstruction rules (store-and-forward family):
//
//   kRelease   opens a flight: the packet joins its first link's queue at
//              the release step.  A release for a packet id whose previous
//              flight already terminated opens a *new generation* — the
//              recovery engine re-injects lost fragments wave by wave and
//              wave-local packet ids restart from 0.
//   kTransmit  closes the current hop: the packet crossed `link` this
//              step after waiting (step - enqueue) steps, and joins its
//              next queue at step + 1 (arrivals settle at the step
//              barrier).  The event's value is the queue depth the sweep
//              saw, kept for the depth cross-check in critical_path.
//   kArrive    terminal: delivered; value is the latency the simulator
//              measured (cross-checked against step + 1 - release).
//   kDrop      terminal: truncated by a fault.  Mid-flight the hop the
//              packet was waiting on never completes and is kept as the
//              pending hop; packets whose route is already cut at release
//              time are dropped before ever being released (release_step
//              stays -1).
//
// kRetransmit / kFault / kRepair events carry message and link ids, not
// wave-local packet ids, so they are kept as run-wide chains rather than
// folded into individual records.  Wormhole traces are accepted too — a
// worm's kTransmit events all fire at its acquisition step, so hop spans
// carry no wait information there, but terminal accounting (makespan,
// delivered) still reconstructs exactly.
//
// The recorder reproduces run-level results from the stream alone —
// makespan, delivered/dropped counts, transmissions — which is what proves
// a trace is complete: tools/trace_query gates on matching SimResult bit
// for bit, and tests assert it for every simulator mode.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hyperpath::obs {

class JsonValue;

/// One completed hop: the packet joined `link`'s queue at enqueue_step and
/// crossed it at transmit_step.
struct HopSpan {
  std::uint64_t link = TraceEvent::kNoLink;
  std::int32_t enqueue_step = 0;
  std::int32_t transmit_step = 0;
  /// Queue depth the sweep saw at transmit time (includes this packet);
  /// 0 in wormhole traces, which carry no depth.
  std::uint32_t depth_seen = 0;

  std::int32_t queue_wait() const { return transmit_step - enqueue_step; }

  friend bool operator==(const HopSpan&, const HopSpan&) = default;
};

struct FlightRecord {
  enum class Fate : std::uint8_t { kInFlight = 0, kDelivered, kDropped };

  std::uint32_t packet = TraceEvent::kNoPacket;
  /// 0 for the first flight of this packet id; +1 per re-release (recovery
  /// waves reuse wave-local ids).
  std::uint32_t generation = 0;
  /// -1 when the packet was dropped before ever being released (its route
  /// was already cut by a standing fault).
  std::int32_t release_step = -1;
  std::vector<HopSpan> hops;

  Fate fate = Fate::kInFlight;
  /// Arrive/drop step; -1 while in flight.
  std::int32_t end_step = -1;
  /// The dead link that truncated a dropped flight; kNoLink otherwise.
  std::uint64_t drop_link = TraceEvent::kNoLink;
  /// When a mid-flight drop caught the packet waiting, the step it joined
  /// the dead link's queue; -1 otherwise.
  std::int32_t pending_enqueue_step = -1;
  /// Latency the simulator reported in kArrive (== end_step + 1 -
  /// release_step); 0 for non-delivered flights.
  std::uint64_t latency = 0;

  bool delivered() const { return fate == Fate::kDelivered; }
  bool dropped() const { return fate == Fate::kDropped; }

  /// Steps spent queued across completed hops (pending wait excluded).
  std::int64_t total_queue_wait() const {
    std::int64_t w = 0;
    for (const HopSpan& h : hops) w += h.queue_wait();
    return w;
  }
};

/// A kRetransmit occurrence: message `message` re-entered the network on
/// `first_link` at `step` for the attempt-th time.
struct RetransmitEvent {
  std::int32_t step = 0;
  std::uint32_t message = TraceEvent::kNoPacket;
  std::uint64_t first_link = TraceEvent::kNoLink;
  std::uint64_t attempt = 0;
};

/// A kFault (repaired == false) or kRepair (true) occurrence.
struct LinkFaultEvent {
  std::int32_t step = 0;
  std::uint64_t link = TraceEvent::kNoLink;
  bool repaired = false;
};

/// Aggregate use of one directed link, indexed by dense link id.
struct LinkUse {
  std::uint64_t transmissions = 0;
  /// Last kQueueDepth high-water value (the link's peak queue depth).
  std::uint32_t peak_queue = 0;
  /// First/last step the link transmitted; -1 when it never did.
  std::int32_t first_step = -1;
  std::int32_t last_step = -1;
};

/// Assembles FlightRecords and run-level aggregates from a trace stream.
/// Usable directly as the TraceSink of a simulator run.  The recorder is
/// tolerant of streams it cannot fully explain (it is an offline analyzer,
/// not a validator with authority to abort): violations of the rules above
/// are counted in inconsistencies() and the first one is described by
/// first_inconsistency().  A well-formed simulator trace produces zero.
class FlightRecorder final : public TraceSink {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  void on_events(std::span<const TraceEvent> events) override;
  void add(const TraceEvent& e);

  /// All flights, in order of first appearance (creation order).
  const std::vector<FlightRecord>& records() const { return records_; }
  /// Index into records() of `packet`'s latest generation; npos if unseen.
  std::size_t flight_of(std::uint32_t packet) const;

  const std::vector<RetransmitEvent>& retransmits() const {
    return retransmits_;
  }
  const std::vector<LinkFaultEvent>& fault_events() const {
    return fault_events_;
  }
  /// Per-link aggregates, indexed by dense directed-link id (grown on
  /// demand; links beyond the largest id seen are absent).
  const std::vector<LinkUse>& links() const { return links_; }

  // Run-level reconstruction — these must match the originating SimResult.

  /// Steps the run took: last event step + 1 for the packet simulators (the
  /// final arrival/drop happens *during* step makespan-1), last event step
  /// for wormhole traces (their step counter is 1-based).  0 for an empty
  /// stream.
  int makespan() const;
  int last_event_step() const { return last_step_; }
  bool worm_trace() const { return worm_trace_; }
  /// Total trace events consumed (all kinds).
  std::uint64_t events_seen() const { return events_seen_; }

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t releases() const { return releases_; }
  std::uint64_t transmissions() const { return transmissions_; }
  /// Sum of kStall values: total packet-steps spent waiting on busy links.
  std::uint64_t stalled_packet_steps() const { return stalled_; }
  /// Highest generation index opened for any packet id (0 = no reuse).
  std::uint32_t max_generation() const { return max_generation_; }
  /// Peak per-link transmission count and the link attaining it (smallest
  /// such id); the measured edge congestion of the run.
  std::uint64_t peak_congestion() const;
  std::uint64_t peak_congestion_link() const;

  std::uint64_t inconsistencies() const {
    return inconsistencies_ + unclaimed_implicit_;
  }
  const std::string& first_inconsistency() const {
    return first_inconsistency_;
  }

 private:
  void note_inconsistency(const TraceEvent& e, const char* what);
  FlightRecord& open_flight(std::uint32_t packet, std::int32_t release_step);
  LinkUse& link_slot(std::uint64_t link);

  // Per packet id: index of its open (non-terminal) record, npos if none.
  std::vector<std::size_t> open_;
  // Per packet id: generations opened so far.
  std::vector<std::uint32_t> generations_;
  // Per open record: where the packet currently queues.  The link is known
  // from kRelease for hop 0 and becomes kNoLink after each transmit (the
  // next link is only revealed by the next event naming it).
  struct PendingHop {
    std::uint64_t link = TraceEvent::kNoLink;
    std::int32_t enqueue_step = -1;
  };
  std::vector<PendingHop> pending_;  // parallel to records_

  std::vector<FlightRecord> records_;
  std::vector<RetransmitEvent> retransmits_;
  std::vector<LinkFaultEvent> fault_events_;
  std::vector<LinkUse> links_;

  int last_step_ = -1;
  std::uint64_t events_seen_ = 0;
  bool any_events_ = false;
  bool worm_trace_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t stalled_ = 0;
  std::uint32_t max_generation_ = 0;
  std::uint64_t inconsistencies_ = 0;
  // Flights opened by a kTransmit with no prior release and not (yet)
  // claimed by a kWormStart — see the kTransmit handler.
  std::uint64_t unclaimed_implicit_ = 0;
  std::string first_inconsistency_;
};

/// Decodes one JSONL trace object (step/kind/packet/link/value members)
/// into a TraceEvent.  Returns false with *is_meta == true for the optional
/// `{"kind":"meta",...}` header, and false with an `error` message for
/// records that are neither.
bool trace_event_from_json(const JsonValue& v, TraceEvent* out, bool* is_meta,
                           std::string* error);

struct TraceLoadResult {
  bool ok = false;
  std::string error;  // parse/decode diagnostic with line number
  std::size_t lines = 0;
  std::size_t events = 0;
  /// Host dimension from the meta header; -1 when the trace has none.
  int dims = -1;
  /// Packet count from the meta header; 0 when absent.
  std::uint64_t meta_packets = 0;
};

/// Streams a JSONL trace file into `rec` without buffering the file.
TraceLoadResult load_trace_jsonl(const std::string& path, FlightRecorder& rec);

}  // namespace hyperpath::obs
