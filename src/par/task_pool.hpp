// Work-stealing parallel substrate shared by construction, verification and
// the bench suite.
//
// TaskPool owns N-1 worker threads plus the calling thread (N participants
// total).  A parallel region partitions an index range into chunks; every
// participant owns a Chase–Lev-style deque seeded with a contiguous block
// of chunks, pops work from its own bottom and steals from other deques'
// tops when it runs dry.  Regions are synchronous: run_chunks returns only
// after every chunk executed and every worker parked again, so callers may
// treat the body like a loop body that happened to run on several threads.
//
// Determinism contract: the pool never decides *what* is computed, only
// *where*.  Chunk boundaries depend solely on (range, grain), never on the
// thread count or the steal pattern, so a body that writes results indexed
// by chunk or element — and a caller that merges per-worker scratch in a
// fixed order — produces bit-identical output for every thread count,
// including the serial threads=1 collapse (which runs the body inline with
// no atomics at all).  parallel_reduce folds chunk partials in ascending
// chunk order for the same reason.
//
// Sizing: TaskPool::global() reads HYPERPATH_THREADS (falling back to
// hardware_concurrency) once on first use; set_global_threads() (the CLI
// --threads flag) replaces the pool.  threads=1 means "no worker threads,
// run everything inline" — the pure serial path.
//
// Errors: a body exception does not tear down the pool.  Every participant
// records its lowest-chunk exception; after the region the exception of the
// overall lowest throwing chunk is rethrown on the caller, so error
// selection is as deterministic as the body itself (the set of throwing
// chunks is a function of the input, not of the schedule).
//
// Observability: each region accumulates into the process-wide par.* group
// of obs::MetricsRegistry — par.regions / par.tasks_executed / par.steals
// counters plus par.worker<i>.busy timing spans — and brackets itself in an
// obs::Profiler span ("par/region") on the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hyperpath::par {

class TaskPool {
 public:
  /// Hard cap on participants (matches ParallelStoreForwardSim's cap).
  static constexpr int kMaxThreads = 64;

  /// N participants: the calling thread plus N-1 workers.  threads <= 0
  /// resolves via resolve_threads(0) (HYPERPATH_THREADS, then hardware).
  explicit TaskPool(int threads = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int threads() const { return threads_; }

  /// Executes body(chunk, worker) for every chunk in [0, num_chunks), with
  /// worker in [0, threads()) identifying the executing participant (0 is
  /// always the caller in the serial and single-chunk collapses).  Blocks
  /// until all chunks ran; rethrows the lowest throwing chunk's exception.
  /// Reentrant calls from inside a region run inline on the current thread
  /// with worker = 0, so per-worker scratch must be allocated per call, not
  /// per pool.
  void run_chunks(std::size_t num_chunks,
                  const std::function<void(std::size_t, int)>& body);

  /// Lifetime totals (monotone; read while quiescent for exact values).
  struct Stats {
    std::uint64_t regions = 0;
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
    std::vector<double> busy_seconds;  // per participant
  };
  Stats stats() const;

  /// requested > 0 → clamped to [1, kMaxThreads]; otherwise the
  /// HYPERPATH_THREADS environment variable, and failing that
  /// hardware_concurrency() (at least 1).
  static int resolve_threads(int requested);

  /// The process-wide pool (created on first use).
  static TaskPool& global();

 private:
  // Chase–Lev deque over chunk ids.  The owner fills it while the pool is
  // quiescent (before workers are released into the region), pops from the
  // bottom during the region; thieves steal from the top.  All cross-thread
  // ops are seq_cst — regions are coarse enough that deque traffic is not
  // the bottleneck, and seq_cst keeps the classic algorithm's correctness
  // argument (and TSan's happens-before model) exact.
  struct Deque {
    std::vector<std::uint64_t> buf;  // capacity: power of two
    std::uint64_t mask = 0;
    std::atomic<std::int64_t> top{0};
    std::atomic<std::int64_t> bottom{0};

    void reset(std::size_t capacity);
    void fill_push(std::uint64_t v);  // quiescent fill only
    bool pop(std::uint64_t* out);     // owner
    bool steal(std::uint64_t* out);   // thieves
  };

  struct Participant {
    Deque deque;
    std::uint64_t steals = 0;
    double busy_seconds = 0;
    std::size_t err_chunk = SIZE_MAX;
    std::exception_ptr err;
  };

  void worker_loop(int index);
  void participate(int index);
  void execute(std::uint64_t chunk, int worker);
  void flush_region_metrics(std::size_t num_chunks);

  int threads_ = 1;
  // Fixed array, not a vector: Participant holds atomics and is neither
  // movable nor copyable.
  std::unique_ptr<Participant[]> parts_;
  std::vector<std::thread> workers_;

  // Region handoff (same parked-worker protocol as the simulator's pool).
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t round_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  const std::function<void(std::size_t, int)>* body_ = nullptr;
  std::atomic<std::size_t> remaining_{0};

  // Lifetime stats.  Atomic because the serial-collapse path of run_chunks
  // can execute reentrantly on several workers of an enclosing region.
  std::atomic<std::uint64_t> stat_regions_{0};
  std::atomic<std::uint64_t> stat_tasks_{0};
  std::atomic<std::uint64_t> stat_steals_{0};
};

/// Replaces the global pool with one of `threads` participants (resolved
/// via TaskPool::resolve_threads).  Must not be called while a region is
/// running.  Also records the new size as RunMetadata's effective thread
/// count.
void set_global_threads(int threads);

/// The global pool's participant count (creates the pool on first use).
int global_threads();

/// Thread-local pool override: within a PoolScope, current_pool() (and so
/// parallel_for / parallel_reduce and everything built on them) uses the
/// given pool instead of the global one.  This is how tests and benches
/// drive library-internal parallelism at a specific thread count without
/// threading a pool argument through every construction API.
TaskPool& current_pool();
class PoolScope {
 public:
  explicit PoolScope(TaskPool& pool);
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  TaskPool* prev_;
};

/// Number of grain-sized chunks covering [0, total).
inline std::size_t chunk_count(std::size_t total, std::size_t grain) {
  if (grain == 0) grain = 1;
  return (total + grain - 1) / grain;
}

/// A grain that yields ~16 chunks per participant (enough slack for
/// stealing to balance uneven chunks) without dropping below min_grain
/// items per task.
std::size_t suggested_grain(std::size_t total, std::size_t min_grain = 64);

/// Runs body(chunk_index, lo, hi, worker) over the grain-decomposition of
/// [begin, end) on current_pool().  Chunk boundaries depend only on
/// (begin, end, grain).
void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t, int)>&
        body);

/// Runs body(lo, hi) over grain-sized sub-ranges of [begin, end).
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Maps each chunk of [begin, end) to a partial result and folds the
/// partials in ascending chunk order: reduce(reduce(identity, part_0),
/// part_1)... — deterministic for any thread count, including
/// non-commutative folds.
template <typename T, typename Map, typename Reduce>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, Map&& map, Reduce&& reduce) {
  const std::size_t n = chunk_count(end - begin, grain);
  if (n == 0) return identity;
  std::vector<T> partial(n, identity);
  parallel_for_chunks(begin, end, grain,
                      [&](std::size_t chunk, std::size_t lo, std::size_t hi,
                          int) { partial[chunk] = map(lo, hi); });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < n; ++c) {
    acc = reduce(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace hyperpath::par
