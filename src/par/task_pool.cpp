#include "par/task_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "base/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/run_metadata.hpp"
#include "obs/telemetry.hpp"

namespace hyperpath::par {

namespace {

/// Worker index of the region currently executing on this thread, -1 when
/// outside any region.  Used to route reentrant run_chunks calls inline.
thread_local int tls_region_worker = -1;

thread_local TaskPool* tls_pool_override = nullptr;

std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Deque
// ---------------------------------------------------------------------------

void TaskPool::Deque::reset(std::size_t capacity) {
  const std::uint64_t cap = next_pow2(capacity == 0 ? 1 : capacity);
  if (buf.size() < cap) buf.assign(cap, 0);
  mask = buf.size() - 1;
  top.store(0, std::memory_order_relaxed);
  bottom.store(0, std::memory_order_relaxed);
}

void TaskPool::Deque::fill_push(std::uint64_t v) {
  const std::int64_t b = bottom.load(std::memory_order_relaxed);
  buf[static_cast<std::uint64_t>(b) & mask] = v;
  bottom.store(b + 1, std::memory_order_relaxed);
}

bool TaskPool::Deque::pop(std::uint64_t* out) {
  const std::int64_t b = bottom.load(std::memory_order_relaxed) - 1;
  bottom.store(b, std::memory_order_seq_cst);
  std::int64_t t = top.load(std::memory_order_seq_cst);
  if (t <= b) {
    *out = buf[static_cast<std::uint64_t>(b) & mask];
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won = top.compare_exchange_strong(t, t + 1,
                                                   std::memory_order_seq_cst,
                                                   std::memory_order_seq_cst);
      bottom.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }
  bottom.store(b + 1, std::memory_order_relaxed);
  return false;
}

bool TaskPool::Deque::steal(std::uint64_t* out) {
  std::int64_t t = top.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom.load(std::memory_order_seq_cst);
  if (t >= b) return false;
  const std::uint64_t v = buf[static_cast<std::uint64_t>(t) & mask];
  if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                   std::memory_order_seq_cst)) {
    return false;  // lost to the owner or another thief; caller retries
  }
  *out = v;
  return true;
}

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

int TaskPool::resolve_threads(int requested) {
  int n = requested;
  if (n <= 0) {
    if (const char* env = std::getenv("HYPERPATH_THREADS")) {
      n = std::atoi(env);
    }
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (n <= 0) n = 1;
  return n < kMaxThreads ? n : kMaxThreads;
}

TaskPool::TaskPool(int threads) : threads_(resolve_threads(threads)) {
  parts_ = std::make_unique<Participant[]>(threads_);
  workers_.reserve(threads_ - 1);
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
    ++round_;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void TaskPool::worker_loop(int index) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return round_ != seen; });
      seen = round_;
      if (stop_) return;
    }
    participate(index);
    {
      std::scoped_lock lock(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void TaskPool::execute(std::uint64_t chunk, int worker) {
  try {
    (*body_)(static_cast<std::size_t>(chunk), worker);
  } catch (...) {
    Participant& me = parts_[worker];
    if (chunk < me.err_chunk) {
      me.err_chunk = static_cast<std::size_t>(chunk);
      me.err = std::current_exception();
    }
  }
  remaining_.fetch_sub(1, std::memory_order_acq_rel);
}

void TaskPool::participate(int index) {
  const int prev_worker = tls_region_worker;
  tls_region_worker = index;
  const auto t0 = std::chrono::steady_clock::now();
  Participant& me = parts_[index];
  std::uint64_t chunk;
  while (true) {
    if (me.deque.pop(&chunk)) {
      execute(chunk, index);
      continue;
    }
    bool stole = false;
    for (int i = 1; i < threads_; ++i) {
      if (parts_[(index + i) % threads_].deque.steal(&chunk)) {
        ++me.steals;
        execute(chunk, index);
        stole = true;
        break;
      }
    }
    if (stole) continue;
    // Nothing to pop, nothing to steal: the remaining chunks (if any) are
    // executing on other participants right now.  Wait for the last one.
    if (remaining_.load(std::memory_order_acquire) == 0) break;
    std::this_thread::yield();
  }
  me.busy_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  tls_region_worker = prev_worker;
}

void TaskPool::run_chunks(std::size_t num_chunks,
                          const std::function<void(std::size_t, int)>& body) {
  if (num_chunks == 0) return;

  // Serial collapse: one participant, one chunk, or a reentrant call from
  // inside a running region (per-worker scratch is per call, so worker 0 is
  // always a safe index inline).
  if (threads_ == 1 || num_chunks == 1 || tls_region_worker >= 0) {
    for (std::size_t c = 0; c < num_chunks; ++c) body(c, 0);
    stat_tasks_.fetch_add(num_chunks, std::memory_order_relaxed);
    stat_regions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  HP_PROFILE_SPAN("par/region");

  // Seed every participant's deque with a contiguous block of chunks while
  // all workers are parked: blocked distribution keeps neighboring chunks
  // (and so neighboring edges / cache lines) on one thread until stealing
  // rebalances.
  const std::size_t per = num_chunks / static_cast<std::size_t>(threads_);
  const std::size_t extra = num_chunks % static_cast<std::size_t>(threads_);
  std::size_t next = 0;
  for (int w = 0; w < threads_; ++w) {
    Participant& p = parts_[w];
    const std::size_t take = per + (static_cast<std::size_t>(w) < extra);
    p.deque.reset(take);
    for (std::size_t c = 0; c < take; ++c) p.deque.fill_push(next++);
    p.err_chunk = SIZE_MAX;
    p.err = nullptr;
  }

  const std::uint64_t steals_before = [&] {
    std::uint64_t s = 0;
    for (int w = 0; w < threads_; ++w) s += parts_[w].steals;
    return s;
  }();
  const std::vector<double> busy_before = [&] {
    std::vector<double> b(static_cast<std::size_t>(threads_));
    for (int w = 0; w < threads_; ++w) b[w] = parts_[w].busy_seconds;
    return b;
  }();

  remaining_.store(num_chunks, std::memory_order_release);
  {
    std::scoped_lock lock(mu_);
    body_ = &body;
    pending_ = threads_ - 1;
    ++round_;
  }
  cv_start_.notify_all();

  participate(0);
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    body_ = nullptr;
  }

  stat_regions_.fetch_add(1, std::memory_order_relaxed);
  stat_tasks_.fetch_add(num_chunks, std::memory_order_relaxed);
  std::uint64_t region_steals = 0;
  for (int w = 0; w < threads_; ++w) region_steals += parts_[w].steals;
  region_steals -= steals_before;
  stat_steals_.fetch_add(region_steals, std::memory_order_relaxed);

  // par.* metrics group: counters for tasks/steals, busy-time spans per
  // worker.  Steal counts are scheduling artifacts — they live here and in
  // the timings section, never in gated report metrics.
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("par.regions").add(1);
  reg.counter("par.tasks_executed").add(num_chunks);
  reg.counter("par.steals").add(region_steals);
  for (int w = 0; w < threads_; ++w) {
    const double busy = parts_[w].busy_seconds - busy_before[w];
    if (busy > 0) {
      reg.record_span("par.worker" + std::to_string(w) + ".busy", busy);
    }
  }

  // Deterministic error selection: the lowest throwing chunk wins.
  std::exception_ptr err;
  std::size_t err_chunk = SIZE_MAX;
  for (int w = 0; w < threads_; ++w) {
    const Participant& p = parts_[w];
    if (p.err && p.err_chunk < err_chunk) {
      err_chunk = p.err_chunk;
      err = p.err;
    }
  }
  if (err) std::rethrow_exception(err);
}

TaskPool::Stats TaskPool::stats() const {
  Stats s;
  s.regions = stat_regions_.load(std::memory_order_relaxed);
  s.tasks = stat_tasks_.load(std::memory_order_relaxed);
  s.steals = stat_steals_.load(std::memory_order_relaxed);
  s.busy_seconds.reserve(static_cast<std::size_t>(threads_));
  for (int w = 0; w < threads_; ++w) {
    s.busy_seconds.push_back(parts_[w].busy_seconds);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Global pool + scoping
// ---------------------------------------------------------------------------

namespace {

std::mutex g_global_mu;
std::unique_ptr<TaskPool>& global_slot() {
  static std::unique_ptr<TaskPool> pool;
  return pool;
}

TaskPool& global_locked() {
  auto& slot = global_slot();
  if (!slot) {
    slot = std::make_unique<TaskPool>(0);
    obs::RunMetadata::set_effective_threads(slot->threads());
  }
  return *slot;
}

// Registered at static-init time so the telemetry bus can sample pool
// stats without obs ever depending on par (the same one-way arrow as
// RunMetadata::set_effective_threads).  Reads the slot directly — a
// telemetry sample must not create the pool — and only ever runs on the
// simulator's main thread, which is also the thread that launches regions,
// so the pool is quiescent whenever the provider reads its stats.
const bool g_worker_stats_registered = [] {
  obs::TelemetryBus::set_worker_stats_provider([]() -> obs::WorkerSnapshot {
    obs::WorkerSnapshot snap;
    std::scoped_lock lock(g_global_mu);
    auto& slot = global_slot();
    if (!slot) return snap;
    TaskPool::Stats s = slot->stats();
    snap.regions = s.regions;
    snap.tasks = s.tasks;
    snap.steals = s.steals;
    snap.busy_seconds = std::move(s.busy_seconds);
    return snap;
  });
  return true;
}();

}  // namespace

TaskPool& TaskPool::global() {
  std::scoped_lock lock(g_global_mu);
  return global_locked();
}

void set_global_threads(int threads) {
  std::scoped_lock lock(g_global_mu);
  auto& slot = global_slot();
  const int resolved = TaskPool::resolve_threads(threads);
  if (slot && slot->threads() == resolved) return;
  slot = std::make_unique<TaskPool>(resolved);
  obs::RunMetadata::set_effective_threads(slot->threads());
}

int global_threads() { return TaskPool::global().threads(); }

TaskPool& current_pool() {
  if (tls_pool_override != nullptr) return *tls_pool_override;
  return TaskPool::global();
}

PoolScope::PoolScope(TaskPool& pool) : prev_(tls_pool_override) {
  tls_pool_override = &pool;
}

PoolScope::~PoolScope() { tls_pool_override = prev_; }

// ---------------------------------------------------------------------------
// Range helpers
// ---------------------------------------------------------------------------

std::size_t suggested_grain(std::size_t total, std::size_t min_grain) {
  const std::size_t threads =
      static_cast<std::size_t>(current_pool().threads());
  const std::size_t tasks = threads * 16;
  std::size_t grain = tasks > 0 ? total / tasks : total;
  if (grain < min_grain) grain = min_grain;
  return grain == 0 ? 1 : grain;
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t, int)>&
        body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t total = end - begin;
  const std::size_t chunks = chunk_count(total, grain);
  current_pool().run_chunks(chunks, [&](std::size_t chunk, int worker) {
    const std::size_t lo = begin + chunk * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    body(chunk, lo, hi, worker);
  });
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_chunks(begin, end, grain,
                      [&](std::size_t, std::size_t lo, std::size_t hi, int) {
                        body(lo, hi);
                      });
}

}  // namespace hyperpath::par
