// Graph cross products (Section 3) and the generalized cross product of two
// sets of graphs (Section 6).
//
// The standard cross (Cartesian) product G × H places a copy of H on every
// "row" v ∈ G and a copy of G on every "column" w ∈ H.  (The paper's edge-set
// display omits the "(w1,w2) ∈ F" condition — an obvious typo; we implement
// the standard Cartesian product, under which Q_n × Q_m = Q_{n+m} as the
// paper states.)
//
// The generalized cross product of two sets R = {R_i} and C = {C_j} of
// graphs, each on vertex set Z_N, is the graph on Z_N × Z_N whose row i
// induces exactly R_i and whose column j induces exactly C_j.  The paper's
// Theorem 4 instantiates it with automorphs of a single graph selected by
// moments: R_i = C_i = G_{φ_{M(i)}} — the *induced cross product* X(G).
#pragma once

#include <functional>
#include <vector>

#include "base/types.hpp"
#include "graph/digraph.hpp"

namespace hyperpath {

/// Vertex ⟨g, h⟩ of G × H gets id g·|H| + h.
Node product_vertex(Node g, Node h, Node h_size);

/// The Cartesian product G × H.
Digraph cross_product(const Digraph& g, const Digraph& h);

/// The generalized cross product of rows R and columns C (Section 6).  Every
/// graph must have exactly N vertices where N = rows.size() = cols.size().
/// Vertex ⟨i, j⟩ (row i, column j) gets id i·N + j.
Digraph generalized_cross_product(const std::vector<Digraph>& rows,
                                  const std::vector<Digraph>& cols);

/// The induced cross product X(G) of Theorem 4.  G has N = 2^dims vertices
/// and an n-copy embedding into Q_dims given by the automorphisms
/// φ_0..φ_{dims-1} of Z_N (φ_k(j) = hypercube address of vertex j under copy
/// k).  Row i and column i of X(G) both carry G_{φ_{M(i)}} where M is the
/// moment function; M(i) is reduced mod dims when dims is not a power of two.
Digraph induced_cross_product(const Digraph& g, int dims,
                              const std::vector<std::vector<Node>>& automorphs);

}  // namespace hyperpath
