// Eulerian circuits of directed multigraphs (Hierholzer's algorithm).
//
// Theorem 2 forms its length-2^{n+1} guest cycle as the Eulerian tour of the
// spanning subgraph of Q_n induced by one row special cycle and one column
// special cycle through every node (in-degree = out-degree = 2 everywhere).
// This module provides the tour for any edge list with balanced degrees and
// a connected support.
#pragma once

#include <vector>

#include "base/types.hpp"

namespace hyperpath {

/// A directed edge list over nodes [0, num_nodes); parallel edges allowed.
struct EdgeList {
  Node num_nodes = 0;
  std::vector<std::pair<Node, Node>> edges;
};

/// True iff every node has in-degree == out-degree and all edges lie in one
/// connected component (ignoring isolated nodes).
bool has_eulerian_circuit(const EdgeList& g);

/// The Eulerian circuit as a node sequence of length |E| + 1 with
/// front() == back(), starting from `start` (which must have an out-edge).
/// Throws if no circuit exists.
std::vector<Node> eulerian_circuit(const EdgeList& g, Node start);

}  // namespace hyperpath
