// Guest-graph builders: every communication graph the paper embeds.
//
// Conventions:
//  * "directed" builders produce the one-directional graph the paper names
//    (e.g. the directed cycle of Section 2);
//  * "symmetric" builders produce both directions of every link, matching
//    the paper's communication model for grids and trees where each process
//    sends to each neighbor;
//  * structured graphs (grid, CCC, butterfly, FFT) come with a layout struct
//    that owns the address arithmetic, so constructions can talk about
//    "level ℓ, column c" instead of raw node ids.
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "graph/digraph.hpp"

namespace hyperpath {

/// The directed cycle 0 → 1 → ... → len-1 → 0.
Digraph directed_cycle(Node len);

/// Both orientations of the cycle.
Digraph symmetric_cycle(Node len);

/// The directed path 0 → 1 → ... → len-1.
Digraph directed_path(Node len);

/// Both orientations of the path.
Digraph symmetric_path(Node len);

// ---------------------------------------------------------------------------
// Grids and tori
// ---------------------------------------------------------------------------

/// A k-axis grid (wrap == false) or torus (wrap == true) with the given side
/// lengths.  Nodes are indexed row-major: axis 0 varies slowest.
struct GridSpec {
  std::vector<Node> sides;
  bool wrap = false;

  Node num_nodes() const;
  int num_axes() const { return static_cast<int>(sides.size()); }

  /// Dense index of a coordinate tuple.
  Node index(const std::vector<Node>& coords) const;

  /// Coordinate tuple of a dense index.
  std::vector<Node> coords(Node v) const;
};

/// The symmetric grid/torus communication graph for `spec`.
Digraph grid_graph(const GridSpec& spec);

/// The *directed* grid/torus: each axis carries only the +1 direction (and
/// the wrap edge for tori) — the per-axis directed cycles/paths Theorem 1
/// widens.  Simultaneous bidirectional traffic would halve the width; run
/// one phase per direction instead (see the relaxation bench).
Digraph grid_graph_directed(const GridSpec& spec);

// ---------------------------------------------------------------------------
// Trees
// ---------------------------------------------------------------------------

/// The complete binary tree with `levels` levels (2^levels − 1 nodes), both
/// edge directions.  Heap indexing: root 0, children of v are 2v+1, 2v+2.
Digraph complete_binary_tree(int levels);

/// A uniformly random binary tree shape with `num_nodes` nodes (each node
/// has 0–2 children), both edge directions.  Returns the parent array too so
/// callers can reconstruct structure.
Digraph random_binary_tree(Node num_nodes, Rng& rng,
                           std::vector<Node>* parent_out = nullptr);

// ---------------------------------------------------------------------------
// Cube-connected cycles, butterflies, FFT graphs (Section 5.1)
// ---------------------------------------------------------------------------

/// Address arithmetic for level/column networks with `levels` levels and
/// 2^`cube_dims` columns.  Node ⟨ℓ, c⟩ has id ℓ·2^n + c.
struct LevelColumnLayout {
  int levels = 0;
  int cube_dims = 0;

  Node num_nodes() const;
  Node id(int level, Node column) const;
  int level_of(Node v) const;
  Node column_of(Node v) const;
};

/// Edge classes of the CCC / butterfly.
enum class CccEdgeKind : std::uint8_t { kStraight, kCross };

/// The n-stage *directed* CCC (Section 5.1): n·2^n nodes; straight edges
/// ⟨ℓ,c⟩ → ⟨ℓ+1 mod n, c⟩ (one orientation), cross edges ⟨ℓ,c⟩ ↔ ⟨ℓ,c⊕2^ℓ⟩
/// (both orientations, per the paper: "cross edges form pairs of oppositely
/// oriented directed edges").  Out-degree 2 at every node.
Digraph ccc_directed(int n);

/// The undirected CCC (both straight-edge orientations too, Section 5.4).
Digraph ccc_symmetric(int n);

/// The n-level *wrapped butterfly*: n·2^n nodes; edges ⟨ℓ,c⟩ → ⟨ℓ+1 mod n,c⟩
/// and ⟨ℓ,c⟩ → ⟨ℓ+1 mod n, c ⊕ 2^ℓ⟩.  Out-degree 2.
Digraph butterfly_directed(int n);

/// Both orientations of every butterfly edge.
Digraph butterfly_symmetric(int n);

/// The (n+1)-level FFT graph: (n+1)·2^n nodes, no wraparound; edges
/// ⟨ℓ,c⟩ → ⟨ℓ+1,c⟩ and ⟨ℓ,c⟩ → ⟨ℓ+1, c ⊕ 2^ℓ⟩ for 0 ≤ ℓ < n.
Digraph fft_directed(int n);

/// Layout helper for the n-stage CCC / n-level butterfly (levels = n,
/// cube_dims = n) and the FFT graph (levels = n+1, cube_dims = n).
LevelColumnLayout ccc_layout(int n);
LevelColumnLayout butterfly_layout(int n);
LevelColumnLayout fft_layout(int n);

}  // namespace hyperpath
