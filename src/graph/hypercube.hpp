// The boolean hypercube Q_n (Section 3 of Greenberg & Bhatt).
//
// Q_n has 2^n nodes with distinct n-bit addresses and a *directed* edge
// (u, v) whenever u and v differ in exactly one bit; the edge lies in
// dimension i when bit i differs.  The paper models every communication link
// as a directed edge, so Q_n has n·2^n directed edges.
//
// We never materialize adjacency: neighbors are computed by bit flips, and
// each directed edge has the canonical id  tail * n + dimension,  which
// doubles as an index into per-link simulator state and congestion counters.
#pragma once

#include <cstdint>
#include <vector>

#include "base/bits.hpp"
#include "base/types.hpp"

namespace hyperpath {
class Digraph;

class Hypercube {
 public:
  /// Constructs Q_n.  n in [1, 30].
  explicit Hypercube(int n);

  int dims() const { return n_; }
  std::uint64_t num_nodes() const { return pow2(n_); }
  std::uint64_t num_directed_edges() const {
    return static_cast<std::uint64_t>(n_) * num_nodes();
  }
  std::uint64_t num_undirected_edges() const {
    return num_directed_edges() / 2;
  }

  bool contains(Node v) const { return v < num_nodes(); }

  /// The neighbor of v across dimension d.
  Node neighbor(Node v, Dim d) const { return flip_bit(v, d); }

  /// True iff (u, v) is a hypercube edge (addresses differ in exactly one
  /// bit).
  bool is_edge(Node u, Node v) const { return is_pow2(u ^ v); }

  /// The dimension of the edge (u, v); requires is_edge(u, v).
  Dim edge_dim(Node u, Node v) const;

  /// Canonical id of the directed edge leaving v across dimension d:
  /// v * n + d.  Ids cover [0, n·2^n).
  std::uint64_t edge_id(Node v, Dim d) const {
    return static_cast<std::uint64_t>(v) * n_ + static_cast<std::uint64_t>(d);
  }

  /// Id of the directed edge (u, v); requires is_edge(u, v).
  std::uint64_t edge_id(Node u, Node v) const {
    return edge_id(u, edge_dim(u, v));
  }

  /// Inverse of edge_id: (tail, dimension).
  std::pair<Node, Dim> edge_of_id(std::uint64_t id) const {
    return {static_cast<Node>(id / n_), static_cast<Dim>(id % n_)};
  }

  /// Materializes Q_n as a Digraph (both directions of every link).  Useful
  /// for generic algorithms; O(n·2^n).
  Digraph to_digraph() const;

  /// Hamming distance between two addresses — the hypercube graph distance.
  int distance(Node u, Node v) const { return popcount(u ^ v); }

 private:
  int n_;
};

/// A walk in the hypercube given as a node sequence.  Valid iff every pair
/// of consecutive nodes is a hypercube edge.
using HostPath = std::vector<Node>;

/// True iff `path` is a valid directed walk in `q` (length >= 1 node; every
/// hop flips exactly one bit).
bool is_valid_path(const Hypercube& q, const HostPath& path);

/// True iff the paths in `bundle` are pairwise edge-disjoint as *directed*
/// paths (the paper's multiple-path requirement).  Node sharing is allowed.
bool paths_edge_disjoint(const Hypercube& q, const std::vector<HostPath>& bundle);

/// Loop-erasure: removes cycles from a walk, yielding a simple path with
/// the same endpoints (used when concatenating per-hop detour paths, which
/// can revisit nodes).
HostPath erase_loops(const HostPath& walk);

}  // namespace hyperpath
