#include "graph/products.hpp"

#include "base/error.hpp"
#include "base/moment.hpp"

namespace hyperpath {

Node product_vertex(Node g, Node h, Node h_size) {
  return g * h_size + h;
}

Digraph cross_product(const Digraph& g, const Digraph& h) {
  const Node ng = g.num_nodes();
  const Node nh = h.num_nodes();
  HP_CHECK(static_cast<std::uint64_t>(ng) * nh <= (1u << 30),
           "product too large");
  DigraphBuilder b(ng * nh);
  // A copy of H in every row g0.
  for (Node g0 = 0; g0 < ng; ++g0) {
    for (const Edge& e : h.edges()) {
      b.add_edge(product_vertex(g0, e.from, nh), product_vertex(g0, e.to, nh));
    }
  }
  // A copy of G in every column h0.
  for (Node h0 = 0; h0 < nh; ++h0) {
    for (const Edge& e : g.edges()) {
      b.add_edge(product_vertex(e.from, h0, nh), product_vertex(e.to, h0, nh));
    }
  }
  return std::move(b).build();
}

Digraph generalized_cross_product(const std::vector<Digraph>& rows,
                                  const std::vector<Digraph>& cols) {
  const Node n = static_cast<Node>(rows.size());
  HP_CHECK(cols.size() == n, "row/column set sizes differ");
  HP_CHECK(n >= 1, "empty cross product");
  for (const Digraph& g : rows) {
    HP_CHECK(g.num_nodes() == n, "row graph vertex set is not Z_N");
  }
  for (const Digraph& g : cols) {
    HP_CHECK(g.num_nodes() == n, "column graph vertex set is not Z_N");
  }
  HP_CHECK(static_cast<std::uint64_t>(n) * n <= (1u << 30),
           "product too large");

  DigraphBuilder b(n * n);
  for (Node i = 0; i < n; ++i) {
    for (const Edge& e : rows[i].edges()) {
      b.add_edge(product_vertex(i, e.from, n), product_vertex(i, e.to, n));
    }
  }
  for (Node j = 0; j < n; ++j) {
    for (const Edge& e : cols[j].edges()) {
      b.add_edge(product_vertex(e.from, j, n), product_vertex(e.to, j, n));
    }
  }
  return std::move(b).build();
}

Digraph induced_cross_product(
    const Digraph& g, int dims,
    const std::vector<std::vector<Node>>& automorphs) {
  const Node n = g.num_nodes();
  HP_CHECK(dims >= 1 && dims <= 15, "dims out of range");
  HP_CHECK(n == (Node{1} << dims), "G must have 2^dims vertices");
  HP_CHECK(automorphs.size() == static_cast<std::size_t>(dims),
           "need one automorphism per copy (dims copies)");
  // R_i = C_i = G_{φ_{M(i)}}.  Cache one relabeling per distinct copy.
  std::vector<Digraph> copy_graph(dims);
  for (int k = 0; k < dims; ++k) {
    HP_CHECK(is_permutation(automorphs[k], n), "copy map is not a permutation");
    copy_graph[k] = relabel(g, automorphs[k]);
  }
  std::vector<Digraph> line(n);
  for (Node i = 0; i < n; ++i) {
    line[i] = copy_graph[moment(i) % static_cast<Node>(dims)];
  }
  std::vector<Digraph> cols = line;
  return generalized_cross_product(line, cols);
}

}  // namespace hyperpath
