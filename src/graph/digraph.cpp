#include "graph/digraph.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace hyperpath {

void DigraphBuilder::add_edge(Node u, Node v) {
  edges_.push_back(Edge{u, v});
}

void DigraphBuilder::add_undirected(Node u, Node v) {
  add_edge(u, v);
  add_edge(v, u);
}

Digraph DigraphBuilder::build() && {
  Digraph g;
  g.num_nodes_ = num_nodes_;
  g.edges_ = std::move(edges_);

  std::sort(g.edges_.begin(), g.edges_.end(),
            [](const Edge& a, const Edge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });

  g.row_start_.assign(num_nodes_ + 1, 0);
  g.in_degree_.assign(num_nodes_, 0);
  for (std::size_t e = 0; e < g.edges_.size(); ++e) {
    const Edge& ed = g.edges_[e];
    HP_CHECK(ed.from < num_nodes_ && ed.to < num_nodes_,
             "edge endpoint out of range");
    HP_CHECK(ed.from != ed.to, "self-loop");
    if (e > 0) {
      HP_CHECK(!(g.edges_[e - 1] == ed), "duplicate directed edge");
    }
    ++g.row_start_[ed.from + 1];
    ++g.in_degree_[ed.to];
  }
  for (Node u = 0; u < num_nodes_; ++u) {
    g.row_start_[u + 1] += g.row_start_[u];
  }
  return g;
}

std::vector<Node> Digraph::out_neighbors(Node u) const {
  std::vector<Node> out;
  out.reserve(out_degree(u));
  for (std::uint32_t e = row_start_[u]; e < row_start_[u + 1]; ++e) {
    out.push_back(edges_[e].to);
  }
  return out;
}

std::size_t Digraph::out_degree(Node u) const {
  return row_start_[u + 1] - row_start_[u];
}

std::size_t Digraph::max_out_degree() const {
  std::size_t d = 0;
  for (Node u = 0; u < num_nodes_; ++u) d = std::max(d, out_degree(u));
  return d;
}

std::size_t Digraph::find_edge(Node u, Node v) const {
  const auto begin = edges_.begin() + row_start_[u];
  const auto end = edges_.begin() + row_start_[u + 1];
  const auto it = std::lower_bound(
      begin, end, v, [](const Edge& e, Node t) { return e.to < t; });
  if (it == end || it->to != v) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - edges_.begin());
}

bool operator==(const Digraph& a, const Digraph& b) {
  return a.num_nodes_ == b.num_nodes_ && a.edges_ == b.edges_;
}

Digraph relabel(const Digraph& g, std::span<const Node> phi) {
  HP_CHECK(phi.size() == g.num_nodes(), "relabel permutation size mismatch");
  HP_CHECK(is_permutation(phi, g.num_nodes()), "relabel map not a permutation");
  DigraphBuilder b(g.num_nodes());
  for (const Edge& e : g.edges()) b.add_edge(phi[e.from], phi[e.to]);
  return std::move(b).build();
}

bool is_permutation(std::span<const Node> phi, Node n) {
  if (phi.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (Node v : phi) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace hyperpath
