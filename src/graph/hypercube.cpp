#include "graph/hypercube.hpp"

#include <unordered_map>
#include <unordered_set>

#include "base/error.hpp"
#include "graph/digraph.hpp"

namespace hyperpath {

Hypercube::Hypercube(int n) : n_(n) {
  HP_CHECK(n >= 1 && n <= 30, "hypercube dimension out of range [1,30]");
}

Dim Hypercube::edge_dim(Node u, Node v) const {
  HP_CHECK(is_edge(u, v), "not a hypercube edge");
  return count_trailing_zeros(u ^ v);
}

Digraph Hypercube::to_digraph() const {
  DigraphBuilder b(static_cast<Node>(num_nodes()));
  for (Node v = 0; v < num_nodes(); ++v) {
    for (Dim d = 0; d < n_; ++d) b.add_edge(v, neighbor(v, d));
  }
  return std::move(b).build();
}

bool is_valid_path(const Hypercube& q, const HostPath& path) {
  if (path.empty()) return false;
  for (Node v : path) {
    if (!q.contains(v)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!q.is_edge(path[i], path[i + 1])) return false;
  }
  return true;
}

HostPath erase_loops(const HostPath& walk) {
  HostPath out;
  std::unordered_map<Node, std::size_t> pos;
  for (Node v : walk) {
    const auto it = pos.find(v);
    if (it != pos.end()) {
      while (out.size() > it->second + 1) {
        pos.erase(out.back());
        out.pop_back();
      }
    } else {
      pos.emplace(v, out.size());
      out.push_back(v);
    }
  }
  return out;
}

bool paths_edge_disjoint(const Hypercube& q,
                         const std::vector<HostPath>& bundle) {
  std::unordered_set<std::uint64_t> used;
  for (const HostPath& p : bundle) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      const std::uint64_t id = q.edge_id(p[i], p[i + 1]);
      if (!used.insert(id).second) return false;
    }
  }
  return true;
}

}  // namespace hyperpath
