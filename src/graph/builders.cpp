#include "graph/builders.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {

Digraph directed_cycle(Node len) {
  HP_CHECK(len >= 2, "cycle needs >= 2 nodes");
  DigraphBuilder b(len);
  for (Node v = 0; v < len; ++v) b.add_edge(v, (v + 1) % len);
  return std::move(b).build();
}

Digraph symmetric_cycle(Node len) {
  HP_CHECK(len >= 3, "symmetric cycle needs >= 3 nodes");
  DigraphBuilder b(len);
  for (Node v = 0; v < len; ++v) b.add_undirected(v, (v + 1) % len);
  return std::move(b).build();
}

Digraph directed_path(Node len) {
  HP_CHECK(len >= 1, "path needs >= 1 node");
  DigraphBuilder b(len);
  for (Node v = 0; v + 1 < len; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Digraph symmetric_path(Node len) {
  HP_CHECK(len >= 1, "path needs >= 1 node");
  DigraphBuilder b(len);
  for (Node v = 0; v + 1 < len; ++v) b.add_undirected(v, v + 1);
  return std::move(b).build();
}

// ---------------------------------------------------------------------------
// Grids
// ---------------------------------------------------------------------------

Node GridSpec::num_nodes() const {
  std::uint64_t n = 1;
  for (Node s : sides) {
    HP_CHECK(s >= 1, "grid side must be >= 1");
    n *= s;
    HP_CHECK(n <= (1u << 30), "grid too large");
  }
  return static_cast<Node>(n);
}

Node GridSpec::index(const std::vector<Node>& c) const {
  HP_CHECK(c.size() == sides.size(), "coordinate arity mismatch");
  std::uint64_t idx = 0;
  for (std::size_t a = 0; a < sides.size(); ++a) {
    HP_CHECK(c[a] < sides[a], "coordinate out of range");
    idx = idx * sides[a] + c[a];
  }
  return static_cast<Node>(idx);
}

std::vector<Node> GridSpec::coords(Node v) const {
  std::vector<Node> c(sides.size());
  for (std::size_t a = sides.size(); a-- > 0;) {
    c[a] = v % sides[a];
    v /= sides[a];
  }
  return c;
}

namespace {

Digraph grid_graph_impl(const GridSpec& spec, bool symmetric) {
  const Node n = spec.num_nodes();
  DigraphBuilder b(n);
  for (Node v = 0; v < n; ++v) {
    std::vector<Node> c = spec.coords(v);
    for (std::size_t a = 0; a < spec.sides.size(); ++a) {
      const Node side = spec.sides[a];
      if (side < 2) continue;
      // Add only the "+1" neighbor in each axis (plus the reverse when
      // symmetric); skip the wrap edge for 2-cycles which would duplicate.
      if (c[a] + 1 < side) {
        std::vector<Node> d = c;
        d[a] = c[a] + 1;
        if (symmetric) {
          b.add_undirected(v, spec.index(d));
        } else {
          b.add_edge(v, spec.index(d));
        }
      } else if (spec.wrap && side > 2) {
        std::vector<Node> d = c;
        d[a] = 0;
        if (symmetric) {
          b.add_undirected(v, spec.index(d));
        } else {
          b.add_edge(v, spec.index(d));
        }
      }
    }
  }
  return std::move(b).build();
}

}  // namespace

Digraph grid_graph(const GridSpec& spec) {
  return grid_graph_impl(spec, /*symmetric=*/true);
}

Digraph grid_graph_directed(const GridSpec& spec) {
  return grid_graph_impl(spec, /*symmetric=*/false);
}

// ---------------------------------------------------------------------------
// Trees
// ---------------------------------------------------------------------------

Digraph complete_binary_tree(int levels) {
  HP_CHECK(levels >= 1 && levels <= 28, "CBT levels out of range");
  const Node n = static_cast<Node>(pow2(levels) - 1);
  DigraphBuilder b(n);
  for (Node v = 0; v < n; ++v) {
    const Node left = 2 * v + 1;
    const Node right = 2 * v + 2;
    if (left < n) b.add_undirected(v, left);
    if (right < n) b.add_undirected(v, right);
  }
  return std::move(b).build();
}

Digraph random_binary_tree(Node num_nodes, Rng& rng,
                           std::vector<Node>* parent_out) {
  HP_CHECK(num_nodes >= 1, "tree needs >= 1 node");
  // Grow the tree by attaching each new node to a uniformly random node
  // that still has a free child slot (< 2 children).  This produces varied
  // shapes from paths to bushy trees; uniformity over shapes is not needed,
  // coverage of shapes is.
  std::vector<Node> parent(num_nodes, kNoNode);
  std::vector<int> child_count(num_nodes, 0);
  std::vector<Node> open{0};  // nodes with < 2 children
  DigraphBuilder b(num_nodes);
  for (Node v = 1; v < num_nodes; ++v) {
    const std::size_t pick = static_cast<std::size_t>(rng.below(open.size()));
    const Node p = open[pick];
    parent[v] = p;
    b.add_undirected(p, v);
    if (++child_count[p] == 2) {
      open[pick] = open.back();
      open.pop_back();
    }
    open.push_back(v);
  }
  if (parent_out) *parent_out = std::move(parent);
  return std::move(b).build();
}

// ---------------------------------------------------------------------------
// CCC / butterfly / FFT
// ---------------------------------------------------------------------------

Node LevelColumnLayout::num_nodes() const {
  return static_cast<Node>(static_cast<std::uint64_t>(levels) *
                           pow2(cube_dims));
}

Node LevelColumnLayout::id(int level, Node column) const {
  HP_CHECK(level >= 0 && level < levels, "level out of range");
  HP_CHECK(column < pow2(cube_dims), "column out of range");
  return static_cast<Node>(static_cast<std::uint64_t>(level) *
                               pow2(cube_dims) +
                           column);
}

int LevelColumnLayout::level_of(Node v) const {
  return static_cast<int>(v / pow2(cube_dims));
}

Node LevelColumnLayout::column_of(Node v) const {
  return static_cast<Node>(v % pow2(cube_dims));
}

LevelColumnLayout ccc_layout(int n) {
  HP_CHECK(n >= 1 && n <= 24, "CCC order out of range");
  return LevelColumnLayout{n, n};
}

LevelColumnLayout butterfly_layout(int n) { return ccc_layout(n); }

LevelColumnLayout fft_layout(int n) {
  HP_CHECK(n >= 1 && n <= 24, "FFT order out of range");
  return LevelColumnLayout{n + 1, n};
}

Digraph ccc_directed(int n) {
  HP_CHECK(n >= 2, "directed CCC needs n >= 2 (n = 1 degenerates)");
  const LevelColumnLayout lay = ccc_layout(n);
  DigraphBuilder b(lay.num_nodes());
  const Node cols = static_cast<Node>(pow2(n));
  for (int l = 0; l < n; ++l) {
    for (Node c = 0; c < cols; ++c) {
      b.add_edge(lay.id(l, c), lay.id((l + 1) % n, c));  // straight
      // Cross edges come in oppositely oriented pairs; each direction is
      // added from its own tail, so both orientations appear exactly once.
      b.add_edge(lay.id(l, c), lay.id(l, c ^ bit(l)));
    }
  }
  return std::move(b).build();
}

Digraph ccc_symmetric(int n) {
  // n >= 3 so that the length-n column cycles are simple (n = 2 would make
  // the down-straight edge coincide with the next level's up-straight edge).
  HP_CHECK(n >= 3, "symmetric CCC needs n >= 3");
  const LevelColumnLayout lay = ccc_layout(n);
  DigraphBuilder b(lay.num_nodes());
  const Node cols = static_cast<Node>(pow2(n));
  for (int l = 0; l < n; ++l) {
    for (Node c = 0; c < cols; ++c) {
      b.add_edge(lay.id(l, c), lay.id((l + 1) % n, c));
      b.add_edge(lay.id((l + 1) % n, c), lay.id(l, c));
      b.add_edge(lay.id(l, c), lay.id(l, c ^ bit(l)));
    }
  }
  return std::move(b).build();
}

Digraph butterfly_directed(int n) {
  HP_CHECK(n >= 2, "directed butterfly needs n >= 2");
  const LevelColumnLayout lay = butterfly_layout(n);
  DigraphBuilder b(lay.num_nodes());
  const Node cols = static_cast<Node>(pow2(n));
  for (int l = 0; l < n; ++l) {
    for (Node c = 0; c < cols; ++c) {
      const int l1 = (l + 1) % n;
      b.add_edge(lay.id(l, c), lay.id(l1, c));
      b.add_edge(lay.id(l, c), lay.id(l1, c ^ bit(l)));
    }
  }
  return std::move(b).build();
}

Digraph butterfly_symmetric(int n) {
  HP_CHECK(n >= 3, "symmetric butterfly needs n >= 3");
  const LevelColumnLayout lay = butterfly_layout(n);
  DigraphBuilder b(lay.num_nodes());
  const Node cols = static_cast<Node>(pow2(n));
  for (int l = 0; l < n; ++l) {
    for (Node c = 0; c < cols; ++c) {
      const int l1 = (l + 1) % n;
      b.add_undirected(lay.id(l, c), lay.id(l1, c));
      b.add_undirected(lay.id(l, c), lay.id(l1, c ^ bit(l)));
    }
  }
  return std::move(b).build();
}

Digraph fft_directed(int n) {
  const LevelColumnLayout lay = fft_layout(n);
  DigraphBuilder b(lay.num_nodes());
  const Node cols = static_cast<Node>(pow2(n));
  for (int l = 0; l < n; ++l) {
    for (Node c = 0; c < cols; ++c) {
      b.add_edge(lay.id(l, c), lay.id(l + 1, c));
      b.add_edge(lay.id(l, c), lay.id(l + 1, c ^ bit(l)));
    }
  }
  return std::move(b).build();
}

}  // namespace hyperpath
