// A compact immutable directed graph.
//
// Guest graphs in the paper (cycles, grids, CCCs, butterflies, trees) are
// small relative to the host hypercube, but we still store them in CSR form:
// the simulator walks adjacency constantly, and edge ids double as indices
// into per-edge path bundles and congestion counters.
//
// Nodes are dense indices in [0, num_nodes()).  Edges are directed; an
// undirected guest edge is represented by two directed edges (the paper's
// communication model is directed: "each processor can send one message
// packet over each outgoing link").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/types.hpp"

namespace hyperpath {

/// A directed edge (from, to).
struct Edge {
  Node from = 0;
  Node to = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Digraph;

/// Accumulates edges, then freezes into a Digraph.
class DigraphBuilder {
 public:
  explicit DigraphBuilder(Node num_nodes) : num_nodes_(num_nodes) {}

  /// Adds the directed edge (u, v).  Self-loops and duplicates are rejected
  /// at build() time.
  void add_edge(Node u, Node v);

  /// Adds both (u, v) and (v, u).
  void add_undirected(Node u, Node v);

  Node num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Freezes into an immutable Digraph.  Verifies node ranges, rejects
  /// self-loops and duplicate directed edges.
  Digraph build() &&;

 private:
  Node num_nodes_;
  std::vector<Edge> edges_;
};

/// Immutable CSR digraph.  Edge ids are stable: edge e is edges()[e], and
/// out_edge_ids(u) lists the ids of u's outgoing edges (sorted by head).
class Digraph {
 public:
  Digraph() = default;

  Node num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }

  const Edge& edge(std::size_t e) const { return edges_[e]; }
  std::span<const Edge> edges() const { return edges_; }

  /// Half-open id range [first, last) of u's outgoing edges.  Because edges
  /// are sorted by (from, to), a node's out-edges have consecutive ids.
  std::pair<std::uint32_t, std::uint32_t> out_edge_range(Node u) const {
    return {row_start_[u], row_start_[u + 1]};
  }

  /// Targets of u's outgoing edges, sorted.
  std::vector<Node> out_neighbors(Node u) const;

  std::size_t out_degree(Node u) const;
  std::size_t in_degree(Node u) const { return in_degree_[u]; }

  /// Maximum out-degree over all nodes (the paper's δ in Theorem 4).
  std::size_t max_out_degree() const;

  /// The edge id of (u, v), or SIZE_MAX if absent.  O(log deg).
  std::size_t find_edge(Node u, Node v) const;

  bool has_edge(Node u, Node v) const {
    return find_edge(u, v) != static_cast<std::size_t>(-1);
  }

  /// Structural equality in the paper's Section 6 sense: same vertex set and
  /// exactly the same edge set (isomorphic under the identity map).
  friend bool operator==(const Digraph& a, const Digraph& b);

 private:
  friend class DigraphBuilder;

  Node num_nodes_ = 0;
  std::vector<Edge> edges_;                 // sorted by (from, to)
  std::vector<std::uint32_t> row_start_;    // CSR offsets, size num_nodes_+1
  std::vector<std::uint32_t> in_degree_;
};

/// Relabels the vertices of g by the permutation phi: edge (u,v) becomes
/// (phi[u], phi[v]).  This is the paper's G_φ (Section 6).
Digraph relabel(const Digraph& g, std::span<const Node> phi);

/// True iff phi is a permutation of [0, n).
bool is_permutation(std::span<const Node> phi, Node n);

}  // namespace hyperpath
