#include "graph/euler.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace hyperpath {

namespace {

struct Adjacency {
  // CSR of out-edge ids per node.
  std::vector<std::uint32_t> row_start;
  std::vector<std::uint32_t> edge_ids;

  explicit Adjacency(const EdgeList& g) {
    row_start.assign(g.num_nodes + 1, 0);
    for (const auto& [u, v] : g.edges) {
      HP_CHECK(u < g.num_nodes && v < g.num_nodes, "edge out of range");
      ++row_start[u + 1];
    }
    for (Node u = 0; u < g.num_nodes; ++u) row_start[u + 1] += row_start[u];
    edge_ids.resize(g.edges.size());
    std::vector<std::uint32_t> fill(row_start.begin(), row_start.end() - 1);
    for (std::uint32_t e = 0; e < g.edges.size(); ++e) {
      edge_ids[fill[g.edges[e].first]++] = e;
    }
  }
};

}  // namespace

bool has_eulerian_circuit(const EdgeList& g) {
  std::vector<std::int64_t> balance(g.num_nodes, 0);
  std::vector<Node> touched;
  for (const auto& [u, v] : g.edges) {
    ++balance[u];
    --balance[v];
    touched.push_back(u);
  }
  for (Node u = 0; u < g.num_nodes; ++u) {
    if (balance[u] != 0) return false;
  }
  if (g.edges.empty()) return true;

  // Connectivity of the edge support via undirected DFS over the edge list.
  Adjacency out(g);
  // Build reverse adjacency as well so the undirected walk can go both ways.
  EdgeList rev{g.num_nodes, {}};
  rev.edges.reserve(g.edges.size());
  for (const auto& [u, v] : g.edges) rev.edges.emplace_back(v, u);
  Adjacency in(rev);

  std::vector<bool> seen(g.num_nodes, false);
  std::vector<Node> stack{g.edges.front().first};
  seen[stack.front()] = true;
  while (!stack.empty()) {
    const Node u = stack.back();
    stack.pop_back();
    for (std::uint32_t i = out.row_start[u]; i < out.row_start[u + 1]; ++i) {
      const Node v = g.edges[out.edge_ids[i]].second;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
    for (std::uint32_t i = in.row_start[u]; i < in.row_start[u + 1]; ++i) {
      const Node v = rev.edges[in.edge_ids[i]].second;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  for (const auto& [u, v] : g.edges) {
    if (!seen[u] || !seen[v]) return false;
  }
  return true;
}

std::vector<Node> eulerian_circuit(const EdgeList& g, Node start) {
  HP_CHECK(has_eulerian_circuit(g), "graph has no Eulerian circuit");
  HP_CHECK(!g.edges.empty(), "empty graph has no circuit");

  Adjacency adj(g);
  std::vector<std::uint32_t> next(adj.row_start.begin(),
                                  adj.row_start.end() - 1);
  HP_CHECK(next[start] < adj.row_start[start + 1], "start has no out-edge");

  // Hierholzer: walk until stuck (back at a node with no unused out-edge),
  // recording the circuit in reverse on unwind.
  std::vector<Node> circuit;
  circuit.reserve(g.edges.size() + 1);
  std::vector<Node> stack{start};
  while (!stack.empty()) {
    const Node u = stack.back();
    if (next[u] < adj.row_start[u + 1]) {
      const std::uint32_t e = adj.edge_ids[next[u]++];
      stack.push_back(g.edges[e].second);
    } else {
      circuit.push_back(u);
      stack.pop_back();
    }
  }
  std::reverse(circuit.begin(), circuit.end());
  HP_CHECK(circuit.size() == g.edges.size() + 1,
           "Eulerian walk did not use every edge");
  return circuit;
}

}  // namespace hyperpath
