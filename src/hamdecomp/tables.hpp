// Precomputed Hamiltonian decompositions of even hypercubes.
//
// The implementation file tables.cpp is *generated* by the
// gen_hamdecomp_tables tool (see tools/): it runs the solver once per
// dimension and stores each Hamiltonian cycle as its transition-dimension
// string (character 'a' + d for a step across dimension d, starting from
// node 0).  Tables keep the library deterministic and fast at runtime; every
// table entry is re-verified by hamiltonian_decomposition() before use.
#pragma once

#include <optional>
#include <string>

#include "hamdecomp/decomposition.hpp"

namespace hyperpath {

/// The table entry for Q_dims (even dims only), or nullopt if not tabled.
std::optional<HamDecomposition> table_decomposition(int dims);

/// Encodes a cycle's transition string (for the generator tool).
std::string encode_cycle_transitions(const std::vector<Node>& cycle);

/// Decodes a transition string starting at node `start` into the closed node
/// sequence.
std::vector<Node> decode_cycle_transitions(const std::string& transitions,
                                           Node start);

}  // namespace hyperpath
