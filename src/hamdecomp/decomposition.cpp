#include "hamdecomp/decomposition.hpp"

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "hamdecomp/solver.hpp"
#include "hamdecomp/tables.hpp"

namespace hyperpath {

void HamDecomposition::verify_or_throw() const {
  HP_CHECK(dims >= 1 && dims <= 30, "decomposition dims out of range");
  const std::uint64_t n_nodes = pow2(dims);
  const std::size_t expected_cycles = static_cast<std::size_t>(dims / 2);
  HP_CHECK(cycles.size() == expected_cycles,
           "wrong number of Hamiltonian cycles");
  if (dims % 2 == 0) {
    HP_CHECK(matching.empty(), "even decomposition must have no matching");
  } else {
    HP_CHECK(matching.size() == n_nodes / 2, "matching has wrong size");
  }

  // Each undirected edge of Q_dims must be used exactly once across all
  // parts.  Key an undirected edge by (lo-endpoint, dimension).
  std::set<std::pair<Node, Dim>> used;
  auto use_edge = [&](Node a, Node b) {
    HP_CHECK(a < n_nodes && b < n_nodes, "node outside hypercube");
    HP_CHECK(is_pow2(a ^ b), "pair is not a hypercube edge");
    const Dim d = count_trailing_zeros(a ^ b);
    const Node lo = test_bit(a, d) ? b : a;
    HP_CHECK(used.emplace(lo, d).second, "edge used twice across parts");
  };

  for (const auto& cycle : cycles) {
    HP_CHECK(cycle.size() == n_nodes, "cycle is not Hamiltonian (length)");
    std::vector<bool> seen(n_nodes, false);
    for (Node v : cycle) {
      HP_CHECK(v < n_nodes, "cycle node outside hypercube");
      HP_CHECK(!seen[v], "cycle revisits a node");
      seen[v] = true;
    }
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      use_edge(cycle[i], cycle[(i + 1) % cycle.size()]);
    }
  }

  std::vector<bool> matched(n_nodes, false);
  for (const auto& [a, b] : matching) {
    use_edge(a, b);
    HP_CHECK(!matched[a] && !matched[b], "matching repeats a node");
    matched[a] = matched[b] = true;
  }
  if (!matching.empty()) {
    for (Node v = 0; v < n_nodes; ++v) {
      HP_CHECK(matched[v], "matching is not perfect");
    }
  }

  HP_CHECK(used.size() == static_cast<std::uint64_t>(dims) * n_nodes / 2,
           "parts do not cover every hypercube edge");
}

HamDecomposition splice_odd_decomposition(const HamDecomposition& even) {
  HP_CHECK(even.dims % 2 == 0, "splice input must be even-dimensional");
  const int n = even.dims + 1;
  const Node half = static_cast<Node>(pow2(even.dims));

  HamDecomposition odd;
  odd.dims = n;

  // For cycle i, pick the splice edge (cycle[s], cycle[s+1]) greedily so all
  // splice endpoints are distinct across cycles.
  std::vector<bool> reserved(half, false);
  std::vector<std::size_t> splice_at(even.cycles.size());
  for (std::size_t i = 0; i < even.cycles.size(); ++i) {
    const auto& cyc = even.cycles[i];
    bool found = false;
    for (std::size_t s = 0; s < cyc.size(); ++s) {
      const Node a = cyc[s];
      const Node b = cyc[(s + 1) % cyc.size()];
      if (!reserved[a] && !reserved[b]) {
        reserved[a] = reserved[b] = true;
        splice_at[i] = s;
        found = true;
        break;
      }
    }
    HP_CHECK(found, "no vertex-disjoint splice edge available");
  }

  // Build each merged Hamiltonian cycle of Q_{n}: with C = v_0..v_{L-1} and
  // splice edge (v_s, v_{s+1}):
  //   v_{s+1}, v_{s+2}, ..., v_s, v_s', v_{s-1}', ..., v_{s+1}', (close)
  // where x' = x + 2^{even.dims} is x's twin in the upper half.
  for (std::size_t i = 0; i < even.cycles.size(); ++i) {
    const auto& cyc = even.cycles[i];
    const std::size_t L = cyc.size();
    const std::size_t s = splice_at[i];
    std::vector<Node> merged;
    merged.reserve(2 * L);
    // Lower half: v_{s+1} ... v_s (forward order around the cycle).
    for (std::size_t j = 1; j <= L; ++j) merged.push_back(cyc[(s + j) % L]);
    // Upper half: v_s' then walking backwards v_{s-1}' ... v_{s+1}'.
    for (std::size_t j = 0; j < L; ++j) {
      merged.push_back(cyc[(s + L - j) % L] + half);
    }
    odd.cycles.push_back(std::move(merged));
  }

  // Matching: every cross edge except the 2·(#cycles) used by the splices,
  // plus the removed intra-half edges from both halves.
  for (Node v = 0; v < half; ++v) {
    if (!reserved[v]) odd.matching.emplace_back(v, v + half);
  }
  for (std::size_t i = 0; i < even.cycles.size(); ++i) {
    const auto& cyc = even.cycles[i];
    const Node a = cyc[splice_at[i]];
    const Node b = cyc[(splice_at[i] + 1) % cyc.size()];
    odd.matching.emplace_back(a, b);
    odd.matching.emplace_back(a + half, b + half);
  }
  return odd;
}

namespace {

HamDecomposition build_decomposition(int n) {
  if (n == 1) {
    HamDecomposition d;
    d.dims = 1;
    d.matching.emplace_back(0, 1);
    return d;
  }
  if (n % 2 == 1) {
    return splice_odd_decomposition(hamiltonian_decomposition(n - 1));
  }
  if (auto tabled = table_decomposition(n)) {
    return *std::move(tabled);
  }
  // Deterministic fallback: fixed seed per dimension.
  return solve_even_decomposition(n, /*seed=*/0xC0FFEEull + n);
}

}  // namespace

const HamDecomposition& hamiltonian_decomposition(int n) {
  HP_CHECK(n >= 1 && n <= 15, "hamiltonian_decomposition supports n in [1,15]");
  // recursive_mutex: building an odd dimension recurses into n-1.
  static std::recursive_mutex mu;
  static std::map<int, HamDecomposition> cache;
  std::scoped_lock lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    HamDecomposition d = build_decomposition(n);
    d.verify_or_throw();
    it = cache.emplace(n, std::move(d)).first;
  }
  return it->second;
}

}  // namespace hyperpath
