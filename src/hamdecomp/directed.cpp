#include "hamdecomp/directed.hpp"

#include <set>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {

DirectedCycleFamily::DirectedCycleFamily(int dims)
    : DirectedCycleFamily(hamiltonian_decomposition(dims)) {}

DirectedCycleFamily::DirectedCycleFamily(const HamDecomposition& d)
    : dims_(d.dims) {
  const std::uint64_t n_nodes = pow2(dims_);
  succ_.assign(2 * d.cycles.size(), std::vector<Node>(n_nodes, kNoNode));
  for (std::size_t i = 0; i < d.cycles.size(); ++i) {
    const auto& cyc = d.cycles[i];
    for (std::size_t j = 0; j < cyc.size(); ++j) {
      const Node a = cyc[j];
      const Node b = cyc[(j + 1) % cyc.size()];
      succ_[2 * i][a] = b;      // forward orientation
      succ_[2 * i + 1][b] = a;  // reverse orientation
    }
  }
}

std::vector<Node> DirectedCycleFamily::sequence(int cycle, Node start) const {
  HP_CHECK(cycle >= 0 && cycle < num_cycles(), "cycle index out of range");
  const std::uint64_t n_nodes = pow2(dims_);
  std::vector<Node> seq;
  seq.reserve(n_nodes);
  Node v = start;
  for (std::uint64_t i = 0; i < n_nodes; ++i) {
    seq.push_back(v);
    v = next(cycle, v);
  }
  HP_CHECK(v == start, "directed cycle does not close at expected length");
  return seq;
}

void DirectedCycleFamily::verify_or_throw() const {
  const std::uint64_t n_nodes = pow2(dims_);
  HP_CHECK(num_cycles() == 2 * (dims_ / 2), "wrong cycle count for Lemma 1");
  std::set<std::pair<Node, Node>> used;  // directed edges across the family
  for (int c = 0; c < num_cycles(); ++c) {
    std::vector<bool> seen(n_nodes, false);
    Node v = 0;
    for (std::uint64_t i = 0; i < n_nodes; ++i) {
      const Node w = next(c, v);
      HP_CHECK(w != kNoNode, "cycle successor undefined");
      HP_CHECK(is_pow2(v ^ w), "dilation-1 violated: step is not an edge");
      HP_CHECK(!seen[v], "cycle revisits a node");
      seen[v] = true;
      HP_CHECK(used.emplace(v, w).second,
               "congestion-1 violated: directed edge reused");
      // Opposite orientations must be mutual reverses.
      HP_CHECK(next(c ^ 1, w) == v, "paired cycle is not the reverse");
      v = w;
    }
    HP_CHECK(v == 0, "cycle does not close");
  }
}

}  // namespace hyperpath
