#include "hamdecomp/solver.hpp"

#include <algorithm>
#include <array>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "obs/profile.hpp"

namespace hyperpath {

// ---------------------------------------------------------------------------
// CubeSubgraph
// ---------------------------------------------------------------------------

CubeSubgraph::CubeSubgraph(int dims, bool full) : dims_(dims) {
  HP_CHECK(dims >= 1 && dims <= 20, "CubeSubgraph dims out of range");
  const std::uint32_t all = full ? ((dims == 32) ? ~0u : ((1u << dims) - 1)) : 0u;
  mask_.assign(pow2(dims), all);
}

void CubeSubgraph::remove_edge(Node v, Dim d) {
  HP_CHECK(has_edge(v, d), "removing absent edge");
  mask_[v] &= ~(1u << d);
  mask_[flip_bit(v, d)] &= ~(1u << d);
}

void CubeSubgraph::add_edge(Node v, Dim d) {
  HP_CHECK(!has_edge(v, d), "adding present edge");
  mask_[v] |= 1u << d;
  mask_[flip_bit(v, d)] |= 1u << d;
}

int CubeSubgraph::degree(Node v) const { return std::popcount(mask_[v]); }

// ---------------------------------------------------------------------------
// Pósa-rotation Hamiltonian cycle heuristic
// ---------------------------------------------------------------------------

namespace {

// Picks a uniformly random set bit of mask (mask != 0).
Dim random_set_bit(std::uint32_t mask, Rng& rng) {
  const int k = std::popcount(mask);
  int pick = static_cast<int>(rng.below(static_cast<std::uint64_t>(k)));
  while (pick-- > 0) mask &= mask - 1;
  return count_trailing_zeros(mask);
}

}  // namespace

std::optional<std::vector<Node>> find_hamiltonian_cycle(
    const CubeSubgraph& g, Rng& rng, std::uint64_t max_steps) {
  HP_PROFILE_SPAN("posa_cycle");
  const std::uint64_t n_nodes = g.num_nodes();
  std::vector<Node> path;
  std::vector<std::int32_t> pos(n_nodes, -1);  // index on path, or -1

  auto restart = [&] {
    for (Node v : path) pos[v] = -1;
    path.clear();
    const Node s = static_cast<Node>(rng.below(n_nodes));
    path.push_back(s);
    pos[s] = 0;
  };
  restart();

  for (std::uint64_t step = 0; step < max_steps; ++step) {
    const Node e = path.back();

    // Try to extend with an unvisited neighbor (random choice).
    std::uint32_t fresh = 0;
    for (std::uint32_t m = g.neighbor_mask(e); m != 0; m &= m - 1) {
      const Dim d = count_trailing_zeros(m);
      if (pos[flip_bit(e, d)] < 0) fresh |= 1u << d;
    }
    if (fresh != 0) {
      const Dim d = random_set_bit(fresh, rng);
      const Node v = flip_bit(e, d);
      pos[v] = static_cast<std::int32_t>(path.size());
      path.push_back(v);
      continue;
    }

    // Complete path: close into a cycle if the endpoints are adjacent in g.
    if (path.size() == n_nodes && is_pow2(e ^ path.front()) &&
        g.has_edge(e, count_trailing_zeros(e ^ path.front()))) {
      return path;
    }

    // Rotate: pick a random on-path neighbor v = path[i] (not the current
    // predecessor) and reverse the suffix after it.  New endpoint: path[i+1].
    std::uint32_t cand = g.neighbor_mask(e);
    // Exclude the predecessor edge (reversing there is a no-op).
    if (path.size() >= 2) {
      const Node pred = path[path.size() - 2];
      cand &= ~(1u << count_trailing_zeros(e ^ pred));
    }
    if (cand == 0) {
      restart();
      continue;
    }
    const Dim d = random_set_bit(cand, rng);
    const Node v = flip_bit(e, d);
    const std::int32_t i = pos[v];
    std::reverse(path.begin() + i + 1, path.end());
    for (std::size_t j = static_cast<std::size_t>(i) + 1; j < path.size(); ++j) {
      pos[path[j]] = static_cast<std::int32_t>(j);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// 4-regular split
// ---------------------------------------------------------------------------

namespace {

// Undirected edge ids within a CubeSubgraph: canonical endpoint is the one
// with bit d clear.
struct UEdge {
  Node lo;  // endpoint with bit d == 0
  Dim d;
};

std::vector<UEdge> collect_edges(const CubeSubgraph& g) {
  std::vector<UEdge> edges;
  for (Node v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t m = g.neighbor_mask(v); m != 0; m &= m - 1) {
      const Dim d = count_trailing_zeros(m);
      if (!test_bit(v, d)) edges.push_back(UEdge{v, d});
    }
  }
  return edges;
}

// Eulerian circuit of a connected even-degree undirected graph given as an
// edge list with per-node incidence.  Returns the oriented edge sequence as
// (edge index, direction) where direction 0 = lo→hi.
std::optional<std::vector<std::pair<std::uint32_t, int>>> euler_undirected(
    const CubeSubgraph& g, const std::vector<UEdge>& edges) {
  const std::uint64_t n_nodes = g.num_nodes();
  // incidence[v] = list of edge indices touching v.
  std::vector<std::vector<std::uint32_t>> inc(n_nodes);
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    inc[edges[e].lo].push_back(e);
    inc[flip_bit(edges[e].lo, edges[e].d)].push_back(e);
  }
  std::vector<std::uint32_t> next(n_nodes, 0);
  std::vector<bool> used(edges.size(), false);

  std::vector<std::pair<Node, std::uint32_t>> stack;  // (node, edge taken to it)
  std::vector<std::pair<std::uint32_t, int>> circuit;
  const Node start = edges.empty() ? 0 : edges[0].lo;
  stack.emplace_back(start, UINT32_MAX);
  while (!stack.empty()) {
    const Node u = stack.back().first;
    bool advanced = false;
    while (next[u] < inc[u].size()) {
      const std::uint32_t e = inc[u][next[u]++];
      if (used[e]) continue;
      used[e] = true;
      const Node other = (edges[e].lo == u) ? flip_bit(u, edges[e].d)
                                            : edges[e].lo;
      stack.emplace_back(other, e);
      advanced = true;
      break;
    }
    if (!advanced) {
      const std::uint32_t via = stack.back().second;
      stack.pop_back();
      if (via != UINT32_MAX) {
        // Edge `via` was traversed *into* u; in the final circuit order it
        // is traversed tail→head where head == u.
        const Node head = u;
        const int dir = (edges[via].lo == head) ? 1 : 0;  // 0 = lo→hi
        circuit.emplace_back(via, dir);
      }
    }
  }
  if (circuit.size() != edges.size()) return std::nullopt;  // disconnected
  std::reverse(circuit.begin(), circuit.end());
  return circuit;
}

// A 2-factor as per-node neighbor pairs.
struct TwoFactor {
  // For each node, the bitmask of incident dimensions (exactly two bits).
  std::vector<std::uint32_t> mask;

  explicit TwoFactor(std::uint64_t n_nodes) : mask(n_nodes, 0) {}

  void add(Node lo, Dim d) {
    mask[lo] |= 1u << d;
    mask[flip_bit(lo, d)] |= 1u << d;
  }
  void remove(Node lo, Dim d) {
    mask[lo] &= ~(1u << d);
    mask[flip_bit(lo, d)] &= ~(1u << d);
  }
  bool has(Node v, Dim d) const { return (mask[v] >> d) & 1u; }
};

// Number of cycles of a 2-factor (every node must have degree exactly 2).
int count_cycles(const TwoFactor& f) {
  const std::uint64_t n = f.mask.size();
  std::vector<bool> seen(n, false);
  int cycles = 0;
  for (Node s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++cycles;
    Node prev = kNoNode;
    Node v = s;
    while (!seen[v]) {
      seen[v] = true;
      std::uint32_t m = f.mask[v];
      // Step across an incident edge that does not lead back to prev.
      Dim step = count_trailing_zeros(m);
      if (prev != kNoNode && flip_bit(v, step) == prev) {
        m &= m - 1;
        step = count_trailing_zeros(m);
      }
      prev = v;
      v = flip_bit(v, step);
    }
  }
  return cycles;
}

// Extracts the closed node sequence of a single-cycle 2-factor.
std::vector<Node> extract_cycle(const TwoFactor& f) {
  const std::uint64_t n = f.mask.size();
  std::vector<Node> seq;
  seq.reserve(n);
  Node prev = kNoNode;
  Node v = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    seq.push_back(v);
    std::uint32_t m = f.mask[v];
    Dim step = count_trailing_zeros(m);
    if (prev != kNoNode && flip_bit(v, step) == prev) {
      m &= m - 1;
      step = count_trailing_zeros(m);
    }
    prev = v;
    v = flip_bit(v, step);
  }
  return seq;
}

}  // namespace

std::optional<std::pair<std::vector<Node>, std::vector<Node>>>
split_four_regular(const CubeSubgraph& g, Rng& rng, std::uint64_t max_flips) {
  HP_PROFILE_SPAN("split_four_regular");
  const std::uint64_t n_nodes = g.num_nodes();
  for (Node v = 0; v < n_nodes; ++v) {
    HP_CHECK(g.degree(v) == 4, "split_four_regular needs a 4-regular graph");
  }
  const std::vector<UEdge> edges = collect_edges(g);
  const auto circuit = euler_undirected(g, edges);
  if (!circuit) return std::nullopt;  // disconnected remainder

  // Petersen split: orient along the Euler circuit, then 2-color oriented
  // edges so each node gets one out-edge and one in-edge of each color.
  // Because each node has out-degree 2 and in-degree 2 in the orientation,
  // the "out-slot / in-slot" bipartite multigraph is 2-regular; alternating
  // around its cycles yields the coloring.
  std::vector<std::array<std::uint32_t, 2>> out_edges(
      n_nodes, {UINT32_MAX, UINT32_MAX});
  std::vector<std::array<std::uint32_t, 2>> in_edges(
      n_nodes, {UINT32_MAX, UINT32_MAX});
  std::vector<Node> tail_of(edges.size()), head_of(edges.size());
  for (const auto& [e, dir] : *circuit) {
    const Node lo = edges[e].lo;
    const Node hi = flip_bit(lo, edges[e].d);
    const Node t = dir == 0 ? lo : hi;
    const Node h = dir == 0 ? hi : lo;
    tail_of[e] = t;
    head_of[e] = h;
    (out_edges[t][0] == UINT32_MAX ? out_edges[t][0] : out_edges[t][1]) = e;
    (in_edges[h][0] == UINT32_MAX ? in_edges[h][0] : in_edges[h][1]) = e;
  }

  std::vector<int> color(edges.size(), -1);
  for (std::uint32_t e0 = 0; e0 < edges.size(); ++e0) {
    if (color[e0] >= 0) continue;
    std::uint32_t e = e0;
    int c = 0;
    while (color[e] < 0) {
      color[e] = c;
      // At the head of e, take the *other* in-edge; it must get the other
      // color; then at that edge's tail, take the other out-edge, etc.
      const Node h = head_of[e];
      const std::uint32_t other_in =
          (in_edges[h][0] == e) ? in_edges[h][1] : in_edges[h][0];
      if (color[other_in] < 0) color[other_in] = 1 - c;
      const Node t = tail_of[other_in];
      const std::uint32_t other_out =
          (out_edges[t][0] == other_in) ? out_edges[t][1] : out_edges[t][0];
      e = other_out;
      // e keeps color c (same tail parity chain).
    }
  }

  TwoFactor f[2] = {TwoFactor(n_nodes), TwoFactor(n_nodes)};
  for (std::uint32_t e = 0; e < edges.size(); ++e) {
    f[color[e]].add(edges[e].lo, edges[e].d);
  }
  for (Node v = 0; v < n_nodes; ++v) {
    if (std::popcount(f[0].mask[v]) != 2 || std::popcount(f[1].mask[v]) != 2) {
      return std::nullopt;  // coloring failed (should not happen)
    }
  }

  int cycles[2] = {count_cycles(f[0]), count_cycles(f[1])};

  // Alternating-cycle local search.
  std::vector<std::int64_t> visit_time(2 * n_nodes, -1);
  std::int64_t epoch = 0;
  std::uint64_t flips = 0;
  while ((cycles[0] > 1 || cycles[1] > 1) && flips < max_flips) {
    ++flips;
    // Random alternating walk; state = (node, factor-to-leave-by).
    ++epoch;
    Node v = static_cast<Node>(rng.below(n_nodes));
    int fac = static_cast<int>(rng.below(2));
    std::vector<std::pair<Node, Dim>> walk;  // edge i leaves walk-node i
    std::vector<int> walk_fac;
    std::int64_t loop_start = -1;
    // Track used undirected edges per walk to keep the loop edge-simple.
    // A walk is short (expected O(sqrt states)); linear scan is fine.
    auto edge_used = [&](Node a, Dim d, int fc) {
      const Node lo = test_bit(a, d) ? flip_bit(a, d) : a;
      for (std::size_t i = 0; i < walk.size(); ++i) {
        if (walk_fac[i] != fc) continue;
        const Node wlo = test_bit(walk[i].first, walk[i].second)
                             ? flip_bit(walk[i].first, walk[i].second)
                             : walk[i].first;
        if (wlo == lo && walk[i].second == d) return true;
      }
      return false;
    };
    bool stuck = false;
    while (true) {
      const std::size_t state = 2 * v + static_cast<std::size_t>(fac);
      if (visit_time[state] == epoch) {
        // Found the loop: it spans walk entries [first occurrence, end).
        for (std::size_t i = 0; i < walk.size(); ++i) {
          if (walk[i].first == v && walk_fac[i] == fac) {
            loop_start = static_cast<std::int64_t>(i);
            break;
          }
        }
        break;
      }
      visit_time[state] = epoch;
      // Choose an unused incident edge in factor `fac`.
      std::uint32_t m = f[fac].mask[v];
      std::uint32_t options = 0;
      for (std::uint32_t mm = m; mm != 0; mm &= mm - 1) {
        const Dim d = count_trailing_zeros(mm);
        if (!edge_used(v, d, fac)) options |= 1u << d;
      }
      if (options == 0) {
        stuck = true;
        break;
      }
      const Dim d = random_set_bit(options, rng);
      walk.emplace_back(v, d);
      walk_fac.push_back(fac);
      v = flip_bit(v, d);
      fac = 1 - fac;
      if (walk.size() > 8 * n_nodes) {
        stuck = true;  // runaway walk; give up on this sample
        break;
      }
    }
    if (stuck || loop_start < 0) continue;

    // Tentatively flip the loop's edges between factors.
    auto apply = [&](bool undo) {
      for (std::size_t i = static_cast<std::size_t>(loop_start);
           i < walk.size(); ++i) {
        const auto [a, d] = walk[i];
        const Node lo = test_bit(a, d) ? flip_bit(a, d) : a;
        const int from = undo ? 1 - walk_fac[i] : walk_fac[i];
        f[from].remove(lo, d);
        f[1 - from].add(lo, d);
      }
    };
    apply(false);
    const int nc0 = count_cycles(f[0]);
    const int nc1 = count_cycles(f[1]);
    // Accept improvements and sideways moves; occasionally accept a small
    // regression to escape plateaus.
    const int old_obj = cycles[0] + cycles[1];
    const int new_obj = nc0 + nc1;
    const bool accept =
        new_obj < old_obj || (new_obj == old_obj && rng.chance(0.5)) ||
        (new_obj == old_obj + 1 && rng.chance(0.05));
    if (accept) {
      cycles[0] = nc0;
      cycles[1] = nc1;
    } else {
      apply(true);
    }
  }
  if (cycles[0] != 1 || cycles[1] != 1) return std::nullopt;
  return std::make_pair(extract_cycle(f[0]), extract_cycle(f[1]));
}

// ---------------------------------------------------------------------------
// Full even-dimension solver
// ---------------------------------------------------------------------------

HamDecomposition solve_even_decomposition(int dims, std::uint64_t seed,
                                          int max_attempts) {
  HP_PROFILE_SPAN("construct/hamdecomp_solver");
  HP_CHECK(dims >= 2 && dims % 2 == 0 && dims <= 16,
           "solver handles even dims in [2, 16]");
  if (dims == 2) {
    HamDecomposition d;
    d.dims = 2;
    d.cycles.push_back({0b00, 0b01, 0b11, 0b10});
    d.verify_or_throw();
    return d;
  }

  const std::uint64_t n_nodes = pow2(dims);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(attempt));
    CubeSubgraph g(dims, /*full=*/true);
    HamDecomposition result;
    result.dims = dims;
    bool failed = false;

    // Peel down to a 4-regular remainder.
    for (int peel = 0; peel < dims / 2 - 2; ++peel) {
      const auto cycle =
          find_hamiltonian_cycle(g, rng, /*max_steps=*/400 * n_nodes);
      if (!cycle) {
        failed = true;
        break;
      }
      for (std::size_t i = 0; i < cycle->size(); ++i) {
        const Node a = (*cycle)[i];
        const Node b = (*cycle)[(i + 1) % cycle->size()];
        g.remove_edge(a, count_trailing_zeros(a ^ b));
      }
      result.cycles.push_back(*cycle);
    }
    if (failed) continue;

    const auto pair = split_four_regular(g, rng, /*max_flips=*/400 * n_nodes);
    if (!pair) continue;
    result.cycles.push_back(pair->first);
    result.cycles.push_back(pair->second);

    try {
      result.verify_or_throw();
    } catch (const Error&) {
      continue;
    }
    return result;
  }
  throw Error("Hamiltonian decomposition solver exhausted its attempts for Q_" +
              std::to_string(dims));
}

}  // namespace hyperpath
