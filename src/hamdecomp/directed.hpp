// Lemma 1 (Section 3.1): multiple-copy embeddings of directed cycles.
//
// Orienting each of the ⌊n/2⌋ undirected Hamiltonian cycles of Q_n in both
// directions yields 2⌊n/2⌋ *directed* Hamiltonian cycles — n copies for even
// n, n−1 for odd n — each with dilation 1, and jointly with congestion 1
// (no directed hypercube edge is used by two cycles).
//
// The numbering follows Theorem 1's requirement: directed cycles 2i and
// 2i+1 are the two orientations of undirected cycle i ("names differing in
// the least significant bit correspond to opposite orientations").
#pragma once

#include <vector>

#include "base/types.hpp"
#include "hamdecomp/decomposition.hpp"

namespace hyperpath {

class DirectedCycleFamily {
 public:
  /// Builds the family over Q_dims from hamiltonian_decomposition(dims).
  explicit DirectedCycleFamily(int dims);

  /// Builds from an explicit decomposition (used by tests).
  explicit DirectedCycleFamily(const HamDecomposition& decomposition);

  int dims() const { return dims_; }

  /// 2⌊n/2⌋ directed cycles: n for even n, n−1 for odd n (Lemma 1).
  int num_cycles() const { return static_cast<int>(succ_.size()); }

  /// The successor of node v along directed cycle c.
  Node next(int cycle, Node v) const { return succ_[cycle][v]; }

  /// The predecessor of v along cycle c (== next along the paired opposite
  /// orientation, cycle XOR 1).
  Node prev(int cycle, Node v) const { return succ_[cycle ^ 1][v]; }

  /// The full closed node sequence of cycle c starting from `start`.
  std::vector<Node> sequence(int cycle, Node start = 0) const;

  /// Throws unless the family satisfies Lemma 1: every cycle is a directed
  /// Hamiltonian cycle, cycles 2i/2i+1 are mutual reverses, and no directed
  /// hypercube edge is used twice across the family.
  void verify_or_throw() const;

 private:
  int dims_;
  std::vector<std::vector<Node>> succ_;  // [cycle][node] → next node
};

}  // namespace hyperpath
