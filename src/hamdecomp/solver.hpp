// Constructive solver for Hamiltonian decompositions of even hypercubes.
//
// Strategy for Q_{2k} (k >= 2):
//
//   1. *Peel*: repeatedly find a Hamiltonian cycle of the remaining
//      (still-regular) subgraph with a Pósa-rotation heuristic and remove
//      its edges, until the remainder is 4-regular (k - 2 peels).
//   2. *Split*: decompose the 4-regular remainder into two 2-factors via an
//      Euler-orientation + bipartite alternation (Petersen's construction),
//      then run an alternating-cycle local search: sample a closed walk that
//      alternates between the two factors and flip the membership of its
//      edges (this preserves 2-regularity of both factors) whenever it
//      reduces the total number of cycles, until both factors are single
//      Hamiltonian cycles.
//
// Either stage can fail for an unlucky random stream (the peel can strand a
// non-Hamiltonian remainder); the driver retries with fresh seeds and
// *verifies* the final decomposition, so a returned value is always correct.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "hamdecomp/decomposition.hpp"

namespace hyperpath {

/// An undirected subgraph of Q_n stored as per-node neighbor sets (dims as
/// a bitmask: bit d set means the edge across dimension d is present).
class CubeSubgraph {
 public:
  CubeSubgraph(int dims, bool full);

  int dims() const { return dims_; }
  std::uint64_t num_nodes() const { return mask_.size(); }

  bool has_edge(Node v, Dim d) const { return (mask_[v] >> d) & 1u; }
  void remove_edge(Node v, Dim d);
  void add_edge(Node v, Dim d);
  int degree(Node v) const;

  /// Dimensions of v's remaining incident edges.
  std::uint32_t neighbor_mask(Node v) const { return mask_[v]; }

 private:
  int dims_;
  std::vector<std::uint32_t> mask_;  // per node: incident-dimension bitmask
};

/// Finds a Hamiltonian cycle of `g` (all nodes of Q_n) with Pósa rotations.
/// Returns the closed node sequence, or nullopt if the attempt budget runs
/// out.  Does not modify g.
std::optional<std::vector<Node>> find_hamiltonian_cycle(const CubeSubgraph& g,
                                                        Rng& rng,
                                                        std::uint64_t max_steps);

/// Splits a connected 4-regular subgraph of Q_n into two Hamiltonian cycles
/// using the alternating-cycle local search.  Returns nullopt on failure
/// (caller retries with a different remainder).
std::optional<std::pair<std::vector<Node>, std::vector<Node>>>
split_four_regular(const CubeSubgraph& g, Rng& rng, std::uint64_t max_flips);

/// Full solver: Hamiltonian decomposition of Q_{2k}, retrying with derived
/// seeds until verification passes.  Throws after `max_attempts` failures.
HamDecomposition solve_even_decomposition(int dims, std::uint64_t seed,
                                          int max_attempts = 64);

}  // namespace hyperpath
