#include <string>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "hamdecomp/tables.hpp"

namespace hyperpath {

std::string encode_cycle_transitions(const std::vector<Node>& cycle) {
  HP_CHECK(!cycle.empty(), "empty cycle");
  std::string s;
  s.reserve(cycle.size());
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const Node a = cycle[i];
    const Node b = cycle[(i + 1) % cycle.size()];
    HP_CHECK(is_pow2(a ^ b), "cycle step is not a hypercube edge");
    s.push_back(static_cast<char>('a' + count_trailing_zeros(a ^ b)));
  }
  return s;
}

std::vector<Node> decode_cycle_transitions(const std::string& transitions,
                                           Node start) {
  std::vector<Node> cycle;
  cycle.reserve(transitions.size());
  Node v = start;
  for (char c : transitions) {
    cycle.push_back(v);
    v = flip_bit(v, c - 'a');
  }
  HP_CHECK(v == start, "transition string does not close");
  return cycle;
}

}  // namespace hyperpath
