#include "base/gray.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {

std::vector<Dim> gray_transitions_open(int k) {
  HP_CHECK(k >= 1 && k <= 30, "gray code order out of range");
  // G'_1 = (0); G'_{i+1} = G'_i ∘ i ∘ G'_i.
  std::vector<Dim> seq{0};
  for (int i = 1; i < k; ++i) {
    const std::size_t len = seq.size();
    seq.push_back(i);
    for (std::size_t j = 0; j < len; ++j) seq.push_back(seq[j]);
  }
  return seq;
}

std::vector<Dim> gray_transitions_closed(int k) {
  std::vector<Dim> seq = gray_transitions_open(k);
  seq.push_back(k - 1);
  return seq;
}

Dim gray_transition_at(int k, std::uint64_t i) {
  HP_CHECK(k >= 1 && k <= 30, "gray code order out of range");
  HP_CHECK(i < pow2(k), "gray transition index out of range");
  if (i == pow2(k) - 1) return k - 1;
  return count_trailing_zeros(i + 1);
}

Node gray_node_at(int k, std::uint64_t i) {
  HP_CHECK(k >= 1 && k <= 30, "gray code order out of range");
  HP_CHECK(i < pow2(k), "gray node index out of range");
  return static_cast<Node>(i ^ (i >> 1));
}

std::vector<Node> gray_cycle_nodes(int k) {
  const std::uint64_t size = pow2(k);
  std::vector<Node> nodes(size);
  for (std::uint64_t i = 0; i < size; ++i) nodes[i] = gray_node_at(k, i);
  return nodes;
}

std::uint64_t gray_rank(int k, Node v) {
  HP_CHECK(k >= 1 && k <= 30, "gray code order out of range");
  HP_CHECK(v < pow2(k), "node outside Q_k");
  // Invert g(i) = i ^ (i >> 1) by prefix-xor.
  std::uint64_t i = v;
  for (int shift = 1; shift < k; shift <<= 1) i ^= i >> shift;
  return i;
}

}  // namespace hyperpath
