// Error handling for the hyperpath library.
//
// Public API functions validate their inputs and report violations by
// throwing `hyperpath::Error` (a std::runtime_error) with a message that
// names the failing condition and its source location.  Internal invariant
// checks that guard construction correctness (e.g. "these w paths must be
// edge-disjoint") use the same mechanism so that a bug in a construction can
// never silently produce an invalid embedding.
#pragma once

#include <stdexcept>
#include <string>

namespace hyperpath {

/// Exception type thrown on contract violations and failed verifications.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace hyperpath

/// Checks a condition that must hold for the library to be correct; throws
/// hyperpath::Error with context on failure.  Always enabled (not tied to
/// NDEBUG): embeddings are cheap to verify relative to simulating them, and
/// a wrong embedding invalidates every downstream measurement.
#define HP_CHECK(cond, msg)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::hyperpath::detail::throw_check_failure(#cond, __FILE__, __LINE__,    \
                                               (msg));                       \
    }                                                                        \
  } while (0)
