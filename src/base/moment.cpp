#include "base/moment.hpp"

#include "base/error.hpp"

namespace hyperpath {

Node moment(Node v) {
  Node m = 0;
  while (v != 0) {
    const int i = __builtin_ctz(v);
    m ^= static_cast<Node>(i);
    v &= v - 1;  // clear lowest set bit
  }
  return m;
}

Node moment_mod(Node v, Node m) {
  HP_CHECK(m >= 1, "moment modulus must be positive");
  return moment(v) % m;
}

}  // namespace hyperpath
