#include "base/rng.hpp"

#include <numeric>

#include "base/error.hpp"

namespace hyperpath {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  HP_CHECK(bound >= 1, "Rng::below bound must be positive");
  // Lemire's nearly-divisionless method with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  HP_CHECK(lo <= hi, "Rng::between empty range");
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // 53-bit uniform double in [0,1).
  const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return u < p;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  std::iota(p.begin(), p.end(), 0u);
  shuffle(p);
  return p;
}

}  // namespace hyperpath
