// Moments of hypercube nodes (Definition 1 / Lemma 2 of Greenberg & Bhatt).
//
// The moment of an n-bit address v is the XOR, over every set bit position i
// of v, of the ⌈log n⌉-bit binary representation b(i) of i:
//
//     M(0) = 0,    M(v) = ⊕_{i : v_i = 1} b(i).
//
// Lemma 2: all n hypercube neighbors of a node have pairwise distinct
// moments, because flipping bit i changes the moment by exactly b(i).  This
// single property drives every multiple-path construction in the paper: a
// node's neighbors can be assigned distinct "special cycles" (indexed by
// moment), which is what makes the projected length-3 detour paths
// edge-disjoint.
#pragma once

#include "base/types.hpp"

namespace hyperpath {

/// M(v): XOR of the positions of the set bits of v.
/// The result fits in ceil_log2(n) bits when v has n bit positions.
/// 32-bit in and out is exact for every supported host (n <= 30): moments
/// are functions of *addresses*, never of 64-bit guest/edge ids.
Node moment(Node v);

/// The moment reduced modulo m — the paper selects "directed cycle number
/// M(x)" among m available cycles; when the moment range (a power of two)
/// exceeds m we reduce it.  Neighbor-distinctness is preserved as long as
/// the moment range does not exceed m, which holds in every construction
/// where it matters (the theorems arrange ceil_log2 ranges to line up); the
/// callers that rely on distinctness re-verify it structurally.
Node moment_mod(Node v, Node m);

}  // namespace hyperpath
