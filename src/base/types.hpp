// Core scalar types shared across the hyperpath library.
//
// Hypercube nodes are addressed by their n-bit labels; we support hypercubes
// up to 30 dimensions, so a 32-bit node id always suffices.  Dimensions are
// small non-negative integers; we use `int` for arithmetic convenience and
// validate ranges at API boundaries.
#pragma once

#include <cstdint>

namespace hyperpath {

/// A vertex label.  For the hypercube Q_n this is the n-bit address of the
/// node; for generic guest graphs it is a dense index in [0, |V|).
using Node = std::uint32_t;

/// A hypercube dimension index in [0, n).
using Dim = int;

/// Invalid/absent node sentinel.
inline constexpr Node kNoNode = 0xFFFFFFFFu;

}  // namespace hyperpath
