// Binary reflected Gray codes (Section 3 of Greenberg & Bhatt).
//
// The paper defines the *transition sequence* G'_k recursively:
//
//     G'_1 = 0           G'_{i+1} = G'_i ∘ i ∘ G'_i        (∘ = concatenation)
//
// and the *closed* sequence G_k = G'_k ∘ (k-1), of length 2^k.  Starting from
// node 0^k and flipping, at step i, the dimension G_k(i), one traverses the
// Hamiltonian cycle H_k of the hypercube Q_k:
//
//     H_k(0) = 0,   H_k(i+1) = H_k(i) XOR 2^{G_k(i)}.
//
// Equivalently H_k(i) = i ^ (i >> 1) (the classical Gray code value) and
// G_k(i) = ctz(i+1) for i < 2^k - 1, G_k(2^k - 1) = k - 1.  Both forms are
// provided; tests cross-check them against the recursive definition.
//
// Width discipline: ranks/step indices are uniformly 64-bit (2^k steps for
// k up to 30 approach the 32-bit edge of what a walk can index; derived
// quantities like dense link ids n·2^n overflow uint32 outright past
// n = 27).  Node values stay 32-bit — hosts stop at Q_30.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace hyperpath {

/// The transition sequence G'_k (length 2^k - 1), per the paper's recursion.
/// Element i is the hypercube dimension flipped by step i of the Gray walk.
std::vector<Dim> gray_transitions_open(int k);

/// The closed transition sequence G_k = G'_k ∘ (k-1), length 2^k.  Following
/// all 2^k transitions from any start node returns to that node.
std::vector<Dim> gray_transitions_closed(int k);

/// G_k(i) in O(1): ctz(i+1) for i < 2^k - 1, and k-1 for the closing step.
Dim gray_transition_at(int k, std::uint64_t i);

/// H_k(i): the i-th node of the Gray-code Hamiltonian cycle of Q_k,
/// H_k(i) = i ^ (i >> 1).
Node gray_node_at(int k, std::uint64_t i);

/// The full node sequence H_k(0..2^k-1).
std::vector<Node> gray_cycle_nodes(int k);

/// Inverse of gray_node_at: the rank i with H_k(i) == v.
std::uint64_t gray_rank(int k, Node v);

}  // namespace hyperpath
