// Deterministic pseudo-random number generation.
//
// Every randomized component in the library (the Hamiltonian-decomposition
// solver's Pósa rotations, random permutation workloads, fault injection)
// takes an explicit 64-bit seed so that tests and benchmarks are exactly
// reproducible.  We implement xoshiro256** seeded via splitmix64 rather than
// using std::mt19937 so that the stream is identical across standard-library
// implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace hyperpath {

/// xoshiro256** with splitmix64 seeding.  Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform in [0, bound) via Lemire rejection; bound must be >= 1.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// True with probability p (0 <= p <= 1).
  bool chance(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace hyperpath
