// bits.hpp is header-only; this translation unit exists so the helpers get
// compiled (and warned about) even if no other TU includes them yet.
#include "base/bits.hpp"
