// Bit-manipulation helpers used throughout the library.
//
// Hypercube addresses are bit strings, hypercube edges flip single bits, and
// the paper's constructions constantly split addresses into bit fields
// (Theorem 1's row/position/block fields, Section 5's windows).  These
// helpers keep that bit surgery readable at the call sites.
#pragma once

#include <bit>
#include <cstdint>

#include "base/error.hpp"
#include "base/types.hpp"

namespace hyperpath {

/// 2^k as a 64-bit value.  Checked: k must be < 63.
inline std::uint64_t pow2(int k) {
  HP_CHECK(k >= 0 && k < 63, "pow2 exponent out of range");
  return std::uint64_t{1} << k;
}

/// The single-bit mask for dimension d.
inline Node bit(Dim d) { return Node{1} << d; }

/// Tests bit d of address v.
inline bool test_bit(Node v, Dim d) { return (v >> d) & 1u; }

/// Flips bit d of address v: the neighbor of v across dimension d in Q_n.
inline Node flip_bit(Node v, Dim d) { return v ^ bit(d); }

/// Number of set bits.
inline int popcount(Node v) { return std::popcount(v); }

/// floor(log2(v)) for v >= 1.
inline int floor_log2(std::uint64_t v) {
  HP_CHECK(v >= 1, "floor_log2 of zero");
  return 63 - std::countl_zero(v);
}

/// ceil(log2(v)) for v >= 1.  ceil_log2(1) == 0.
inline int ceil_log2(std::uint64_t v) {
  HP_CHECK(v >= 1, "ceil_log2 of zero");
  return (v == 1) ? 0 : floor_log2(v - 1) + 1;
}

/// True iff v is a power of two (v >= 1).
inline bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Number of trailing zero bits (v must be nonzero).
inline int count_trailing_zeros(std::uint64_t v) {
  HP_CHECK(v != 0, "ctz of zero");
  return std::countr_zero(v);
}

/// Extracts `width` bits of v starting at bit `lo` (little-endian fields).
inline Node bit_field(Node v, int lo, int width) {
  HP_CHECK(lo >= 0 && width >= 0 && lo + width <= 32, "bad bit field");
  if (width == 0) return 0;
  return (v >> lo) & ((width == 32) ? ~Node{0} : (bit(width) - 1));
}

/// Reverses the low `width` bits of v (higher bits must be zero).
inline Node bit_reverse(Node v, int width) {
  HP_CHECK(width >= 0 && width <= 32, "bad reverse width");
  HP_CHECK(width == 32 || (v >> width) == 0, "value wider than field");
  Node r = 0;
  for (int i = 0; i < width; ++i) {
    if ((v >> i) & 1u) r |= Node{1} << (width - 1 - i);
  }
  return r;
}

/// Replaces `width` bits of v starting at bit `lo` with `value`.
inline Node set_bit_field(Node v, int lo, int width, Node value) {
  HP_CHECK(lo >= 0 && width >= 0 && lo + width <= 32, "bad bit field");
  if (width == 0) return v;
  const Node mask = ((width == 32) ? ~Node{0} : (bit(width) - 1)) << lo;
  return (v & ~mask) | ((value << lo) & mask);
}

}  // namespace hyperpath
