#include "base/error.hpp"

#include <sstream>

namespace hyperpath::detail {

void throw_check_failure(const char* cond, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "hyperpath check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace hyperpath::detail
