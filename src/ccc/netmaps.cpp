#include "ccc/netmaps.hpp"

#include <algorithm>
#include <queue>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {

GraphEmbedding butterfly_into_ccc(int n) {
  HP_CHECK(n >= 2, "butterfly_into_ccc needs n >= 2");
  const LevelColumnLayout lay = butterfly_layout(n);
  GraphEmbedding emb(butterfly_directed(n), ccc_directed(n));

  std::vector<Node> eta(emb.guest().num_nodes());
  for (Node v = 0; v < eta.size(); ++v) eta[v] = v;  // identity layout
  emb.set_node_map(std::move(eta));

  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    const int l = lay.level_of(ge.from);
    const Node c_from = lay.column_of(ge.from);
    const Node c_to = lay.column_of(ge.to);
    if (c_from == c_to) {
      // Straight butterfly edge → straight CCC edge.
      emb.set_path(e, {ge.from, ge.to});
    } else {
      // Cross butterfly edge ⟨ℓ,c⟩ → ⟨ℓ+1, c⊕2^ℓ⟩ → CCC cross then straight.
      emb.set_path(e, {ge.from, lay.id(l, c_to), ge.to});
    }
  }
  return emb;
}

GraphEmbedding butterfly_into_ccc_symmetric(int n) {
  HP_CHECK(n >= 3, "butterfly_into_ccc_symmetric needs n >= 3");
  const LevelColumnLayout lay = butterfly_layout(n);
  GraphEmbedding emb(butterfly_symmetric(n), ccc_symmetric(n));

  std::vector<Node> eta(emb.guest().num_nodes());
  for (Node v = 0; v < eta.size(); ++v) eta[v] = v;  // identity layout
  emb.set_node_map(std::move(eta));

  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    const int l_from = lay.level_of(ge.from);
    const int l_to = lay.level_of(ge.to);
    const Node c_from = lay.column_of(ge.from);
    const Node c_to = lay.column_of(ge.to);
    const bool up = (l_to == (l_from + 1) % n);
    if (c_from == c_to) {
      // Straight edge, either direction: a single CCC straight edge.
      emb.set_path(e, {ge.from, ge.to});
    } else if (up) {
      // Up-cross ⟨ℓ,c⟩ → ⟨ℓ+1, c⊕2^ℓ⟩: cross at ℓ then straight up.
      emb.set_path(e, {ge.from, lay.id(l_from, c_to), ge.to});
    } else {
      // Down-cross ⟨ℓ+1, c⟩ → ⟨ℓ, c⊕2^ℓ⟩: straight down then cross at ℓ.
      emb.set_path(e, {ge.from, lay.id(l_to, c_from), ge.to});
    }
  }
  return emb;
}

GraphEmbedding fft_into_ccc(int n) {
  HP_CHECK(n >= 2, "fft_into_ccc needs n >= 2");
  const LevelColumnLayout fft_lay = fft_layout(n);
  const LevelColumnLayout ccc_lay = ccc_layout(n);
  GraphEmbedding emb(fft_directed(n), ccc_directed(n));

  std::vector<Node> eta(emb.guest().num_nodes());
  for (Node v = 0; v < eta.size(); ++v) {
    eta[v] = ccc_lay.id(fft_lay.level_of(v) % n, fft_lay.column_of(v));
  }
  emb.set_node_map(std::move(eta));

  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    const int l = fft_lay.level_of(ge.from);  // < n by construction
    const Node c_from = fft_lay.column_of(ge.from);
    const Node c_to = fft_lay.column_of(ge.to);
    const Node host_from = emb.host_of(ge.from);
    const Node host_to = emb.host_of(ge.to);
    if (c_from == c_to) {
      emb.set_path(e, {host_from, host_to});
    } else {
      emb.set_path(e, {host_from, ccc_lay.id(l, c_to), host_to});
    }
  }
  return emb;
}

GraphEmbedding cbt_into_butterfly(int m) {
  HP_CHECK(m >= 3, "cbt_into_butterfly needs m >= 3");
  const LevelColumnLayout lay = butterfly_layout(m);
  GraphEmbedding emb(complete_binary_tree(m), butterfly_symmetric(m));

  // Heap node 2^d − 1 + j (depth d, offset j < 2^d) ↦ butterfly
  // ⟨d, reverse_d(j)⟩: descending left keeps the column (straight edge),
  // descending right at depth d adds 2^d (cross edge), so the column is the
  // root path read LSB-first — the bit-reversed heap offset.
  const Node n_tree = emb.guest().num_nodes();
  std::vector<Node> eta(n_tree);
  for (int d = 0; d < m; ++d) {
    for (Node j = 0; j < pow2(d); ++j) {
      eta[static_cast<Node>(pow2(d) - 1 + j)] = lay.id(d, bit_reverse(j, d));
    }
  }
  emb.set_node_map(std::move(eta));

  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    // Every CBT edge maps to the single butterfly edge between the images:
    // child ⟨d+1, j⟩ is the straight neighbor, child ⟨d+1, j + 2^d⟩ the
    // cross neighbor, and the symmetric butterfly has both directions.
    emb.set_path(e, {emb.host_of(ge.from), emb.host_of(ge.to)});
  }
  return emb;
}

GraphEmbedding tree_into_cbt(const Digraph& tree,
                             const std::vector<Node>& parent, int levels) {
  const Node n_tree = tree.num_nodes();
  HP_CHECK(parent.size() == n_tree, "parent array size mismatch");
  HP_CHECK(levels >= 1 && levels <= 28, "CBT levels out of range");
  const Node capacity = static_cast<Node>(pow2(levels) - 1);
  HP_CHECK(n_tree <= capacity, "tree larger than target CBT");

  GraphEmbedding emb(tree, complete_binary_tree(levels));

  // BFS order of the guest tree from its root (node 0) mapped onto the heap
  // (BFS) order of the CBT.  Load 1 by construction.
  std::vector<Node> bfs;
  bfs.reserve(n_tree);
  std::queue<Node> q;
  q.push(0);
  std::vector<bool> seen(n_tree, false);
  seen[0] = true;
  while (!q.empty()) {
    const Node v = q.front();
    q.pop();
    bfs.push_back(v);
    for (Node w : tree.out_neighbors(v)) {
      if (!seen[w] && parent[w] == v) {
        seen[w] = true;
        q.push(w);
      }
    }
  }
  HP_CHECK(bfs.size() == n_tree, "tree is not connected from node 0");

  std::vector<Node> eta(n_tree);
  for (Node i = 0; i < n_tree; ++i) eta[bfs[i]] = i;
  emb.set_node_map(std::move(eta));

  // Route each guest edge along the unique CBT tree path through the LCA.
  auto cbt_path = [](Node a, Node b) {
    std::vector<Node> up{a}, down{b};
    while (up.back() != down.back()) {
      if (up.back() > down.back()) {
        up.push_back((up.back() - 1) / 2);
      } else {
        down.push_back((down.back() - 1) / 2);
      }
    }
    up.insert(up.end(), down.rbegin() + 1, down.rend());
    return up;
  };
  for (std::size_t e = 0; e < tree.num_edges(); ++e) {
    const Edge& ge = tree.edge(e);
    emb.set_path(e, cbt_path(emb.host_of(ge.from), emb.host_of(ge.to)));
  }
  return emb;
}

}  // namespace hyperpath
