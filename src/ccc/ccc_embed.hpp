// CCC → hypercube embeddings (Section 5).
//
// An embedding of the n-stage CCC into Q_{n+r} (r = log n) is specified —
// as in the abstract setting of §5.2 — by a length-r window W, a disjoint
// length-n window W̄, and a Hamiltonian signature cycle H over the r window
// bits:
//
//     vertex ⟨ℓ, c⟩  ↦  the node with signature H(ℓ) on W and c on W̄.
//
// Level-ℓ straight edges then map to dimension W(G_r(ℓ)) and level-ℓ cross
// edges to dimension W̄(ℓ) — dilation 1 throughout (we implement the case
// n = 2^r, the paper's own standing assumption in §5.3).
//
// Theorem 3 chooses n copies that jointly have edge-congestion 2:
//
//     W^k(0) = 1,   W^k(i) = 2^i + ρ_i(k)                (overlapping windows)
//     W̄^k(ℓ) = ℓ if ℓ ∉ W^k, else n + ⌊log ℓ⌋
//     H^k(ℓ) = H_r(ℓ) ⊕ b(k)
//
// Every hypercube edge is the image of at most one cross-edge (Lemmas 5–6)
// and at most one straight-edge — except dimension 1, which carries no
// cross-edges and at most two straight-edges (Lemma 8).
#pragma once

#include "ccc/windows.hpp"
#include "embed/embedding.hpp"
#include "embed/graph_embedding.hpp"
#include "graph/builders.hpp"

namespace hyperpath {

/// The data specifying one CCC copy embedding (§5.2).
struct CccEmbedSpec {
  int n = 0;  // CCC stages; must be a power of two here
  int r = 0;  // log2(n)
  Window w;               // length r: straight-edge dimensions
  Window wbar;            // length n: cross-edge dimensions
  std::vector<Node> ham;  // ham[ℓ] = signature on w of level ℓ (length n)

  /// Host address of CCC vertex ⟨level, column⟩.
  Node map_vertex(int level, Node column) const;

  /// Checks the spec is well-formed: windows disjoint and jointly covering
  /// n + r distinct dimensions, and ham a closed Gray walk (consecutive
  /// signatures differ in exactly bit G_r(ℓ)).
  void verify_or_throw() const;
};

/// The canonical single-copy spec (Lemma 4 shape): W = (n, n+1, …, n+r−1),
/// W̄ = (0, …, n−1), H = the reflected Gray cycle H_r.
CccEmbedSpec ccc_single_spec(int n);

/// Theorem 3's spec for copy k (0 ≤ k < n).
CccEmbedSpec ccc_multicopy_spec(int n, int k);

/// Lemma 4: the n-stage directed CCC in Q_{n+log n}, dilation 1 (n = 2^r).
KCopyEmbedding ccc_single_embedding(int n);

/// Lemma 4 for general n ≥ 3: the n-stage directed CCC in Q_{n+⌈log n⌉}
/// with dilation 1 when n is even and dilation 2 when n is odd (the paper's
/// exact claim).  The signature cycle over the ⌈log n⌉ window bits is a
/// length-n cycle of Q_r found by search (even n), or a near-cycle whose
/// single distance-2 seam gives the odd case its one dilation-2 level
/// (odd closed walks cannot exist in a bipartite cube).
KCopyEmbedding ccc_single_embedding_general(int n);

/// Theorem 3: n copies of the n-stage directed CCC in Q_{n+log n} with
/// dilation 1 and edge-congestion 2.
KCopyEmbedding ccc_multicopy_embedding(int n);

/// §5.4: the undirected variant (both straight-edge orientations included);
/// edge-congestion at most 4.
KCopyEmbedding ccc_multicopy_embedding_undirected(int n);

/// Extracts copy `copy` of a k-copy embedding as a GraphEmbedding whose
/// host is the materialized hypercube digraph (for composition).
GraphEmbedding to_graph_embedding(const KCopyEmbedding& emb, int copy);

}  // namespace hyperpath
