// Windows, signatures, and prefix tools (Section 5.1 definitions).
//
//   * A window W is an ordered subset of the dimensions of Q_k.
//   * The signature σ_W(v) packs the address bits of v at the dimensions
//     listed by W: bit i of σ_W(v) equals bit W(i) of v.
//   * ρ_i(a) is the length-i prefix of a sequence; for an r-bit number we
//     read bits most-significant first, so ρ_i(k) = k >> (r − i).
//   * λ(a, b) is the length of the longest common prefix.
#pragma once

#include <vector>

#include "base/types.hpp"

namespace hyperpath {

using Window = std::vector<Dim>;

/// σ_W(v): bit i of the result is bit W[i] of v.
Node signature(Node v, const Window& w);

/// Writes `sig` into the window positions of `v`: bit W[i] of the result is
/// bit i of sig; all other bits of v are preserved.  Inverse of signature()
/// on the window bits.
Node apply_signature(Node v, const Window& w, Node sig);

/// ρ_i(k) for an r-bit number read MSB-first: the top i bits, k >> (r − i).
Node prefix_bits(Node k, int i, int r);

/// λ(a, b) over r-bit numbers read MSB-first: the number of leading bits on
/// which a and b agree (r if a == b).
int common_prefix_len(Node a, Node b, int r);

/// λ over signature values stored position-first: position i lives in bit i,
/// so the "prefix" is read from bit 0 upward.
int common_prefix_len_lsb(Node a, Node b, int r);

/// λ over windows (sequences of dimensions).
int common_prefix_len(const Window& a, const Window& b);

/// True iff the windows share no dimension.
bool windows_disjoint(const Window& a, const Window& b);

}  // namespace hyperpath
