// Embeddings between the guest networks themselves (Sections 5.4, 6.1, 6.2).
//
//   * butterfly → CCC with dilation 2, congestion 2 (§5.4): straight edges
//     map to straight edges; a butterfly cross edge ⟨ℓ,c⟩→⟨ℓ+1, c⊕2^ℓ⟩ maps
//     to the CCC cross edge followed by the straight edge.
//   * FFT → CCC with dilation 2, congestion 2, load 2: the FFT's last level
//     folds onto level 0 of the CCC.
//   * complete binary tree → butterfly: the natural spanning subtree —
//     ⟨ℓ, c⟩ with c < 2^ℓ has children ⟨ℓ+1, c⟩ and ⟨ℓ+1, c + 2^ℓ⟩ — gives
//     the m-level CBT in the m-stage butterfly with dilation 1,
//     congestion 1, load 1.  (Reference [4] packs a CBT of the butterfly's
//     own size at O(1) load; we use the sparser natural subtree — see
//     DESIGN.md §1.3 — which preserves every width/cost claim downstream at
//     the price of constant-factor node utilization.)
//   * arbitrary binary tree → CBT (§6.2): a structure-following heuristic
//     with guaranteed load 1 and measured dilation/congestion (reference [6]
//     proves O(log levels) bounds with a far more intricate construction).
#pragma once

#include "base/rng.hpp"
#include "embed/graph_embedding.hpp"
#include "graph/builders.hpp"

namespace hyperpath {

/// §5.4: the n-level directed wrapped butterfly into the n-stage directed
/// CCC.  Dilation 2, congestion 2, load 1 (identity on vertices).
GraphEmbedding butterfly_into_ccc(int n);

/// The symmetric variant (both edge directions on both networks; n ≥ 3).
/// Dilation 2, congestion 2, load 1.  Theorem 5's pipeline uses this so
/// that tree edges can be routed in both directions.
GraphEmbedding butterfly_into_ccc_symmetric(int n);

/// §5.4: the (n+1)-level FFT graph into the n-stage directed CCC.
/// Dilation 2, congestion 2, load 2 (levels 0 and n share CCC level 0).
GraphEmbedding fft_into_ccc(int n);

/// The m-level complete binary tree (2^m − 1 nodes) into the m-stage
/// *symmetric* butterfly via the natural spanning subtree.  Dilation 1,
/// congestion 1, load 1; no CBT leaf shares a butterfly node with another
/// CBT vertex (the property Theorem 5's construction relies on).
GraphEmbedding cbt_into_butterfly(int m);

/// §6.2 heuristic: an arbitrary binary tree (symmetric digraph, rooted at
/// node 0, given by its parent array) into the complete binary tree with
/// `levels` levels.  Load 1 guaranteed (throws if the CBT is too small);
/// tree edges are routed along unique CBT tree paths.  Dilation and
/// congestion are whatever the verifier measures — the bench reports them
/// against the paper's O(log levels) target.
GraphEmbedding tree_into_cbt(const Digraph& tree,
                             const std::vector<Node>& parent, int levels);

}  // namespace hyperpath
