#include "ccc/strawmen.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/gray.hpp"
#include "graph/builders.hpp"

namespace hyperpath {

namespace {

void append_spec_copy(KCopyEmbedding& emb, const LevelColumnLayout& lay,
                      const CccEmbedSpec& spec) {
  const Digraph& ccc = emb.guest();
  std::vector<Node> eta(ccc.num_nodes());
  for (Node v = 0; v < ccc.num_nodes(); ++v) {
    eta[v] = spec.map_vertex(lay.level_of(v), lay.column_of(v));
  }
  std::vector<HostPath> paths(ccc.num_edges());
  for (std::size_t e = 0; e < ccc.num_edges(); ++e) {
    const Edge& ge = ccc.edge(e);
    paths[e] = {eta[ge.from], eta[ge.to]};
  }
  emb.add_copy(std::move(eta), std::move(paths));
}

}  // namespace

KCopyEmbedding ccc_multicopy_same_windows(int n) {
  const CccEmbedSpec spec = ccc_single_spec(n);
  const LevelColumnLayout lay = ccc_layout(n);
  KCopyEmbedding emb(ccc_directed(n), n + spec.r);
  for (int k = 0; k < n; ++k) append_spec_copy(emb, lay, spec);
  emb.verify_or_throw();
  return emb;
}

KCopyEmbedding ccc_multicopy_disjoint_windows(int n) {
  HP_CHECK(n >= 2 && is_pow2(static_cast<std::uint64_t>(n)),
           "straw man implemented for n a power of two");
  const int r = floor_log2(static_cast<std::uint64_t>(n));
  const int total = n + r;
  const int copies = total / r;  // pairwise-disjoint windows that fit
  const LevelColumnLayout lay = ccc_layout(n);
  KCopyEmbedding emb(ccc_directed(n), total);
  for (int i = 0; i < copies; ++i) {
    CccEmbedSpec s;
    s.n = n;
    s.r = r;
    for (int j = 0; j < r; ++j) s.w.push_back(i * r + j);
    for (int d = 0; d < total && static_cast<int>(s.wbar.size()) < n; ++d) {
      bool in_w = false;
      for (Dim wd : s.w) in_w |= (wd == d);
      if (!in_w) s.wbar.push_back(d);
    }
    for (int l = 0; l < n; ++l) {
      s.ham.push_back(bit_reverse(gray_node_at(r, l), r));
    }
    s.verify_or_throw();
    append_spec_copy(emb, lay, s);
  }
  emb.verify_or_throw();
  return emb;
}

}  // namespace hyperpath
