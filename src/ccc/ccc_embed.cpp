#include "ccc/ccc_embed.hpp"

#include <functional>
#include <set>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/gray.hpp"
#include "obs/profile.hpp"

namespace hyperpath {

Node CccEmbedSpec::map_vertex(int level, Node column) const {
  Node v = 0;
  v = apply_signature(v, w, ham[level]);
  v = apply_signature(v, wbar, column);
  return v;
}

void CccEmbedSpec::verify_or_throw() const {
  HP_CHECK(n >= 2 && is_pow2(static_cast<std::uint64_t>(n)),
           "spec requires n a power of two");
  HP_CHECK(r == floor_log2(static_cast<std::uint64_t>(n)), "r != log2(n)");
  HP_CHECK(static_cast<int>(w.size()) == r, "W must have length r");
  HP_CHECK(static_cast<int>(wbar.size()) == n, "W̄ must have length n");
  HP_CHECK(windows_disjoint(w, wbar), "windows overlap");
  std::set<Dim> all(w.begin(), w.end());
  all.insert(wbar.begin(), wbar.end());
  HP_CHECK(static_cast<int>(all.size()) == n + r, "windows repeat dimensions");
  for (Dim d : all) {
    HP_CHECK(d >= 0 && d < n + r, "window dimension out of range");
  }
  HP_CHECK(static_cast<int>(ham.size()) == n, "H must list n signatures");
  for (int l = 0; l < n; ++l) {
    HP_CHECK(ham[l] < pow2(r), "signature wider than r bits");
    const Node next = ham[(l + 1) % n];
    // Signatures are stored with window position i in bit i, and the paper
    // indexes Gray-code bits MSB-first (bit 0 = the bit used only twice),
    // so the level-ℓ straight edge flips signature position
    // r − 1 − G_r(ℓ) in our LSB-indexed transition sequence.
    HP_CHECK((ham[l] ^ next) == bit(r - 1 - gray_transition_at(r, l)),
             "H is not the Gray walk: consecutive signatures must differ in "
             "the window position paired with Gray bit G_r(ℓ)");
  }
}

CccEmbedSpec ccc_single_spec(int n) {
  HP_CHECK(n >= 2 && is_pow2(static_cast<std::uint64_t>(n)),
           "CCC embeddings implemented for n a power of two");
  CccEmbedSpec s;
  s.n = n;
  s.r = floor_log2(static_cast<std::uint64_t>(n));
  for (int i = 0; i < s.r; ++i) s.w.push_back(n + i);
  for (int l = 0; l < n; ++l) s.wbar.push_back(l);
  // Window position i carries paper Gray bit i (MSB-first), i.e. bit
  // r−1−i of our LSB-indexed Gray value.
  for (int l = 0; l < n; ++l) {
    s.ham.push_back(bit_reverse(gray_node_at(s.r, l), s.r));
  }
  s.verify_or_throw();
  return s;
}

CccEmbedSpec ccc_multicopy_spec(int n, int k) {
  HP_CHECK(n >= 2 && is_pow2(static_cast<std::uint64_t>(n)),
           "Theorem 3 implemented for n a power of two");
  HP_CHECK(k >= 0 && k < n, "copy index out of range");
  CccEmbedSpec s;
  s.n = n;
  s.r = floor_log2(static_cast<std::uint64_t>(n));

  // W^k(0) = 1; W^k(i) = 2^i + ρ_i(k).
  s.w.push_back(1);
  for (int i = 1; i < s.r; ++i) {
    s.w.push_back(static_cast<Dim>(pow2(i) +
                                   prefix_bits(static_cast<Node>(k), i, s.r)));
  }

  // W̄^k(ℓ) = ℓ if ℓ ∉ W^k else n + ⌊log ℓ⌋.
  for (int l = 0; l < n; ++l) {
    bool in_w = false;
    for (Dim d : s.w) in_w |= (d == l);
    if (!in_w) {
      s.wbar.push_back(l);
    } else {
      s.wbar.push_back(n + floor_log2(static_cast<std::uint64_t>(l)));
    }
  }

  // H^k(ℓ) = H_r(ℓ) ⊕ b(k), stored with paper bit i (MSB-first) at window
  // position i: ham[ℓ] = reverse_r(H_r(ℓ) ⊕ k).
  for (int l = 0; l < n; ++l) {
    s.ham.push_back(
        bit_reverse(gray_node_at(s.r, l) ^ static_cast<Node>(k), s.r));
  }
  s.verify_or_throw();
  return s;
}

namespace {

/// Builds the copy (node map + single-edge paths) for one spec over the
/// given CCC digraph.
void append_copy(KCopyEmbedding& emb, const Digraph& ccc,
                 const LevelColumnLayout& lay, const CccEmbedSpec& spec) {
  std::vector<Node> eta(ccc.num_nodes());
  for (Node v = 0; v < ccc.num_nodes(); ++v) {
    eta[v] = spec.map_vertex(lay.level_of(v), lay.column_of(v));
  }
  std::vector<HostPath> paths(ccc.num_edges());
  for (std::size_t e = 0; e < ccc.num_edges(); ++e) {
    const Edge& ge = ccc.edge(e);
    paths[e] = {eta[ge.from], eta[ge.to]};
  }
  emb.add_copy(std::move(eta), std::move(paths));
}

}  // namespace

KCopyEmbedding ccc_single_embedding(int n) {
  const CccEmbedSpec spec = ccc_single_spec(n);
  const LevelColumnLayout lay = ccc_layout(n);
  KCopyEmbedding emb(ccc_directed(n), n + spec.r);
  append_copy(emb, emb.guest(), lay, spec);
  return emb;
}

namespace {

/// Finds a cyclic sequence of n distinct nodes of Q_r with consecutive
/// Hamming distance 1, except that for odd n the closing step has distance
/// 2 (bipartiteness forbids odd cycles).  Deterministic DFS; r ≤ 6 keeps
/// the search trivial.
std::vector<Node> signature_cycle(int n, int r) {
  HP_CHECK(n >= 3 && r >= 1 && r <= 6, "signature cycle out of range");
  HP_CHECK(static_cast<std::uint64_t>(n) <= pow2(r), "cycle longer than Q_r");
  const int close_dist = (n % 2 == 0) ? 1 : 2;
  std::vector<Node> seq{0};
  std::vector<bool> used(pow2(r), false);
  used[0] = true;

  std::function<bool()> dfs = [&]() -> bool {
    if (static_cast<int>(seq.size()) == n) {
      return popcount(seq.back() ^ seq.front()) == close_dist;
    }
    for (Dim d = 0; d < r; ++d) {
      const Node next = flip_bit(seq.back(), d);
      if (used[next]) continue;
      used[next] = true;
      seq.push_back(next);
      if (dfs()) return true;
      seq.pop_back();
      used[next] = false;
    }
    return false;
  };
  HP_CHECK(dfs(), "no signature cycle of the requested length exists");
  return seq;
}

}  // namespace

KCopyEmbedding ccc_single_embedding_general(int n) {
  HP_PROFILE_SPAN("construct/ccc_single_general");
  HP_CHECK(n >= 3 && n <= 20, "general Lemma 4 supports n in [3, 20]");
  const int r = ceil_log2(static_cast<std::uint64_t>(n));
  const std::vector<Node> ham = signature_cycle(n, r);

  // Windows as in the canonical spec: W = (n..n+r−1), W̄ = (0..n−1).
  Window w, wbar;
  for (int i = 0; i < r; ++i) w.push_back(n + i);
  for (int l = 0; l < n; ++l) wbar.push_back(l);

  const LevelColumnLayout lay = ccc_layout(n);
  KCopyEmbedding emb(ccc_directed(n), n + r);

  std::vector<Node> eta(emb.guest().num_nodes());
  for (Node v = 0; v < eta.size(); ++v) {
    Node addr = 0;
    addr = apply_signature(addr, w, ham[lay.level_of(v)]);
    addr = apply_signature(addr, wbar, lay.column_of(v));
    eta[v] = addr;
  }

  std::vector<HostPath> paths(emb.guest().num_edges());
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    const Node a = eta[ge.from];
    const Node b = eta[ge.to];
    const int dist = popcount(a ^ b);
    if (dist == 1) {
      paths[e] = {a, b};
    } else {
      // The odd-n seam (level n−1 → 0 straight edges): route through the
      // signature that flips the lower-indexed differing window bit first.
      HP_CHECK(dist == 2, "unexpected long edge");
      const Dim d = count_trailing_zeros(a ^ b);
      paths[e] = {a, flip_bit(a, d), b};
    }
  }
  emb.add_copy(std::move(eta), std::move(paths));
  emb.verify_or_throw();
  return emb;
}

KCopyEmbedding ccc_multicopy_embedding(int n) {
  HP_PROFILE_SPAN("construct/ccc_multicopy");
  const LevelColumnLayout lay = ccc_layout(n);
  const int r = floor_log2(static_cast<std::uint64_t>(n));
  KCopyEmbedding emb(ccc_directed(n), n + r);
  for (int k = 0; k < n; ++k) {
    append_copy(emb, emb.guest(), lay, ccc_multicopy_spec(n, k));
  }
  return emb;
}

KCopyEmbedding ccc_multicopy_embedding_undirected(int n) {
  HP_PROFILE_SPAN("construct/ccc_multicopy_undirected");
  HP_CHECK(n >= 3, "undirected CCC needs n >= 3");
  const LevelColumnLayout lay = ccc_layout(n);
  const int r = floor_log2(static_cast<std::uint64_t>(n));
  KCopyEmbedding emb(ccc_symmetric(n), n + r);
  for (int k = 0; k < n; ++k) {
    append_copy(emb, emb.guest(), lay, ccc_multicopy_spec(n, k));
  }
  return emb;
}

GraphEmbedding to_graph_embedding(const KCopyEmbedding& emb, int copy) {
  HP_CHECK(copy >= 0 && copy < emb.num_copies(), "copy index out of range");
  GraphEmbedding out(emb.guest(), emb.host().to_digraph());
  std::vector<Node> eta(emb.guest().num_nodes());
  for (Node v = 0; v < emb.guest().num_nodes(); ++v) {
    eta[v] = emb.host_of(copy, v);
  }
  out.set_node_map(std::move(eta));
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    out.set_path(e, emb.path(copy, e));
  }
  return out;
}

}  // namespace hyperpath
