#include "ccc/windows.hpp"

#include <algorithm>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {

Node signature(Node v, const Window& w) {
  Node sig = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (test_bit(v, w[i])) sig |= bit(static_cast<Dim>(i));
  }
  return sig;
}

Node apply_signature(Node v, const Window& w, Node sig) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (test_bit(sig, static_cast<Dim>(i))) {
      v |= bit(w[i]);
    } else {
      v &= ~bit(w[i]);
    }
  }
  return v;
}

Node prefix_bits(Node k, int i, int r) {
  HP_CHECK(i >= 0 && i <= r && r <= 30, "prefix parameters out of range");
  HP_CHECK(k < pow2(r), "number wider than r bits");
  return k >> (r - i);
}

int common_prefix_len(Node a, Node b, int r) {
  HP_CHECK(a < pow2(r) && b < pow2(r), "number wider than r bits");
  for (int len = r; len >= 1; --len) {
    if (prefix_bits(a, len, r) == prefix_bits(b, len, r)) return len;
  }
  return 0;
}

int common_prefix_len_lsb(Node a, Node b, int r) {
  HP_CHECK(a < pow2(r) && b < pow2(r), "number wider than r bits");
  int len = 0;
  while (len < r && test_bit(a, len) == test_bit(b, len)) ++len;
  return len;
}

int common_prefix_len(const Window& a, const Window& b) {
  const std::size_t m = std::min(a.size(), b.size());
  std::size_t len = 0;
  while (len < m && a[len] == b[len]) ++len;
  return static_cast<int>(len);
}

bool windows_disjoint(const Window& a, const Window& b) {
  for (Dim x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return false;
  }
  return true;
}

}  // namespace hyperpath
