// The naive multiple-copy constructions Section 5.3 rules out, implemented
// so the ablation bench can measure exactly the congestion blow-ups the
// paper predicts.
//
//   * Same windows for every copy: all n embeddings map straight-edges to
//     the same r dimensions → congestion ≥ n/r there.
//   * Distinct pairwise-disjoint windows (one per copy; only ⌊(n+r)/r⌋
//     copies fit): for any dimension d outside every window there is a
//     hypercube node to which *every* copy maps a CCC vertex whose
//     cross-edge uses d → congestion n_copies on dimension d.
//
// Both return verified KCopyEmbeddings (they are *valid* embeddings — just
// bad ones), so the measured congestion is the honest comparison against
// Theorem 3's overlapping windows.
#pragma once

#include "ccc/ccc_embed.hpp"

namespace hyperpath {

/// §5.3 straw man A: n copies, all using the canonical single-copy spec.
KCopyEmbedding ccc_multicopy_same_windows(int n);

/// §5.3 straw man B: pairwise-disjoint length-r windows, as many copies as
/// fit (⌊(n+r)/r⌋).  Copy i's window is dimensions {i·r, …, i·r + r − 1};
/// its long window is the rest in ascending order.
KCopyEmbedding ccc_multicopy_disjoint_windows(int n);

}  // namespace hyperpath
