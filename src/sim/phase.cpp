#include "sim/phase.hpp"

#include <algorithm>
#include <numeric>

#include "base/error.hpp"
#include "obs/profile.hpp"

namespace hyperpath {

std::vector<Packet> phase_packets(const MultiPathEmbedding& emb, int p) {
  HP_PROFILE_SPAN("sim/phase_packets");
  HP_CHECK(p >= 1, "phase needs at least one packet per edge");
  std::vector<Packet> packets;
  packets.reserve(emb.guest().num_edges() * static_cast<std::size_t>(p));
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const auto bundle = emb.paths(e);
    // Order paths by length so packet 0 takes the shortest (direct) path.
    std::vector<std::size_t> order(bundle.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return bundle[a].size() < bundle[b].size();
                     });
    for (int j = 0; j < p; ++j) {
      Packet pk;
      pk.route = bundle[order[j % order.size()]];
      pk.tag = static_cast<std::uint32_t>(e);
      packets.push_back(std::move(pk));
    }
  }
  return packets;
}

std::vector<Packet> phase_packets(const KCopyEmbedding& emb, int p) {
  HP_PROFILE_SPAN("sim/phase_packets");
  HP_CHECK(p >= 1, "phase needs at least one packet per edge");
  std::vector<Packet> packets;
  packets.reserve(emb.guest().num_edges() *
                  static_cast<std::size_t>(p * emb.num_copies()));
  for (int c = 0; c < emb.num_copies(); ++c) {
    for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
      for (int j = 0; j < p; ++j) {
        Packet pk;
        pk.route = emb.path(c, e);
        pk.tag = static_cast<std::uint32_t>(e);
        packets.push_back(std::move(pk));
      }
    }
  }
  return packets;
}

SimResult measure_phase_cost(const MultiPathEmbedding& emb, int p,
                             Arbitration policy, obs::TraceSink* sink) {
  StoreForwardSim sim(emb.host().dims());
  return sim.run(phase_packets(emb, p), policy, 1 << 22, sink);
}

SimResult measure_phase_cost(const KCopyEmbedding& emb, int p,
                             Arbitration policy, obs::TraceSink* sink) {
  StoreForwardSim sim(emb.host().dims());
  return sim.run(phase_packets(emb, p), policy, 1 << 22, sink);
}

}  // namespace hyperpath
