#include "sim/oracle_sim.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "base/error.hpp"
#include "obs/profile.hpp"
#include "sim/step_kernel.hpp"

namespace hyperpath {

namespace {

/// NodeSink that feeds the RoutePlan streaming API and records global link
/// ids on the side.  One instance serves a whole compilation: reset() per
/// route, plan.end_route_unlinked() by the caller.
class PlanSink final : public NodeSink {
 public:
  PlanSink(simcore::RoutePlan& plan, std::vector<std::uint64_t>& glinks,
           int dims)
      : plan_(plan), glinks_(glinks), dims_(dims) {}

  void reset() { first_ = true; }

  void push(Node v) override {
    if (!first_) {
      const Node diff = prev_ ^ v;
      HP_CHECK(std::popcount(diff) == 1, "oracle emitted a non-hypercube hop");
      glinks_.push_back(static_cast<std::uint64_t>(prev_) * dims_ +
                        std::countr_zero(diff));
    }
    plan_.push_node(v);
    prev_ = v;
    first_ = false;
  }

 private:
  simcore::RoutePlan& plan_;
  std::vector<std::uint64_t>& glinks_;
  int dims_;
  Node prev_ = 0;
  bool first_ = true;
};

}  // namespace

void add_oracle_route(const PathOracle& oracle, const OracleEdge& edge,
                      int path_index, std::uint32_t release_step,
                      simcore::RoutePlan& plan,
                      std::vector<std::uint64_t>& glinks) {
  PlanSink sink(plan, glinks, oracle.host_dims());
  plan.begin_route(release_step);
  oracle.path(edge, path_index, sink);
  plan.end_route_unlinked(oracle.host_dims(), "oracle route invalid");
}

OraclePhaseResult run_oracle_phase(const PathOracle& oracle,
                                   std::span<const OracleEdge> edges,
                                   const OraclePhaseSpec& spec) {
  HP_PROFILE_SPAN("sim/oracle_phase");
  const int dims = oracle.host_dims();
  const int p = spec.packets_per_edge;
  HP_CHECK(p > 0, "packets_per_edge must be positive");

  OraclePhaseResult result;
  result.dim_transmissions.assign(dims, 0);

  simcore::RoutePlan plan;
  std::vector<std::uint64_t> glinks;  // global link id per hop, in hop order

  {
    // Streaming compilation: phase_packets ordering (bundle indices
    // stable-sorted by increasing path length; packet j rides
    // order[j mod width]), but no Packet or HostPath ever exists.
    HP_PROFILE_SPAN("compile");
    PlanSink sink(plan, glinks, dims);
    std::vector<int> order;
    for (const OracleEdge& e : edges) {
      const int w = oracle.width(e);
      HP_CHECK(w > 0, "demanded guest edge has an empty bundle");
      order.resize(w);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return oracle.path_hops(e, a) < oracle.path_hops(e, b);
      });
      for (int j = 0; j < p; ++j) {
        sink.reset();
        plan.begin_route(0);
        oracle.path(e, order[j % w], sink);
        plan.end_route_unlinked(dims, "oracle route invalid");
      }
    }
    if (plan.route_offsets.empty()) plan.route_offsets.push_back(0);
  }

  // Compact renumbering: sorted-unique global ids become the plan's local
  // 32-bit link ids; the max static link load falls out of the sorted run
  // lengths before deduplication.
  std::vector<std::uint64_t> uniq;
  {
    HP_PROFILE_SPAN("renumber");
    uniq = glinks;
    std::sort(uniq.begin(), uniq.end());
    std::uint64_t run = 0;
    std::uint64_t prev = ~std::uint64_t{0};
    for (const std::uint64_t g : uniq) {
      run = (g == prev) ? run + 1 : 1;
      prev = g;
      if (run > result.peak_congestion) result.peak_congestion = run;
    }
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    plan.link_of_hop.reserve(glinks.size());
    for (const std::uint64_t g : glinks) {
      const auto it = std::lower_bound(uniq.begin(), uniq.end(), g);
      plan.link_of_hop.push_back(
          static_cast<std::uint32_t>(it - uniq.begin()));
    }
  }

  const std::uint32_t num_routes = plan.num_routes();
  const std::uint64_t num_links = uniq.size();
  result.unique_links = num_links;
  result.route_nodes = plan.route_nodes.size();

  // Per-local-link dimension for transmission accounting: a global id is
  // tail·dims + dim, so the dimension survives renumbering as id mod dims.
  std::vector<std::uint8_t> dim_of(num_links);
  for (std::uint64_t l = 0; l < num_links; ++l) {
    dim_of[l] = static_cast<std::uint8_t>(uniq[l] % dims);
  }

  simcore::LinkFifoArena arena(num_links, num_routes);
  std::vector<std::uint32_t> active;
  std::vector<std::uint32_t> hop(num_routes, 0);
  std::vector<std::uint32_t> moved;
  std::vector<std::uint64_t> moved_mask((num_routes + 63) / 64, 0);

  result.compiled_bytes =
      plan.route_nodes.size() * sizeof(Node) +
      plan.route_offsets.size() * sizeof(std::uint32_t) +
      plan.link_of_hop.size() * sizeof(std::uint32_t) +
      plan.route_len.size() * sizeof(std::uint32_t) +
      plan.release.size() * sizeof(std::uint32_t) +
      uniq.size() * sizeof(std::uint64_t) + dim_of.size() +
      num_links * 3 * sizeof(std::uint32_t) +  // arena head/tail/depth
      hop.size() * sizeof(std::uint32_t) + num_routes * sizeof(std::uint32_t);

  const std::uint32_t* const route_len = plan.route_len.data();
  const std::uint32_t* const route_off = plan.route_offsets.data();
  const std::uint32_t* const link_of_hop = plan.link_of_hop.data();

  std::size_t undelivered = 0;
  const auto enqueue = [&](std::uint32_t id) {
    arena.push_back(link_of_hop[route_off[id] + hop[id]], id, active);
  };
  for (std::uint32_t id = 0; id < num_routes; ++id) {
    if (route_len[id] == 0) continue;  // direct self-edge; counts delivered
    ++undelivered;
    enqueue(id);
  }
  result.delivered = num_routes - undelivered;

  {
    // The sweep: same visit order, FIFO arbitration, canonical ascending
    // arrival order as the SoA engine (store_forward.cpp), minus faults,
    // traces, and release staging (phase traffic all releases at step 0).
    HP_PROFILE_SPAN("steps");
    std::uint64_t* const dim_tx = result.dim_transmissions.data();
    int step = 0;
    while (undelivered > 0) {
      HP_CHECK(step < spec.max_steps, "simulation exceeded max_steps");
      moved.clear();
      std::size_t keep = 0;
      const std::size_t count = active.size();
      for (std::size_t r = 0; r < count; ++r) {
        const std::uint32_t link = active[r];
        const std::uint32_t depth = arena.depth(link);
        if (depth > result.max_queue) result.max_queue = depth;
        const std::uint32_t pick = arena.pop_front(link);
        ++result.total_transmissions;
        ++dim_tx[dim_of[link]];
        moved.push_back(pick);
        if (!arena.empty(link)) active[keep++] = link;
      }
      active.resize(keep);

      simcore::sort_moved(moved, moved_mask);
      simcore::advance_hops(moved, hop.data());
      for (const std::uint32_t id : moved) {
        if (hop[id] == route_len[id]) {
          --undelivered;
          ++result.delivered;
        } else {
          enqueue(id);
        }
      }
      ++step;
    }
    result.makespan = step;
  }

  return result;
}

}  // namespace hyperpath
