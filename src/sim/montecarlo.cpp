#include "sim/montecarlo.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "obs/profile.hpp"
#include "par/task_pool.hpp"

namespace hyperpath {

namespace {

/// splitmix64 finalizer (same constants as base/rng.cpp's seeding stage).
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

/// CDF-friendly permille buckets for per-trial delivery rates: dense near
/// 1000 where reliability curves live.
std::vector<double> permille_bounds() {
  return {0, 250, 500, 750, 900, 950, 990, 999, 1000};
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t campaign_seed, std::uint64_t trial) {
  return mix64(campaign_seed ^ mix64((trial + 1) * 0x9e3779b97f4a7c15ull));
}

std::uint64_t TrialOutcome::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  const auto fold = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  fold(trial);
  fold(events);
  fold(messages);
  fold(complete);
  fold(recovered);
  fold(retransmissions);
  fold(fragments_lost);
  fold(fragments_exhausted);
  fold(latency_steps);
  fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(makespan)));
  fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(waves)));
  return h;
}

CampaignStats::CampaignStats()
    : recovery_latency(obs::FixedHistogram::exponential()),
      retransmit_generations(obs::FixedHistogram::exponential(8)),
      trial_makespan(obs::FixedHistogram::exponential()),
      delivery_permille(obs::FixedHistogram(permille_bounds())) {}

void CampaignStats::add_trial(const TrialOutcome& t) {
  ++trials;
  schedule_events += t.events;
  messages_total += t.messages;
  messages_complete += t.complete;
  messages_recovered += t.recovered;
  retransmissions += t.retransmissions;
  fragments_lost += t.fragments_lost;
  fragments_exhausted += t.fragments_exhausted;
  trials_fully_delivered += (t.complete == t.messages) ? 1 : 0;
  max_makespan = std::max(max_makespan, static_cast<int>(t.makespan));
  max_waves = std::max(max_waves, static_cast<int>(t.waves));
  trial_makespan.observe(static_cast<double>(t.makespan));
  const double permille =
      t.messages ? 1000.0 * static_cast<double>(t.complete) / t.messages
                 : 1000.0;
  delivery_permille.observe(permille);
  digest += t.digest();  // wrapping, order-insensitive
}

void CampaignStats::merge(const CampaignStats& other) {
  trials += other.trials;
  schedule_events += other.schedule_events;
  messages_total += other.messages_total;
  messages_complete += other.messages_complete;
  messages_recovered += other.messages_recovered;
  retransmissions += other.retransmissions;
  fragments_lost += other.fragments_lost;
  fragments_exhausted += other.fragments_exhausted;
  trials_fully_delivered += other.trials_fully_delivered;
  max_makespan = std::max(max_makespan, other.max_makespan);
  max_waves = std::max(max_waves, other.max_waves);
  recovery_latency.merge(other.recovery_latency);
  retransmit_generations.merge(other.retransmit_generations);
  trial_makespan.merge(other.trial_makespan);
  delivery_permille.merge(other.delivery_permille);
  digest += other.digest;
}

TrialOutcome MonteCarloDriver::summarize(std::uint32_t trial,
                                         std::uint32_t events,
                                         const RecoveryResult& r) {
  TrialOutcome t;
  t.trial = trial;
  t.events = events;
  t.messages = static_cast<std::uint32_t>(r.messages_total);
  t.complete = static_cast<std::uint32_t>(r.messages_complete);
  t.recovered = static_cast<std::uint32_t>(r.messages_recovered);
  t.retransmissions = r.retransmissions;
  t.fragments_lost = r.fragments_lost;
  t.fragments_exhausted = r.fragments_exhausted;
  for (const MessageOutcome& m : r.messages) {
    if (m.recovered()) {
      t.latency_steps +=
          static_cast<std::uint64_t>(m.complete_step - m.first_loss_step);
    }
  }
  t.makespan = r.makespan;
  t.waves = r.waves;
  return t;
}

RecoveryResult MonteCarloDriver::run_trial(const CampaignConfig& config,
                                           std::uint32_t trial,
                                           FaultSchedule* schedule_out) const {
  Rng rng(trial_seed(config.seed, trial));
  FaultSchedule schedule =
      FaultSchedule::random(emb_->host().dims(), config.schedule, rng);
  RecoveryConfig rcfg = config.recovery;
  rcfg.parallel = false;
  rcfg.update_registry = false;
  RecoveryResult r = run_recovery(*emb_, schedule, rcfg);
  if (schedule_out) *schedule_out = std::move(schedule);
  return r;
}

CampaignStats MonteCarloDriver::run(const CampaignConfig& config) const {
  HP_PROFILE_SPAN("sim/montecarlo");
  HP_CHECK(!config.recovery.parallel,
           "campaign trials must use the serial transport (parallelism is "
           "across trials)");
  const std::uint32_t begin = config.trial_begin;
  const std::uint32_t end =
      config.trial_end ? config.trial_end : config.trials;
  HP_CHECK(begin < end, "empty campaign trial range");
  const std::size_t grain = config.grain ? config.grain : 1;

  // Live progress counters: atomic adds from worker threads, observable by
  // a running telemetry bus, never part of the deterministic result.
  obs::Counter* live_trials = nullptr;
  obs::Counter* live_complete = nullptr;
  obs::Counter* live_retx = nullptr;
  if (config.live_metrics) {
    auto& reg = obs::MetricsRegistry::global();
    live_trials = &reg.counter("mc.trials_done");
    live_complete = &reg.counter("mc.messages_complete");
    live_retx = &reg.counter("mc.retransmissions");
  }

  // One CampaignStats per chunk, folded in ascending chunk order.  The sum
  // digest is order-insensitive anyway; the ordered fold makes every other
  // aggregate (histogram merges, maxima) deterministic by construction.
  CampaignStats stats = par::parallel_reduce(
      begin, end, grain, CampaignStats{},
      [&](std::size_t lo, std::size_t hi) {
        CampaignStats chunk;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto trial = static_cast<std::uint32_t>(i);
          Rng rng(trial_seed(config.seed, trial));
          const FaultSchedule schedule =
              FaultSchedule::random(emb_->host().dims(), config.schedule, rng);
          RecoveryConfig rcfg = config.recovery;
          rcfg.parallel = false;
          rcfg.update_registry = false;
          const RecoveryResult r = run_recovery(*emb_, schedule, rcfg);
          const TrialOutcome t = summarize(
              trial, static_cast<std::uint32_t>(schedule.size()), r);
          chunk.add_trial(t);
          chunk.recovery_latency.merge(r.recovery_latency);
          for (const MessageOutcome& m : r.messages) {
            if (m.recovered()) {
              chunk.retransmit_generations.observe(
                  static_cast<double>(m.retransmissions));
            }
          }
          if (live_trials) {
            live_trials->add(1);
            live_complete->add(r.messages_complete);
            live_retx->add(r.retransmissions);
          }
        }
        return chunk;
      },
      [](CampaignStats acc, CampaignStats part) {
        acc.merge(part);
        return acc;
      });

  if (config.live_metrics) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("mc.trials_total").add(stats.trials);
    reg.gauge("mc.delivery_rate").set(stats.delivery_rate());
    reg.gauge("mc.survival_rate").set(stats.survival_rate());
    reg.gauge("mc.max_makespan").set(stats.max_makespan);
  }
  return stats;
}

std::vector<EnvelopePoint> sweep_envelope(
    const MultiPathEmbedding& emb, const CampaignConfig& base,
    const std::vector<double>& link_rates) {
  HP_PROFILE_SPAN("sim/montecarlo_envelope");
  MonteCarloDriver driver(emb);
  std::vector<EnvelopePoint> envelope;
  envelope.reserve(link_rates.size());
  for (double rate : link_rates) {
    CampaignConfig cfg = base;
    cfg.schedule.link_rate = rate;
    EnvelopePoint point;
    point.link_rate = rate;
    point.stats = driver.run(cfg);
    envelope.push_back(std::move(point));
  }
  return envelope;
}

double critical_fault_rate(const std::vector<EnvelopePoint>& envelope,
                           double threshold) {
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    const double d = envelope[i].stats.delivery_rate();
    if (d >= threshold) continue;
    if (i == 0) return envelope[0].link_rate;
    const double d0 = envelope[i - 1].stats.delivery_rate();
    const double r0 = envelope[i - 1].link_rate;
    const double r1 = envelope[i].link_rate;
    const double span = d0 - d;
    if (span <= 0) return r1;
    return r0 + (r1 - r0) * (d0 - threshold) / span;
  }
  return -1.0;
}

}  // namespace hyperpath
