#include "sim/ida.hpp"

#include <array>

#include "base/error.hpp"

namespace hyperpath {

namespace gf256 {

namespace {

// Log/antilog tables for generator 0x03 modulo 0x11B.
struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 510> exp{};

  Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      exp[i + 255] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      // Multiply by the generator 0x03 = x + 1:  x*3 = (x<<1) ^ x.
      x = static_cast<std::uint16_t>((x << 1) ^ x);
      if (x & 0x100) x ^= 0x11B;
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  HP_CHECK(a != 0, "GF(256) inverse of zero");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned e) {
  std::uint8_t r = 1;
  while (e > 0) {
    if (e & 1) r = mul(r, a);
    a = mul(a, a);
    e >>= 1;
  }
  return r;
}

}  // namespace gf256

namespace {

// Row i of the dispersal matrix: [x_i^0 .. x_i^{m-1}], x_i = i + 1.
std::vector<std::uint8_t> dispersal_row(int i, int m) {
  std::vector<std::uint8_t> row(m);
  const std::uint8_t x = static_cast<std::uint8_t>(i + 1);
  for (int j = 0; j < m; ++j) row[j] = gf256::pow(x, static_cast<unsigned>(j));
  return row;
}

}  // namespace

std::vector<IdaFragment> ida_encode(std::span<const std::uint8_t> data,
                                    int n_fragments, int threshold) {
  HP_CHECK(threshold >= 1 && threshold <= n_fragments && n_fragments <= 255,
           "IDA parameters out of range");
  const int m = threshold;
  const std::size_t cols = (data.size() + m - 1) / m;

  std::vector<IdaFragment> fragments(n_fragments);
  for (int i = 0; i < n_fragments; ++i) {
    fragments[i].index = i;
    fragments[i].payload.assign(cols, 0);
  }
  for (int i = 0; i < n_fragments; ++i) {
    const auto row = dispersal_row(i, m);
    for (std::size_t c = 0; c < cols; ++c) {
      std::uint8_t acc = 0;
      for (int j = 0; j < m; ++j) {
        const std::size_t idx = c * m + j;
        const std::uint8_t byte = idx < data.size() ? data[idx] : 0;
        acc = gf256::add(acc, gf256::mul(row[j], byte));
      }
      fragments[i].payload[c] = acc;
    }
  }
  return fragments;
}

std::optional<std::vector<std::uint8_t>> ida_decode(
    std::span<const IdaFragment> fragments, int threshold,
    std::size_t original_size) {
  const int m = threshold;
  if (static_cast<int>(fragments.size()) < m) return std::nullopt;

  // Use the first m fragments with distinct indices.
  std::vector<const IdaFragment*> use;
  for (const IdaFragment& f : fragments) {
    bool dup = false;
    for (const IdaFragment* u : use) dup |= (u->index == f.index);
    if (!dup) use.push_back(&f);
    if (static_cast<int>(use.size()) == m) break;
  }
  if (static_cast<int>(use.size()) < m) return std::nullopt;

  const std::size_t cols = use[0]->payload.size();
  for (const IdaFragment* f : use) {
    HP_CHECK(f->payload.size() == cols, "fragment sizes differ");
    HP_CHECK(f->index >= 0 && f->index < 255, "fragment index out of range");
  }

  // Build [A | I] and invert A by Gauss–Jordan over GF(2^8).
  std::vector<std::vector<std::uint8_t>> a(m), inv(m);
  for (int r = 0; r < m; ++r) {
    a[r] = dispersal_row(use[r]->index, m);
    inv[r].assign(m, 0);
    inv[r][r] = 1;
  }
  for (int col = 0; col < m; ++col) {
    int pivot = -1;
    for (int r = col; r < m; ++r) {
      if (a[r][col] != 0) {
        pivot = r;
        break;
      }
    }
    HP_CHECK(pivot >= 0, "Vandermonde submatrix singular (impossible)");
    std::swap(a[col], a[pivot]);
    std::swap(inv[col], inv[pivot]);
    const std::uint8_t scale = gf256::inv(a[col][col]);
    for (int j = 0; j < m; ++j) {
      a[col][j] = gf256::mul(a[col][j], scale);
      inv[col][j] = gf256::mul(inv[col][j], scale);
    }
    for (int r = 0; r < m; ++r) {
      if (r == col || a[r][col] == 0) continue;
      const std::uint8_t f = a[r][col];
      for (int j = 0; j < m; ++j) {
        a[r][j] = gf256::add(a[r][j], gf256::mul(f, a[col][j]));
        inv[r][j] = gf256::add(inv[r][j], gf256::mul(f, inv[col][j]));
      }
    }
  }

  // Reconstruct: original column block = A^{-1} · fragment column.
  std::vector<std::uint8_t> out(cols * m, 0);
  for (std::size_t c = 0; c < cols; ++c) {
    for (int j = 0; j < m; ++j) {
      std::uint8_t acc = 0;
      for (int r = 0; r < m; ++r) {
        acc = gf256::add(acc, gf256::mul(inv[j][r], use[r]->payload[c]));
      }
      out[c * m + j] = acc;
    }
  }
  out.resize(original_size);
  return out;
}

}  // namespace hyperpath
