// Link- and node-fault injection (the fault-tolerance application of
// Sections 1 and 9).
//
// Two layers:
//
//   * FaultSet — a static snapshot of dead *directed* links (a broken
//     physical link is modeled as both directions dead; a dead node as all
//     its incident links dead plus the node itself).  Multiple-path
//     embeddings tolerate faults structurally: a guest edge with w
//     edge-disjoint paths still delivers over every path that avoids the
//     dead links, and combined with information dispersal (see ida.hpp) the
//     message survives as long as enough fragments get through.
//
//   * FaultSchedule / FaultTimeline — *timed* fault and repair events
//     (permanent and transient, links and nodes) that arrive mid-simulation.
//     The store-and-forward simulators replay a schedule step by step
//     (run_with_faults), truncating in-flight packets at the break point;
//     the recovery engine (recovery.hpp) adds sender-side failover onto the
//     surviving paths of each bundle.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.hpp"
#include "embed/embedding.hpp"
#include "obs/trace.hpp"
#include "sim/packet.hpp"

namespace hyperpath {

class FaultSet {
 public:
  explicit FaultSet(int dims) : host_(dims) {}

  /// Marks the physical link between u and v dead (both directions).
  void kill_link(Node u, Node v);

  /// Revives one prior kill of the physical link between u and v.  A link
  /// killed twice (e.g. directly and via a node fault) stays dead until
  /// both kills are revived.
  void revive_link(Node u, Node v);

  /// Marks node v dead: v itself plus all 2n directed links incident to it
  /// (in and out).  Models a processor failure, so node-disjoint path
  /// bundles can be exercised.
  void kill_node(Node v);

  /// Revives one prior kill_node(v).
  void revive_node(Node v);

  /// Kills `count` distinct random physical links.  Throws if `count` is
  /// negative or exceeds the number of physical links of Q_dims.
  static FaultSet random(int dims, int count, Rng& rng);

  /// Kills `count` distinct random nodes.  Throws if `count` is negative or
  /// exceeds the number of nodes of Q_dims.
  static FaultSet random_nodes(int dims, int count, Rng& rng);

  bool link_dead(Node u, Node v) const {
    return dead_.contains(host_.edge_id(u, v));
  }

  bool node_dead(Node v) const { return dead_nodes_.contains(v); }

  /// True iff every hop of the path is alive and no node on it is dead.
  bool path_alive(const HostPath& path) const;

  std::size_t num_dead_directed() const { return dead_.size(); }
  std::size_t num_dead_nodes() const { return dead_nodes_.size(); }

 private:
  void add_dead(std::uint64_t id);
  void remove_dead(std::uint64_t id);

  Hypercube host_;
  // Directed link id -> number of active kills (a link can be dead both
  // directly and through an endpoint's node fault).
  std::unordered_map<std::uint64_t, int> dead_;
  std::unordered_map<Node, int> dead_nodes_;
};

/// Result of delivering one guest edge's message over its path bundle under
/// faults.
struct BundleDelivery {
  int paths_total = 0;
  int paths_alive = 0;
};

/// Evaluates which of the bundle's paths survive the fault set.
BundleDelivery deliver_over_bundle(const FaultSet& faults,
                                   std::span<const HostPath> bundle);

/// For every guest edge of a multipath embedding, the number of surviving
/// paths.  Used to measure fault tolerance of width-w embeddings.
std::vector<BundleDelivery> deliver_phase(const FaultSet& faults,
                                          const MultiPathEmbedding& emb);

/// Outcome of a degraded-mode phase: packets whose route crosses a dead
/// link are dropped at the break point; the rest complete normally.
struct DegradedResult {
  SimResult sim;             // makespan/utilization of the surviving traffic
  std::size_t delivered = 0;
  std::size_t dropped = 0;
};

/// Runs one p-packet phase of the embedding *through* the fault set on the
/// store-and-forward simulator: dead-path packets are dropped (they never
/// enter the network — the sender's route computation sees the break), the
/// others are simulated.  This is the latency picture of a degraded
/// machine, complementing the static deliver_phase counts.
///
/// With a sink attached, each dropped packet emits one kDrop event at step
/// 0 (packet = its index in the original phase packet list, link = the
/// first dead link of its route) before the surviving traffic's simulator
/// trace; packet ids inside the simulator trace index the survivor list.
DegradedResult run_phase_with_faults(const FaultSet& faults,
                                     const MultiPathEmbedding& emb, int p,
                                     obs::TraceSink* sink = nullptr);

// ---------------------------------------------------------------------------
// Timed fault schedules

enum class FaultEventKind : std::uint8_t {
  kLinkDown = 0,
  kLinkUp,
  kNodeDown,
  kNodeUp,
};

const char* to_string(FaultEventKind kind);

/// One timed fault or repair.  `u`/`v` are the link endpoints for link
/// events; node events use `u` only.
struct FaultEvent {
  int step = 0;
  FaultEventKind kind = FaultEventKind::kLinkDown;
  Node u = 0;
  Node v = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Parameters of a randomized timed fault schedule (FaultSchedule::random).
/// The Monte-Carlo campaign driver (sim/montecarlo.hpp) draws thousands of
/// these per campaign; every knob is deterministic given the Rng.
struct RandomScheduleSpec {
  /// Fault arrival steps are uniform in [0, window).
  int window = 8;
  /// Fraction of the host's physical links to fault (distinct links;
  /// count = round(link_rate * num_undirected_edges), clamped to the link
  /// count).  The campaign's "fault intensity" knob.
  double link_rate = 0.05;
  /// Fraction of the host's nodes to fault (distinct nodes).
  double node_rate = 0.0;
  /// Probability that a fault is transient — paired with a repair event
  /// `min_repair..max_repair` steps after the down event.
  double transient_fraction = 0.5;
  int min_repair = 1;
  int max_repair = 16;
};

/// An ordered list of timed fault/repair events on Q_dims.  Events are kept
/// sorted by step (stable in insertion order within a step), so replaying a
/// schedule is deterministic.  Serializable to a small line-oriented text
/// format for CLI replay (`hyperpath_cli faults replay FILE`):
///
///   dims 8            # header, required first
///   0 link-down 3 7   # step kind endpoints
///   4 node-down 12
///   10 link-up 3 7    # transient faults pair a -down with a later -up
///   # comments and blank lines are ignored
class FaultSchedule {
 public:
  explicit FaultSchedule(int dims);

  int dims() const { return host_.dims(); }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Permanent link fault at `step` (both directions of the physical link).
  void link_down(int step, Node u, Node v);
  /// Repairs one prior link fault at `step`.
  void link_up(int step, Node u, Node v);
  /// Permanent node fault at `step` (the node plus all incident links).
  void node_down(int step, Node v);
  /// Repairs one prior node fault at `step`.
  void node_up(int step, Node v);
  /// Transient link fault: down at `step`, repaired at `repair_step`.
  void transient_link(int step, int repair_step, Node u, Node v);
  /// Transient node fault: down at `step`, repaired at `repair_step`.
  void transient_node(int step, int repair_step, Node v);

  /// A randomized timed schedule: distinct link faults and node faults with
  /// uniform arrival steps, a transient fraction paired with repair events.
  /// Deterministic given the Rng state — the Monte-Carlo driver derives one
  /// Rng per trial from (campaign seed, trial index), so campaigns are
  /// exactly reproducible.  Throws on a malformed spec (negative rates,
  /// window < 1, max_repair < min_repair).
  static FaultSchedule random(int dims, const RandomScheduleSpec& spec,
                              Rng& rng);

  /// Static snapshot after applying every event with event.step <= step.
  /// The sender-side view a recovery protocol probes before retransmitting.
  FaultSet state_at(int step) const;

  /// Final state (every event applied) — the permanent faults.
  FaultSet final_state() const;

  std::string serialize() const;
  /// Parses the serialize() format; throws hyperpath::Error on malformed
  /// input (unknown directive, bad endpoints, missing dims header).  Error
  /// messages carry the 1-based line number of the offending line
  /// ("fault schedule line N: ..."), matching the JsonlReader convention,
  /// so CLI replay reports point at the exact line of the file.
  static FaultSchedule parse(const std::string& text);

 private:
  void add(FaultEvent e);

  Hypercube host_;
  std::vector<FaultEvent> events_;  // sorted by step, stable
};

/// Replay cursor over a FaultSchedule, expanded to directed-link
/// granularity.  The simulators advance it once per step and purge queues
/// of currently-dead links; dead links are kept in a sorted map so the
/// purge order (and hence the emitted trace) is canonical.
class FaultTimeline {
 public:
  explicit FaultTimeline(const FaultSchedule& schedule);

  /// Applies every event with step <= `step` (monotone per replay).
  /// Returns the directed link ids that died / were repaired by the newly
  /// applied events (sorted, deduplicated; empty when none fired).
  struct StepDelta {
    std::vector<std::uint64_t> died;
    std::vector<std::uint64_t> repaired;
  };
  const StepDelta& advance_to(int step);

  bool link_dead(std::uint64_t directed_id) const {
    return dead_.contains(directed_id);
  }

  /// Currently dead directed link ids -> active kill count, in sorted id
  /// order (deterministic iteration).
  const std::map<std::uint64_t, int>& dead_links() const { return dead_; }

 private:
  void apply(const FaultEvent& e);
  void kill(std::uint64_t id);
  void revive(std::uint64_t id);

  Hypercube host_;
  const std::vector<FaultEvent>* events_;
  std::size_t cursor_ = 0;
  std::map<std::uint64_t, int> dead_;
  StepDelta delta_;
};

}  // namespace hyperpath
