// Link-fault injection (the fault-tolerance application of Sections 1 and 9).
//
// A fault set is a collection of dead *directed* links (a broken physical
// link is modeled as both directions dead).  Multiple-path embeddings
// tolerate faults structurally: a guest edge with w edge-disjoint paths
// still delivers over every path that avoids the dead links, and combined
// with information dispersal (see ida.hpp) the message survives as long as
// enough fragments get through.
#pragma once

#include <unordered_set>

#include "base/rng.hpp"
#include "embed/embedding.hpp"
#include "obs/trace.hpp"
#include "sim/packet.hpp"

namespace hyperpath {

class FaultSet {
 public:
  explicit FaultSet(int dims) : host_(dims) {}

  /// Marks the physical link between u and v dead (both directions).
  void kill_link(Node u, Node v);

  /// Kills `count` distinct random physical links.
  static FaultSet random(int dims, int count, Rng& rng);

  bool link_dead(Node u, Node v) const {
    return dead_.contains(host_.edge_id(u, v));
  }

  /// True iff every hop of the path is alive.
  bool path_alive(const HostPath& path) const;

  std::size_t num_dead_directed() const { return dead_.size(); }

 private:
  Hypercube host_;
  std::unordered_set<std::uint64_t> dead_;
};

/// Result of delivering one guest edge's message over its path bundle under
/// faults.
struct BundleDelivery {
  int paths_total = 0;
  int paths_alive = 0;
};

/// Evaluates which of the bundle's paths survive the fault set.
BundleDelivery deliver_over_bundle(const FaultSet& faults,
                                   std::span<const HostPath> bundle);

/// For every guest edge of a multipath embedding, the number of surviving
/// paths.  Used to measure fault tolerance of width-w embeddings.
std::vector<BundleDelivery> deliver_phase(const FaultSet& faults,
                                          const MultiPathEmbedding& emb);

/// Outcome of a degraded-mode phase: packets whose route crosses a dead
/// link are dropped at the break point; the rest complete normally.
struct DegradedResult {
  SimResult sim;             // makespan/utilization of the surviving traffic
  std::size_t delivered = 0;
  std::size_t dropped = 0;
};

/// Runs one p-packet phase of the embedding *through* the fault set on the
/// store-and-forward simulator: dead-path packets are dropped (they never
/// enter the network — the sender's route computation sees the break), the
/// others are simulated.  This is the latency picture of a degraded
/// machine, complementing the static deliver_phase counts.
///
/// With a sink attached, each dropped packet emits one kDrop event at step
/// 0 (packet = its index in the original phase packet list, link = the
/// first dead link of its route) before the surviving traffic's simulator
/// trace; packet ids inside the simulator trace index the survivor list.
DegradedResult run_phase_with_faults(const FaultSet& faults,
                                     const MultiPathEmbedding& emb, int p,
                                     obs::TraceSink* sink = nullptr);

}  // namespace hyperpath
