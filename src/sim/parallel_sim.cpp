#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/error.hpp"

namespace hyperpath {

namespace {

/// A minimal barrier-style worker pool: workers run one job per "round" and
/// park between rounds.  Much cheaper than spawning threads per step when a
/// simulation runs for thousands of steps.
class WorkerPool {
 public:
  explicit WorkerPool(int n) : job_count_(n) {
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~WorkerPool() {
    {
      std::scoped_lock lock(mu_);
      stop_ = true;
      ++round_;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// Runs job(worker_index) on every worker and waits for all to finish.
  void run_round(const std::function<void(int)>& job) {
    {
      std::scoped_lock lock(mu_);
      job_ = &job;
      pending_ = job_count_;
      ++round_;
    }
    cv_start_.notify_all();
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void worker_loop(int index) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock lock(mu_);
        cv_start_.wait(lock, [&] { return round_ != seen; });
        seen = round_;
        if (stop_) return;
        job = job_;
      }
      (*job)(index);
      {
        std::scoped_lock lock(mu_);
        if (--pending_ == 0) cv_done_.notify_all();
      }
    }
  }

  int job_count_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  int pending_ = 0;
  std::uint64_t round_ = 0;
  bool stop_ = false;
};

}  // namespace

ParallelStoreForwardSim::ParallelStoreForwardSim(int dims, int threads)
    : host_(dims), threads_(threads) {
  if (threads_ <= 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_ = std::min(threads_, 64);
}

SimResult ParallelStoreForwardSim::run(const std::vector<Packet>& packets,
                                       int max_steps) const {
  for (const Packet& p : packets) {
    HP_CHECK(is_valid_path(host_, p.route), "packet route invalid");
    HP_CHECK(p.release >= 0, "negative release time");
  }

  const int shards = threads_;
  struct Shard {
    std::unordered_map<std::uint64_t, std::deque<std::uint32_t>> queues;
    std::vector<std::uint32_t> moved;  // per-step output
    std::uint64_t busy = 0;
  };
  std::vector<Shard> shard(shards);
  const auto shard_of = [&](std::uint64_t link) {
    return static_cast<int>(link % static_cast<std::uint64_t>(shards));
  };

  std::vector<std::uint32_t> hop(packets.size(), 0);
  std::size_t undelivered = 0;
  std::vector<std::vector<std::uint32_t>> release_at;

  const auto enqueue = [&](std::uint32_t id) {
    const Packet& p = packets[id];
    const std::uint64_t link =
        host_.edge_id(p.route[hop[id]], p.route[hop[id] + 1]);
    shard[shard_of(link)].queues[link].push_back(id);
  };

  for (std::uint32_t id = 0; id < packets.size(); ++id) {
    const Packet& p = packets[id];
    if (p.route.size() <= 1) continue;
    ++undelivered;
    if (p.release == 0) {
      enqueue(id);
    } else {
      if (release_at.size() <= static_cast<std::size_t>(p.release)) {
        release_at.resize(p.release + 1);
      }
      release_at[p.release].push_back(id);
    }
  }

  SimResult result;
  const double total_links = static_cast<double>(host_.num_directed_edges());
  WorkerPool pool(shards);

  int step = 0;
  std::size_t max_queue = 0;
  while (undelivered > 0) {
    HP_CHECK(step < max_steps, "simulation exceeded max_steps");
    if (static_cast<std::size_t>(step) < release_at.size()) {
      for (std::uint32_t id : release_at[step]) enqueue(id);
    }

    // Parallel arbitration: each shard pops one packet per nonempty queue.
    pool.run_round([&](int s) {
      Shard& sh = shard[s];
      sh.moved.clear();
      sh.busy = 0;
      for (auto& [link, q] : sh.queues) {
        if (q.empty()) continue;
        sh.moved.push_back(q.front());
        q.pop_front();
        ++sh.busy;
      }
    });

    // Serial merge in canonical (packet-id) order — identical semantics to
    // StoreForwardSim's sorted arrival pass.
    std::vector<std::uint32_t> moved;
    std::uint64_t busy = 0;
    for (const Shard& sh : shard) {
      moved.insert(moved.end(), sh.moved.begin(), sh.moved.end());
      busy += sh.busy;
    }
    std::sort(moved.begin(), moved.end());
    result.total_transmissions += busy;

    for (std::uint32_t id : moved) {
      ++hop[id];
      const Packet& p = packets[id];
      if (hop[id] + 1 == p.route.size()) {
        --undelivered;
      } else {
        enqueue(id);
      }
    }

    // max_queue bookkeeping (post-arbitration depth + arrivals is what the
    // serial sim reports pre-pop; we track the pre-pop depth next step via
    // the enqueue sizes — approximate by scanning shards periodically).
    if ((step & 63) == 0) {
      for (const Shard& sh : shard) {
        for (const auto& [link, q] : sh.queues) {
          max_queue = std::max(max_queue, q.size() + 1);
        }
      }
    }

    result.utilization.push_back(static_cast<double>(busy) / total_links);
    ++step;
  }

  result.makespan = step;
  result.max_queue = max_queue;
  return result;
}

}  // namespace hyperpath
