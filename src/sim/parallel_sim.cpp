#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "par/task_pool.hpp"
#include "sim/faults.hpp"
#include "sim/simcore.hpp"
#include "sim/step_kernel.hpp"

namespace hyperpath {

using obs::TraceEvent;
using obs::TraceEventKind;

namespace {

/// A minimal barrier-style worker pool: workers run one job per "round" and
/// park between rounds.  Much cheaper than spawning threads per step when a
/// simulation runs for thousands of steps.
class WorkerPool {
 public:
  explicit WorkerPool(int n) : job_count_(n) {
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~WorkerPool() {
    {
      std::scoped_lock lock(mu_);
      stop_ = true;
      ++round_;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// Runs job(worker_index) on every worker and waits for all to finish.
  void run_round(const std::function<void(int)>& job) {
    {
      std::scoped_lock lock(mu_);
      job_ = &job;
      pending_ = job_count_;
      ++round_;
    }
    cv_start_.notify_all();
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void worker_loop(int index) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock lock(mu_);
        cv_start_.wait(lock, [&] { return round_ != seen; });
        seen = round_;
        if (stop_) return;
        job = job_;
      }
      (*job)(index);
      {
        std::scoped_lock lock(mu_);
        if (--pending_ == 0) cv_done_.notify_all();
      }
    }
  }

  int job_count_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  int pending_ = 0;
  std::uint64_t round_ = 0;
  bool stop_ = false;
};

/// The sharded step loop over the SoA route plan (step_kernel.hpp).  One
/// flat arena shared by every shard: a link's queue state lives at its
/// dense link id and is touched only by the shard that owns the link
/// (link mod shards), so workers never contend.  Each shard keeps its own
/// active worklist; arrivals and releases run on the main thread between
/// rounds and append to the owning shard's list, which preserves exactly
/// the serial simulator's per-link FIFO order.
template <bool Traced, bool Faulted>
SimResult run_parallel(const Hypercube& host, int shards,
                       const std::vector<Packet>& packets, int max_steps,
                       obs::TraceSink* sink,
                       [[maybe_unused]] const FaultSchedule* schedule,
                       [[maybe_unused]] bool announce_faults,
                       FaultRunResult* fault_out) {
  HP_PROFILE_SPAN("sim/parallel");
  simcore::StepScratch& scratch = simcore::step_scratch();
  simcore::RoutePlan& plan = scratch.plan;
  const std::uint64_t num_links = host.num_directed_edges();
  const int dims = host.dims();
  obs::StepTrace trace(sink);

  {
    HP_PROFILE_SPAN("setup");
    plan.rebuild(host, packets);  // validates; keeps capacity across runs
    scratch.arena.reset(num_links, packets.size());
    scratch.pending.clear();
    scratch.hop.assign(packets.size(), 0);
    scratch.moved_mask.assign((packets.size() + 63) / 64, 0);
    if constexpr (Traced) scratch.highwater.assign(num_links, 0);
  }

  simcore::LinkFifoArena& arena = scratch.arena;
  auto& pending = scratch.pending;
  std::uint32_t* const hop = scratch.hop.data();
  std::uint32_t* const highwater = scratch.highwater.data();
  const std::uint32_t* const route_len = plan.route_len.data();
  const std::uint32_t* const route_off = plan.route_offsets.data();
  const std::uint32_t* const link_of_hop = plan.link_of_hop.data();
  const std::uint32_t* const release = plan.release.data();

  struct Shard {
    std::vector<std::uint32_t> active;  // links this shard owns, nonempty
    std::vector<std::uint32_t> moved;   // per-step output
    std::uint64_t busy = 0;
    std::uint64_t link_visits = 0;
    // Whole-run accumulators, merged once after the loop.
    std::uint32_t max_queue = 0;
    std::vector<std::uint64_t> dim_tx;
    // Tracing state: shard-local event buffer (per step).
    std::vector<TraceEvent> events;
  };
  std::vector<Shard> shard(shards);
  for (Shard& sh : shard) sh.dim_tx.assign(dims, 0);
  const auto shard_of = [&](std::uint64_t link) {
    return static_cast<int>(link % static_cast<std::uint64_t>(shards));
  };

  std::size_t undelivered = 0;

  std::optional<FaultTimeline> timeline;
  if constexpr (Faulted) timeline.emplace(*schedule);
  if (fault_out != nullptr) {
    fault_out->fates.assign(packets.size(), PacketFate{});
  }

  const auto enqueue = [&](std::uint32_t id) {
    const std::uint64_t link = link_of_hop[route_off[id] + hop[id]];
    arena.push_back(link, id, shard[shard_of(link)].active);
    return link;
  };

  {
    HP_PROFILE_SPAN("setup");
    const std::uint32_t num_routes = plan.num_routes();
    for (std::uint32_t id = 0; id < num_routes; ++id) {
      if (route_len[id] == 0) continue;  // already at destination
      ++undelivered;
      if (release[id] == 0) {
        const std::uint64_t link = enqueue(id);
        if constexpr (Traced) {
          trace.record({0, TraceEventKind::kRelease, id, link, 0});
        }
      } else {
        pending.emplace_back(release[id], id);
      }
    }
    std::sort(pending.begin(), pending.end());
  }

  SimResult result;
  result.dim_transmissions.assign(dims, 0);
  result.latency = obs::FixedHistogram::exponential();
  const double total_links = static_cast<double>(num_links);
  WorkerPool pool(shards);

  int step = 0;
  std::size_t next_release = 0;
  std::vector<std::uint32_t>& moved = scratch.moved;  // merged arrivals
  obs::TelemetryBus& telemetry = obs::TelemetryBus::global();
  {
  HP_PROFILE_SPAN("steps");
  while (undelivered > 0) {
    HP_CHECK(step < max_steps, "simulation exceeded max_steps");

    // Scheduled faults and repairs fire first, on the main thread (workers
    // are parked between rounds), exactly as in the serial simulator.
    if constexpr (Faulted) {
      const FaultTimeline::StepDelta& delta = timeline->advance_to(step);
      if constexpr (Traced) {
        if (announce_faults) {
          for (std::uint64_t link : delta.died) {
            trace.record({step, TraceEventKind::kFault, TraceEvent::kNoPacket,
                          link, 0});
          }
          for (std::uint64_t link : delta.repaired) {
            trace.record({step, TraceEventKind::kRepair,
                          TraceEvent::kNoPacket, link, 0});
          }
        }
      }
    }

    while (next_release < pending.size() &&
           pending[next_release].first == static_cast<std::uint32_t>(step)) {
      const std::uint32_t id = pending[next_release].second;
      const std::uint64_t link = enqueue(id);
      if constexpr (Traced) {
        trace.record({step, TraceEventKind::kRelease, id, link, 0});
      }
      ++next_release;
    }

    // Truncation at dead links, main thread, sorted dead-link order —
    // byte-identical drop stream to the serial simulator.  Stale worklist
    // entries left by clear_link are compacted by this step's shard sweeps.
    if constexpr (Faulted) {
      if (!timeline->dead_links().empty()) {
        for (const auto& [link, kills] : timeline->dead_links()) {
          if (arena.empty(link)) continue;
          arena.for_each(link, [&](std::uint32_t id) {
            --undelivered;
            if (fault_out != nullptr) {
              fault_out->fates[id] = {PacketFate::Kind::kLost, step, link,
                                      static_cast<int>(hop[id])};
            }
            if constexpr (Traced) {
              trace.record({step, TraceEventKind::kDrop, id, link, hop[id]});
            }
          });
          arena.clear_link(link);
        }
      }
    }

    // Parallel arbitration: each shard runs the shared step kernel over its
    // own active worklist, recording queue statistics (and trace events)
    // shard-locally.
    pool.run_round([&](int s) {
      Shard& sh = shard[s];
      sh.moved.clear();
      sh.events.clear();
      const auto emit = [&](const TraceEvent& e) { sh.events.push_back(e); };
      const simcore::SweepStats sweep = simcore::step_sweep<Traced, Faulted>(
          arena, sh.active, sh.moved, sh.dim_tx.data(), dims, step, highwater,
          simcore::FifoArbiter{}, emit);
      sh.busy = sweep.busy;
      sh.link_visits += sweep.link_visits;
      if (sweep.max_queue > sh.max_queue) sh.max_queue = sweep.max_queue;
    });

    // Serial merge in canonical (packet-id) order — identical semantics to
    // StoreForwardSim's sorted arrival pass.  Shard trace buffers are
    // merged here too; StepTrace's canonical sort at end_step() makes the
    // emitted stream independent of the sharding.
    moved.clear();
    std::uint64_t busy = 0;
    for (const Shard& sh : shard) {
      moved.insert(moved.end(), sh.moved.begin(), sh.moved.end());
      busy += sh.busy;
      if constexpr (Traced) {
        trace.record(std::span<const TraceEvent>(sh.events));
      }
    }
    simcore::sort_moved(moved, scratch.moved_mask);
    result.total_transmissions += busy;

    simcore::advance_hops(moved, hop);
    for (const std::uint32_t id : moved) {
      if (hop[id] == route_len[id]) {
        --undelivered;
        const std::uint64_t lat = static_cast<std::uint64_t>(
            step + 1 - static_cast<int>(release[id]));
        result.latency.observe(static_cast<double>(lat));
        if constexpr (Faulted) {
          if (fault_out != nullptr) {
            fault_out->fates[id] = {PacketFate::Kind::kDelivered, step,
                                    TraceEvent::kNoLink,
                                    static_cast<int>(hop[id])};
          }
        }
        if constexpr (Traced) {
          trace.record({step, TraceEventKind::kArrive, id,
                        TraceEvent::kNoLink, lat});
        }
      } else {
        enqueue(id);
      }
    }

    result.utilization.add(static_cast<double>(busy) / total_links);

    // Telemetry sampling on the main thread, workers parked.  Each shard's
    // active list yields its own depth histogram; shard-ordered
    // FixedHistogram::merge makes the sample independent of the shard
    // count and identical to the serial simulator's.
    if (telemetry.should_sample(step)) {
      obs::SimTelemetry t;
      t.step = step;
      t.undelivered = undelivered;
      t.transmissions = result.total_transmissions;
      t.depth_hist = obs::telemetry_depth_histogram();
      for (const Shard& sh : shard) {
        obs::FixedHistogram local = obs::telemetry_depth_histogram();
        for (const std::uint32_t link : sh.active) {
          const std::uint64_t d = arena.depth(link);
          t.queued_packets += d;
          t.max_queue_depth = std::max(t.max_queue_depth, d);
          local.observe(static_cast<double>(d));
        }
        t.active_links += sh.active.size();
        t.depth_hist.merge(local);
      }
      telemetry.sample(std::move(t));
    }

    trace.end_step();
    ++step;
  }
  }

  HP_PROFILE_SPAN("drain");
  trace.finish();
  result.makespan = step;
  for (const Shard& sh : shard) {
    // Depth accounting is uint32 in the core; widen once at the boundary.
    result.max_queue =
        std::max(result.max_queue, static_cast<std::size_t>(sh.max_queue));
    result.link_visits += sh.link_visits;
    for (int d = 0; d < dims; ++d) {
      result.dim_transmissions[d] += sh.dim_tx[d];
    }
  }
  if (fault_out != nullptr) {
    for (const PacketFate& f : fault_out->fates) {
      if (f.delivered()) {
        ++fault_out->delivered;
      } else {
        ++fault_out->lost;
      }
    }
  }
  return result;
}

}  // namespace

ParallelStoreForwardSim::ParallelStoreForwardSim(int dims, int threads)
    : host_(dims), threads_(threads) {
  if (threads_ <= 0) {
    // Follow the process-wide pool size (HYPERPATH_THREADS / --threads)
    // instead of raw hardware_concurrency, so one knob governs both layers.
    threads_ = par::global_threads();
  }
  threads_ = std::min(threads_, 64);
}

SimResult ParallelStoreForwardSim::run(const std::vector<Packet>& packets,
                                       int max_steps,
                                       obs::TraceSink* sink) const {
  return run_impl(packets, max_steps, sink, nullptr, false, nullptr);
}

FaultRunResult ParallelStoreForwardSim::run_with_faults(
    const std::vector<Packet>& packets, const FaultSchedule& schedule,
    int max_steps, obs::TraceSink* sink, bool announce_faults) const {
  HP_CHECK(schedule.dims() == host_.dims(),
           "fault schedule dims mismatch simulator dims");
  FaultRunResult out;
  out.sim = run_impl(packets, max_steps, sink, &schedule, announce_faults,
                     &out);
  return out;
}

SimResult ParallelStoreForwardSim::run_impl(const std::vector<Packet>& packets,
                                            int max_steps,
                                            obs::TraceSink* sink,
                                            const FaultSchedule* schedule,
                                            bool announce_faults,
                                            FaultRunResult* fault_out) const {
  const auto t0 = std::chrono::steady_clock::now();
  SimResult result;
  if (sink != nullptr) {
    result = schedule != nullptr
                 ? run_parallel<true, true>(host_, threads_, packets,
                                            max_steps, sink, schedule,
                                            announce_faults, fault_out)
                 : run_parallel<true, false>(host_, threads_, packets,
                                             max_steps, sink, schedule,
                                             announce_faults, fault_out);
  } else {
    result = schedule != nullptr
                 ? run_parallel<false, true>(host_, threads_, packets,
                                             max_steps, sink, schedule,
                                             announce_faults, fault_out)
                 : run_parallel<false, false>(host_, threads_, packets,
                                              max_steps, sink, schedule,
                                              announce_faults, fault_out);
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace hyperpath
