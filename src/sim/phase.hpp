// Measuring p-packet phase costs (Section 3).
//
// The p-packet cost of an embedding is the number of synchronous steps
// needed to complete one phase of the guest computation in which every
// guest edge carries p packets.  We measure it empirically: packets are
// generated per guest edge — assigned round-robin over the edge's path
// bundle (bundle sorted by path length, so direct paths absorb the extra
// packets exactly as in Theorem 1's schedule) — and run through the
// store-and-forward simulator.
//
// The measured makespan is an *achievable* cost (an upper bound attained by
// a concrete oblivious schedule); the theorems' claims are checked against
// it in tests and benches.
#pragma once

#include "embed/embedding.hpp"
#include "sim/packet.hpp"
#include "sim/store_forward.hpp"

namespace hyperpath {

/// The packets of one phase: p per guest edge, packet j of an edge routed on
/// bundle path (j mod w) with the bundle sorted by increasing length.
std::vector<Packet> phase_packets(const MultiPathEmbedding& emb, int p);

/// The packets of one phase across all copies of a k-copy embedding: p per
/// guest edge *per copy*, each on its copy's single path.
std::vector<Packet> phase_packets(const KCopyEmbedding& emb, int p);

/// Runs one phase and returns the measured result (makespan = p-packet
/// cost of this schedule).  An optional trace sink receives the simulator's
/// step-level events.
SimResult measure_phase_cost(const MultiPathEmbedding& emb, int p,
                             Arbitration policy = Arbitration::kFifo,
                             obs::TraceSink* sink = nullptr);
SimResult measure_phase_cost(const KCopyEmbedding& emb, int p,
                             Arbitration policy = Arbitration::kFifo,
                             obs::TraceSink* sink = nullptr);

}  // namespace hyperpath
