#include "sim/simcore.hpp"

namespace hyperpath::simcore {

LinkFifoArena::LinkFifoArena(std::uint64_t num_links, std::size_t num_packets)
    : head_(num_links, kNil),
      tail_(num_links, kNil),
      depth_(num_links, 0),
      next_(num_packets, kNil) {}

}  // namespace hyperpath::simcore
