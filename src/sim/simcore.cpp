#include "sim/simcore.hpp"

#include <bit>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "sim/packet.hpp"

namespace hyperpath::simcore {

LinkFifoArena::LinkFifoArena(std::uint64_t num_links, std::size_t num_packets)
    : head_(num_links, kNil),
      tail_(num_links, kNil),
      depth_(num_links, 0),
      next_(num_packets, kNil) {}

void LinkFifoArena::reset(std::uint64_t num_links, std::size_t num_packets) {
  head_.assign(num_links, kNil);
  tail_.assign(num_links, kNil);
  depth_.assign(num_links, 0);
  next_.assign(num_packets, kNil);
}

void RoutePlan::clear() {
  route_nodes.clear();
  route_offsets.clear();
  link_of_hop.clear();
  route_len.clear();
  release.clear();
}

void RoutePlan::reserve(std::size_t routes, std::size_t total_nodes) {
  route_nodes.reserve(total_nodes);
  route_offsets.reserve(routes + 1);
  link_of_hop.reserve(total_nodes);  // hops < nodes; one reserve covers both
  route_len.reserve(routes);
  release.reserve(routes);
}

void RoutePlan::add_route(const Hypercube& host, const HostPath& route,
                          std::uint32_t release_step,
                          const char* invalid_msg) {
  HP_CHECK(is_valid_path(host, route), invalid_msg);
  if (route_offsets.empty()) route_offsets.push_back(0);
  route_nodes.insert(route_nodes.end(), route.begin(), route.end());
  for (std::size_t h = 0; h + 1 < route.size(); ++h) {
    link_of_hop.push_back(
        static_cast<std::uint32_t>(host.edge_id(route[h], route[h + 1])));
  }
  route_offsets.push_back(static_cast<std::uint32_t>(link_of_hop.size()));
  route_len.push_back(static_cast<std::uint32_t>(route.size() - 1));
  release.push_back(release_step);
}

void RoutePlan::begin_route(std::uint32_t release_step) {
  if (route_offsets.empty()) route_offsets.push_back(0);
  stream_start_ = route_nodes.size();
  stream_release_ = release_step;
}

void RoutePlan::push_node(Node v) { route_nodes.push_back(v); }

void RoutePlan::end_route(const Hypercube& host, const char* invalid_msg) {
  HP_CHECK(host.num_directed_edges() <= 0xffffffffull,
           "route plan needs 32-bit link ids (hypercube too large)");
  const std::size_t len = route_nodes.size() - stream_start_;
  HP_CHECK(len >= 1, invalid_msg);
  const Node* nodes = route_nodes.data() + stream_start_;
  HP_CHECK(host.contains(nodes[0]), invalid_msg);
  for (std::size_t h = 0; h + 1 < len; ++h) {
    HP_CHECK(host.contains(nodes[h + 1]) &&
                 std::popcount(nodes[h] ^ nodes[h + 1]) == 1,
             invalid_msg);
    link_of_hop.push_back(
        static_cast<std::uint32_t>(host.edge_id(nodes[h], nodes[h + 1])));
  }
  route_offsets.push_back(static_cast<std::uint32_t>(link_of_hop.size()));
  route_len.push_back(static_cast<std::uint32_t>(len - 1));
  release.push_back(stream_release_);
}

void RoutePlan::end_route_unlinked(int dims, const char* invalid_msg) {
  const std::size_t len = route_nodes.size() - stream_start_;
  HP_CHECK(len >= 1, invalid_msg);
  const Node* nodes = route_nodes.data() + stream_start_;
  const std::uint64_t num_nodes = pow2(dims);
  HP_CHECK(nodes[0] < num_nodes, invalid_msg);
  for (std::size_t h = 0; h + 1 < len; ++h) {
    HP_CHECK(nodes[h + 1] < num_nodes &&
                 std::popcount(nodes[h] ^ nodes[h + 1]) == 1,
             invalid_msg);
  }
  // Offsets still accumulate hop counts so nodes(r) indexing holds even
  // though link_of_hop is filled by the caller after renumbering.
  const std::uint64_t hops_total =
      static_cast<std::uint64_t>(route_offsets.back()) + (len - 1);
  HP_CHECK(hops_total <= 0xffffffffull, "route plan hop count overflow");
  route_offsets.push_back(static_cast<std::uint32_t>(hops_total));
  route_len.push_back(static_cast<std::uint32_t>(len - 1));
  release.push_back(stream_release_);
}

void RoutePlan::rebuild(const Hypercube& host,
                        const std::vector<Packet>& packets) {
  // Dense link ids must narrow to 32 bits (n·2^n < 2^32 ⇔ n ≤ 27).  Every
  // supported workload is far inside this; the check makes the narrowing an
  // error instead of silent truncation if that ever changes.
  HP_CHECK(host.num_directed_edges() <= 0xffffffffull,
           "route plan needs 32-bit link ids (hypercube too large)");
  clear();
  std::size_t total_nodes = 0;
  for (const Packet& p : packets) total_nodes += p.route.size();
  reserve(packets.size(), total_nodes);
  for (const Packet& p : packets) {
    // Same per-packet check order as the legacy setup path: a packet with a
    // broken route AND a negative release reports the route first.  The
    // narrowing cast is harmless when release < 0 — the check right after
    // throws and the half-built plan is discarded.
    add_route(host, p.route, static_cast<std::uint32_t>(p.release));
    HP_CHECK(p.release >= 0, "negative release time");
  }
  if (route_offsets.empty()) route_offsets.push_back(0);
}

RoutePlan RoutePlan::compile(const Hypercube& host,
                             const std::vector<Packet>& packets) {
  RoutePlan plan;
  plan.rebuild(host, packets);
  return plan;
}

StepScratch& step_scratch() {
  thread_local StepScratch scratch;
  return scratch;
}

}  // namespace hyperpath::simcore
