// Monte-Carlo fault-campaign engine: fleet-scale reliability measurement of
// multiple-path embeddings (the §1/§9 fault-tolerance claim as a measured
// curve instead of one anecdotal schedule).
//
// A *campaign* fans thousands of independent trials across the src/par
// work-stealing pool.  Each trial
//
//   1. derives its own Rng splitmix-style from (campaign seed, trial index)
//      — never from thread identity or execution order,
//   2. draws a randomized timed fault schedule (FaultSchedule::random) at
//      the campaign's fault intensity, and
//   3. runs one message per guest edge through the sender-side recovery
//      engine (sim/recovery.hpp) under that schedule.
//
// Determinism contract (the same one src/par enforces for construction):
// trial outcomes are a pure function of (embedding, config, trial index).
// Chunk boundaries depend only on (range, grain); per-chunk accumulators
// are merged in ascending chunk order; and the campaign digest combines
// position-mixed per-trial hashes with a commutative wrapping sum — so the
// digest and every aggregate statistic are bit-identical at any thread
// count, and a campaign split into disjoint trial ranges merges back into
// exactly the whole-campaign result (resumable / partitionable campaigns).
//
// The streamed reducer keeps only O(1) state per campaign: counts, maxima,
// and fixed-bucket histograms combined via FixedHistogram::merge (recovery
// latency, retransmit generations, trial makespan, per-trial delivery
// rate).  No per-trial record is retained, so campaigns scale to millions
// of trials.
//
// sweep_envelope ramps the fault intensity over a grid and runs one
// campaign per point per embedding — the reliability envelope.  The
// critical fault rate (where delivery first drops below a threshold) falls
// out of the curve by interpolation.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/faults.hpp"
#include "sim/recovery.hpp"

namespace hyperpath {

/// Per-trial seed derived from the campaign seed and the trial index via
/// two rounds of the splitmix64 finalizer.  Pure function of its inputs —
/// the heart of the campaign determinism contract.
std::uint64_t trial_seed(std::uint64_t campaign_seed, std::uint64_t trial);

/// One campaign's knobs.  Trials [trial_begin, trial_end) of the conceptual
/// campaign [0, trials) are run; the default (0, 0) means the whole range.
/// Running disjoint sub-ranges and merging their stats reproduces the full
/// campaign bit-exactly.
struct CampaignConfig {
  std::uint64_t seed = 1;
  std::uint32_t trials = 1000;
  std::uint32_t trial_begin = 0;
  std::uint32_t trial_end = 0;  // 0 = `trials`
  /// Per-trial randomized schedule shape; `schedule.link_rate` is the
  /// campaign's fault-intensity knob.
  RandomScheduleSpec schedule;
  /// Recovery engine settings for every trial.  `parallel` must stay false
  /// (trials parallelize across the pool; nesting a sharded transport
  /// inside a pool task would oversubscribe) and `update_registry` is
  /// forced off per trial — the campaign publishes aggregated "mc.*"
  /// metrics itself.
  RecoveryConfig recovery;
  /// Trials per pool task.  Part of the determinism contract only through
  /// chunk *boundaries*; any grain yields the same digest.
  std::size_t grain = 8;
  /// Stream mc.* counters (trials_done, messages_complete, retransmissions)
  /// into the global MetricsRegistry while the campaign runs, so a live
  /// telemetry bus sees campaign progress.  Atomic counter adds only —
  /// never part of the deterministic result.
  bool live_metrics = true;
};

/// Compact outcome of one trial — everything the reducer and the digest
/// consume.  Integer fields only, so the digest is exact on every platform.
struct TrialOutcome {
  std::uint32_t trial = 0;
  std::uint32_t events = 0;  // schedule size (fault + repair events)
  std::uint32_t messages = 0;
  std::uint32_t complete = 0;
  std::uint32_t recovered = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fragments_lost = 0;
  std::uint64_t fragments_exhausted = 0;
  std::uint64_t latency_steps = 0;  // Σ (complete − first loss) of recovered
  std::int32_t makespan = 0;
  std::int32_t waves = 0;

  /// Position-mixed hash of every field (the trial index participates), so
  /// the campaign digest — a wrapping sum of these — detects any change to
  /// any trial while staying independent of summation order.
  std::uint64_t digest() const;
};

/// Streamed campaign statistics.  add_trial folds one outcome in; merge
/// folds a whole sub-campaign in (histograms share one fixed shape, so
/// merge order never matters — enforced anyway by chunk-ordered reduction).
struct CampaignStats {
  CampaignStats();

  std::uint64_t trials = 0;
  std::uint64_t schedule_events = 0;
  std::uint64_t messages_total = 0;
  std::uint64_t messages_complete = 0;
  std::uint64_t messages_recovered = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fragments_lost = 0;
  std::uint64_t fragments_exhausted = 0;
  /// Trials in which every message completed (the survival-rate numerator).
  std::uint64_t trials_fully_delivered = 0;
  int max_makespan = 0;
  int max_waves = 0;

  /// Per-message recovery latency, merged across every trial.
  obs::FixedHistogram recovery_latency;
  /// Retransmit generations: retransmissions consumed per *recovered*
  /// message (how deep the failover had to go).
  obs::FixedHistogram retransmit_generations;
  /// Per-trial makespan distribution.
  obs::FixedHistogram trial_makespan;
  /// Per-trial delivery rate in permille (0..1000) on CDF-friendly buckets
  /// — the delivery CDF at this fault intensity.
  obs::FixedHistogram delivery_permille;

  /// Wrapping sum of per-trial digests; bit-identical at every thread
  /// count and under any partition of the trial range.
  std::uint64_t digest = 0;

  double delivery_rate() const {
    return messages_total
               ? static_cast<double>(messages_complete) / messages_total
               : 1.0;
  }
  /// Fraction of trials that delivered every message.
  double survival_rate() const {
    return trials ? static_cast<double>(trials_fully_delivered) / trials
                  : 1.0;
  }

  void add_trial(const TrialOutcome& t);
  void merge(const CampaignStats& other);
};

/// Fans a campaign's trials across par::current_pool().
class MonteCarloDriver {
 public:
  explicit MonteCarloDriver(const MultiPathEmbedding& emb) : emb_(&emb) {}

  /// Runs the configured trial range and returns the reduced statistics.
  /// Throws on a malformed config (empty range, parallel per-trial
  /// transport).  Also publishes "mc.*" aggregates to the global
  /// MetricsRegistry from the calling thread when live_metrics is set.
  CampaignStats run(const CampaignConfig& config) const;

  /// One trial exactly as the campaign runs it (tests, post-mortem replay
  /// of an interesting trial index).  Optionally returns the schedule.
  RecoveryResult run_trial(const CampaignConfig& config, std::uint32_t trial,
                           FaultSchedule* schedule_out = nullptr) const;

  /// The TrialOutcome summary of a RecoveryResult, as add_trial consumes.
  static TrialOutcome summarize(std::uint32_t trial, std::uint32_t events,
                                const RecoveryResult& r);

 private:
  const MultiPathEmbedding* emb_;
};

/// One point of a reliability envelope: the campaign statistics at one
/// fault intensity.
struct EnvelopePoint {
  double link_rate = 0;
  CampaignStats stats;
};

/// Runs one campaign per intensity in `link_rates` (ascending), reusing
/// `base` for every other knob.  Common random numbers: every point uses
/// the same campaign seed, so curves differ only through the intensity.
std::vector<EnvelopePoint> sweep_envelope(const MultiPathEmbedding& emb,
                                          const CampaignConfig& base,
                                          const std::vector<double>& link_rates);

/// The critical fault rate: the intensity at which delivery first drops
/// below `threshold`, linearly interpolated between the bracketing sweep
/// points.  Returns -1 if delivery never drops below the threshold, and
/// the first point's rate if it is already below.
double critical_fault_rate(const std::vector<EnvelopePoint>& envelope,
                           double threshold);

}  // namespace hyperpath
