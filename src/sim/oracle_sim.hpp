// Store-and-forward phase simulation fed directly from a PathOracle.
//
// The classic pipeline materializes an embedding, expands phase traffic
// into Packet vectors with HostPath routes, then compiles a RoutePlan —
// three copies of every route, plus per-link arena state sized by the
// host's full 2^n·n directed links.  At Q_24 that is ~400M link slots
// before the first packet moves; at Q_28 the dense link id itself no
// longer fits 32 bits.
//
// run_oracle_phase replaces all of that with streaming compilation:
//
//   1. Each demanded guest edge's bundle paths are streamed hop by hop
//      from the oracle straight into a RoutePlan (no HostPath, no Packet,
//      no bundle vector), recording each hop's 64-bit *global* link id
//      u·n + dim on the side.
//   2. The global ids are sorted and deduplicated; each hop is rewritten
//      to its rank — a plan-local 32-bit link id.  The arena is sized by
//      the number of *distinct links the traffic touches* (≤ total hops),
//      not by the host: memory is proportional to the active packet set,
//      and hosts past the n = 27 dense-id ceiling work unchanged.
//   3. A serial FIFO sweep (same visit order, arrival sorting, and
//      one-transmission-per-link-per-step semantics as the SoA engine in
//      store_forward.cpp) runs the plan to completion.
//
// Packet-per-edge scheduling matches phase_packets: the bundle indices
// are stable-sorted by increasing path length and packet j of an edge
// rides order[j mod width].  On a host small enough for both pipelines,
// makespan / transmissions / congestion agree with the materialized path
// (tests/property/oracle_sample_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "embed/path_oracle.hpp"
#include "sim/simcore.hpp"

namespace hyperpath {

struct OraclePhaseSpec {
  int packets_per_edge = 1;  // p packets per demanded guest edge
  int max_steps = 1 << 22;   // HP_CHECK bound on the sweep
};

struct OraclePhaseResult {
  int makespan = 0;                     // steps until every packet arrived
  std::uint64_t delivered = 0;          // routes run to completion
  std::uint64_t total_transmissions = 0;
  std::uint64_t peak_congestion = 0;    // max packets routed over one link
  std::uint32_t max_queue = 0;          // deepest FIFO seen in the sweep
  std::uint64_t unique_links = 0;       // distinct host links touched
  std::uint64_t route_nodes = 0;        // nodes stored in the compiled plan
  std::uint64_t compiled_bytes = 0;     // plan + renumber table + arena
  std::vector<std::uint64_t> dim_transmissions;  // per host dimension
};

/// Streams path `path_index` of `edge` from the oracle into `plan` as one
/// unlinked route (simcore::RoutePlan streaming API), appending each hop's
/// 64-bit global link id (tail·dims + dim) to `glinks`.  The caller
/// renumbers glinks into plan-local ids after deduplication.
void add_oracle_route(const PathOracle& oracle, const OracleEdge& edge,
                      int path_index, std::uint32_t release_step,
                      simcore::RoutePlan& plan,
                      std::vector<std::uint64_t>& glinks);

/// Compiles `spec.packets_per_edge` packets per demanded guest edge from
/// the oracle's bundles and runs the FIFO phase sweep to completion.
OraclePhaseResult run_oracle_phase(const PathOracle& oracle,
                                   std::span<const OracleEdge> edges,
                                   const OraclePhaseSpec& spec = {});

}  // namespace hyperpath
