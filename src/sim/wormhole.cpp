#include "sim/wormhole.hpp"

#include <unordered_set>

#include "base/error.hpp"
#include "obs/profile.hpp"

namespace hyperpath {

using obs::TraceEvent;
using obs::TraceEventKind;

WormholeSim::WormholeSim(int dims) : host_(dims) {}

WormResult WormholeSim::run(const std::vector<Worm>& worms, int max_steps,
                            obs::TraceSink* sink) const {
  HP_PROFILE_SPAN("sim/wormhole");
  WormResult result;
  result.completion.assign(worms.size(), 0);
  obs::StepTrace trace(sink);

  std::unordered_set<std::uint64_t> held;  // link ids currently in use

  struct State {
    bool started = false;
    bool done = false;
    int completion = 0;
  };
  std::vector<State> st(worms.size());

  std::size_t active = 0;
  {
    HP_PROFILE_SPAN("setup");
    for (const Worm& w : worms) {
      HP_CHECK(is_valid_path(host_, w.route), "worm route invalid");
      HP_CHECK(w.flits >= 1, "worm needs at least one flit");
      HP_CHECK(w.release >= 0, "negative release time");
    }
    for (std::size_t i = 0; i < worms.size(); ++i) {
      if (worms[i].route.size() <= 1) {
        st[i].done = true;  // already at destination; no link work
      } else {
        ++active;
      }
    }
  }

  int step = 0;
  {
  HP_PROFILE_SPAN("steps");
  while (active > 0) {
    HP_CHECK(step < max_steps, "wormhole simulation exceeded max_steps");
    ++step;

    // Atomic circuit acquisition, id-priority: a worm starts only when its
    // *entire* route is free (this is what makes the model deadlock-free —
    // there is no hold-and-wait).  An unblocked L-link worm with M flits
    // started at step t completes at t + L + M − 2: the header crosses one
    // link per step and the body streams pipelined behind it.
    for (std::uint32_t i = 0; i < worms.size(); ++i) {
      State& s = st[i];
      const Worm& w = worms[i];
      if (s.done || s.started || w.release >= step) continue;
      bool free = true;
      std::uint64_t blocked_on = TraceEvent::kNoLink;
      for (std::size_t h = 0; free && h + 1 < w.route.size(); ++h) {
        const std::uint64_t link = host_.edge_id(w.route[h], w.route[h + 1]);
        if (held.contains(link)) {
          free = false;
          blocked_on = link;
        }
      }
      if (!free) {
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kStall, i, blocked_on, 0});
        }
        continue;
      }
      const int links = static_cast<int>(w.route.size()) - 1;
      for (std::size_t h = 0; h + 1 < w.route.size(); ++h) {
        const std::uint64_t link = host_.edge_id(w.route[h], w.route[h + 1]);
        held.insert(link);
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kTransmit, i, link,
                        static_cast<std::uint64_t>(w.flits)});
        }
      }
      s.started = true;
      s.completion = step + links + w.flits - 2;
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kWormStart, i,
                      TraceEvent::kNoLink,
                      static_cast<std::uint64_t>(w.flits)});
      }
      result.total_flit_hops +=
          static_cast<std::uint64_t>(w.flits) * static_cast<std::uint64_t>(links);
    }

    // Completions release all links at the end of their final step.
    for (std::uint32_t i = 0; i < worms.size(); ++i) {
      State& s = st[i];
      if (s.done || !s.started || s.completion != step) continue;
      s.done = true;
      result.completion[i] = step;
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kWormDone, i,
                      TraceEvent::kNoLink,
                      static_cast<std::uint64_t>(step - worms[i].release)});
      }
      for (std::size_t h = 0; h + 1 < worms[i].route.size(); ++h) {
        held.erase(host_.edge_id(worms[i].route[h], worms[i].route[h + 1]));
      }
      --active;
    }
    trace.end_step();
  }
  }

  HP_PROFILE_SPAN("drain");
  trace.finish();
  result.makespan = step;
  return result;
}

}  // namespace hyperpath
