#include "sim/wormhole.hpp"

#include <algorithm>
#include <chrono>

#include "base/error.hpp"
#include "obs/profile.hpp"
#include "sim/simcore.hpp"

namespace hyperpath {

using obs::TraceEvent;
using obs::TraceEventKind;

namespace {

/// The wormhole step loop over the SoA route plan: the acquisition scan
/// (whole route free?) walks a contiguous slice of 32-bit link ids instead
/// of recomputing Hypercube::edge_id per hop on every retry — the scan is
/// the hot path, since a blocked worm repeats it every step until it
/// starts.  Traced compiles the event emission in or out, exactly like the
/// store-and-forward kernel's specializations.
template <bool Traced>
WormResult run_worm(const Hypercube& host, const std::vector<Worm>& worms,
                    int max_steps, obs::TraceSink* sink) {
  HP_PROFILE_SPAN("sim/wormhole");
  WormResult result;
  result.completion.assign(worms.size(), 0);
  obs::StepTrace trace(sink);

  // Held links as one bit per dense directed-link id, and the worm set as
  // two compacted worklists: `pending` (not yet started, ascending id — the
  // deterministic acquisition priority) and `inflight` (started, awaiting
  // completion).  A step touches only live worms.
  simcore::LinkBitmap held(host.num_directed_edges());
  std::vector<std::uint32_t> pending;
  std::vector<std::uint32_t> inflight;
  std::vector<int> completion_at(worms.size(), 0);

  // Compile the worm routes into the thread's scratch RoutePlan (worms are
  // not Packets, so the plan is assembled route by route).
  simcore::RoutePlan& plan = simcore::step_scratch().plan;
  std::size_t active = 0;
  {
    HP_PROFILE_SPAN("setup");
    plan.clear();
    std::size_t total_nodes = 0;
    for (const Worm& w : worms) total_nodes += w.route.size();
    plan.reserve(worms.size(), total_nodes);
    for (const Worm& w : worms) {
      // Same per-worm check order as before: route, flits, release.  The
      // narrowing release cast is harmless when release < 0 — the check
      // below throws and the plan is discarded.
      plan.add_route(host, w.route, static_cast<std::uint32_t>(w.release),
                     "worm route invalid");
      HP_CHECK(w.flits >= 1, "worm needs at least one flit");
      HP_CHECK(w.release >= 0, "negative release time");
    }
    for (std::uint32_t i = 0; i < worms.size(); ++i) {
      if (plan.route_len[i] > 0) {
        pending.push_back(i);  // trivial routes need no link work
        ++active;
      }
    }
  }

  const std::uint32_t* const route_len = plan.route_len.data();
  const std::uint32_t* const route_off = plan.route_offsets.data();
  const std::uint32_t* const link_of_hop = plan.link_of_hop.data();
  const std::uint32_t* const release = plan.release.data();

  int step = 0;
  {
  HP_PROFILE_SPAN("steps");
  while (active > 0) {
    HP_CHECK(step < max_steps, "wormhole simulation exceeded max_steps");
    ++step;

    // Atomic circuit acquisition, id-priority: a worm starts only when its
    // *entire* route is free (this is what makes the model deadlock-free —
    // there is no hold-and-wait).  An unblocked L-link worm with M flits
    // started at step t completes at t + L + M − 2: the header crosses one
    // link per step and the body streams pipelined behind it.  The pending
    // list is compacted stably, so it stays in ascending id order.
    std::size_t keep = 0;
    for (std::size_t r = 0; r < pending.size(); ++r) {
      const std::uint32_t i = pending[r];
      if (static_cast<int>(release[i]) >= step) {
        pending[keep++] = i;
        continue;
      }
      const std::uint32_t len = route_len[i];
      const std::uint32_t* const links = link_of_hop + route_off[i];
      bool free = true;
      std::uint64_t blocked_on = TraceEvent::kNoLink;
      for (std::uint32_t h = 0; h < len; ++h) {
        if (held.test(links[h])) {
          free = false;
          blocked_on = links[h];  // first busy link, as before
          break;
        }
      }
      if (!free) {
        if constexpr (Traced) {
          trace.record({step, TraceEventKind::kStall, i, blocked_on, 0});
        }
        pending[keep++] = i;
        continue;
      }
      const int flits = worms[i].flits;
      for (std::uint32_t h = 0; h < len; ++h) {
        held.set(links[h]);
        if constexpr (Traced) {
          trace.record({step, TraceEventKind::kTransmit, i, links[h],
                        static_cast<std::uint64_t>(flits)});
        }
      }
      completion_at[i] = step + static_cast<int>(len) + flits - 2;
      inflight.push_back(i);
      if constexpr (Traced) {
        trace.record({step, TraceEventKind::kWormStart, i,
                      TraceEvent::kNoLink,
                      static_cast<std::uint64_t>(flits)});
      }
      result.total_flit_hops +=
          static_cast<std::uint64_t>(flits) * static_cast<std::uint64_t>(len);
    }
    pending.resize(keep);

    // Completions release all links at the end of their final step (a worm
    // started this step with a one-link, one-flit route completes
    // immediately — the inflight scan runs after the start pass so it is
    // seen).  Order within the pass is immaterial: trace events are
    // canonically sorted at end_step and all other writes are indexed.
    std::size_t live = 0;
    for (std::size_t r = 0; r < inflight.size(); ++r) {
      const std::uint32_t i = inflight[r];
      if (completion_at[i] != step) {
        inflight[live++] = i;
        continue;
      }
      result.completion[i] = step;
      if constexpr (Traced) {
        trace.record({step, TraceEventKind::kWormDone, i,
                      TraceEvent::kNoLink,
                      static_cast<std::uint64_t>(
                          step - static_cast<int>(release[i]))});
      }
      const std::uint32_t* const links = link_of_hop + route_off[i];
      for (std::uint32_t h = 0; h < route_len[i]; ++h) {
        held.clear(links[h]);
      }
      --active;
    }
    inflight.resize(live);
    trace.end_step();
  }
  }

  HP_PROFILE_SPAN("drain");
  trace.finish();
  result.makespan = step;
  return result;
}

}  // namespace

WormholeSim::WormholeSim(int dims) : host_(dims) {}

WormResult WormholeSim::run(const std::vector<Worm>& worms, int max_steps,
                            obs::TraceSink* sink) const {
  const auto t0 = std::chrono::steady_clock::now();
  WormResult result = sink != nullptr
                          ? run_worm<true>(host_, worms, max_steps, sink)
                          : run_worm<false>(host_, worms, max_steps, sink);
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace hyperpath
