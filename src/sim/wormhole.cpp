#include "sim/wormhole.hpp"

#include "base/error.hpp"
#include "obs/profile.hpp"
#include "sim/simcore.hpp"

namespace hyperpath {

using obs::TraceEvent;
using obs::TraceEventKind;

WormholeSim::WormholeSim(int dims) : host_(dims) {}

WormResult WormholeSim::run(const std::vector<Worm>& worms, int max_steps,
                            obs::TraceSink* sink) const {
  HP_PROFILE_SPAN("sim/wormhole");
  WormResult result;
  result.completion.assign(worms.size(), 0);
  obs::StepTrace trace(sink);

  // Held links as one bit per dense directed-link id, and the worm set as
  // two compacted worklists: `pending` (not yet started, ascending id — the
  // deterministic acquisition priority) and `inflight` (started, awaiting
  // completion).  A step touches only live worms; the old implementation
  // rescanned every worm — completed ones included — against an
  // unordered_set of held links.
  simcore::LinkBitmap held(host_.num_directed_edges());
  std::vector<std::uint32_t> pending;
  std::vector<std::uint32_t> inflight;
  std::vector<int> completion_at(worms.size(), 0);

  std::size_t active = 0;
  {
    HP_PROFILE_SPAN("setup");
    for (const Worm& w : worms) {
      HP_CHECK(is_valid_path(host_, w.route), "worm route invalid");
      HP_CHECK(w.flits >= 1, "worm needs at least one flit");
      HP_CHECK(w.release >= 0, "negative release time");
    }
    for (std::uint32_t i = 0; i < worms.size(); ++i) {
      if (worms[i].route.size() > 1) {
        pending.push_back(i);  // trivial routes need no link work
        ++active;
      }
    }
  }

  int step = 0;
  {
  HP_PROFILE_SPAN("steps");
  while (active > 0) {
    HP_CHECK(step < max_steps, "wormhole simulation exceeded max_steps");
    ++step;

    // Atomic circuit acquisition, id-priority: a worm starts only when its
    // *entire* route is free (this is what makes the model deadlock-free —
    // there is no hold-and-wait).  An unblocked L-link worm with M flits
    // started at step t completes at t + L + M − 2: the header crosses one
    // link per step and the body streams pipelined behind it.  The pending
    // list is compacted stably, so it stays in ascending id order.
    std::size_t keep = 0;
    for (std::size_t r = 0; r < pending.size(); ++r) {
      const std::uint32_t i = pending[r];
      const Worm& w = worms[i];
      if (w.release >= step) {
        pending[keep++] = i;
        continue;
      }
      bool free = true;
      std::uint64_t blocked_on = TraceEvent::kNoLink;
      for (std::size_t h = 0; free && h + 1 < w.route.size(); ++h) {
        const std::uint64_t link = host_.edge_id(w.route[h], w.route[h + 1]);
        if (held.test(link)) {
          free = false;
          blocked_on = link;
        }
      }
      if (!free) {
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kStall, i, blocked_on, 0});
        }
        pending[keep++] = i;
        continue;
      }
      const int links = static_cast<int>(w.route.size()) - 1;
      for (std::size_t h = 0; h + 1 < w.route.size(); ++h) {
        const std::uint64_t link = host_.edge_id(w.route[h], w.route[h + 1]);
        held.set(link);
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kTransmit, i, link,
                        static_cast<std::uint64_t>(w.flits)});
        }
      }
      completion_at[i] = step + links + w.flits - 2;
      inflight.push_back(i);
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kWormStart, i,
                      TraceEvent::kNoLink,
                      static_cast<std::uint64_t>(w.flits)});
      }
      result.total_flit_hops +=
          static_cast<std::uint64_t>(w.flits) * static_cast<std::uint64_t>(links);
    }
    pending.resize(keep);

    // Completions release all links at the end of their final step (a worm
    // started this step with a one-link, one-flit route completes
    // immediately — the inflight scan runs after the start pass so it is
    // seen).  Order within the pass is immaterial: trace events are
    // canonically sorted at end_step and all other writes are indexed.
    std::size_t live = 0;
    for (std::size_t r = 0; r < inflight.size(); ++r) {
      const std::uint32_t i = inflight[r];
      if (completion_at[i] != step) {
        inflight[live++] = i;
        continue;
      }
      result.completion[i] = step;
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kWormDone, i,
                      TraceEvent::kNoLink,
                      static_cast<std::uint64_t>(step - worms[i].release)});
      }
      for (std::size_t h = 0; h + 1 < worms[i].route.size(); ++h) {
        held.clear(host_.edge_id(worms[i].route[h], worms[i].route[h + 1]));
      }
      --active;
    }
    inflight.resize(live);
    trace.end_step();
  }
  }

  HP_PROFILE_SPAN("drain");
  trace.finish();
  result.makespan = step;
  return result;
}

}  // namespace hyperpath
