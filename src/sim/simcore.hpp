// Flat-arena simulator core shared by the store-and-forward, parallel and
// wormhole simulators.
//
// The hypercube's directed links already have a dense id (tail * n + dim,
// see Hypercube::edge_id), so per-link simulator state needs no hashing:
// everything is a flat array indexed by link id.
//
//   * LinkFifoArena — intrusive per-link packet FIFOs.  A packet waits in at
//     most one queue at a time, so a single `next[packet]` array plus dense
//     `head[link]` / `tail[link]` / `depth[link]` arrays hold every queue of
//     the run with zero per-enqueue allocation (the map-of-deques layout
//     this replaces paid a hash probe plus deque node churn per enqueue).
//
//   * Active-set scheduling — a step visits only links that currently hold
//     packets.  Enqueueing into an empty queue appends the link to a caller
//     owned worklist; the sweep compacts the worklist in place, dropping
//     links whose queue drained.  Per-step cost is O(live links), not
//     O(links that ever carried traffic): the old map was never erased, so
//     its full scan grew monotonically over the run.
//
//   * LinkBitmap — one bit per directed link; the wormhole simulator's
//     held-route set (replacing an unordered_set of link ids).
//
// Memory: the arena is O(n·2^n) words per run (three 32-bit words per link,
// one per packet) — ~12 MiB for Q_16, allocated once per run() and reused
// across every step.  The simulators' dims stay well inside that regime.
//
// Determinism: the arena itself is strictly FIFO-ordered and the worklist
// preserves insertion order, so a sweep visits links in a deterministic
// order for a fixed workload.  Nothing order-dependent escapes anyway —
// per-step trace events are canonically sorted by obs::StepTrace and the
// simulators sort arrivals by packet id — which is what keeps the flat core
// bit-identical to the retained map-based reference implementation
// (reference_sim.hpp; tests/property/simcore_equiv_test.cpp enforces it).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace hyperpath::simcore {

/// Sentinel for "no packet" in intrusive links and head/tail slots.
inline constexpr std::uint32_t kNil = 0xffffffffu;

/// Intrusive per-link packet FIFOs in one flat arena, indexed by the dense
/// directed-link id.  Packet ids must be < num_packets; each packet may sit
/// in at most one queue at a time (true of every store-and-forward model
/// here: a packet waits on exactly its next link).
class LinkFifoArena {
 public:
  LinkFifoArena(std::uint64_t num_links, std::size_t num_packets);

  bool empty(std::uint64_t link) const { return head_[link] == kNil; }
  std::uint32_t depth(std::uint64_t link) const { return depth_[link]; }

  /// Appends packet `id` to `link`'s queue.  When the queue was empty the
  /// link is pushed onto `worklist` — the caller-owned active set (the
  /// parallel simulator passes its shard's list).  The caller must keep the
  /// invariant that an empty link is never already on a live worklist; the
  /// simulators get this for free because stale entries (queues emptied by
  /// the fault-truncation pass) are compacted away by the same step's sweep,
  /// before any enqueue runs.
  void push_back(std::uint64_t link, std::uint32_t id,
                 std::vector<std::uint64_t>& worklist) {
    next_[id] = kNil;
    if (head_[link] == kNil) {
      head_[link] = id;
      worklist.push_back(link);
    } else {
      next_[tail_[link]] = id;
    }
    tail_[link] = id;
    ++depth_[link];
  }

  /// Removes and returns the oldest waiting packet.  Requires !empty(link).
  std::uint32_t pop_front(std::uint64_t link) {
    const std::uint32_t id = head_[link];
    head_[link] = next_[id];
    if (head_[link] == kNil) tail_[link] = kNil;
    --depth_[link];
    return id;
  }

  /// Removes and returns the waiting packet maximizing key(id); ties go to
  /// the earliest-queued packet (the farthest-first arbitration rule).
  /// O(depth).  Requires !empty(link).
  template <typename Key>
  std::uint32_t pop_max(std::uint64_t link, Key&& key) {
    std::uint32_t best = head_[link];
    std::uint32_t best_prev = kNil;
    auto best_key = key(best);
    for (std::uint32_t prev = best, it = next_[best]; it != kNil;
         prev = it, it = next_[it]) {
      const auto k = key(it);
      if (k > best_key) {
        best = it;
        best_prev = prev;
        best_key = k;
      }
    }
    if (best_prev == kNil) {
      head_[link] = next_[best];
    } else {
      next_[best_prev] = next_[best];
    }
    if (tail_[link] == best) tail_[link] = best_prev;
    --depth_[link];
    return best;
  }

  /// Visits the queue front-to-back (the canonical drop order of the
  /// fault-truncation pass).
  template <typename Fn>
  void for_each(std::uint64_t link, Fn&& fn) const {
    for (std::uint32_t it = head_[link]; it != kNil; it = next_[it]) {
      fn(it);
    }
  }

  /// Empties `link`'s queue in O(1).  Any worklist entry for the link goes
  /// stale and is dropped by the next sweep's compaction.
  void clear_link(std::uint64_t link) {
    head_[link] = kNil;
    tail_[link] = kNil;
    depth_[link] = 0;
  }

  std::uint64_t num_links() const { return static_cast<std::uint64_t>(head_.size()); }

 private:
  std::vector<std::uint32_t> head_;   // per link; kNil = empty
  std::vector<std::uint32_t> tail_;   // per link; kNil = empty
  std::vector<std::uint32_t> depth_;  // per link
  std::vector<std::uint32_t> next_;   // per packet; intrusive successor
};

/// One bit per directed link (the wormhole simulator's held-route set).
class LinkBitmap {
 public:
  explicit LinkBitmap(std::uint64_t num_links)
      : words_((num_links + 63) / 64, 0) {}

  bool test(std::uint64_t link) const {
    return (words_[link >> 6] >> (link & 63)) & 1u;
  }
  void set(std::uint64_t link) { words_[link >> 6] |= std::uint64_t{1} << (link & 63); }
  void clear(std::uint64_t link) {
    words_[link >> 6] &= ~(std::uint64_t{1} << (link & 63));
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace hyperpath::simcore
