// Flat-arena simulator core shared by the store-and-forward, parallel and
// wormhole simulators.
//
// The hypercube's directed links already have a dense id (tail * n + dim,
// see Hypercube::edge_id), so per-link simulator state needs no hashing:
// everything is a flat array indexed by link id.
//
//   * LinkFifoArena — intrusive per-link packet FIFOs.  A packet waits in at
//     most one queue at a time, so a single `next[packet]` array plus dense
//     `head[link]` / `tail[link]` / `depth[link]` arrays hold every queue of
//     the run with zero per-enqueue allocation (the map-of-deques layout
//     this replaces paid a hash probe plus deque node churn per enqueue).
//
//   * Active-set scheduling — a step visits only links that currently hold
//     packets.  Enqueueing into an empty queue appends the link to a caller
//     owned worklist; the sweep compacts the worklist in place, dropping
//     links whose queue drained.  Per-step cost is O(live links), not
//     O(links that ever carried traffic): the old map was never erased, so
//     its full scan grew monotonically over the run.
//
//   * LinkBitmap — one bit per directed link; the wormhole simulator's
//     held-route set (replacing an unordered_set of link ids).
//
//   * RoutePlan — the structure-of-arrays route compilation the step
//     kernels run on.  Compiled once per run from the packet (or worm) set:
//     every route's node sequence and per-hop dense link id live in flat
//     arrays bracketed by route_offsets[], and route_len[]/release[] are
//     parallel 32-bit arrays.  The step loop never touches a Packet again
//     and never calls Hypercube::edge_id — the farthest-first key is the
//     two-array read route_len[id] - hop[id], and an enqueue is the single
//     load link_of_hop[route_offsets[id] + hop[id]].
//
//   * StepScratch — a thread-local, run-scoped scratch arena.  The hot
//     setup path used to grow fresh std::vectors (moved, release lists,
//     tracing high-water marks) on every run_impl call, which the
//     Monte-Carlo campaign engine multiplies by thousands of trials; the
//     scratch keeps the capacity across runs on the same thread.
//
// Memory: the arena is O(n·2^n) words per run (three 32-bit words per link,
// one per packet) — ~12 MiB for Q_16, allocated once per run() and reused
// across every step.  The simulators' dims stay well inside that regime.
//
// Width discipline: queue depths are uniformly std::uint32_t inside the
// core (a queue can never hold more packets than the 32-bit packet ids that
// exist); widening to std::size_t/std::uint64_t happens exactly once, at
// the SimResult / telemetry boundary.  Debug builds assert the (absurd)
// depth-overflow case instead of silently wrapping.
//
// Determinism: the arena itself is strictly FIFO-ordered and the worklist
// preserves insertion order, so a sweep visits links in a deterministic
// order for a fixed workload.  Nothing order-dependent escapes anyway —
// per-step trace events are canonically sorted by obs::StepTrace and the
// simulators sort arrivals by packet id — which is what keeps the flat core
// bit-identical to the retained map-based reference implementation
// (reference_sim.hpp; tests/property/simcore_equiv_test.cpp enforces it).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/hypercube.hpp"

namespace hyperpath {
struct Packet;
}

namespace hyperpath::simcore {

/// Sentinel for "no packet" in intrusive links and head/tail slots.
inline constexpr std::uint32_t kNil = 0xffffffffu;

/// Intrusive per-link packet FIFOs in one flat arena, indexed by the dense
/// directed-link id.  Packet ids must be < num_packets; each packet may sit
/// in at most one queue at a time (true of every store-and-forward model
/// here: a packet waits on exactly its next link).
class LinkFifoArena {
 public:
  LinkFifoArena(std::uint64_t num_links, std::size_t num_packets);

  /// Re-dimensions and empties the arena without releasing capacity — the
  /// run-scoped scratch reuse path (StepScratch) for workloads that run
  /// thousands of short simulations (recovery waves, Monte-Carlo trials).
  void reset(std::uint64_t num_links, std::size_t num_packets);

  bool empty(std::uint64_t link) const { return head_[link] == kNil; }
  std::uint32_t depth(std::uint64_t link) const { return depth_[link]; }

  /// Appends packet `id` to `link`'s queue.  When the queue was empty the
  /// link is pushed onto `worklist` — the caller-owned active set (the
  /// parallel simulator passes its shard's list; the SoA kernel passes a
  /// 32-bit list, the retained flat-arena path a 64-bit one).  The caller
  /// must keep the invariant that an empty link is never already on a live
  /// worklist; the simulators get this for free because stale entries
  /// (queues emptied by the fault-truncation pass) are compacted away by
  /// the same step's sweep, before any enqueue runs.
  template <typename Worklist>
  void push_back(std::uint64_t link, std::uint32_t id, Worklist& worklist) {
    // A queue deeper than the 32-bit id space is impossible (each packet
    // waits in at most one queue); guard the wrap anyway in debug builds.
    assert(depth_[link] != 0xffffffffu && "link queue depth overflow");
    next_[id] = kNil;
    if (head_[link] == kNil) {
      head_[link] = id;
      worklist.push_back(
          static_cast<typename Worklist::value_type>(link));
    } else {
      next_[tail_[link]] = id;
    }
    tail_[link] = id;
    ++depth_[link];
  }

  /// Removes and returns the oldest waiting packet.  Requires !empty(link).
  std::uint32_t pop_front(std::uint64_t link) {
    const std::uint32_t id = head_[link];
    head_[link] = next_[id];
    if (head_[link] == kNil) tail_[link] = kNil;
    --depth_[link];
    return id;
  }

  /// Removes and returns the waiting packet maximizing key(id); ties go to
  /// the earliest-queued packet (the farthest-first arbitration rule).
  /// O(depth).  Requires !empty(link).
  template <typename Key>
  std::uint32_t pop_max(std::uint64_t link, Key&& key) {
    std::uint32_t best = head_[link];
    std::uint32_t best_prev = kNil;
    auto best_key = key(best);
    for (std::uint32_t prev = best, it = next_[best]; it != kNil;
         prev = it, it = next_[it]) {
      const auto k = key(it);
      if (k > best_key) {
        best = it;
        best_prev = prev;
        best_key = k;
      }
    }
    if (best_prev == kNil) {
      head_[link] = next_[best];
    } else {
      next_[best_prev] = next_[best];
    }
    if (tail_[link] == best) tail_[link] = best_prev;
    --depth_[link];
    return best;
  }

  /// Visits the queue front-to-back (the canonical drop order of the
  /// fault-truncation pass).
  template <typename Fn>
  void for_each(std::uint64_t link, Fn&& fn) const {
    for (std::uint32_t it = head_[link]; it != kNil; it = next_[it]) {
      fn(it);
    }
  }

  /// Empties `link`'s queue in O(1).  Any worklist entry for the link goes
  /// stale and is dropped by the next sweep's compaction.
  void clear_link(std::uint64_t link) {
    head_[link] = kNil;
    tail_[link] = kNil;
    depth_[link] = 0;
  }

  std::uint64_t num_links() const { return static_cast<std::uint64_t>(head_.size()); }

 private:
  std::vector<std::uint32_t> head_;   // per link; kNil = empty
  std::vector<std::uint32_t> tail_;   // per link; kNil = empty
  std::vector<std::uint32_t> depth_;  // per link
  std::vector<std::uint32_t> next_;   // per packet; intrusive successor
};

/// One bit per directed link (the wormhole simulator's held-route set).
class LinkBitmap {
 public:
  explicit LinkBitmap(std::uint64_t num_links)
      : words_((num_links + 63) / 64, 0) {}

  bool test(std::uint64_t link) const {
    return (words_[link >> 6] >> (link & 63)) & 1u;
  }
  void set(std::uint64_t link) { words_[link >> 6] |= std::uint64_t{1} << (link & 63); }
  void clear(std::uint64_t link) {
    words_[link >> 6] &= ~(std::uint64_t{1} << (link & 63));
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Structure-of-arrays compilation of a route set, built once per run.
///
/// Hops of route r are the dense 32-bit link ids
///     link_of_hop[route_offsets[r] ... route_offsets[r] + route_len[r])
/// and its node sequence is nodes(r).  route_len[r] and release[r] are
/// parallel 32-bit arrays.  After compilation the step kernel reads only
/// these flat arrays — it never touches a Packet and never recomputes
/// Hypercube::edge_id.
///
/// Link ids are stored narrowed to 32 bits, which holds for every dimension
/// this simulator targets (n·2^n < 2^32 up to n = 27); compile() checks it.
class RoutePlan {
 public:
  /// Compiles (and validates) a packet set's routes.  Throws exactly the
  /// validation errors of the simulators' legacy setup path: "packet route
  /// invalid" and "negative release time".
  static RoutePlan compile(const Hypercube& host,
                           const std::vector<Packet>& packets);

  /// In-place compile: clears and refills this plan, keeping vector
  /// capacity — the StepScratch reuse path.  Same validation as compile().
  void rebuild(const Hypercube& host, const std::vector<Packet>& packets);

  /// Empties the plan, keeping capacity (scratch reuse across runs).
  void clear();
  void reserve(std::size_t routes, std::size_t total_nodes);

  /// Validates and appends one route.  `invalid_msg` is the HP_CHECK text
  /// raised on a malformed route — callers with their own vocabulary (the
  /// wormhole simulator) pass theirs so error contracts survive unchanged.
  void add_route(const Hypercube& host, const HostPath& route,
                 std::uint32_t release_step,
                 const char* invalid_msg = "packet route invalid");

  /// Streaming construction — PathOracle consumers compile routes hop by
  /// hop with no HostPath temporary: begin_route(), push_node() per node,
  /// then one of the end_route flavors.  end_route(host) computes global
  /// dense link ids exactly like add_route (checked 32-bit narrowing);
  /// end_route_unlinked(dims) validates the walk within Q_dims but leaves
  /// link_of_hop for the caller — the compact-link oracle simulator
  /// renumbers 64-bit global ids into plan-local ones after deduplication,
  /// which is what lets plans address hosts past the n = 27 dense-id
  /// ceiling.  Do not mix unlinked routes with linked ones in one plan.
  void begin_route(std::uint32_t release_step);
  void push_node(Node v);
  void end_route(const Hypercube& host,
                 const char* invalid_msg = "packet route invalid");
  void end_route_unlinked(int dims,
                          const char* invalid_msg = "packet route invalid");

  std::uint32_t num_routes() const {
    return static_cast<std::uint32_t>(route_len.size());
  }

  /// Node sequence of route r (route_len[r] + 1 nodes).  Nodes share the
  /// hop offsets: route r's nodes start at route_offsets[r] + r, because
  /// every preceding route stores exactly one more node than hops.
  std::span<const Node> nodes(std::uint32_t r) const {
    return {route_nodes.data() + route_offsets[r] + r, route_len[r] + 1u};
  }

  std::vector<Node> route_nodes;            // concatenated node sequences
  std::vector<std::uint32_t> route_offsets; // per route into link_of_hop;
                                            // size num_routes() + 1
  std::vector<std::uint32_t> link_of_hop;   // dense link id per hop
  std::vector<std::uint32_t> route_len;     // hops per route (nodes - 1)
  std::vector<std::uint32_t> release;       // earliest step a route may move

 private:
  std::size_t stream_start_ = 0;      // route_nodes index of the open route
  std::uint32_t stream_release_ = 0;  // release step of the open route
};

/// Thread-local, run-scoped scratch arena for the SoA step path.  The hot
/// setup path used to grow fresh vectors (moved, release lists, tracing
/// high-water marks) on every run_impl call — the Monte-Carlo campaign
/// engine and the recovery wave loop multiply that by thousands of short
/// runs on the same pool thread.  Everything here is sized by prepare() and
/// keeps its capacity across runs; correctness never depends on leftover
/// contents.
struct StepScratch {
  RoutePlan plan;
  LinkFifoArena arena{0, 0};
  std::vector<std::uint32_t> active;  // serial active-link worklist
  std::vector<std::uint32_t> moved;   // packets that advanced this step
  /// One bit per packet, all-zero between sweeps: the counting-sort mask
  /// step_kernel.hpp's sort_moved uses to order dense arrival batches.
  std::vector<std::uint64_t> moved_mask;
  std::vector<std::uint32_t> hop;     // per-route current hop index
  /// Deferred releases as (release step, route id), sorted ascending — the
  /// SoA replacement for the per-step bucket lists (release_at) of the
  /// legacy path; a cursor walks it as steps advance.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pending;
  std::vector<std::uint32_t> highwater;  // per-link, tracing runs only
};

/// The calling thread's scratch arena.  Thread-local, so concurrent
/// Monte-Carlo trials each reuse their own; a simulator run owns it only
/// for the duration of run_impl (simulators never nest runs on one thread).
StepScratch& step_scratch();

}  // namespace hyperpath::simcore
