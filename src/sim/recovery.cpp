#include "sim/recovery.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <numeric>

#include "base/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/store_forward.hpp"

namespace hyperpath {

namespace {

using obs::TraceEvent;
using obs::TraceEventKind;

/// One in-flight fragment of one message.
struct Frag {
  std::uint32_t message = 0;  // guest edge id
  int index = 0;              // fragment index within the bundle
  int path_idx = 0;           // bundle path it currently rides
  int attempts = 0;           // retransmissions consumed so far
};

/// Mutable per-message bookkeeping during the wave loop.
struct MessageState {
  std::vector<bool> got;  // distinct fragment indices delivered
  int delivered = 0;
};

/// The wave loop, templated on where bundles come from.  A context supplies
/// num_messages()/dims()/bundle(m)/first_link(route); the materialized
/// context answers bundle() with a span into the embedding's storage (the
/// zero-copy hot path Monte-Carlo campaigns run thousands of times), the
/// oracle context generates the demanded edge's bundle into a scratch
/// vector on each call.  Identical control flow either way — the engine
/// itself never knows which backend is probing.
template <typename Ctx>
RecoveryResult run_recovery_impl(Ctx& ctx, const FaultSchedule& schedule,
                                 const RecoveryConfig& config,
                                 obs::TraceSink* sink) {
  HP_PROFILE_SPAN("sim/recovery");
  HP_CHECK(schedule.dims() == ctx.dims(),
           "fault schedule dims mismatch embedding host dims");
  HP_CHECK(config.timeout > 0, "recovery timeout must be positive");
  HP_CHECK(config.max_retries >= 0, "negative retry budget");

  const std::size_t num_messages = ctx.num_messages();
  const int dims = ctx.dims();

  RecoveryResult result;
  result.messages.assign(num_messages, MessageOutcome{});
  result.messages_total = num_messages;
  result.recovery_latency = obs::FixedHistogram::exponential();

  std::vector<MessageState> state(num_messages);
  std::vector<int> threshold(num_messages, 0);

  // Wave 0: one fragment per bundle path of every guest edge.
  std::vector<Packet> packets;
  std::vector<Frag> frags;
  for (std::uint32_t e = 0; e < num_messages; ++e) {
    const std::span<const HostPath> bundle = ctx.bundle(e);
    const int w = static_cast<int>(bundle.size());
    threshold[e] = (config.threshold <= 0) ? w
                                           : std::min(config.threshold, w);
    state[e].got.assign(w, false);
    for (int f = 0; f < w; ++f) {
      packets.push_back({bundle[f], 0, e});
      frags.push_back({e, f, f, 0});
    }
  }
  result.fragments_sent = packets.size();

  // Registry counters update live, per event inside the wave loop, so a
  // telemetry sample taken while a wave simulates sees recovery progress
  // as it happens.  Final totals are identical to the single end-of-run
  // accumulation this replaces.  Entry addresses are stable, so the
  // references stay valid across waves.  Null when the caller opted out
  // (Monte-Carlo trials run concurrently and must not touch the registry).
  obs::MetricsRegistry* reg =
      config.update_registry ? &obs::MetricsRegistry::global() : nullptr;
  obs::Counter* live_delivered = nullptr;
  obs::Counter* live_lost = nullptr;
  obs::Counter* live_retx = nullptr;
  obs::Counter* live_complete = nullptr;
  if (reg) {
    reg->counter("recovery.messages_total").add(result.messages_total);
    live_delivered = &reg->counter("recovery.fragments_delivered");
    live_lost = &reg->counter("recovery.fragments_lost");
    live_retx = &reg->counter("recovery.retransmissions");
    live_complete = &reg->counter("recovery.messages_complete");
  }

  const StoreForwardSim serial(dims, config.engine);
  const ParallelStoreForwardSim parallel(dims, config.threads);

  // The engine's own trace recorder (kRetransmit events).  Events of one
  // wave are flushed together; StepTrace's canonical sort puts them in step
  // order within the batch.
  obs::StepTrace rtrace(sink);

  // Probing the schedule is O(events) per call; a retransmit storm probes
  // once per lost fragment per attempt.  Within a wave all probes at the
  // same detect step see the same state, so they share one snapshot.  Past
  // the last scheduled event the state is final and can never change —
  // a fragment whose whole bundle is dead there is undeliverable, and its
  // remaining attempts resolve without further probing (graceful
  // degradation instead of a probe storm; the counters are identical to
  // probing each attempt individually).
  const int last_event_step =
      schedule.empty() ? -1 : schedule.events().back().step;
  std::map<std::int64_t, FaultSet> probe_cache;
  const auto probe_at = [&](std::int64_t detect) -> const FaultSet& {
    const std::int64_t key =
        detect > last_event_step ? static_cast<std::int64_t>(last_event_step)
                                 : detect;
    auto it = probe_cache.find(key);
    if (it == probe_cache.end()) {
      it = probe_cache
               .emplace(key, schedule.state_at(static_cast<int>(
                                 std::max<std::int64_t>(key, 0))))
               .first;
    }
    return it->second;
  };

  while (!packets.empty()) {
    const bool announce = result.waves == 0;
    FaultRunResult wave =
        config.parallel
            ? parallel.run_with_faults(packets, schedule, config.max_steps,
                                       sink, announce)
            : serial.run_with_faults(packets, schedule, Arbitration::kFifo,
                                     config.max_steps, sink, announce);
    ++result.waves;
    result.total_transmissions += wave.sim.total_transmissions;
    result.makespan = std::max(result.makespan, wave.sim.makespan);

    // Order both outcome lists by (step, wave-packet id) — the canonical
    // order the events happened in.
    std::vector<std::uint32_t> delivered_ids, lost_ids;
    for (std::uint32_t i = 0; i < wave.fates.size(); ++i) {
      (wave.fates[i].delivered() ? delivered_ids : lost_ids).push_back(i);
    }
    const auto by_step = [&](std::uint32_t a, std::uint32_t b) {
      if (wave.fates[a].step != wave.fates[b].step) {
        return wave.fates[a].step < wave.fates[b].step;
      }
      return a < b;
    };
    std::sort(delivered_ids.begin(), delivered_ids.end(), by_step);
    std::sort(lost_ids.begin(), lost_ids.end(), by_step);

    // Deliveries first: a message that reached its threshold this wave
    // suppresses retransmission of its remaining lost fragments ("succeed
    // as soon as any threshold fragments arrive").
    for (std::uint32_t i : delivered_ids) {
      const Frag& fg = frags[i];
      const PacketFate& fate = wave.fates[i];
      ++result.fragments_delivered;
      if (live_delivered) live_delivered->add(1);
      result.useful_transmissions +=
          static_cast<std::uint64_t>(packets[i].route.size() - 1);
      MessageState& ms = state[fg.message];
      MessageOutcome& out = result.messages[fg.message];
      if (out.complete || ms.got[fg.index]) continue;
      ms.got[fg.index] = true;
      ++ms.delivered;
      ++out.fragments_delivered;
      if (ms.delivered >= threshold[fg.message]) {
        out.complete = true;
        out.complete_step = fate.step;
        if (live_complete) live_complete->add(1);
      }
    }

    // Losses: retransmit on the next surviving path, with exponential
    // backoff; an attempt whose probe finds every path dead is consumed
    // (the sender waited the backoff for nothing) and the next attempt
    // probes again after a doubled wait.
    std::vector<Packet> next_packets;
    std::vector<Frag> next_frags;
    for (std::uint32_t i : lost_ids) {
      Frag fg = frags[i];
      const PacketFate& fate = wave.fates[i];
      ++result.fragments_lost;
      if (live_lost) live_lost->add(1);
      MessageOutcome& out = result.messages[fg.message];
      const bool pre_completion = !out.complete || fate.step < out.complete_step;
      if (pre_completion &&
          (out.first_loss_step < 0 || fate.step < out.first_loss_step)) {
        out.first_loss_step = fate.step;
      }
      if (out.complete) continue;  // message already reconstructed

      const std::span<const HostPath> bundle = ctx.bundle(fg.message);
      const int w = static_cast<int>(bundle.size());
      bool scheduled = false;
      while (fg.attempts < config.max_retries) {
        ++fg.attempts;
        // Saturating exponential backoff: timeout·2^(attempts−1) clamped to
        // the step horizon.  The explicit shift guard keeps large retry
        // budgets from shifting past 62 bits (undefined behaviour) — a
        // saturated wait lands at or beyond the horizon and breaks out,
        // exactly where the unclamped arithmetic would have ended up.
        const int shift = fg.attempts - 1;
        const auto horizon = static_cast<std::int64_t>(config.max_steps);
        std::int64_t wait = horizon;
        if (shift < 62 &&
            static_cast<std::int64_t>(config.timeout) <= (horizon >> shift)) {
          wait = static_cast<std::int64_t>(config.timeout) << shift;
        }
        const std::int64_t detect =
            static_cast<std::int64_t>(fate.step) + wait;
        if (detect >= horizon) break;  // beyond the horizon
        const FaultSet& probe = probe_at(detect);
        int chosen = -1;
        for (int k = 1; k <= w; ++k) {
          const int cand = (fg.path_idx + k) % w;
          if (probe.path_alive(bundle[cand])) {
            chosen = cand;
            break;
          }
        }
        if (chosen < 0) {
          // Every path dead at detect time.  If the schedule has no events
          // left to fire, no backoff can ever revive a path — resolve the
          // remaining attempts now instead of re-probing the same final
          // state (all-paths-dead degradation, not a livelocked storm).
          if (detect > last_event_step) break;
          continue;  // a repair may still be pending: back off and re-probe
        }
        fg.path_idx = chosen;
        ++result.retransmissions;
        if (live_retx) live_retx->add(1);
        ++result.fragments_sent;
        ++out.retransmissions;
        if (rtrace.enabled()) {
          const HostPath& route = bundle[chosen];
          const std::uint64_t first_link = route.size() > 1
                                               ? ctx.first_link(route)
                                               : TraceEvent::kNoLink;
          rtrace.record({static_cast<std::int32_t>(detect),
                         TraceEventKind::kRetransmit, fg.message, first_link,
                         static_cast<std::uint64_t>(fg.attempts)});
        }
        next_packets.push_back(
            {bundle[chosen], static_cast<int>(detect), fg.message});
        next_frags.push_back(fg);
        scheduled = true;
        break;
      }
      if (!scheduled) ++result.fragments_exhausted;
    }
    rtrace.end_step();

    packets = std::move(next_packets);
    frags = std::move(next_frags);
  }
  rtrace.finish();

  for (const MessageOutcome& m : result.messages) {
    if (m.complete) ++result.messages_complete;
    if (m.recovered()) {
      ++result.messages_recovered;
      result.recovery_latency.observe(
          static_cast<double>(m.complete_step - m.first_loss_step));
    }
  }

  if (reg) {
    reg->gauge("recovery.delivery_rate").set(result.delivery_rate());
    reg->gauge("recovery.goodput").set(result.goodput());
    auto& hist = reg->histogram("recovery.time_to_recover",
                                obs::FixedHistogram::exponential().bounds());
    for (const MessageOutcome& m : result.messages) {
      if (m.recovered()) {
        hist.observe(static_cast<double>(m.complete_step - m.first_loss_step));
      }
    }
  }
  return result;
}

/// Materialized context: bundles are spans into the embedding's storage.
struct EmbeddingCtx {
  const MultiPathEmbedding& emb;

  std::size_t num_messages() const { return emb.guest().num_edges(); }
  int dims() const { return emb.host().dims(); }
  std::span<const HostPath> bundle(std::uint32_t m) const {
    return emb.paths(m);
  }
  std::uint64_t first_link(const HostPath& route) const {
    return emb.host().edge_id(route[0], route[1]);
  }
};

/// Oracle context: one message per demanded guest edge, bundles generated
/// into a scratch vector on each call (valid until the next bundle() call,
/// which is all the wave loop needs).
struct OracleCtx {
  const PathOracle& oracle;
  std::span<const OracleEdge> edges;
  std::vector<HostPath> scratch;

  std::size_t num_messages() const { return edges.size(); }
  int dims() const { return oracle.host_dims(); }
  std::span<const HostPath> bundle(std::uint32_t m) {
    scratch = oracle.bundle(edges[m]);
    return scratch;
  }
  std::uint64_t first_link(const HostPath& route) const {
    return static_cast<std::uint64_t>(route[0]) * oracle.host_dims() +
           std::countr_zero(route[0] ^ route[1]);
  }
};

}  // namespace

RecoveryResult run_recovery(const MultiPathEmbedding& emb,
                            const FaultSchedule& schedule,
                            const RecoveryConfig& config,
                            obs::TraceSink* sink) {
  EmbeddingCtx ctx{emb};
  return run_recovery_impl(ctx, schedule, config, sink);
}

RecoveryResult run_recovery(const PathOracle& oracle,
                            std::span<const OracleEdge> edges,
                            const FaultSchedule& schedule,
                            const RecoveryConfig& config,
                            obs::TraceSink* sink) {
  OracleCtx ctx{oracle, edges, {}};
  return run_recovery_impl(ctx, schedule, config, sink);
}

}  // namespace hyperpath
