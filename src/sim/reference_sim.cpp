// The pre-flat-arena simulator implementations, verbatim modulo class names
// and profiler spans (see reference_sim.hpp for why they are retained).
#include "sim/reference_sim.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "base/error.hpp"
#include "sim/faults.hpp"

namespace hyperpath::refsim {

using obs::TraceEvent;
using obs::TraceEventKind;

RefStoreForwardSim::RefStoreForwardSim(int dims) : host_(dims) {}

SimResult RefStoreForwardSim::run(const std::vector<Packet>& packets,
                                  Arbitration policy, int max_steps,
                                  obs::TraceSink* sink) const {
  return run_impl(packets, policy, max_steps, sink, nullptr, false, nullptr);
}

FaultRunResult RefStoreForwardSim::run_with_faults(
    const std::vector<Packet>& packets, const FaultSchedule& schedule,
    Arbitration policy, int max_steps, obs::TraceSink* sink,
    bool announce_faults) const {
  HP_CHECK(schedule.dims() == host_.dims(),
           "fault schedule dims mismatch simulator dims");
  FaultRunResult out;
  out.sim = run_impl(packets, policy, max_steps, sink, &schedule,
                     announce_faults, &out);
  return out;
}

SimResult RefStoreForwardSim::run_impl(const std::vector<Packet>& packets,
                                       Arbitration policy, int max_steps,
                                       obs::TraceSink* sink,
                                       const FaultSchedule* schedule,
                                       bool announce_faults,
                                       FaultRunResult* fault_out) const {
  for (const Packet& p : packets) {
    HP_CHECK(is_valid_path(host_, p.route), "packet route invalid");
    HP_CHECK(p.release >= 0, "negative release time");
  }

  // Per-link waiting lists, keyed by directed link id.  Sparse map: only
  // links that ever carry traffic get a queue — and they keep it forever,
  // which is exactly the per-step cost pathology the flat core removes.
  struct Waiting {
    std::deque<std::uint32_t> q;  // packet indices, FIFO arrival order
  };
  std::unordered_map<std::uint64_t, Waiting> queues;
  queues.reserve(packets.size());

  obs::StepTrace trace(sink);
  std::unordered_map<std::uint64_t, std::size_t> highwater;

  std::vector<std::uint32_t> hop(packets.size(), 0);  // next edge index
  std::size_t undelivered = 0;

  std::optional<FaultTimeline> timeline;
  if (schedule != nullptr) timeline.emplace(*schedule);
  if (fault_out != nullptr) {
    fault_out->fates.assign(packets.size(), PacketFate{});
  }

  std::vector<std::vector<std::uint32_t>> release_at;
  auto enqueue = [&](std::uint32_t id) {
    const Packet& p = packets[id];
    const std::uint64_t link = host_.edge_id(p.route[hop[id]],
                                             p.route[hop[id] + 1]);
    queues[link].q.push_back(id);
    return link;
  };

  for (std::uint32_t id = 0; id < packets.size(); ++id) {
    const Packet& p = packets[id];
    if (p.route.size() <= 1) continue;  // already at destination
    ++undelivered;
    if (p.release == 0) {
      const std::uint64_t link = enqueue(id);
      if (trace.enabled()) {
        trace.record({0, TraceEventKind::kRelease, id, link, 0});
      }
    } else {
      if (release_at.size() <= static_cast<std::size_t>(p.release)) {
        release_at.resize(p.release + 1);
      }
      release_at[p.release].push_back(id);
    }
  }

  SimResult result;
  result.dim_transmissions.assign(host_.dims(), 0);
  result.latency = obs::FixedHistogram::exponential();
  const double total_links = static_cast<double>(host_.num_directed_edges());
  const int dims = host_.dims();

  int step = 0;
  std::size_t max_queue = 0;
  while (undelivered > 0) {
    HP_CHECK(step < max_steps, "simulation exceeded max_steps");

    if (timeline) {
      const FaultTimeline::StepDelta& delta = timeline->advance_to(step);
      if (announce_faults && trace.enabled()) {
        for (std::uint64_t link : delta.died) {
          trace.record({step, TraceEventKind::kFault, TraceEvent::kNoPacket,
                        link, 0});
        }
        for (std::uint64_t link : delta.repaired) {
          trace.record({step, TraceEventKind::kRepair, TraceEvent::kNoPacket,
                        link, 0});
        }
      }
    }

    if (static_cast<std::size_t>(step) < release_at.size()) {
      for (std::uint32_t id : release_at[step]) {
        const std::uint64_t link = enqueue(id);
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kRelease, id, link, 0});
        }
      }
    }

    if (timeline && !timeline->dead_links().empty()) {
      for (const auto& [link, kills] : timeline->dead_links()) {
        auto it = queues.find(link);
        if (it == queues.end() || it->second.q.empty()) continue;
        for (std::uint32_t id : it->second.q) {
          --undelivered;
          if (fault_out != nullptr) {
            fault_out->fates[id] = {PacketFate::Kind::kLost, step, link,
                                    static_cast<int>(hop[id])};
          }
          if (trace.enabled()) {
            trace.record({step, TraceEventKind::kDrop, id, link, hop[id]});
          }
        }
        it->second.q.clear();
      }
    }

    // One transmission per nonempty link queue — full scan of every queue
    // that ever existed, the per-step cost the flat core's active set cures.
    std::uint64_t busy = 0;
    std::vector<std::uint32_t> moved;
    moved.reserve(queues.size());
    for (auto& [link, w] : queues) {
      if (w.q.empty()) continue;
      const std::size_t depth = w.q.size();
      max_queue = std::max(max_queue, depth);
      if (trace.enabled()) {
        std::size_t& high = highwater[link];
        if (depth > high) {
          high = depth;
          trace.record({step, TraceEventKind::kQueueDepth,
                        TraceEvent::kNoPacket, link, depth});
        }
      }
      std::uint32_t pick;
      if (policy == Arbitration::kFifo) {
        pick = w.q.front();
        w.q.pop_front();
      } else {
        auto best = w.q.begin();
        std::size_t best_left =
            packets[*best].route.size() - 1 - hop[*best];
        for (auto it = std::next(w.q.begin()); it != w.q.end(); ++it) {
          const std::size_t left = packets[*it].route.size() - 1 - hop[*it];
          if (left > best_left) {
            best = it;
            best_left = left;
          }
        }
        pick = *best;
        w.q.erase(best);
      }
      ++busy;
      ++result.total_transmissions;
      ++result.dim_transmissions[link % dims];
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kTransmit, pick, link, depth});
        if (depth > 1) {
          trace.record({step, TraceEventKind::kStall, TraceEvent::kNoPacket,
                        link, depth - 1});
        }
      }
      moved.push_back(pick);
    }

    std::sort(moved.begin(), moved.end());
    for (std::uint32_t id : moved) {
      ++hop[id];
      const Packet& p = packets[id];
      if (hop[id] + 1 == p.route.size()) {
        --undelivered;
        const std::uint64_t lat =
            static_cast<std::uint64_t>(step + 1 - p.release);
        result.latency.observe(static_cast<double>(lat));
        if (fault_out != nullptr) {
          fault_out->fates[id] = {PacketFate::Kind::kDelivered, step,
                                  TraceEvent::kNoLink,
                                  static_cast<int>(hop[id])};
        }
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kArrive, id,
                        TraceEvent::kNoLink, lat});
        }
      } else {
        enqueue(id);
      }
    }

    result.utilization.add(static_cast<double>(busy) / total_links);
    trace.end_step();
    ++step;
  }

  trace.finish();
  result.makespan = step;
  result.max_queue = max_queue;
  if (fault_out != nullptr) {
    for (const PacketFate& f : fault_out->fates) {
      if (f.delivered()) {
        ++fault_out->delivered;
      } else {
        ++fault_out->lost;
      }
    }
  }
  return result;
}

RefWormholeSim::RefWormholeSim(int dims) : host_(dims) {}

WormResult RefWormholeSim::run(const std::vector<Worm>& worms, int max_steps,
                               obs::TraceSink* sink) const {
  WormResult result;
  result.completion.assign(worms.size(), 0);
  obs::StepTrace trace(sink);

  std::unordered_set<std::uint64_t> held;  // link ids currently in use

  struct State {
    bool started = false;
    bool done = false;
    int completion = 0;
  };
  std::vector<State> st(worms.size());

  std::size_t active = 0;
  for (const Worm& w : worms) {
    HP_CHECK(is_valid_path(host_, w.route), "worm route invalid");
    HP_CHECK(w.flits >= 1, "worm needs at least one flit");
    HP_CHECK(w.release >= 0, "negative release time");
  }
  for (std::size_t i = 0; i < worms.size(); ++i) {
    if (worms[i].route.size() <= 1) {
      st[i].done = true;  // already at destination; no link work
    } else {
      ++active;
    }
  }

  int step = 0;
  while (active > 0) {
    HP_CHECK(step < max_steps, "wormhole simulation exceeded max_steps");
    ++step;

    // Full rescan of every worm — including done ones — per step; the flat
    // core replaces this with compacted pending/inflight worklists.
    for (std::uint32_t i = 0; i < worms.size(); ++i) {
      State& s = st[i];
      const Worm& w = worms[i];
      if (s.done || s.started || w.release >= step) continue;
      bool free = true;
      std::uint64_t blocked_on = TraceEvent::kNoLink;
      for (std::size_t h = 0; free && h + 1 < w.route.size(); ++h) {
        const std::uint64_t link = host_.edge_id(w.route[h], w.route[h + 1]);
        if (held.contains(link)) {
          free = false;
          blocked_on = link;
        }
      }
      if (!free) {
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kStall, i, blocked_on, 0});
        }
        continue;
      }
      const int links = static_cast<int>(w.route.size()) - 1;
      for (std::size_t h = 0; h + 1 < w.route.size(); ++h) {
        const std::uint64_t link = host_.edge_id(w.route[h], w.route[h + 1]);
        held.insert(link);
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kTransmit, i, link,
                        static_cast<std::uint64_t>(w.flits)});
        }
      }
      s.started = true;
      s.completion = step + links + w.flits - 2;
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kWormStart, i,
                      TraceEvent::kNoLink,
                      static_cast<std::uint64_t>(w.flits)});
      }
      result.total_flit_hops +=
          static_cast<std::uint64_t>(w.flits) * static_cast<std::uint64_t>(links);
    }

    for (std::uint32_t i = 0; i < worms.size(); ++i) {
      State& s = st[i];
      if (s.done || !s.started || s.completion != step) continue;
      s.done = true;
      result.completion[i] = step;
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kWormDone, i,
                      TraceEvent::kNoLink,
                      static_cast<std::uint64_t>(step - worms[i].release)});
      }
      for (std::size_t h = 0; h + 1 < worms[i].route.size(); ++h) {
        held.erase(host_.edge_id(worms[i].route[h], worms[i].route[h + 1]));
      }
      --active;
    }
    trace.end_step();
  }

  trace.finish();
  result.makespan = step;
  return result;
}

}  // namespace hyperpath::refsim
