// Sender-side failover and retransmission over multiple-path embeddings.
//
// This is the dynamic half of the paper's fault-tolerance story (Sections 1
// and 9).  Each guest edge's message is dispersed into w fragments, one per
// path of its width-w bundle (the IDA picture of ida.hpp: any `threshold`
// distinct fragments reconstruct the message).  The fragments run through a
// store-and-forward simulator while a FaultSchedule replays timed link and
// node faults; a fragment that reaches a dead link is truncated at the
// break point.  The sender then
//
//   * detects the loss after a configurable timeout,
//   * retransmits the fragment on the next surviving path of the bundle
//     (probed cyclically against the schedule's state at the detect step),
//   * backs off exponentially (timeout, 2*timeout, 4*timeout, ...) across
//     attempts, giving transient faults time to be repaired, and
//   * gives up after `max_retries` attempts per fragment.
//
// A message completes as soon as `threshold` distinct fragments have
// arrived; outstanding losses of an already-complete message are not
// retransmitted.  With threshold = w-1 this is exactly the §9 claim: any
// single fault per bundle costs only recovery latency, never the message.
//
// The engine is wave-based: every retransmission round is a fresh simulator
// run on one absolute clock (retransmitted fragments release at their
// detect step, and the schedule replays from step 0, so faults hold across
// waves).  Serial and parallel transports produce identical results and
// traces.  Trace output: the wave-0 run announces kFault/kRepair, every
// truncation is a kDrop, and each retransmission emits kRetransmit
// (packet = message id, link = first link of the new route, value = attempt
// number); waves appear in the stream back-to-back, each internally in
// canonical step order.
#pragma once

#include <span>

#include "embed/path_oracle.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "sim/packet.hpp"

namespace hyperpath {

struct RecoveryConfig {
  /// Steps after a loss before the sender declares the fragment dead and
  /// retransmits.  Doubled on every further attempt for the same fragment;
  /// the doubled wait saturates at the step horizon (max_steps), so very
  /// large retry budgets can never overflow the backoff shift.
  int timeout = 8;
  /// Retransmission budget per fragment.  Safe at any magnitude: once the
  /// saturated backoff passes the horizon, or every bundle path is
  /// permanently dead with no repair still pending, the remaining attempts
  /// resolve immediately instead of re-probing the schedule.
  int max_retries = 4;
  /// Distinct fragments needed to reconstruct a message; <= 0 means all w
  /// (no dispersal redundancy).  The IDA setting is width - 1.
  int threshold = 0;
  /// Per-wave simulation step budget.
  int max_steps = 1 << 22;
  /// Transport: the serial StoreForwardSim or the sharded parallel one
  /// (bit-identical results either way; tests enforce it).
  bool parallel = false;
  int threads = 0;  // parallel transport only; 0 = hardware concurrency
  /// Step-sweep engine of the serial transport (the parallel transport is
  /// always SoA-kernel based).  kFlatArena keeps the retained baseline
  /// selectable so whole recovery runs — and whole Monte-Carlo campaigns —
  /// can be compared engine-vs-engine (bench_simcore S4).
  SimEngine engine = SimEngine::kSoa;
  /// Publish the outcome into the process-wide obs::MetricsRegistry
  /// ("recovery.*").  The Monte-Carlo driver turns this off for its trials:
  /// registry histograms are single-writer, and thousands of concurrent
  /// trials would race on them — the campaign publishes its own aggregated
  /// "mc.*" metrics instead.
  bool update_registry = true;
};

/// Per-message (= per guest edge) outcome.
struct MessageOutcome {
  bool complete = false;
  int complete_step = -1;     // step the threshold-th fragment arrived
  int first_loss_step = -1;   // earliest pre-completion fragment loss
  int fragments_delivered = 0;
  int retransmissions = 0;

  /// Steps from the first pre-completion loss to completion; meaningful
  /// only when the message both lost a fragment and completed.
  bool recovered() const { return complete && first_loss_step >= 0; }
};

struct RecoveryResult {
  std::vector<MessageOutcome> messages;  // indexed by guest edge id
  std::size_t messages_total = 0;
  std::size_t messages_complete = 0;
  std::size_t messages_recovered = 0;    // completed despite a loss

  std::uint64_t fragments_sent = 0;      // initial sends + retransmissions
  std::uint64_t fragments_delivered = 0;
  std::uint64_t fragments_lost = 0;      // truncation events
  std::uint64_t fragments_exhausted = 0; // gave up after max_retries
  std::uint64_t retransmissions = 0;

  int makespan = 0;   // absolute step of the last movement across all waves
  int waves = 0;      // simulator invocations (1 = no retransmission needed)
  std::uint64_t total_transmissions = 0;  // packet-hops, all waves
  std::uint64_t useful_transmissions = 0; // hops of delivered fragments

  /// complete_step - first_loss_step for every recovered message.
  obs::FixedHistogram recovery_latency;

  double delivery_rate() const {
    return messages_total
               ? static_cast<double>(messages_complete) / messages_total
               : 1.0;
  }
  /// Fraction of transmitted hops that belonged to delivered fragments.
  double goodput() const {
    return total_transmissions ? static_cast<double>(useful_transmissions) /
                                     total_transmissions
                               : 1.0;
  }
};

/// Runs one message per guest edge of `emb` (w fragments each) through the
/// fault schedule with sender-side recovery.  Also accumulates the outcome
/// into the global obs::MetricsRegistry under "recovery.*" (counters:
/// retransmissions, fragments_lost, messages_complete, messages_total;
/// gauges: delivery_rate, goodput; histogram: time_to_recover).
RecoveryResult run_recovery(const MultiPathEmbedding& emb,
                            const FaultSchedule& schedule,
                            const RecoveryConfig& config = {},
                            obs::TraceSink* sink = nullptr);

/// Oracle-backed recovery: one message per *demanded* guest edge, bundles
/// generated on demand from the oracle (the next-surviving-path probe
/// included), so the engine runs on hosts whose full embedding was never
/// materialized.  Message m in the result corresponds to edges[m].  On a
/// MaterializedOracle over the same embedding and edges covering every
/// guest edge in id order, results are bit-identical to the overload
/// above; the property suite enforces it.
RecoveryResult run_recovery(const PathOracle& oracle,
                            std::span<const OracleEdge> edges,
                            const FaultSchedule& schedule,
                            const RecoveryConfig& config = {},
                            obs::TraceSink* sink = nullptr);

}  // namespace hyperpath
