// Packet and result types shared by the simulators.
//
// The simulation model is exactly Section 3's: time advances in synchronous
// steps; during one step each processor can send one packet over each of its
// n outgoing links.  A packet has a fixed route (chosen by the embedding /
// router before the simulation starts — all the paper's schemes are
// oblivious), and waits in a per-link queue when its next link is busy.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.hpp"
#include "graph/hypercube.hpp"
#include "obs/metrics.hpp"

namespace hyperpath {

/// Which step-sweep implementation a store-and-forward simulator runs.
/// Both produce bit-identical SimResults and trace streams (the property
/// suites enforce it); they differ only in speed.
enum class SimEngine : std::uint8_t {
  /// RoutePlan structure-of-arrays compilation + the templated branch-light
  /// kernel (sim/step_kernel.hpp).  The default.
  kSoa,
  /// The retained flat-arena sweep that chases Packet routes and recomputes
  /// edge ids per enqueue — kept selectable as the honest baseline for the
  /// bench_simcore S4 speedup table.
  kFlatArena,
};

/// One packet with a fixed route through the hypercube.
struct Packet {
  HostPath route;     // node sequence; route.size() >= 1
  int release = 0;    // earliest step at which the packet may move
  std::uint32_t tag = 0;  // caller-defined grouping (e.g. guest edge id)
};

/// What happened to one packet of a faulty run (parallel to the input
/// packet list).
struct PacketFate {
  enum class Kind : std::uint8_t {
    kDelivered = 0,  // reached its destination; step = arrival step
    kLost,           // truncated at a dead link; step = loss step,
                     // link = the dead directed link, hops = completed hops
  };

  Kind kind = Kind::kDelivered;
  int step = 0;
  std::uint64_t link = ~std::uint64_t{0};
  int hops = 0;

  bool delivered() const { return kind == Kind::kDelivered; }
  friend bool operator==(const PacketFate&, const PacketFate&) = default;
};

/// Outcome of a synchronous simulation run.
struct SimResult {
  /// Number of steps until the last packet reached its destination (0 if
  /// every route was trivial).
  int makespan = 0;

  /// Per-step fraction of directed links that transmitted a packet, kept as
  /// an exact running mean plus a memory-bounded downsampled profile (one
  /// sample per step would be 1<<22 doubles on long runs).
  obs::UtilizationProfile utilization;

  /// Total packet-hops transmitted.
  std::uint64_t total_transmissions = 0;

  /// Maximum number of packets that ever waited in one link queue.
  std::size_t max_queue = 0;

  /// Transmissions per hypercube dimension (size = dims of the host); shows
  /// which dimensions carry the congestion.
  std::vector<std::uint64_t> dim_transmissions;

  /// Per-packet latency (arrival step − release step) in exponential
  /// buckets 1, 2, 4, ...; trivial (single-node) routes are not counted.
  obs::FixedHistogram latency;

  /// Active-set accounting of the flat-arena core (simcore.hpp): how many
  /// worklist entries the per-step sweeps examined over the whole run,
  /// stale entries included.  Deterministic for a fixed workload and equal
  /// between the serial and parallel simulators (the shards partition the
  /// same worklist).  With the active set working, this is Σ_steps
  /// (currently nonempty links), NOT makespan × (links ever used) — the
  /// regression tests pin that down.  The retained map-based reference
  /// simulator leaves it 0.
  std::uint64_t link_visits = 0;

  /// Wall-clock seconds the run spent, stamped by the simulator around its
  /// whole run (setup + steps + drain).  Never part of the determinism
  /// contract — every equivalence check compares the deterministic fields
  /// individually and ignores this one.
  double elapsed_seconds = 0;

  double average_utilization() const { return utilization.average(); }

  /// First-class throughput metric: simulated packet-steps per wall-clock
  /// second (total transmissions / elapsed).  0 when timing is unavailable.
  double packet_steps_per_sec() const {
    return elapsed_seconds > 0
               ? static_cast<double>(total_transmissions) / elapsed_seconds
               : 0.0;
  }
};

/// Outcome of a run under a timed fault schedule (run_with_faults): the
/// usual SimResult for the traffic that moved, plus the per-packet fates.
struct FaultRunResult {
  SimResult sim;
  std::vector<PacketFate> fates;  // parallel to the input packet list
  std::size_t delivered = 0;
  std::size_t lost = 0;
};

}  // namespace hyperpath
