// Wormhole / cut-through message routing simulator (Section 7).
//
// Long messages are not queued whole at intermediate nodes; the message
// streams pipelined along its route, one flit per link per step.
//
// Model (documented, conservative):
//   * *Atomic circuit acquisition*: a message starts only when every link
//     of its route is free, then holds the whole route until its last flit
//     arrives.  No hold-and-wait means no deadlock (a blocked worm holds
//     nothing), at the price of overstating contention relative to real
//     wormhole switching — which can only understate the speed-ups the
//     disjoint-path routings achieve.
//   * Acquisition priority is message-id order (deterministic).
//
// Completion time of an unblocked worm with an L-link route and M flits is
// the textbook L + M − 1.
//
// Tracing (optional obs::TraceSink): kWormStart when a message acquires its
// route (value = flits), one kTransmit per acquired link (value = flits that
// will stream over it), kStall when a blocked message retries (link = the
// first busy link), kWormDone on delivery (value = completion − release).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/packet.hpp"

namespace hyperpath {

/// A wormhole message.
struct Worm {
  HostPath route;
  int flits = 1;
  int release = 0;
};

struct WormResult {
  int makespan = 0;
  std::vector<int> completion;  // per message; 0 for trivial routes
  std::uint64_t total_flit_hops = 0;

  /// Wall-clock seconds of the run.  Never part of the determinism
  /// contract; equivalence checks compare the fields above individually.
  double elapsed_seconds = 0;

  /// Throughput analog of SimResult::packet_steps_per_sec for the wormhole
  /// model: simulated flit-hops per wall-clock second.
  double flit_hops_per_sec() const {
    return elapsed_seconds > 0
               ? static_cast<double>(total_flit_hops) / elapsed_seconds
               : 0.0;
  }
};

class WormholeSim {
 public:
  explicit WormholeSim(int dims);

  WormResult run(const std::vector<Worm>& worms,
                 int max_steps = 1 << 22,
                 obs::TraceSink* sink = nullptr) const;

 private:
  Hypercube host_;
};

}  // namespace hyperpath
