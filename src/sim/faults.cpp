#include "sim/faults.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"
#include "sim/phase.hpp"

namespace hyperpath {

void FaultSet::kill_link(Node u, Node v) {
  HP_CHECK(host_.is_edge(u, v), "not a hypercube link");
  dead_.insert(host_.edge_id(u, v));
  dead_.insert(host_.edge_id(v, u));
}

FaultSet FaultSet::random(int dims, int count, Rng& rng) {
  FaultSet f(dims);
  const Hypercube q(dims);
  HP_CHECK(static_cast<std::uint64_t>(count) <= q.num_undirected_edges(),
           "more faults than links");
  while (f.dead_.size() < 2 * static_cast<std::size_t>(count)) {
    const Node u = static_cast<Node>(rng.below(q.num_nodes()));
    const Dim d = static_cast<Dim>(rng.below(dims));
    f.kill_link(u, q.neighbor(u, d));
  }
  return f;
}

bool FaultSet::path_alive(const HostPath& path) const {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (link_dead(path[i], path[i + 1])) return false;
  }
  return true;
}

BundleDelivery deliver_over_bundle(const FaultSet& faults,
                                   std::span<const HostPath> bundle) {
  BundleDelivery d;
  d.paths_total = static_cast<int>(bundle.size());
  for (const HostPath& p : bundle) {
    if (faults.path_alive(p)) ++d.paths_alive;
  }
  return d;
}

std::vector<BundleDelivery> deliver_phase(const FaultSet& faults,
                                          const MultiPathEmbedding& emb) {
  std::vector<BundleDelivery> out;
  out.reserve(emb.guest().num_edges());
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    out.push_back(deliver_over_bundle(faults, emb.paths(e)));
  }
  return out;
}

DegradedResult run_phase_with_faults(const FaultSet& faults,
                                     const MultiPathEmbedding& emb, int p,
                                     obs::TraceSink* sink) {
  DegradedResult out;
  obs::StepTrace trace(sink);
  std::vector<Packet> survivors;
  std::uint32_t id = 0;
  for (Packet& pk : phase_packets(emb, p)) {
    if (faults.path_alive(pk.route)) {
      survivors.push_back(std::move(pk));
    } else {
      ++out.dropped;
      if (trace.enabled()) {
        std::uint64_t dead_link = obs::TraceEvent::kNoLink;
        for (std::size_t i = 0; i + 1 < pk.route.size(); ++i) {
          if (faults.link_dead(pk.route[i], pk.route[i + 1])) {
            dead_link = emb.host().edge_id(pk.route[i], pk.route[i + 1]);
            break;
          }
        }
        trace.record({0, obs::TraceEventKind::kDrop, id, dead_link, 0});
      }
    }
    ++id;
  }
  trace.finish();
  out.delivered = survivors.size();
  StoreForwardSim sim(emb.host().dims());
  out.sim = sim.run(survivors, Arbitration::kFifo, 1 << 22, sink);
  return out;
}

}  // namespace hyperpath
