#include "sim/faults.hpp"

#include <algorithm>
#include <sstream>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "sim/phase.hpp"

namespace hyperpath {

void FaultSet::add_dead(std::uint64_t id) { ++dead_[id]; }

void FaultSet::remove_dead(std::uint64_t id) {
  auto it = dead_.find(id);
  HP_CHECK(it != dead_.end(), "reviving a link that is not dead");
  if (--it->second == 0) dead_.erase(it);
}

void FaultSet::kill_link(Node u, Node v) {
  HP_CHECK(host_.is_edge(u, v), "not a hypercube link");
  add_dead(host_.edge_id(u, v));
  add_dead(host_.edge_id(v, u));
}

void FaultSet::revive_link(Node u, Node v) {
  HP_CHECK(host_.is_edge(u, v), "not a hypercube link");
  remove_dead(host_.edge_id(u, v));
  remove_dead(host_.edge_id(v, u));
}

void FaultSet::kill_node(Node v) {
  HP_CHECK(v < host_.num_nodes(), "node outside the hypercube");
  ++dead_nodes_[v];
  for (Dim d = 0; d < host_.dims(); ++d) {
    const Node w = host_.neighbor(v, d);
    add_dead(host_.edge_id(v, w));
    add_dead(host_.edge_id(w, v));
  }
}

void FaultSet::revive_node(Node v) {
  HP_CHECK(v < host_.num_nodes(), "node outside the hypercube");
  auto it = dead_nodes_.find(v);
  HP_CHECK(it != dead_nodes_.end(), "reviving a node that is not dead");
  if (--it->second == 0) dead_nodes_.erase(it);
  for (Dim d = 0; d < host_.dims(); ++d) {
    const Node w = host_.neighbor(v, d);
    remove_dead(host_.edge_id(v, w));
    remove_dead(host_.edge_id(w, v));
  }
}

FaultSet FaultSet::random(int dims, int count, Rng& rng) {
  FaultSet f(dims);
  const Hypercube q(dims);
  HP_CHECK(count >= 0, "negative fault count");
  HP_CHECK(static_cast<std::uint64_t>(count) <= q.num_undirected_edges(),
           "more faults than links");
  while (f.dead_.size() < 2 * static_cast<std::size_t>(count)) {
    const Node u = static_cast<Node>(rng.below(q.num_nodes()));
    const Dim d = static_cast<Dim>(rng.below(dims));
    const Node v = q.neighbor(u, d);
    if (!f.link_dead(u, v)) f.kill_link(u, v);
  }
  return f;
}

FaultSet FaultSet::random_nodes(int dims, int count, Rng& rng) {
  FaultSet f(dims);
  const Hypercube q(dims);
  HP_CHECK(count >= 0, "negative fault count");
  HP_CHECK(static_cast<std::uint64_t>(count) <= q.num_nodes(),
           "more faults than nodes");
  while (f.dead_nodes_.size() < static_cast<std::size_t>(count)) {
    const Node v = static_cast<Node>(rng.below(q.num_nodes()));
    if (!f.node_dead(v)) f.kill_node(v);
  }
  return f;
}

bool FaultSet::path_alive(const HostPath& path) const {
  for (Node v : path) {
    if (node_dead(v)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (link_dead(path[i], path[i + 1])) return false;
  }
  return true;
}

BundleDelivery deliver_over_bundle(const FaultSet& faults,
                                   std::span<const HostPath> bundle) {
  BundleDelivery d;
  d.paths_total = static_cast<int>(bundle.size());
  for (const HostPath& p : bundle) {
    if (faults.path_alive(p)) ++d.paths_alive;
  }
  return d;
}

std::vector<BundleDelivery> deliver_phase(const FaultSet& faults,
                                          const MultiPathEmbedding& emb) {
  std::vector<BundleDelivery> out;
  out.reserve(emb.guest().num_edges());
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    out.push_back(deliver_over_bundle(faults, emb.paths(e)));
  }
  return out;
}

DegradedResult run_phase_with_faults(const FaultSet& faults,
                                     const MultiPathEmbedding& emb, int p,
                                     obs::TraceSink* sink) {
  DegradedResult out;
  obs::StepTrace trace(sink);
  std::vector<Packet> survivors;
  std::uint32_t id = 0;
  for (Packet& pk : phase_packets(emb, p)) {
    if (faults.path_alive(pk.route)) {
      survivors.push_back(std::move(pk));
    } else {
      ++out.dropped;
      if (trace.enabled()) {
        std::uint64_t dead_link = obs::TraceEvent::kNoLink;
        for (std::size_t i = 0; i + 1 < pk.route.size(); ++i) {
          if (faults.link_dead(pk.route[i], pk.route[i + 1])) {
            dead_link = emb.host().edge_id(pk.route[i], pk.route[i + 1]);
            break;
          }
        }
        trace.record({0, obs::TraceEventKind::kDrop, id, dead_link, 0});
      }
    }
    ++id;
  }
  trace.finish();
  out.delivered = survivors.size();
  StoreForwardSim sim(emb.host().dims());
  out.sim = sim.run(survivors, Arbitration::kFifo, 1 << 22, sink);
  return out;
}

// ---------------------------------------------------------------------------
// Timed fault schedules

const char* to_string(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kLinkDown: return "link-down";
    case FaultEventKind::kLinkUp: return "link-up";
    case FaultEventKind::kNodeDown: return "node-down";
    case FaultEventKind::kNodeUp: return "node-up";
  }
  return "unknown";
}

FaultSchedule::FaultSchedule(int dims) : host_(dims) {}

void FaultSchedule::add(FaultEvent e) {
  HP_CHECK(e.step >= 0, "fault event before step 0");
  // Stable insertion: after every existing event with step <= e.step.
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.step < b.step; });
  events_.insert(pos, e);
}

void FaultSchedule::link_down(int step, Node u, Node v) {
  HP_CHECK(host_.is_edge(u, v), "not a hypercube link");
  add({step, FaultEventKind::kLinkDown, u, v});
}

void FaultSchedule::link_up(int step, Node u, Node v) {
  HP_CHECK(host_.is_edge(u, v), "not a hypercube link");
  add({step, FaultEventKind::kLinkUp, u, v});
}

void FaultSchedule::node_down(int step, Node v) {
  HP_CHECK(v < host_.num_nodes(), "node outside the hypercube");
  add({step, FaultEventKind::kNodeDown, v, 0});
}

void FaultSchedule::node_up(int step, Node v) {
  HP_CHECK(v < host_.num_nodes(), "node outside the hypercube");
  add({step, FaultEventKind::kNodeUp, v, 0});
}

void FaultSchedule::transient_link(int step, int repair_step, Node u, Node v) {
  HP_CHECK(repair_step > step, "repair must come after the fault");
  link_down(step, u, v);
  link_up(repair_step, u, v);
}

void FaultSchedule::transient_node(int step, int repair_step, Node v) {
  HP_CHECK(repair_step > step, "repair must come after the fault");
  node_down(step, v);
  node_up(repair_step, v);
}

FaultSchedule FaultSchedule::random(int dims, const RandomScheduleSpec& spec,
                                    Rng& rng) {
  HP_CHECK(spec.window >= 1, "random schedule window must be >= 1");
  HP_CHECK(spec.link_rate >= 0 && spec.node_rate >= 0,
           "random schedule rates must be non-negative");
  HP_CHECK(spec.transient_fraction >= 0 && spec.transient_fraction <= 1,
           "transient fraction must be in [0, 1]");
  HP_CHECK(spec.min_repair >= 1 && spec.max_repair >= spec.min_repair,
           "repair delay range must satisfy 1 <= min <= max");

  const Hypercube q(dims);
  FaultSchedule schedule(dims);

  const auto clamp_count = [](double rate, std::uint64_t total) {
    const double want = rate * static_cast<double>(total) + 0.5;
    const auto count = static_cast<std::uint64_t>(want);
    return count > total ? total : count;
  };
  const std::uint64_t link_count =
      clamp_count(spec.link_rate, q.num_undirected_edges());
  const std::uint64_t node_count = clamp_count(spec.node_rate, q.num_nodes());

  // Distinct physical links, tracked independently of node faults so the
  // intensity knob means "fraction of links explicitly cut".
  FaultSet seen_links(dims);
  for (std::uint64_t added = 0; added < link_count;) {
    const Node u = static_cast<Node>(rng.below(q.num_nodes()));
    const Dim d = static_cast<Dim>(rng.below(dims));
    const Node v = q.neighbor(u, d);
    if (seen_links.link_dead(u, v)) continue;
    seen_links.kill_link(u, v);
    const int step = static_cast<int>(rng.below(spec.window));
    if (rng.chance(spec.transient_fraction)) {
      const int repair = step + static_cast<int>(rng.between(
                                    spec.min_repair, spec.max_repair));
      schedule.transient_link(step, repair, u, v);
    } else {
      schedule.link_down(step, u, v);
    }
    ++added;
  }

  FaultSet seen_nodes(dims);
  for (std::uint64_t added = 0; added < node_count;) {
    const Node v = static_cast<Node>(rng.below(q.num_nodes()));
    if (seen_nodes.node_dead(v)) continue;
    seen_nodes.kill_node(v);
    const int step = static_cast<int>(rng.below(spec.window));
    if (rng.chance(spec.transient_fraction)) {
      const int repair = step + static_cast<int>(rng.between(
                                    spec.min_repair, spec.max_repair));
      schedule.transient_node(step, repair, v);
    } else {
      schedule.node_down(step, v);
    }
    ++added;
  }
  return schedule;
}

FaultSet FaultSchedule::state_at(int step) const {
  FaultSet f(host_.dims());
  for (const FaultEvent& e : events_) {
    if (e.step > step) break;
    switch (e.kind) {
      case FaultEventKind::kLinkDown: f.kill_link(e.u, e.v); break;
      case FaultEventKind::kLinkUp: f.revive_link(e.u, e.v); break;
      case FaultEventKind::kNodeDown: f.kill_node(e.u); break;
      case FaultEventKind::kNodeUp: f.revive_node(e.u); break;
    }
  }
  return f;
}

FaultSet FaultSchedule::final_state() const {
  return events_.empty() ? FaultSet(host_.dims())
                         : state_at(events_.back().step);
}

std::string FaultSchedule::serialize() const {
  std::ostringstream out;
  out << "dims " << host_.dims() << "\n";
  for (const FaultEvent& e : events_) {
    out << e.step << ' ' << to_string(e.kind) << ' ' << e.u;
    if (e.kind == FaultEventKind::kLinkDown ||
        e.kind == FaultEventKind::kLinkUp) {
      out << ' ' << e.v;
    }
    out << "\n";
  }
  return out.str();
}

FaultSchedule FaultSchedule::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  int dims = -1;
  std::vector<FaultSchedule> out;  // delayed construction until dims known
  // Every malformed line — including endpoint validation thrown from the
  // add helpers — reports its 1-based line number, matching JsonlReader.
  const auto fail = [&](const std::string& msg) -> Error {
    return Error("fault schedule line " + std::to_string(lineno) + ": " +
                 msg);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank / comment-only line
    if (first == "dims") {
      if (dims >= 0) throw fail("duplicate dims header");
      if (!(ls >> dims) || dims <= 0) throw fail("malformed dims header");
      out.emplace_back(dims);
      continue;
    }
    if (dims <= 0) {
      throw fail("fault schedule must start with a dims header");
    }
    int step = 0;
    std::string kind;
    Node u = 0;
    try {
      step = std::stoi(first);
    } catch (const std::exception&) {
      throw fail("malformed fault schedule line: " + line);
    }
    if (!(ls >> kind >> u)) {
      throw fail("malformed fault schedule line: " + line);
    }
    try {
      if (kind == "link-down" || kind == "link-up") {
        Node v = 0;
        if (!(ls >> v)) throw Error("link event needs two endpoints: " + line);
        if (kind == "link-down") {
          out.back().link_down(step, u, v);
        } else {
          out.back().link_up(step, u, v);
        }
      } else if (kind == "node-down") {
        out.back().node_down(step, u);
      } else if (kind == "node-up") {
        out.back().node_up(step, u);
      } else {
        throw Error("unknown fault event kind: " + kind);
      }
    } catch (const Error& e) {
      throw fail(e.what());
    }
  }
  if (out.empty()) {
    throw Error("fault schedule must start with a dims header");
  }
  return std::move(out.back());
}

// ---------------------------------------------------------------------------
// FaultTimeline

FaultTimeline::FaultTimeline(const FaultSchedule& schedule)
    : host_(schedule.dims()), events_(&schedule.events()) {}

void FaultTimeline::kill(std::uint64_t id) {
  if (++dead_[id] == 1) delta_.died.push_back(id);
}

void FaultTimeline::revive(std::uint64_t id) {
  auto it = dead_.find(id);
  HP_CHECK(it != dead_.end(), "fault schedule repairs a link that is alive");
  if (--it->second == 0) {
    dead_.erase(it);
    delta_.repaired.push_back(id);
  }
}

void FaultTimeline::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultEventKind::kLinkDown:
      kill(host_.edge_id(e.u, e.v));
      kill(host_.edge_id(e.v, e.u));
      break;
    case FaultEventKind::kLinkUp:
      revive(host_.edge_id(e.u, e.v));
      revive(host_.edge_id(e.v, e.u));
      break;
    case FaultEventKind::kNodeDown:
      for (Dim d = 0; d < host_.dims(); ++d) {
        const Node w = host_.neighbor(e.u, d);
        kill(host_.edge_id(e.u, w));
        kill(host_.edge_id(w, e.u));
      }
      break;
    case FaultEventKind::kNodeUp:
      for (Dim d = 0; d < host_.dims(); ++d) {
        const Node w = host_.neighbor(e.u, d);
        revive(host_.edge_id(e.u, w));
        revive(host_.edge_id(w, e.u));
      }
      break;
  }
}

const FaultTimeline::StepDelta& FaultTimeline::advance_to(int step) {
  delta_.died.clear();
  delta_.repaired.clear();
  while (cursor_ < events_->size() && (*events_)[cursor_].step <= step) {
    apply((*events_)[cursor_]);
    ++cursor_;
  }
  // A link that died and was repaired within the same advance never shows
  // up dead to the simulator — report neither transition.
  auto& died = delta_.died;
  auto& rep = delta_.repaired;
  std::sort(died.begin(), died.end());
  std::sort(rep.begin(), rep.end());
  std::vector<std::uint64_t> d2, r2;
  std::set_difference(died.begin(), died.end(), rep.begin(), rep.end(),
                      std::back_inserter(d2));
  std::set_difference(rep.begin(), rep.end(), died.begin(), died.end(),
                      std::back_inserter(r2));
  d2.erase(std::unique(d2.begin(), d2.end()), d2.end());
  r2.erase(std::unique(r2.begin(), r2.end()), r2.end());
  died = std::move(d2);
  rep = std::move(r2);
  // Links the delta reports dead must actually still be dead (a repair may
  // have fired later within the same advance at a higher kill count).
  std::erase_if(died, [this](std::uint64_t id) { return !dead_.contains(id); });
  std::erase_if(rep, [this](std::uint64_t id) { return dead_.contains(id); });
  return delta_;
}

}  // namespace hyperpath
