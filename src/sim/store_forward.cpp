#include "sim/store_forward.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>

#include "base/error.hpp"
#include "obs/profile.hpp"
#include "sim/faults.hpp"

namespace hyperpath {

using obs::TraceEvent;
using obs::TraceEventKind;

StoreForwardSim::StoreForwardSim(int dims) : host_(dims) {}

SimResult StoreForwardSim::run(const std::vector<Packet>& packets,
                               Arbitration policy, int max_steps,
                               obs::TraceSink* sink) const {
  return run_impl(packets, policy, max_steps, sink, nullptr, false, nullptr);
}

FaultRunResult StoreForwardSim::run_with_faults(
    const std::vector<Packet>& packets, const FaultSchedule& schedule,
    Arbitration policy, int max_steps, obs::TraceSink* sink,
    bool announce_faults) const {
  HP_CHECK(schedule.dims() == host_.dims(),
           "fault schedule dims mismatch simulator dims");
  FaultRunResult out;
  out.sim = run_impl(packets, policy, max_steps, sink, &schedule,
                     announce_faults, &out);
  return out;
}

SimResult StoreForwardSim::run_impl(const std::vector<Packet>& packets,
                                    Arbitration policy, int max_steps,
                                    obs::TraceSink* sink,
                                    const FaultSchedule* schedule,
                                    bool announce_faults,
                                    FaultRunResult* fault_out) const {
  HP_PROFILE_SPAN("sim/store_forward");
  {
    // Validate routes up front.
    HP_PROFILE_SPAN("setup");
    for (const Packet& p : packets) {
      HP_CHECK(is_valid_path(host_, p.route), "packet route invalid");
      HP_CHECK(p.release >= 0, "negative release time");
    }
  }

  // Per-link waiting lists, keyed by directed link id.  Sparse map: only
  // links that ever carry traffic get a queue.
  struct Waiting {
    std::deque<std::uint32_t> q;  // packet indices, FIFO arrival order
  };
  std::unordered_map<std::uint64_t, Waiting> queues;
  queues.reserve(packets.size());

  obs::StepTrace trace(sink);
  // Per-link high-water marks, tracked only when tracing (the global
  // max_queue needs no per-link state).
  std::unordered_map<std::uint64_t, std::size_t> highwater;

  std::vector<std::uint32_t> hop(packets.size(), 0);  // next edge index
  std::size_t undelivered = 0;

  std::optional<FaultTimeline> timeline;
  if (schedule != nullptr) timeline.emplace(*schedule);
  if (fault_out != nullptr) {
    fault_out->fates.assign(packets.size(), PacketFate{});
  }

  // Packets released later than step 0 sit in a release list.
  std::vector<std::vector<std::uint32_t>> release_at;
  auto enqueue = [&](std::uint32_t id) {
    const Packet& p = packets[id];
    const std::uint64_t link = host_.edge_id(p.route[hop[id]],
                                             p.route[hop[id] + 1]);
    queues[link].q.push_back(id);
    return link;
  };

  {
    HP_PROFILE_SPAN("setup");
    for (std::uint32_t id = 0; id < packets.size(); ++id) {
      const Packet& p = packets[id];
      if (p.route.size() <= 1) continue;  // already at destination
      ++undelivered;
      if (p.release == 0) {
        const std::uint64_t link = enqueue(id);
        if (trace.enabled()) {
          trace.record({0, TraceEventKind::kRelease, id, link, 0});
        }
      } else {
        if (release_at.size() <= static_cast<std::size_t>(p.release)) {
          release_at.resize(p.release + 1);
        }
        release_at[p.release].push_back(id);
      }
    }
  }

  SimResult result;
  result.dim_transmissions.assign(host_.dims(), 0);
  result.latency = obs::FixedHistogram::exponential();
  const double total_links = static_cast<double>(host_.num_directed_edges());
  const int dims = host_.dims();

  int step = 0;
  std::size_t max_queue = 0;
  {
  HP_PROFILE_SPAN("steps");
  while (undelivered > 0) {
    HP_CHECK(step < max_steps, "simulation exceeded max_steps");

    // Scheduled faults and repairs fire first, before any movement.
    if (timeline) {
      const FaultTimeline::StepDelta& delta = timeline->advance_to(step);
      if (announce_faults && trace.enabled()) {
        for (std::uint64_t link : delta.died) {
          trace.record({step, TraceEventKind::kFault, TraceEvent::kNoPacket,
                        link, 0});
        }
        for (std::uint64_t link : delta.repaired) {
          trace.record({step, TraceEventKind::kRepair, TraceEvent::kNoPacket,
                        link, 0});
        }
      }
    }

    if (static_cast<std::size_t>(step) < release_at.size()) {
      for (std::uint32_t id : release_at[step]) {
        const std::uint64_t link = enqueue(id);
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kRelease, id, link, 0});
        }
      }
    }

    // Truncation: every packet waiting on a currently-dead link is lost at
    // the break point.  Iterates the timeline's sorted dead-link map so the
    // emitted kDrop order is canonical.
    if (timeline && !timeline->dead_links().empty()) {
      for (const auto& [link, kills] : timeline->dead_links()) {
        auto it = queues.find(link);
        if (it == queues.end() || it->second.q.empty()) continue;
        for (std::uint32_t id : it->second.q) {
          --undelivered;
          if (fault_out != nullptr) {
            fault_out->fates[id] = {PacketFate::Kind::kLost, step, link,
                                    static_cast<int>(hop[id])};
          }
          if (trace.enabled()) {
            trace.record({step, TraceEventKind::kDrop, id, link, hop[id]});
          }
        }
        it->second.q.clear();
      }
    }

    // One transmission per nonempty link queue.
    std::uint64_t busy = 0;
    std::vector<std::uint32_t> moved;
    moved.reserve(queues.size());
    for (auto& [link, w] : queues) {
      if (w.q.empty()) continue;
      const std::size_t depth = w.q.size();
      max_queue = std::max(max_queue, depth);
      if (trace.enabled()) {
        std::size_t& high = highwater[link];
        if (depth > high) {
          high = depth;
          trace.record({step, TraceEventKind::kQueueDepth,
                        TraceEvent::kNoPacket, link, depth});
        }
      }
      std::uint32_t pick;
      if (policy == Arbitration::kFifo) {
        pick = w.q.front();
        w.q.pop_front();
      } else {
        // Farthest remaining distance first; ties broken by queue order.
        auto best = w.q.begin();
        std::size_t best_left =
            packets[*best].route.size() - 1 - hop[*best];
        for (auto it = std::next(w.q.begin()); it != w.q.end(); ++it) {
          const std::size_t left = packets[*it].route.size() - 1 - hop[*it];
          if (left > best_left) {
            best = it;
            best_left = left;
          }
        }
        pick = *best;
        w.q.erase(best);
      }
      ++busy;
      ++result.total_transmissions;
      ++result.dim_transmissions[link % dims];
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kTransmit, pick, link, depth});
        if (depth > 1) {
          trace.record({step, TraceEventKind::kStall, TraceEvent::kNoPacket,
                        link, depth - 1});
        }
      }
      moved.push_back(pick);
    }

    // Arrivals: advance hops; re-enqueue or deliver.  (Done after all links
    // transmitted so a packet moves at most one hop per step.)  Same-step
    // arrivals at one link are enqueued in increasing packet id — the
    // canonical order that makes results reproducible across standard
    // libraries and lets the parallel simulator match bit for bit.  A
    // packet whose next link just died still enqueues here; the truncation
    // pass of the next step drops it at that node.
    std::sort(moved.begin(), moved.end());
    for (std::uint32_t id : moved) {
      ++hop[id];
      const Packet& p = packets[id];
      if (hop[id] + 1 == p.route.size()) {
        --undelivered;
        const std::uint64_t lat =
            static_cast<std::uint64_t>(step + 1 - p.release);
        result.latency.observe(static_cast<double>(lat));
        if (fault_out != nullptr) {
          fault_out->fates[id] = {PacketFate::Kind::kDelivered, step,
                                  TraceEvent::kNoLink,
                                  static_cast<int>(hop[id])};
        }
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kArrive, id,
                        TraceEvent::kNoLink, lat});
        }
      } else {
        enqueue(id);
      }
    }

    result.utilization.add(static_cast<double>(busy) / total_links);
    trace.end_step();
    ++step;
  }
  }

  HP_PROFILE_SPAN("drain");
  trace.finish();
  result.makespan = step;
  result.max_queue = max_queue;
  if (fault_out != nullptr) {
    for (const PacketFate& f : fault_out->fates) {
      if (f.delivered()) {
        ++fault_out->delivered;
      } else {
        ++fault_out->lost;
      }
    }
  }
  return result;
}

}  // namespace hyperpath
