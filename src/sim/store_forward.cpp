#include "sim/store_forward.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "base/error.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "sim/faults.hpp"
#include "sim/simcore.hpp"
#include "sim/step_kernel.hpp"

namespace hyperpath {

using obs::TraceEvent;
using obs::TraceEventKind;

namespace {

/// The SoA step path: routes compiled once into a RoutePlan, state reused
/// from the thread's StepScratch, the sweep delegated to the templated
/// kernel.  Bit-identical to run_flat_impl in results and trace streams
/// (the property suites enforce it); the specialization matrix is
/// documented in step_kernel.hpp.
template <bool Traced, bool Faulted>
SimResult run_soa(const Hypercube& host, const std::vector<Packet>& packets,
                  Arbitration policy, int max_steps, obs::TraceSink* sink,
                  [[maybe_unused]] const FaultSchedule* schedule,
                  [[maybe_unused]] bool announce_faults,
                  FaultRunResult* fault_out) {
  HP_PROFILE_SPAN("sim/store_forward");
  simcore::StepScratch& scratch = simcore::step_scratch();
  simcore::RoutePlan& plan = scratch.plan;
  const std::uint64_t num_links = host.num_directed_edges();
  obs::StepTrace trace(sink);

  {
    HP_PROFILE_SPAN("setup");
    plan.rebuild(host, packets);  // validates; keeps capacity across runs
    scratch.arena.reset(num_links, packets.size());
    scratch.active.clear();
    scratch.pending.clear();
    scratch.hop.assign(packets.size(), 0);
    scratch.moved_mask.assign((packets.size() + 63) / 64, 0);
    if constexpr (Traced) scratch.highwater.assign(num_links, 0);
  }

  simcore::LinkFifoArena& arena = scratch.arena;
  std::vector<std::uint32_t>& active = scratch.active;
  auto& pending = scratch.pending;
  std::uint32_t* const hop = scratch.hop.data();
  const std::uint32_t* const route_len = plan.route_len.data();
  const std::uint32_t* const route_off = plan.route_offsets.data();
  const std::uint32_t* const link_of_hop = plan.link_of_hop.data();
  const std::uint32_t* const release = plan.release.data();

  std::size_t undelivered = 0;

  std::optional<FaultTimeline> timeline;
  if constexpr (Faulted) timeline.emplace(*schedule);
  if (fault_out != nullptr) {
    fault_out->fates.assign(packets.size(), PacketFate{});
  }

  const auto enqueue = [&](std::uint32_t id) {
    const std::uint64_t link = link_of_hop[route_off[id] + hop[id]];
    arena.push_back(link, id, active);
    return link;
  };

  {
    HP_PROFILE_SPAN("setup");
    const std::uint32_t num_routes = plan.num_routes();
    for (std::uint32_t id = 0; id < num_routes; ++id) {
      if (route_len[id] == 0) continue;  // already at destination
      ++undelivered;
      if (release[id] == 0) {
        const std::uint64_t link = enqueue(id);
        if constexpr (Traced) {
          trace.record({0, TraceEventKind::kRelease, id, link, 0});
        }
      } else {
        pending.emplace_back(release[id], id);
      }
    }
    // (release, id) ascending reproduces the legacy per-step bucket order:
    // buckets were filled in ascending id order per release step.
    std::sort(pending.begin(), pending.end());
  }

  SimResult result;
  result.dim_transmissions.assign(host.dims(), 0);
  result.latency = obs::FixedHistogram::exponential();
  const double total_links = static_cast<double>(num_links);
  const int dims = host.dims();
  std::uint64_t* const dim_tx = result.dim_transmissions.data();

  int step = 0;
  std::uint32_t max_queue = 0;
  std::size_t next_release = 0;
  std::vector<std::uint32_t>& moved = scratch.moved;
  obs::TelemetryBus& telemetry = obs::TelemetryBus::global();
  {
  HP_PROFILE_SPAN("steps");
  while (undelivered > 0) {
    HP_CHECK(step < max_steps, "simulation exceeded max_steps");

    // Scheduled faults and repairs fire first, before any movement.
    if constexpr (Faulted) {
      const FaultTimeline::StepDelta& delta = timeline->advance_to(step);
      if constexpr (Traced) {
        if (announce_faults) {
          for (std::uint64_t link : delta.died) {
            trace.record({step, TraceEventKind::kFault, TraceEvent::kNoPacket,
                          link, 0});
          }
          for (std::uint64_t link : delta.repaired) {
            trace.record({step, TraceEventKind::kRepair,
                          TraceEvent::kNoPacket, link, 0});
          }
        }
      }
    }

    while (next_release < pending.size() &&
           pending[next_release].first == static_cast<std::uint32_t>(step)) {
      const std::uint32_t id = pending[next_release].second;
      const std::uint64_t link = enqueue(id);
      if constexpr (Traced) {
        trace.record({step, TraceEventKind::kRelease, id, link, 0});
      }
      ++next_release;
    }

    // Truncation: every packet waiting on a currently-dead link is lost at
    // the break point.  Iterates the timeline's sorted dead-link map so the
    // emitted kDrop order is canonical.  clear_link leaves the emptied
    // link's worklist entry stale; this step's sweep compacts it away
    // before any further enqueue can run.
    if constexpr (Faulted) {
      if (!timeline->dead_links().empty()) {
        for (const auto& [link, kills] : timeline->dead_links()) {
          if (arena.empty(link)) continue;
          arena.for_each(link, [&](std::uint32_t id) {
            --undelivered;
            if (fault_out != nullptr) {
              fault_out->fates[id] = {PacketFate::Kind::kLost, step, link,
                                      static_cast<int>(hop[id])};
            }
            if constexpr (Traced) {
              trace.record({step, TraceEventKind::kDrop, id, link, hop[id]});
            }
          });
          arena.clear_link(link);
        }
      }
    }

    // One transmission per active link (step_kernel.hpp); the worklist is
    // compacted in place, carrying only links whose queue is still nonempty
    // into the next step.
    moved.clear();
    const auto emit = [&](const TraceEvent& e) { trace.record(e); };
    simcore::SweepStats sweep;
    if (policy == Arbitration::kFifo) {
      sweep = simcore::step_sweep<Traced, Faulted>(
          arena, active, moved, dim_tx, dims, step, scratch.highwater.data(),
          simcore::FifoArbiter{}, emit);
    } else {
      sweep = simcore::step_sweep<Traced, Faulted>(
          arena, active, moved, dim_tx, dims, step, scratch.highwater.data(),
          simcore::FarthestFirstArbiter{route_len, hop}, emit);
    }
    result.link_visits += sweep.link_visits;
    result.total_transmissions += sweep.busy;
    if (sweep.max_queue > max_queue) max_queue = sweep.max_queue;

    // Arrivals: advance hops; re-enqueue or deliver.  (Done after all links
    // transmitted so a packet moves at most one hop per step.)  Same-step
    // arrivals at one link are enqueued in increasing packet id — the
    // canonical order that makes results reproducible and lets the parallel
    // simulator match bit for bit.  A packet whose next link just died
    // still enqueues here; the truncation pass of the next step drops it at
    // that node.
    simcore::sort_moved(moved, scratch.moved_mask);
    simcore::advance_hops(moved, hop);
    for (const std::uint32_t id : moved) {
      if (hop[id] == route_len[id]) {
        --undelivered;
        const std::uint64_t lat = static_cast<std::uint64_t>(
            step + 1 - static_cast<int>(release[id]));
        result.latency.observe(static_cast<double>(lat));
        if constexpr (Faulted) {
          if (fault_out != nullptr) {
            fault_out->fates[id] = {PacketFate::Kind::kDelivered, step,
                                    TraceEvent::kNoLink,
                                    static_cast<int>(hop[id])};
          }
        }
        if constexpr (Traced) {
          trace.record({step, TraceEventKind::kArrive, id,
                        TraceEvent::kNoLink, lat});
        }
      } else {
        enqueue(id);
      }
    }

    result.utilization.add(static_cast<double>(sweep.busy) / total_links);

    // Telemetry rides the step counter, reads sim state, writes nothing
    // back: results and traces are bit-identical at any sampling period.
    // After the sweep's compaction and the arrival enqueues, `active`
    // holds exactly the links with nonempty queues.
    if (telemetry.should_sample(step)) {
      obs::SimTelemetry t;
      t.step = step;
      t.undelivered = undelivered;
      t.transmissions = result.total_transmissions;
      t.active_links = active.size();
      t.depth_hist = obs::telemetry_depth_histogram();
      for (const std::uint32_t link : active) {
        const std::uint64_t d = arena.depth(link);
        t.queued_packets += d;
        t.max_queue_depth = std::max(t.max_queue_depth, d);
        t.depth_hist.observe(static_cast<double>(d));
      }
      telemetry.sample(std::move(t));
    }

    trace.end_step();
    ++step;
  }
  }

  HP_PROFILE_SPAN("drain");
  trace.finish();
  result.makespan = step;
  // The only width transition of the depth accounting: uint32 inside the
  // core, widened exactly once at the SimResult boundary.
  result.max_queue = static_cast<std::size_t>(max_queue);
  if (fault_out != nullptr) {
    for (const PacketFate& f : fault_out->fates) {
      if (f.delivered()) {
        ++fault_out->delivered;
      } else {
        ++fault_out->lost;
      }
    }
  }
  return result;
}

}  // namespace

StoreForwardSim::StoreForwardSim(int dims, SimEngine engine)
    : host_(dims), engine_(engine) {}

SimResult StoreForwardSim::run(const std::vector<Packet>& packets,
                               Arbitration policy, int max_steps,
                               obs::TraceSink* sink) const {
  return run_impl(packets, policy, max_steps, sink, nullptr, false, nullptr);
}

FaultRunResult StoreForwardSim::run_with_faults(
    const std::vector<Packet>& packets, const FaultSchedule& schedule,
    Arbitration policy, int max_steps, obs::TraceSink* sink,
    bool announce_faults) const {
  HP_CHECK(schedule.dims() == host_.dims(),
           "fault schedule dims mismatch simulator dims");
  FaultRunResult out;
  out.sim = run_impl(packets, policy, max_steps, sink, &schedule,
                     announce_faults, &out);
  return out;
}

SimResult StoreForwardSim::run_impl(const std::vector<Packet>& packets,
                                    Arbitration policy, int max_steps,
                                    obs::TraceSink* sink,
                                    const FaultSchedule* schedule,
                                    bool announce_faults,
                                    FaultRunResult* fault_out) const {
  const auto t0 = std::chrono::steady_clock::now();
  SimResult result;
  if (engine_ == SimEngine::kFlatArena) {
    result = run_flat_impl(packets, policy, max_steps, sink, schedule,
                           announce_faults, fault_out);
  } else if (sink != nullptr) {
    result = schedule != nullptr
                 ? run_soa<true, true>(host_, packets, policy, max_steps,
                                       sink, schedule, announce_faults,
                                       fault_out)
                 : run_soa<true, false>(host_, packets, policy, max_steps,
                                        sink, schedule, announce_faults,
                                        fault_out);
  } else {
    result = schedule != nullptr
                 ? run_soa<false, true>(host_, packets, policy, max_steps,
                                        sink, schedule, announce_faults,
                                        fault_out)
                 : run_soa<false, false>(host_, packets, policy, max_steps,
                                         sink, schedule, announce_faults,
                                         fault_out);
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

SimResult StoreForwardSim::run_flat_impl(const std::vector<Packet>& packets,
                                         Arbitration policy, int max_steps,
                                         obs::TraceSink* sink,
                                         const FaultSchedule* schedule,
                                         bool announce_faults,
                                         FaultRunResult* fault_out) const {
  HP_PROFILE_SPAN("sim/store_forward");
  {
    // Validate routes up front.
    HP_PROFILE_SPAN("setup");
    for (const Packet& p : packets) {
      HP_CHECK(is_valid_path(host_, p.route), "packet route invalid");
      HP_CHECK(p.release >= 0, "negative release time");
    }
  }

  // Flat-arena per-link FIFOs, indexed by the dense directed-link id, plus
  // the active worklist of links that currently hold packets (simcore.hpp).
  const std::uint64_t num_links = host_.num_directed_edges();
  simcore::LinkFifoArena arena(num_links, packets.size());
  std::vector<std::uint64_t> active;

  obs::StepTrace trace(sink);
  // Per-link high-water marks, dense, allocated only when tracing (the
  // global max_queue needs no per-link state).
  std::vector<std::uint64_t> highwater;
  if (trace.enabled()) highwater.assign(num_links, 0);

  std::vector<std::uint32_t> hop(packets.size(), 0);  // next edge index
  std::size_t undelivered = 0;

  std::optional<FaultTimeline> timeline;
  if (schedule != nullptr) timeline.emplace(*schedule);
  if (fault_out != nullptr) {
    fault_out->fates.assign(packets.size(), PacketFate{});
  }

  // Packets released later than step 0 sit in a release list.
  std::vector<std::vector<std::uint32_t>> release_at;
  auto enqueue = [&](std::uint32_t id) {
    const Packet& p = packets[id];
    const std::uint64_t link = host_.edge_id(p.route[hop[id]],
                                             p.route[hop[id] + 1]);
    arena.push_back(link, id, active);
    return link;
  };

  {
    HP_PROFILE_SPAN("setup");
    for (std::uint32_t id = 0; id < packets.size(); ++id) {
      const Packet& p = packets[id];
      if (p.route.size() <= 1) continue;  // already at destination
      ++undelivered;
      if (p.release == 0) {
        const std::uint64_t link = enqueue(id);
        if (trace.enabled()) {
          trace.record({0, TraceEventKind::kRelease, id, link, 0});
        }
      } else {
        if (release_at.size() <= static_cast<std::size_t>(p.release)) {
          release_at.resize(p.release + 1);
        }
        release_at[p.release].push_back(id);
      }
    }
  }

  SimResult result;
  result.dim_transmissions.assign(host_.dims(), 0);
  result.latency = obs::FixedHistogram::exponential();
  const double total_links = static_cast<double>(num_links);
  const int dims = host_.dims();

  int step = 0;
  std::size_t max_queue = 0;
  std::vector<std::uint32_t> moved;  // per-step scratch, reused across steps
  obs::TelemetryBus& telemetry = obs::TelemetryBus::global();
  {
  HP_PROFILE_SPAN("steps");
  while (undelivered > 0) {
    HP_CHECK(step < max_steps, "simulation exceeded max_steps");

    // Scheduled faults and repairs fire first, before any movement.
    if (timeline) {
      const FaultTimeline::StepDelta& delta = timeline->advance_to(step);
      if (announce_faults && trace.enabled()) {
        for (std::uint64_t link : delta.died) {
          trace.record({step, TraceEventKind::kFault, TraceEvent::kNoPacket,
                        link, 0});
        }
        for (std::uint64_t link : delta.repaired) {
          trace.record({step, TraceEventKind::kRepair, TraceEvent::kNoPacket,
                        link, 0});
        }
      }
    }

    if (static_cast<std::size_t>(step) < release_at.size()) {
      for (std::uint32_t id : release_at[step]) {
        const std::uint64_t link = enqueue(id);
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kRelease, id, link, 0});
        }
      }
    }

    // Truncation: every packet waiting on a currently-dead link is lost at
    // the break point.  Iterates the timeline's sorted dead-link map so the
    // emitted kDrop order is canonical.  clear_link leaves the emptied
    // link's worklist entry stale; this step's sweep compacts it away
    // before any further enqueue can run.
    if (timeline && !timeline->dead_links().empty()) {
      for (const auto& [link, kills] : timeline->dead_links()) {
        if (arena.empty(link)) continue;
        arena.for_each(link, [&](std::uint32_t id) {
          --undelivered;
          if (fault_out != nullptr) {
            fault_out->fates[id] = {PacketFate::Kind::kLost, step, link,
                                    static_cast<int>(hop[id])};
          }
          if (trace.enabled()) {
            trace.record({step, TraceEventKind::kDrop, id, link, hop[id]});
          }
        });
        arena.clear_link(link);
      }
    }

    // One transmission per active link; the worklist is compacted in place,
    // carrying only links whose queue is still nonempty into the next step.
    std::uint64_t busy = 0;
    moved.clear();
    std::size_t keep = 0;
    for (std::size_t r = 0; r < active.size(); ++r) {
      const std::uint64_t link = active[r];
      ++result.link_visits;
      if (arena.empty(link)) continue;  // stale: emptied by the drop pass
      const std::size_t depth = arena.depth(link);
      max_queue = std::max(max_queue, depth);
      if (trace.enabled()) {
        std::uint64_t& high = highwater[link];
        if (depth > high) {
          high = depth;
          trace.record({step, TraceEventKind::kQueueDepth,
                        TraceEvent::kNoPacket, link, depth});
        }
      }
      std::uint32_t pick;
      if (policy == Arbitration::kFifo) {
        pick = arena.pop_front(link);
      } else {
        // Farthest remaining distance first; ties broken by queue order.
        pick = arena.pop_max(link, [&](std::uint32_t id) {
          return packets[id].route.size() - 1 - hop[id];
        });
      }
      ++busy;
      ++result.total_transmissions;
      ++result.dim_transmissions[link % dims];
      if (trace.enabled()) {
        trace.record({step, TraceEventKind::kTransmit, pick, link, depth});
        if (depth > 1) {
          trace.record({step, TraceEventKind::kStall, TraceEvent::kNoPacket,
                        link, depth - 1});
        }
      }
      moved.push_back(pick);
      if (!arena.empty(link)) active[keep++] = link;
    }
    active.resize(keep);

    // Arrivals: advance hops; re-enqueue or deliver.  (Done after all links
    // transmitted so a packet moves at most one hop per step.)  Same-step
    // arrivals at one link are enqueued in increasing packet id — the
    // canonical order that makes results reproducible and lets the parallel
    // simulator match bit for bit.  A packet whose next link just died
    // still enqueues here; the truncation pass of the next step drops it at
    // that node.
    std::sort(moved.begin(), moved.end());
    for (std::uint32_t id : moved) {
      ++hop[id];
      const Packet& p = packets[id];
      if (hop[id] + 1 == p.route.size()) {
        --undelivered;
        const std::uint64_t lat =
            static_cast<std::uint64_t>(step + 1 - p.release);
        result.latency.observe(static_cast<double>(lat));
        if (fault_out != nullptr) {
          fault_out->fates[id] = {PacketFate::Kind::kDelivered, step,
                                  TraceEvent::kNoLink,
                                  static_cast<int>(hop[id])};
        }
        if (trace.enabled()) {
          trace.record({step, TraceEventKind::kArrive, id,
                        TraceEvent::kNoLink, lat});
        }
      } else {
        enqueue(id);
      }
    }

    result.utilization.add(static_cast<double>(busy) / total_links);

    // Telemetry rides the step counter, reads sim state, writes nothing
    // back: results and traces are bit-identical at any sampling period.
    // After the sweep's compaction and the arrival enqueues, `active`
    // holds exactly the links with nonempty queues.
    if (telemetry.should_sample(step)) {
      obs::SimTelemetry t;
      t.step = step;
      t.undelivered = undelivered;
      t.transmissions = result.total_transmissions;
      t.active_links = active.size();
      t.depth_hist = obs::telemetry_depth_histogram();
      for (std::uint64_t link : active) {
        const std::uint64_t d = arena.depth(link);
        t.queued_packets += d;
        t.max_queue_depth = std::max(t.max_queue_depth, d);
        t.depth_hist.observe(static_cast<double>(d));
      }
      telemetry.sample(std::move(t));
    }

    trace.end_step();
    ++step;
  }
  }

  HP_PROFILE_SPAN("drain");
  trace.finish();
  result.makespan = step;
  result.max_queue = max_queue;
  if (fault_out != nullptr) {
    for (const PacketFate& f : fault_out->fates) {
      if (f.delivered()) {
        ++fault_out->delivered;
      } else {
        ++fault_out->lost;
      }
    }
  }
  return result;
}

}  // namespace hyperpath
