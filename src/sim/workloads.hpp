// Permutation workloads and baseline routes for routing experiments
// (Section 7 uses permutation routing of long messages).
#pragma once

#include "base/rng.hpp"
#include "sim/packet.hpp"

namespace hyperpath {

/// A destination per hypercube node (a permutation of the node set).
using Pattern = std::vector<Node>;

/// Uniformly random permutation of Q_dims' nodes.
Pattern random_permutation_pattern(int dims, Rng& rng);

/// Bit-reversal: destination of v is its address with the bit order
/// reversed.  A classic hard pattern for dimension-ordered routing.
Pattern bit_reversal_pattern(int dims);

/// Transpose: swap the high and low halves of the address (dims even).
Pattern transpose_pattern(int dims);

/// Complement: destination of v is ~v — every route crosses all dimensions.
Pattern complement_pattern(int dims);

/// Dimension-ordered (e-cube) route from src to dst: correct differing bits
/// from dimension 0 upward.  The standard oblivious baseline.
HostPath ecube_route(const Hypercube& q, Node src, Node dst);

/// Valiant's randomized two-phase route: e-cube to a uniformly random
/// intermediate node, then e-cube to the destination.  The classical cure
/// for adversarial permutations (Section 7's store-and-forward context
/// [17, 20, 23] builds on this idea).
HostPath valiant_route(const Hypercube& q, Node src, Node dst, Rng& rng);

}  // namespace hyperpath
