// The templated branch-light step-sweep kernel shared by the serial and
// parallel store-and-forward simulators.
//
// One sweep serves one worklist of active links: pop one packet per live
// link, account the transmission, compact the worklist in place.  The two
// template booleans select the specialization matrix:
//
//              Traced=false            Traced=true
//   Faulted=false   tight hot loop         + high-water / transmit / stall
//                    (no stale check,        events emitted through `emit`
//                     no event code)
//   Faulted=true    + stale-entry skip     full legacy behaviour
//
// * Traced compiles the event emission in or out.  With it out, the loop
//   body is: depth read, running max, pop, dim counter, moved append,
//   compaction — no allocation, no virtual call, no event construction.
// * Faulted compiles the stale-worklist check in or out.  Stale entries
//   exist only when the fault-truncation pass ran clear_link on a link that
//   was on a worklist; a fault-free run can never produce one, so skipping
//   the check is bit-identical there.  link_visits stays "entries visited,
//   stale included" in both shapes — without faults every entry is live, so
//   the hoisted `worklist.size()` is the same count the legacy per-entry
//   increment produced.
//
// Arbitration is a functor so each policy instantiates its own loop:
// FifoArbiter is a straight pop_front; FarthestFirstArbiter reads its key
// from the RoutePlan's parallel arrays (route_len[id] - hop[id]) instead of
// chasing Packet::route.
//
// The worklist element type is generic: the serial SoA path and the
// parallel shards keep 32-bit link ids (RoutePlan guarantees links fit);
// the retained flat-arena path keeps its original 64-bit lists.
//
// Determinism: the sweep visits the worklist in order and emits events in
// deterministic order per worklist; everything order-sensitive downstream
// (trace streams, arrivals) is canonically sorted by the callers exactly as
// before, so both engines and every shard count produce identical results.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/simcore.hpp"

namespace hyperpath::simcore {

/// Outputs of one sweep over one worklist.
struct SweepStats {
  std::uint64_t busy = 0;         // transmissions performed
  std::uint64_t link_visits = 0;  // worklist entries visited (stale incl.)
  std::uint32_t max_queue = 0;    // deepest queue seen this sweep
};

/// FIFO arbitration: queue order (arrival time, ties by packet id).  Also
/// the only policy the parallel shards run.
struct FifoArbiter {
  std::uint32_t operator()(LinkFifoArena& arena, std::uint64_t link) const {
    return arena.pop_front(link);
  }
};

/// Farthest-remaining-distance-first over the SoA plan: the key is the
/// two-array read route_len[id] - hop[id]; ties go to queue order.
struct FarthestFirstArbiter {
  const std::uint32_t* route_len;
  const std::uint32_t* hop;

  std::uint32_t operator()(LinkFifoArena& arena, std::uint64_t link) const {
    return arena.pop_max(link, [this](std::uint32_t id) {
      return route_len[id] - hop[id];
    });
  }
};

/// Sweeps `worklist` once: per live link records queue statistics, emits
/// trace events through `emit` (Traced only), pops one packet via
/// `arbitrate`, appends it to `moved` and compacts the worklist in place so
/// only still-nonempty links survive.  `highwater` (per-link, Traced only)
/// and `dim_tx` (per-dimension transmission counters) are caller-owned.
template <bool Traced, bool Faulted, typename Worklist, typename Arbiter,
          typename EmitFn>
inline SweepStats step_sweep(LinkFifoArena& arena, Worklist& worklist,
                             std::vector<std::uint32_t>& moved,
                             std::uint64_t* dim_tx, int dims,
                             [[maybe_unused]] int step,
                             [[maybe_unused]] std::uint32_t* highwater,
                             Arbiter&& arbitrate,
                             [[maybe_unused]] EmitFn&& emit) {
  using obs::TraceEvent;
  using obs::TraceEventKind;
  SweepStats out;
  std::size_t keep = 0;
  const std::size_t count = worklist.size();
  out.link_visits = static_cast<std::uint64_t>(count);
  for (std::size_t r = 0; r < count; ++r) {
    const std::uint64_t link = worklist[r];
    if constexpr (Faulted) {
      if (arena.empty(link)) continue;  // stale: emptied by the drop pass
    }
    const std::uint32_t depth = arena.depth(link);
    if (depth > out.max_queue) out.max_queue = depth;
    if constexpr (Traced) {
      std::uint32_t& high = highwater[link];
      if (depth > high) {
        high = depth;
        emit(TraceEvent{step, TraceEventKind::kQueueDepth,
                        TraceEvent::kNoPacket, link, depth});
      }
    }
    const std::uint32_t pick = arbitrate(arena, link);
    ++out.busy;
    ++dim_tx[link % static_cast<std::uint64_t>(dims)];
    if constexpr (Traced) {
      emit(TraceEvent{step, TraceEventKind::kTransmit, pick, link, depth});
      if (depth > 1) {
        emit(TraceEvent{step, TraceEventKind::kStall, TraceEvent::kNoPacket,
                        link, std::uint64_t{depth} - 1});
      }
    }
    moved.push_back(pick);
    if (!arena.empty(link)) {
      worklist[keep++] = static_cast<typename Worklist::value_type>(link);
    }
  }
  worklist.resize(keep);
  return out;
}

/// Sorts the packet ids of `moved` ascending — the canonical arrival order.
/// A packet rides at most one queue, so one sweep moves it at most once:
/// the ids are distinct, which turns a one-bit-per-packet mask into an
/// exact counting sort.  Set each id's bit (random writes, but the mask is
/// only num_packets/8 bytes — L2-resident where the id vector is not), then
/// one ascending word scan re-emits the ids in order and clears the mask
/// behind itself.  `mask` must be all-zero on entry, sized to
/// (num_packets + 63) / 64 words, and is all-zero again on return.
///
/// Dense sweeps (phase traffic moves most packets every step) sort in
/// O(ids + words); sparse sweeps — a recovery wave trickling a handful of
/// retransmitted fragments through a big cube — fall back to comparison
/// sort, because the scan costs the id *range*, not the population.
/// Either path yields the same ascending sequence, so the choice can never
/// perturb results.
inline void sort_moved(std::vector<std::uint32_t>& moved,
                       std::vector<std::uint64_t>& mask) {
  if (moved.size() < mask.size()) {
    std::sort(moved.begin(), moved.end());
    return;
  }
  for (const std::uint32_t id : moved) {
    mask[id >> 6] |= std::uint64_t{1} << (id & 63);
  }
  std::size_t out = 0;
  const std::size_t words = mask.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = mask[w];
    if (bits == 0) continue;
    mask[w] = 0;
    const std::uint32_t base = static_cast<std::uint32_t>(w << 6);
    do {
      moved[out++] =
          base + static_cast<std::uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
    } while (bits != 0);
  }
}

/// Batched hop advance of the arrival pass: every moved packet steps one
/// hop before any delivery test or re-enqueue runs.  Kept a separate
/// unit-stride loop so the compiler can vectorize the gather/increment/
/// scatter independent of the re-enqueue's control flow.
inline void advance_hops(const std::vector<std::uint32_t>& moved,
                         std::uint32_t* hop) {
  for (const std::uint32_t id : moved) ++hop[id];
}

}  // namespace hyperpath::simcore
