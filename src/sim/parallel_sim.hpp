// Thread-parallel store-and-forward simulation.
//
// The synchronous link model parallelizes naturally: within a step every
// link arbitrates independently, so links are sharded across worker threads
// (by link-id hash) and arrivals are buffered per worker and merged in a
// fixed order at the step barrier.  The result is bit-identical to
// StoreForwardSim (tests enforce this) — parallelism changes wall-clock
// time only, never the measured makespan, utilization or queue statistics.
//
// Tracing: each shard records its events into a shard-local buffer; the
// buffers are merged at the step barrier and sorted into the canonical
// intra-step order, so a traced parallel run emits a byte-identical event
// stream to the serial simulator (also enforced by tests).
//
// Worth using from ~10^5 packets upward (Theorem 1 phases on Q_16 and the
// relaxation sweeps); below that the barrier overhead dominates.
#pragma once

#include "obs/trace.hpp"
#include "sim/packet.hpp"
#include "sim/store_forward.hpp"

namespace hyperpath {

class ParallelStoreForwardSim {
 public:
  /// Simulates on Q_dims with `threads` workers (0 = hardware concurrency).
  explicit ParallelStoreForwardSim(int dims, int threads = 0);

  /// FIFO arbitration only (farthest-first would need cross-shard state).
  SimResult run(const std::vector<Packet>& packets,
                int max_steps = 1 << 22,
                obs::TraceSink* sink = nullptr) const;

  /// Fault-schedule replay, bit-identical to
  /// StoreForwardSim::run_with_faults (same FaultRunResult, same trace).
  /// Fault application and queue truncation run on the main thread between
  /// worker rounds, so the sharding never reorders them.
  FaultRunResult run_with_faults(const std::vector<Packet>& packets,
                                 const FaultSchedule& schedule,
                                 int max_steps = 1 << 22,
                                 obs::TraceSink* sink = nullptr,
                                 bool announce_faults = true) const;

 private:
  SimResult run_impl(const std::vector<Packet>& packets, int max_steps,
                     obs::TraceSink* sink, const FaultSchedule* schedule,
                     bool announce_faults, FaultRunResult* fault_out) const;

  Hypercube host_;
  int threads_;
};

}  // namespace hyperpath
