// Rabin's Information Dispersal Algorithm [22] over GF(2^8).
//
// A message of |data| bytes is encoded into n fragments, each of size
// ⌈|data|/m⌉ bytes, such that *any* m fragments reconstruct the message
// exactly.  Sent along the w = n edge-disjoint paths of a multiple-path
// embedding, delivery survives any n − m path failures with only n/m-fold
// redundancy — the fault-tolerant transmission scheme the paper's
// introduction proposes.
//
// Implementation: the dispersal matrix is the n×m Vandermonde matrix with
// distinct nonzero evaluation points x_i = i + 1 in GF(2^8) (any m of its
// rows are linearly independent); decoding inverts the surviving m×m
// submatrix by Gaussian elimination over GF(2^8).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace hyperpath {

/// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11B).
namespace gf256 {
std::uint8_t add(std::uint8_t a, std::uint8_t b);
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);  // a != 0
std::uint8_t pow(std::uint8_t a, unsigned e);
}  // namespace gf256

/// A fragment: its index (row of the dispersal matrix) plus payload.
struct IdaFragment {
  int index = 0;
  std::vector<std::uint8_t> payload;
};

/// Encodes data into n fragments with reconstruction threshold m.
/// Requires 1 <= m <= n <= 255.
std::vector<IdaFragment> ida_encode(std::span<const std::uint8_t> data,
                                    int n_fragments, int threshold);

/// Reconstructs the original data (whose exact size must be supplied) from
/// any >= threshold fragments.  Returns nullopt if fewer than `threshold`
/// fragments were supplied or indices repeat.
std::optional<std::vector<std::uint8_t>> ida_decode(
    std::span<const IdaFragment> fragments, int threshold,
    std::size_t original_size);

}  // namespace hyperpath
