#include "sim/workloads.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {

Pattern random_permutation_pattern(int dims, Rng& rng) {
  return rng.permutation(static_cast<std::uint32_t>(pow2(dims)));
}

Pattern bit_reversal_pattern(int dims) {
  const std::uint64_t n = pow2(dims);
  Pattern p(n);
  for (Node v = 0; v < n; ++v) {
    Node r = 0;
    for (int b = 0; b < dims; ++b) {
      if (test_bit(v, b)) r |= bit(dims - 1 - b);
    }
    p[v] = r;
  }
  return p;
}

Pattern transpose_pattern(int dims) {
  HP_CHECK(dims % 2 == 0, "transpose needs an even dimension count");
  const int h = dims / 2;
  const std::uint64_t n = pow2(dims);
  Pattern p(n);
  for (Node v = 0; v < n; ++v) {
    const Node lo = bit_field(v, 0, h);
    const Node hi = bit_field(v, h, h);
    p[v] = (lo << h) | hi;
  }
  return p;
}

Pattern complement_pattern(int dims) {
  const std::uint64_t n = pow2(dims);
  Pattern p(n);
  for (Node v = 0; v < n; ++v) p[v] = static_cast<Node>((n - 1) ^ v);
  return p;
}

HostPath ecube_route(const Hypercube& q, Node src, Node dst) {
  HP_CHECK(q.contains(src) && q.contains(dst), "endpoint outside hypercube");
  HostPath path{src};
  Node v = src;
  for (Dim d = 0; d < q.dims(); ++d) {
    if (test_bit(v ^ dst, d)) {
      v = flip_bit(v, d);
      path.push_back(v);
    }
  }
  return path;
}

HostPath valiant_route(const Hypercube& q, Node src, Node dst, Rng& rng) {
  const Node mid = static_cast<Node>(rng.below(q.num_nodes()));
  HostPath first = ecube_route(q, src, mid);
  const HostPath second = ecube_route(q, mid, dst);
  first.insert(first.end(), second.begin() + 1, second.end());
  return first;
}

}  // namespace hyperpath
