// Retained map-based reference simulators.
//
// These are the pre-flat-arena implementations of StoreForwardSim and
// WormholeSim, kept verbatim (hash-map per-link queues, full-map per-step
// scans, unordered_set held-links) as the semantic oracle for the flat-arena
// core in simcore.hpp:
//
//   * tests/property/simcore_equiv_test.cpp asserts the production
//     simulators produce bit-identical results AND trace streams to these
//     references under randomized workloads, both arbitration policies,
//     fault schedules and staggered releases;
//   * bench_simcore measures the production cores' throughput against them
//     (the EXPERIMENTS.md before/after table).
//
// Do not "optimize" this file — its value is being the slow, obviously
// faithful model.  New simulator features land in the production cores
// first and are mirrored here only when the equivalence tests need them.
#pragma once

#include "obs/trace.hpp"
#include "sim/packet.hpp"
#include "sim/store_forward.hpp"
#include "sim/wormhole.hpp"

namespace hyperpath::refsim {

/// The map-based store-and-forward simulator (old StoreForwardSim).
class RefStoreForwardSim {
 public:
  explicit RefStoreForwardSim(int dims);

  SimResult run(const std::vector<Packet>& packets,
                Arbitration policy = Arbitration::kFifo,
                int max_steps = 1 << 22,
                obs::TraceSink* sink = nullptr) const;

  FaultRunResult run_with_faults(const std::vector<Packet>& packets,
                                 const FaultSchedule& schedule,
                                 Arbitration policy = Arbitration::kFifo,
                                 int max_steps = 1 << 22,
                                 obs::TraceSink* sink = nullptr,
                                 bool announce_faults = true) const;

 private:
  SimResult run_impl(const std::vector<Packet>& packets, Arbitration policy,
                     int max_steps, obs::TraceSink* sink,
                     const FaultSchedule* schedule, bool announce_faults,
                     FaultRunResult* fault_out) const;

  Hypercube host_;
};

/// The scan-all-worms wormhole simulator (old WormholeSim).
class RefWormholeSim {
 public:
  explicit RefWormholeSim(int dims);

  WormResult run(const std::vector<Worm>& worms, int max_steps = 1 << 22,
                 obs::TraceSink* sink = nullptr) const;

 private:
  Hypercube host_;
};

}  // namespace hyperpath::refsim
