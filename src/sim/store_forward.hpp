// Synchronous store-and-forward link simulator.
//
// Each directed link transmits at most one packet per step; packets whose
// next link is busy wait in that link's queue.  Two arbitration policies:
//
//   * kFifo          — queue order (arrival time, ties by packet id);
//   * kFarthestFirst — the waiting packet with the most remaining hops goes
//                      first (a common latency-improving heuristic).
//
// The simulator is deterministic for a fixed packet list and policy.  An
// optional obs::TraceSink receives step-level events (releases, transmits,
// stalls, queue high-water marks, arrivals); with a null sink no event is
// ever constructed.
//
// run_with_faults replays a timed FaultSchedule during the run: at the start
// of each step the schedule's events for that step fire (kFault/kRepair
// trace events), and every packet waiting on a currently-dead link is
// truncated at the break point (kDrop, value = hops completed).  The
// per-packet outcome is reported in FaultRunResult::fates; the recovery
// engine (recovery.hpp) builds sender-side retransmission on top.
#pragma once

#include "obs/trace.hpp"
#include "sim/packet.hpp"

namespace hyperpath {

enum class Arbitration { kFifo, kFarthestFirst };

class FaultSchedule;

class StoreForwardSim {
 public:
  /// Simulates on Q_dims.  `engine` selects the step-sweep implementation:
  /// the default SoA route-plan kernel, or the retained flat-arena loop
  /// (SimEngine::kFlatArena) kept as the honest baseline for the
  /// bench_simcore S4 speedup table.  Both are bit-identical in results and
  /// trace streams; the property suites enforce it.
  explicit StoreForwardSim(int dims, SimEngine engine = SimEngine::kSoa);

  SimEngine engine() const { return engine_; }

  /// Runs the packet set to completion and returns the measured result.
  /// Throws if any route is invalid or the simulation exceeds `max_steps`.
  /// With a sink attached, emits the canonical step-level trace.
  SimResult run(const std::vector<Packet>& packets,
                Arbitration policy = Arbitration::kFifo,
                int max_steps = 1 << 22,
                obs::TraceSink* sink = nullptr) const;

  /// Runs the packet set while replaying `schedule`.  Packets that reach a
  /// dead link are truncated there (they stop participating); the rest run
  /// to completion.  The simulation ends when every packet is delivered or
  /// lost — schedule events after that point do not execute.  With
  /// `announce_faults` false the kFault/kRepair trace events are suppressed
  /// (used by the recovery engine, which replays one schedule across
  /// several retransmission waves and only announces it once).
  FaultRunResult run_with_faults(const std::vector<Packet>& packets,
                                 const FaultSchedule& schedule,
                                 Arbitration policy = Arbitration::kFifo,
                                 int max_steps = 1 << 22,
                                 obs::TraceSink* sink = nullptr,
                                 bool announce_faults = true) const;

 private:
  SimResult run_impl(const std::vector<Packet>& packets, Arbitration policy,
                     int max_steps, obs::TraceSink* sink,
                     const FaultSchedule* schedule, bool announce_faults,
                     FaultRunResult* fault_out) const;

  /// The pre-RoutePlan sweep, retained verbatim (SimEngine::kFlatArena).
  SimResult run_flat_impl(const std::vector<Packet>& packets,
                          Arbitration policy, int max_steps,
                          obs::TraceSink* sink, const FaultSchedule* schedule,
                          bool announce_faults,
                          FaultRunResult* fault_out) const;

  Hypercube host_;
  SimEngine engine_;
};

}  // namespace hyperpath
