// Synchronous store-and-forward link simulator.
//
// Each directed link transmits at most one packet per step; packets whose
// next link is busy wait in that link's queue.  Two arbitration policies:
//
//   * kFifo          — queue order (arrival time, ties by packet id);
//   * kFarthestFirst — the waiting packet with the most remaining hops goes
//                      first (a common latency-improving heuristic).
//
// The simulator is deterministic for a fixed packet list and policy.  An
// optional obs::TraceSink receives step-level events (releases, transmits,
// stalls, queue high-water marks, arrivals); with a null sink no event is
// ever constructed.
#pragma once

#include "obs/trace.hpp"
#include "sim/packet.hpp"

namespace hyperpath {

enum class Arbitration { kFifo, kFarthestFirst };

class StoreForwardSim {
 public:
  /// Simulates on Q_dims.
  explicit StoreForwardSim(int dims);

  /// Runs the packet set to completion and returns the measured result.
  /// Throws if any route is invalid or the simulation exceeds `max_steps`.
  /// With a sink attached, emits the canonical step-level trace.
  SimResult run(const std::vector<Packet>& packets,
                Arbitration policy = Arbitration::kFifo,
                int max_steps = 1 << 22,
                obs::TraceSink* sink = nullptr) const;

 private:
  Hypercube host_;
};

}  // namespace hyperpath
