#include "embed/embedding.hpp"

#include <algorithm>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "par/task_pool.hpp"

namespace hyperpath {

namespace {

/// Per-worker accumulator of the fused bundle sweep.  The congestion
/// scratch is allocated lazily (a worker that never ran a chunk costs
/// nothing) and merged into the result in ascending worker order; the
/// counters are sums, so the merged vector is bit-identical for any thread
/// count and any steal pattern.
struct SweepShard {
  std::size_t max_dilation = 0;
  std::size_t min_width = SIZE_MAX;
  std::vector<std::uint32_t> cong;
};

}  // namespace

// ---------------------------------------------------------------------------
// MultiPathEmbedding
// ---------------------------------------------------------------------------

MultiPathEmbedding::MultiPathEmbedding(Digraph guest, int host_dims)
    : guest_(std::move(guest)), host_(host_dims) {
  eta_.assign(guest_.num_nodes(), kNoNode);
  bundles_.assign(guest_.num_edges(), {});
}

void MultiPathEmbedding::set_node_map(std::vector<Node> eta) {
  HP_CHECK(eta.size() == guest_.num_nodes(), "node map size mismatch");
  eta_ = std::move(eta);
}

void MultiPathEmbedding::set_paths(std::size_t edge_id,
                                   std::vector<HostPath> bundle) {
  HP_CHECK(edge_id < bundles_.size(), "edge id out of range");
  HP_CHECK(!bundle.empty(), "bundle must contain at least one path");
  bundles_[edge_id] = std::move(bundle);
}

int MultiPathEmbedding::load() const {
  std::vector<std::uint32_t> count(host_.num_nodes(), 0);
  std::uint32_t mx = 0;
  for (Node h : eta_) {
    HP_CHECK(h != kNoNode, "node map not fully set");
    mx = std::max(mx, ++count[h]);
  }
  return static_cast<int>(mx);
}

int MultiPathEmbedding::dilation() const {
  std::size_t mx = 0;
  for (const auto& bundle : bundles_) {
    for (const HostPath& p : bundle) mx = std::max(mx, p.size() - 1);
  }
  return static_cast<int>(mx);
}

int MultiPathEmbedding::width() const {
  std::size_t mn = SIZE_MAX;
  for (const auto& bundle : bundles_) mn = std::min(mn, bundle.size());
  return bundles_.empty() ? 0 : static_cast<int>(mn);
}

EmbeddingMetrics MultiPathEmbedding::metrics() const {
  EmbeddingMetrics m;
  m.load = load();

  const std::size_t nedges = bundles_.size();
  const std::size_t nlinks = host_.num_directed_edges();
  m.congestion_per_link.reserve(nlinks);
  m.congestion_per_link.assign(nlinks, 0);
  if (nedges == 0) return m;

  const int workers = par::current_pool().threads();
  std::vector<SweepShard> shard(workers);
  par::parallel_for_chunks(
      0, nedges, par::suggested_grain(nedges),
      [&](std::size_t, std::size_t lo, std::size_t hi, int w) {
        SweepShard& sh = shard[w];
        if (sh.cong.empty()) sh.cong.assign(nlinks, 0);
        for (std::size_t e = lo; e < hi; ++e) {
          const auto& bundle = bundles_[e];
          sh.min_width = std::min(sh.min_width, bundle.size());
          for (const HostPath& p : bundle) {
            sh.max_dilation = std::max(sh.max_dilation, p.size() - 1);
            for (std::size_t i = 0; i + 1 < p.size(); ++i) {
              ++sh.cong[host_.edge_id(p[i], p[i + 1])];
            }
          }
        }
      });

  std::size_t max_dilation = 0;
  std::size_t min_width = SIZE_MAX;
  for (int w = 0; w < workers; ++w) {
    max_dilation = std::max(max_dilation, shard[w].max_dilation);
    min_width = std::min(min_width, shard[w].min_width);
    if (shard[w].cong.empty()) continue;
    for (std::size_t l = 0; l < nlinks; ++l) {
      m.congestion_per_link[l] += shard[w].cong[l];
    }
  }
  m.dilation = static_cast<int>(max_dilation);
  m.width = static_cast<int>(min_width);
  m.congestion =
      m.congestion_per_link.empty()
          ? 0
          : static_cast<int>(*std::max_element(m.congestion_per_link.begin(),
                                               m.congestion_per_link.end()));
  return m;
}

std::vector<std::uint32_t> MultiPathEmbedding::congestion_per_link() const {
  return metrics().congestion_per_link;
}

int MultiPathEmbedding::congestion() const { return metrics().congestion; }

double MultiPathEmbedding::expansion() const {
  const std::uint64_t need = pow2(ceil_log2(guest_.num_nodes()));
  return static_cast<double>(host_.num_nodes()) / static_cast<double>(need);
}

void MultiPathEmbedding::verify_or_throw(int expected_width,
                                         int expected_load) const {
  // Node map range + load.
  for (Node h : eta_) {
    HP_CHECK(h != kNoNode && host_.contains(h), "node map entry invalid");
  }
  const int observed_load = load();
  if (expected_load >= 0) {
    HP_CHECK(observed_load <= expected_load, "load exceeds expected bound");
  } else {
    // Paper default: one-to-one when the guest fits, otherwise balanced
    // many-to-one with load ⌈|V(G)|/|V(W)|⌉.
    const std::uint64_t vg = guest_.num_nodes();
    const std::uint64_t vh = host_.num_nodes();
    const std::uint64_t bound = (vg + vh - 1) / vh;
    HP_CHECK(static_cast<std::uint64_t>(observed_load) <= std::max<std::uint64_t>(bound, 1),
             "load exceeds ceil(|V|/|W|)");
  }

  // Paths: one sweep sharded over guest edges checks structure AND
  // accumulates the width, so no metric helper re-walks the bundles.
  const std::size_t nedges = guest_.num_edges();
  const int workers = par::current_pool().threads();
  std::vector<std::size_t> shard_min_width(workers, SIZE_MAX);
  par::parallel_for_chunks(
      0, nedges, par::suggested_grain(nedges, 32),
      [&](std::size_t, std::size_t lo, std::size_t hi, int w) {
        std::size_t mn = shard_min_width[w];
        for (std::size_t e = lo; e < hi; ++e) {
          const Edge& ge = guest_.edge(e);
          const auto& bundle = bundles_[e];
          HP_CHECK(!bundle.empty(), "guest edge has no image path");
          for (const HostPath& p : bundle) {
            HP_CHECK(is_valid_path(host_, p),
                     "image path is not a hypercube walk");
            HP_CHECK(p.front() == eta_[ge.from], "path does not start at η(u)");
            HP_CHECK(p.back() == eta_[ge.to], "path does not end at η(v)");
          }
          HP_CHECK(paths_edge_disjoint(host_, bundle),
                   "bundle paths are not edge-disjoint");
          mn = std::min(mn, bundle.size());
        }
        shard_min_width[w] = mn;
      });

  if (expected_width >= 0) {
    std::size_t mn = SIZE_MAX;
    for (std::size_t w : shard_min_width) mn = std::min(mn, w);
    const int observed_width = nedges == 0 ? 0 : static_cast<int>(mn);
    HP_CHECK(observed_width == expected_width, "width differs from expected");
  }
}

// ---------------------------------------------------------------------------
// KCopyEmbedding
// ---------------------------------------------------------------------------

KCopyEmbedding::KCopyEmbedding(Digraph guest, int host_dims)
    : guest_(std::move(guest)), host_(host_dims) {}

void KCopyEmbedding::add_copy(std::vector<Node> eta,
                              std::vector<HostPath> paths) {
  HP_CHECK(eta.size() == guest_.num_nodes(), "copy node map size mismatch");
  HP_CHECK(paths.size() == guest_.num_edges(), "copy path count mismatch");
  copies_.push_back(Copy{std::move(eta), std::move(paths)});
}

int KCopyEmbedding::dilation() const {
  std::size_t mx = 0;
  for (const Copy& c : copies_) {
    for (const HostPath& p : c.paths) mx = std::max(mx, p.size() - 1);
  }
  return static_cast<int>(mx);
}

KCopyEmbedding::Metrics KCopyEmbedding::metrics() const {
  Metrics m;
  const std::size_t nlinks = host_.num_directed_edges();
  m.congestion_per_link.reserve(nlinks);
  m.congestion_per_link.assign(nlinks, 0);
  if (copies_.empty()) return m;

  const int workers = par::current_pool().threads();
  std::vector<SweepShard> shard(workers);
  par::parallel_for_chunks(
      0, copies_.size(), /*grain=*/1,
      [&](std::size_t, std::size_t lo, std::size_t hi, int w) {
        SweepShard& sh = shard[w];
        if (sh.cong.empty()) sh.cong.assign(nlinks, 0);
        for (std::size_t c = lo; c < hi; ++c) {
          for (const HostPath& p : copies_[c].paths) {
            sh.max_dilation = std::max(sh.max_dilation, p.size() - 1);
            for (std::size_t i = 0; i + 1 < p.size(); ++i) {
              ++sh.cong[host_.edge_id(p[i], p[i + 1])];
            }
          }
        }
      });

  std::size_t max_dilation = 0;
  for (int w = 0; w < workers; ++w) {
    max_dilation = std::max(max_dilation, shard[w].max_dilation);
    if (shard[w].cong.empty()) continue;
    for (std::size_t l = 0; l < nlinks; ++l) {
      m.congestion_per_link[l] += shard[w].cong[l];
    }
  }
  m.dilation = static_cast<int>(max_dilation);
  m.edge_congestion =
      m.congestion_per_link.empty()
          ? 0
          : static_cast<int>(*std::max_element(m.congestion_per_link.begin(),
                                               m.congestion_per_link.end()));
  return m;
}

std::vector<std::uint32_t> KCopyEmbedding::congestion_per_link() const {
  return metrics().congestion_per_link;
}

int KCopyEmbedding::edge_congestion() const {
  return metrics().edge_congestion;
}

void KCopyEmbedding::verify_or_throw(int expected_congestion) const {
  // One copy per task: copies are independent, and the pool's
  // lowest-chunk error selection keeps the thrown error the serial scan's.
  par::parallel_for_chunks(
      0, copies_.size(), /*grain=*/1,
      [&](std::size_t, std::size_t lo, std::size_t hi, int) {
        for (std::size_t ci = lo; ci < hi; ++ci) {
          const Copy& c = copies_[ci];
          std::vector<bool> hit(host_.num_nodes(), false);
          for (Node h : c.eta) {
            HP_CHECK(host_.contains(h), "copy node map entry invalid");
            HP_CHECK(!hit[h], "copy node map is not one-to-one");
            hit[h] = true;
          }
          for (std::size_t e = 0; e < guest_.num_edges(); ++e) {
            const Edge& ge = guest_.edge(e);
            const HostPath& p = c.paths[e];
            HP_CHECK(is_valid_path(host_, p),
                     "copy path is not a hypercube walk");
            HP_CHECK(p.front() == c.eta[ge.from], "copy path start mismatch");
            HP_CHECK(p.back() == c.eta[ge.to], "copy path end mismatch");
          }
        }
      });
  if (expected_congestion >= 0) {
    HP_CHECK(edge_congestion() <= expected_congestion,
             "edge-congestion exceeds expected bound");
  }
}

}  // namespace hyperpath
