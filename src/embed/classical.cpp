#include "embed/classical.hpp"

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/gray.hpp"
#include "hamdecomp/directed.hpp"

namespace hyperpath {

MultiPathEmbedding gray_code_cycle_embedding(int n) {
  const std::uint64_t len = pow2(n);
  MultiPathEmbedding emb(directed_cycle(static_cast<Node>(len)), n);

  std::vector<Node> eta(len);
  for (std::uint64_t j = 0; j < len; ++j) eta[j] = gray_node_at(n, j);
  emb.set_node_map(std::move(eta));

  const Digraph& g = emb.guest();
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& ge = g.edge(e);
    emb.set_paths(e, {{emb.host_of(ge.from), emb.host_of(ge.to)}});
  }
  return emb;
}

MultiPathEmbedding gray_code_grid_embedding(const GridSpec& spec) {
  // Field widths per axis.
  std::vector<int> width(spec.sides.size());
  int total = 0;
  for (std::size_t a = 0; a < spec.sides.size(); ++a) {
    HP_CHECK(is_pow2(spec.sides[a]),
             "gray_code_grid_embedding needs power-of-two sides");
    width[a] = floor_log2(spec.sides[a]);
    total += width[a];
  }
  HP_CHECK(total >= 1 && total <= 30, "grid too large for a hypercube host");

  MultiPathEmbedding emb(grid_graph(spec), total);

  // η: concatenate per-axis Gray codes, axis 0 in the most significant
  // field (matching GridSpec's row-major indexing).
  const Node n_nodes = spec.num_nodes();
  std::vector<Node> eta(n_nodes);
  for (Node v = 0; v < n_nodes; ++v) {
    const auto coords = spec.coords(v);
    Node addr = 0;
    for (std::size_t a = 0; a < coords.size(); ++a) {
      const Node g = (width[a] == 0) ? 0 : gray_node_at(width[a], coords[a]);
      addr = (addr << width[a]) | g;
    }
    eta[v] = addr;
  }
  emb.set_node_map(std::move(eta));

  const Digraph& g = emb.guest();
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& ge = g.edge(e);
    const Node a = emb.host_of(ge.from);
    const Node b = emb.host_of(ge.to);
    HP_CHECK(is_pow2(a ^ b), "gray grid neighbor images must be adjacent");
    emb.set_paths(e, {{a, b}});
  }
  return emb;
}

MultiPathEmbedding spanning_binomial_tree_embedding(int n) {
  const Node n_nodes = static_cast<Node>(pow2(n));
  DigraphBuilder b(n_nodes);
  // Parent of v: clear the highest set bit.
  for (Node v = 1; v < n_nodes; ++v) {
    const Node p = v ^ bit(floor_log2(v));
    b.add_undirected(p, v);
  }
  MultiPathEmbedding emb(std::move(b).build(), n);
  std::vector<Node> eta(n_nodes);
  for (Node v = 0; v < n_nodes; ++v) eta[v] = v;  // identity
  emb.set_node_map(std::move(eta));
  const Digraph& g = emb.guest();
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& ge = g.edge(e);
    emb.set_paths(e, {{ge.from, ge.to}});
  }
  return emb;
}

KCopyEmbedding multicopy_directed_cycles(int n) {
  const DirectedCycleFamily fam(n);
  const std::uint64_t len = pow2(n);
  KCopyEmbedding emb(directed_cycle(static_cast<Node>(len)), n);
  for (int c = 0; c < fam.num_cycles(); ++c) {
    const std::vector<Node> seq = fam.sequence(c, 0);
    // Copy c maps guest node j to the j-th node of directed cycle c; each
    // guest edge (j, j+1) maps to the single hypercube edge between their
    // images (dilation 1).
    std::vector<HostPath> paths(len);
    const Digraph& g = emb.guest();
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const Edge& ge = g.edge(e);
      paths[e] = {seq[ge.from], seq[ge.to]};
    }
    emb.add_copy(seq, std::move(paths));
  }
  return emb;
}

}  // namespace hyperpath
