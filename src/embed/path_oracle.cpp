#include "embed/path_oracle.hpp"

#include <algorithm>
#include <bit>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"

namespace hyperpath {

HostPath PathOracle::path_vec(const OracleEdge& edge, int index) const {
  HostPath out;
  VectorSink sink(out);
  path(edge, index, sink);
  return out;
}

std::vector<HostPath> PathOracle::bundle(const OracleEdge& edge) const {
  const int w = width(edge);
  std::vector<HostPath> out;
  out.reserve(w);
  for (int i = 0; i < w; ++i) out.push_back(path_vec(edge, i));
  return out;
}

// --- MaterializedOracle ----------------------------------------------------

Node MaterializedOracle::host_of(OracleId guest) const {
  return emb_.host_of(checked_u32(guest, "guest node id exceeds 32 bits"));
}

int MaterializedOracle::out_degree(OracleId guest) const {
  const auto [lo, hi] = emb_.guest().out_edge_range(
      checked_u32(guest, "guest node id exceeds 32 bits"));
  return static_cast<int>(hi - lo);
}

OracleEdge MaterializedOracle::out_edge(OracleId guest, int slot) const {
  const auto [lo, hi] = emb_.guest().out_edge_range(
      checked_u32(guest, "guest node id exceeds 32 bits"));
  HP_CHECK(slot >= 0 && lo + static_cast<std::uint32_t>(slot) < hi,
           "out-edge slot out of range");
  const Edge& e = emb_.guest().edge(lo + static_cast<std::uint32_t>(slot));
  return {e.from, e.to};
}

std::size_t MaterializedOracle::edge_index(const OracleEdge& edge) const {
  const std::size_t e = emb_.guest().find_edge(
      checked_u32(edge.from, "guest node id exceeds 32 bits"),
      checked_u32(edge.to, "guest node id exceeds 32 bits"));
  HP_CHECK(e != static_cast<std::size_t>(-1), "no such guest edge");
  return e;
}

int MaterializedOracle::width(const OracleEdge& edge) const {
  return static_cast<int>(emb_.paths(edge_index(edge)).size());
}

std::uint32_t MaterializedOracle::path_hops(const OracleEdge& edge,
                                            int index) const {
  const auto bundle = emb_.paths(edge_index(edge));
  HP_CHECK(index >= 0 && static_cast<std::size_t>(index) < bundle.size(),
           "bundle path index out of range");
  return static_cast<std::uint32_t>(bundle[index].size() - 1);
}

void MaterializedOracle::path(const OracleEdge& edge, int index,
                              NodeSink& sink) const {
  const auto bundle = emb_.paths(edge_index(edge));
  HP_CHECK(index >= 0 && static_cast<std::size_t>(index) < bundle.size(),
           "bundle path index out of range");
  for (Node v : bundle[index]) sink.push(v);
}

// --- sampling verification -------------------------------------------------

std::vector<OracleEdge> sample_guest_edges(const PathOracle& oracle,
                                           std::uint64_t count,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<OracleEdge> edges;
  edges.reserve(count);
  const OracleId nodes = oracle.guest_nodes();
  HP_CHECK(nodes >= 1, "oracle has no guest nodes");
  while (edges.size() < count) {
    const OracleId g = rng.below(nodes);
    const int deg = oracle.out_degree(g);
    if (deg == 0) continue;  // non-wrap grid corners have no out-edges
    edges.push_back(oracle.out_edge(g, static_cast<int>(rng.below(deg))));
  }
  return edges;
}

namespace {

/// Sink that verifies the stream hop by hop instead of storing it:
/// endpoint correctness, host adjacency, and the per-path link-id list
/// (for the bundle disjointness check) with O(path length) state.
class CheckingSink final : public NodeSink {
 public:
  CheckingSink(int dims, Node expect_first, Node expect_last,
               std::vector<std::uint64_t>& links)
      : dims_(dims), expect_first_(expect_first), expect_last_(expect_last),
        links_(links) {}

  void push(Node v) override {
    HP_CHECK(dims_ == 32 || (v >> dims_) == 0, "node outside the host cube");
    if (count_ == 0) {
      HP_CHECK(v == expect_first_, "path does not start at eta(from)");
    } else {
      HP_CHECK(popcount(prev_ ^ v) == 1,
               "consecutive path nodes not host-adjacent");
      const Dim d = count_trailing_zeros(prev_ ^ v);
      links_.push_back(static_cast<std::uint64_t>(prev_) *
                           static_cast<std::uint64_t>(dims_) +
                       static_cast<std::uint64_t>(d));
    }
    digest_ = std::rotl(digest_, 13) ^ v;
    prev_ = v;
    ++count_;
  }

  void finish() const {
    HP_CHECK(count_ >= 1, "empty path stream");
    HP_CHECK(prev_ == expect_last_, "path does not end at eta(to)");
  }

  std::uint64_t hops() const { return count_ == 0 ? 0 : count_ - 1; }
  std::uint64_t digest() const { return digest_; }

 private:
  int dims_;
  Node expect_first_;
  Node expect_last_;
  std::vector<std::uint64_t>& links_;
  Node prev_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t digest_ = 0;
};

}  // namespace

OracleSampleReport oracle_sample_check(const PathOracle& oracle,
                                       std::uint64_t count,
                                       std::uint64_t seed) {
  OracleSampleReport report;
  const int dims = oracle.host_dims();
  std::vector<std::uint64_t> bundle_links;  // reused across edges
  std::vector<std::uint64_t> path_links;
  for (const OracleEdge& edge : sample_guest_edges(oracle, count, seed)) {
    const Node a = oracle.host_of(edge.from);
    const Node b = oracle.host_of(edge.to);
    const int w = oracle.width(edge);
    HP_CHECK(w >= 1, "guest edge with empty bundle");
    bundle_links.clear();
    for (int i = 0; i < w; ++i) {
      path_links.clear();
      CheckingSink sink(dims, a, b, path_links);
      oracle.path(edge, i, sink);
      sink.finish();
      HP_CHECK(sink.hops() == oracle.path_hops(edge, i),
               "declared path_hops disagrees with the streamed path");
      bundle_links.insert(bundle_links.end(), path_links.begin(),
                          path_links.end());
      ++report.paths_checked;
      report.hops_checked += sink.hops();
      report.node_digest ^=
          std::rotl(sink.digest(), static_cast<int>(i % 63));
    }
    std::sort(bundle_links.begin(), bundle_links.end());
    HP_CHECK(std::adjacent_find(bundle_links.begin(), bundle_links.end()) ==
                 bundle_links.end(),
             "bundle paths are not pairwise edge-disjoint");
    ++report.edges_checked;
  }
  return report;
}

}  // namespace hyperpath
