// PathOracle: on-demand routing queries decoupled from materialized bundles.
//
// Every construction in src/core is closed-form — Gray-code rank/unrank,
// moments M(v) (Lemma 2), Hamiltonian-decomposition successor tables — so
// the i-th path of the bundle for a guest edge is computable in O(path
// length) with O(1) per-query state.  MultiPathEmbedding materializes the
// whole structure anyway, which caps the host dimension at what fits in
// RAM (a Q_20 grid's bundles alone are ~1 GiB of little vectors).
//
// PathOracle is the query interface both worlds implement:
//
//   * MaterializedOracle — wraps an existing MultiPathEmbedding; answers
//     are spans into the stored bundles, bit-for-bit the current behavior.
//   * the algebraic generators (src/core/algebraic_oracle.hpp) — compute
//     η and every bundle path from closed form, never allocating a bundle;
//     peak state is a few KiB of per-cycle successor tables, independent
//     of how many queries run.  This is what unlocks Q_24–Q_30 hosts.
//
// Consumers that only need per-route streams (RoutePlan compilation, the
// recovery engine's next-surviving-path probe, the sampling verifier
// below) take a PathOracle so they run identically on either backend.
//
// Width discipline: guest ids and edge counts are 64-bit (OracleId).  A
// large-copy guest has ⌊n/2⌋·2^{n+1} nodes and a dense directed-link id
// space is n·2^n — both overflow uint32 before the host address does
// (hosts stop at Q_30, so hypercube Node stays 32-bit).  Narrowing back
// to 32 bits happens only at the simulator boundary, via checked_u32.
//
// Edge identity is the (from, to) guest-node pair, not a dense edge index:
// the digraph's edge ids exist only after materializing the edge list, and
// non-wrap grids have no O(1) dense indexing.  out_degree/out_edge
// enumerate a node's out-edges in ascending `to` order — exactly the order
// Digraph stores them — so (node, slot) walks agree across backends.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.hpp"
#include "embed/embedding.hpp"

namespace hyperpath {

/// 64-bit guest node id / guest edge count (see width discipline above).
using OracleId = std::uint64_t;

/// Checked narrowing at the 32-bit simulator boundary: values that fit are
/// passed through; values that do not are an error, never a silent wrap.
inline std::uint32_t checked_u32(std::uint64_t v, const char* what) {
  HP_CHECK(v <= 0xffffffffull, what);
  return static_cast<std::uint32_t>(v);
}

/// A guest edge named by its endpoints.
struct OracleEdge {
  OracleId from = 0;
  OracleId to = 0;

  bool operator==(const OracleEdge&) const = default;
};

/// Receives one path's host nodes in order, one hop at a time.  Generators
/// call push() for η(u), each intermediate node, then η(v); they never
/// allocate, so a sink that streams (into a RoutePlan, a digest, a socket)
/// keeps the whole query allocation-free.
class NodeSink {
 public:
  virtual ~NodeSink() = default;
  virtual void push(Node v) = 0;
};

/// Sink that collects into a HostPath — the convenience/testing adapter.
class VectorSink final : public NodeSink {
 public:
  explicit VectorSink(HostPath& out) : out_(out) {}
  void push(Node v) override { out_.push_back(v); }

 private:
  HostPath& out_;
};

/// The backend-neutral routing query interface.
class PathOracle {
 public:
  virtual ~PathOracle() = default;

  /// Host dimension n (host is always Q_n).
  virtual int host_dims() const = 0;

  /// Guest |V| and |E| (64-bit: see width discipline above).
  virtual OracleId guest_nodes() const = 0;
  virtual OracleId guest_edges() const = 0;

  /// η(guest): the host image of a guest node.
  virtual Node host_of(OracleId guest) const = 0;

  /// Out-edges of a guest node, slot-indexed in ascending `to` order
  /// (Digraph storage order, so backends agree on (node, slot) walks).
  virtual int out_degree(OracleId guest) const = 0;
  virtual OracleEdge out_edge(OracleId guest, int slot) const = 0;

  /// Bundle size for a guest edge (the embedding's width at that edge).
  virtual int width(const OracleEdge& edge) const = 0;

  /// Hop count (path length in links) of bundle path `index`, without
  /// generating it — O(1) on the algebraic backends.
  virtual std::uint32_t path_hops(const OracleEdge& edge, int index) const = 0;

  /// Streams bundle path `index` of `edge`: η(from), intermediates, η(to).
  virtual void path(const OracleEdge& edge, int index,
                    NodeSink& sink) const = 0;

  /// Family tag for reports ("theorem1", "grid", "largecopy",
  /// "materialized").
  virtual const char* family() const = 0;

  // --- convenience (materializing; tests and small-n callers) -------------

  HostPath path_vec(const OracleEdge& edge, int index) const;
  std::vector<HostPath> bundle(const OracleEdge& edge) const;
};

/// The materialized backend: every query answered from a stored
/// MultiPathEmbedding.  The embedding must outlive the oracle.
class MaterializedOracle final : public PathOracle {
 public:
  explicit MaterializedOracle(const MultiPathEmbedding& emb) : emb_(emb) {}

  int host_dims() const override { return emb_.host().dims(); }
  OracleId guest_nodes() const override { return emb_.guest().num_nodes(); }
  OracleId guest_edges() const override { return emb_.guest().num_edges(); }
  Node host_of(OracleId guest) const override;
  int out_degree(OracleId guest) const override;
  OracleEdge out_edge(OracleId guest, int slot) const override;
  int width(const OracleEdge& edge) const override;
  std::uint32_t path_hops(const OracleEdge& edge, int index) const override;
  void path(const OracleEdge& edge, int index, NodeSink& sink) const override;
  const char* family() const override { return "materialized"; }

  const MultiPathEmbedding& embedding() const { return emb_; }

 private:
  /// Dense guest edge id of (from, to); throws if the edge doesn't exist.
  std::size_t edge_index(const OracleEdge& edge) const;

  const MultiPathEmbedding& emb_;
};

// --- sampling verification -------------------------------------------------

/// Seeded uniform sample of `count` guest edges: each draw picks a guest
/// node, then one of its out-edge slots.  Deterministic for a fixed
/// (oracle shape, count, seed) — callers that need the floor and the
/// simulation to see the same traffic share one sample.
std::vector<OracleEdge> sample_guest_edges(const PathOracle& oracle,
                                           std::uint64_t count,
                                           std::uint64_t seed);

/// What one sampling sweep verified (all counts, for reports/gates).
struct OracleSampleReport {
  std::uint64_t edges_checked = 0;
  std::uint64_t paths_checked = 0;
  std::uint64_t hops_checked = 0;
  /// XOR-rotate digest over every streamed node — two backends that pass
  /// the same sample with equal digests emitted identical hop streams.
  std::uint64_t node_digest = 0;
};

/// The sampling-verification contract for dimensions where exhaustive
/// verification is impossible: for each sampled edge and *every* bundle
/// path, checks (a) the stream starts at η(from) and ends at η(to),
/// (b) consecutive nodes are host-adjacent (single bit flip inside Q_n),
/// (c) the declared path_hops matches the streamed length, and (d) the
/// bundle's paths are pairwise edge-disjoint.  Throws on any violation.
OracleSampleReport oracle_sample_check(const PathOracle& oracle,
                                       std::uint64_t count,
                                       std::uint64_t seed);

}  // namespace hyperpath
