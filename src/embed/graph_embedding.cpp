#include "embed/graph_embedding.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "base/error.hpp"
#include "embed/embedding.hpp"

namespace hyperpath {

GraphEmbedding::GraphEmbedding(Digraph guest, Digraph host)
    : guest_(std::move(guest)), host_(std::move(host)) {
  eta_.assign(guest_.num_nodes(), kNoNode);
  paths_.assign(guest_.num_edges(), {});
}

void GraphEmbedding::set_node_map(std::vector<Node> eta) {
  HP_CHECK(eta.size() == guest_.num_nodes(), "node map size mismatch");
  eta_ = std::move(eta);
}

void GraphEmbedding::set_path(std::size_t edge_id, std::vector<Node> path) {
  HP_CHECK(edge_id < paths_.size(), "edge id out of range");
  HP_CHECK(!path.empty(), "empty path");
  paths_[edge_id] = std::move(path);
}

int GraphEmbedding::load() const {
  std::vector<std::uint32_t> count(host_.num_nodes(), 0);
  std::uint32_t mx = 0;
  for (Node h : eta_) {
    HP_CHECK(h != kNoNode, "node map not fully set");
    mx = std::max(mx, ++count[h]);
  }
  return static_cast<int>(mx);
}

int GraphEmbedding::dilation() const {
  std::size_t mx = 0;
  for (const auto& p : paths_) mx = std::max(mx, p.size() - 1);
  return static_cast<int>(mx);
}

std::vector<std::uint32_t> GraphEmbedding::congestion_per_edge() const {
  std::vector<std::uint32_t> cong(host_.num_edges(), 0);
  for (const auto& p : paths_) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      const std::size_t e = host_.find_edge(p[i], p[i + 1]);
      HP_CHECK(e != static_cast<std::size_t>(-1), "path uses absent host edge");
      ++cong[e];
    }
  }
  return cong;
}

int GraphEmbedding::congestion() const {
  const auto cong = congestion_per_edge();
  return cong.empty() ? 0
                      : static_cast<int>(
                            *std::max_element(cong.begin(), cong.end()));
}

void GraphEmbedding::verify_or_throw(int max_dilation, int max_congestion,
                                     int max_load) const {
  for (Node h : eta_) {
    HP_CHECK(h != kNoNode && h < host_.num_nodes(), "node map entry invalid");
  }
  for (std::size_t e = 0; e < guest_.num_edges(); ++e) {
    const Edge& ge = guest_.edge(e);
    const auto& p = paths_[e];
    HP_CHECK(!p.empty(), "guest edge has no path");
    HP_CHECK(p.front() == eta_[ge.from], "path start mismatch");
    HP_CHECK(p.back() == eta_[ge.to], "path end mismatch");
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      HP_CHECK(host_.has_edge(p[i], p[i + 1]), "path hop is not a host edge");
    }
  }
  if (max_dilation >= 0) {
    HP_CHECK(dilation() <= max_dilation, "dilation bound violated");
  }
  if (max_congestion >= 0) {
    HP_CHECK(congestion() <= max_congestion, "congestion bound violated");
  }
  if (max_load >= 0) {
    HP_CHECK(load() <= max_load, "load bound violated");
  }
}

GraphEmbedding compose(const GraphEmbedding& outer,
                       const GraphEmbedding& inner) {
  HP_CHECK(inner.host().num_nodes() == outer.guest().num_nodes(),
           "composition type mismatch: inner host != outer guest");
  GraphEmbedding out(inner.guest(), outer.host());

  std::vector<Node> eta(inner.guest().num_nodes());
  for (Node v = 0; v < inner.guest().num_nodes(); ++v) {
    eta[v] = outer.host_of(inner.host_of(v));
  }
  out.set_node_map(std::move(eta));

  for (std::size_t e = 0; e < inner.guest().num_edges(); ++e) {
    const auto& mid = inner.path(e);  // path in B
    std::vector<Node> full{outer.host_of(mid.front())};
    for (std::size_t i = 0; i + 1 < mid.size(); ++i) {
      const std::size_t be = outer.guest().find_edge(mid[i], mid[i + 1]);
      HP_CHECK(be != static_cast<std::size_t>(-1),
               "inner path hop missing from outer guest");
      const auto& seg = outer.path(be);  // path in C
      HP_CHECK(seg.front() == full.back(), "composition discontinuity");
      full.insert(full.end(), seg.begin() + 1, seg.end());
    }
    out.set_path(e, std::move(full));
  }
  return out;
}


MultiPathEmbedding compose_multipath(const MultiPathEmbedding& outer,
                                     const GraphEmbedding& inner) {
  HP_CHECK(inner.host() == outer.guest(),
           "composition type mismatch: inner host must equal outer guest");
  MultiPathEmbedding out(inner.guest(), outer.host().dims());

  std::vector<Node> eta(inner.guest().num_nodes());
  for (Node v = 0; v < inner.guest().num_nodes(); ++v) {
    eta[v] = outer.host_of(inner.host_of(v));
  }
  out.set_node_map(std::move(eta));

  for (std::size_t e = 0; e < inner.guest().num_edges(); ++e) {
    const auto& mid = inner.path(e);  // path in X
    // Width of the composed bundle: min bundle size along the hops.
    std::size_t w = SIZE_MAX;
    std::vector<std::size_t> hop_edges;
    for (std::size_t i = 0; i + 1 < mid.size(); ++i) {
      const std::size_t xe = outer.guest().find_edge(mid[i], mid[i + 1]);
      HP_CHECK(xe != static_cast<std::size_t>(-1),
               "inner path hop missing from outer guest");
      hop_edges.push_back(xe);
      w = std::min(w, outer.paths(xe).size());
    }
    HP_CHECK(!hop_edges.empty(), "inner embedding has a trivial edge path");
    std::vector<HostPath> bundle;
    for (std::size_t k = 0; k < w; ++k) {
      HostPath full{outer.paths(hop_edges[0])[k].front()};
      for (std::size_t h : hop_edges) {
        const HostPath& seg = outer.paths(h)[k];
        HP_CHECK(seg.front() == full.back(), "composition discontinuity");
        full.insert(full.end(), seg.begin() + 1, seg.end());
      }
      bundle.push_back(erase_loops(full));
    }
    // Multi-hop compositions can collide *across* bundle paths (hop k of
    // one X edge and hop k' of the next can reuse a host edge when the
    // underlying copies are congested).  Keep a greedy maximal
    // edge-disjoint subset; single-hop compositions keep full width.
    if (hop_edges.size() > 1) {
      std::vector<HostPath> kept;
      std::unordered_set<std::uint64_t> used;
      const Hypercube& q = out.host();
      for (auto& p : bundle) {
        bool ok = true;
        for (std::size_t i = 0; ok && i + 1 < p.size(); ++i) {
          ok = !used.contains(q.edge_id(p[i], p[i + 1]));
        }
        if (!ok) continue;
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          used.insert(q.edge_id(p[i], p[i + 1]));
        }
        kept.push_back(std::move(p));
      }
      bundle = std::move(kept);
      HP_CHECK(!bundle.empty(), "no disjoint composed path survived");
    }
    out.set_paths(e, std::move(bundle));
  }
  // Load is inherited from the inner embedding (Theorem 5's CBT → X has
  // load up to 3 by design), so the composition does not impose the
  // one-to-one default; callers assert their own load bounds.
  out.verify_or_throw(-1, std::numeric_limits<int>::max());
  return out;
}

}  // namespace hyperpath
