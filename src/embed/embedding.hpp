// The embedding framework of Section 3.
//
// An embedding of a guest graph G into the host hypercube H = Q_n is a node
// map η : V(G) → V(H) together with a map μ assigning each guest edge (u, v)
// to one or more paths in H from η(u) to η(v).
//
//   * load       — max number of guest vertices on one host vertex
//   * dilation   — max path length over all assigned paths
//   * congestion — max over host *directed* edges of the number of guest
//                  edges one of whose image paths uses it
//   * width      — min number of pairwise edge-disjoint paths per guest edge
//                  (a "width-w embedding" has w such paths for every edge)
//   * expansion  — |V(H)| / (smallest power of two ≥ |V(G)|)
//
// MultiPathEmbedding stores the full structure and re-derives every metric;
// verify_or_throw() re-checks the paper's structural requirements so that a
// construction bug can never silently flow into a measurement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/types.hpp"
#include "graph/digraph.hpp"
#include "graph/hypercube.hpp"

namespace hyperpath {

/// Every Section-3 metric of a multiple-path embedding, produced by one
/// fused sweep over the bundles (see MultiPathEmbedding::metrics) instead
/// of one re-walk per metric.
struct EmbeddingMetrics {
  int load = 0;
  int dilation = 0;
  int width = 0;
  int congestion = 0;
  std::vector<std::uint32_t> congestion_per_link;  // by Hypercube::edge_id
};

/// A multiple-path embedding of a guest digraph into Q_host_dims.
/// A width-1 instance is an ordinary (single-path) embedding.
class MultiPathEmbedding {
 public:
  MultiPathEmbedding(Digraph guest, int host_dims);

  const Digraph& guest() const { return guest_; }
  const Hypercube& host() const { return host_; }

  /// Sets η.  eta.size() must equal guest().num_nodes().
  void set_node_map(std::vector<Node> eta);

  Node host_of(Node guest_node) const { return eta_[guest_node]; }
  std::span<const Node> node_map() const { return eta_; }

  /// Assigns the path bundle of guest edge `edge_id` (id in guest().edges()).
  void set_paths(std::size_t edge_id, std::vector<HostPath> bundle);

  std::span<const HostPath> paths(std::size_t edge_id) const {
    return bundles_[edge_id];
  }

  // --- metrics (computed on demand; all O(total path length)) -------------

  int load() const;
  int dilation() const;

  /// Minimum bundle size over guest edges — the embedding's width.
  int width() const;

  /// Congestion per host directed edge, indexed by Hypercube::edge_id.
  /// Sharded over guest edges on the par::TaskPool; per-worker scratch
  /// counters are merged in fixed order, so the vector is bit-identical for
  /// every thread count.
  std::vector<std::uint32_t> congestion_per_link() const;

  int congestion() const;

  /// All metrics in one sharded sweep over the bundles (plus the O(|V|)
  /// node-map pass for load) — call this instead of four separate
  /// re-walks when more than one metric is needed.  Deterministic across
  /// thread counts.
  EmbeddingMetrics metrics() const;

  /// |V(H)| divided by the smallest power of two at least |V(G)|.
  double expansion() const;

  // --- verification --------------------------------------------------------

  /// Structural checks: η in range with load ≤ ⌈|V(G)|/|V(H)|⌉ only when
  /// |V(G)| > |V(H)| (otherwise η must be one-to-one... see note), every
  /// guest edge has ≥1 path, every path is a valid hypercube walk from
  /// η(u) to η(v), and each bundle is pairwise edge-disjoint.
  /// If expected_width ≥ 0, also checks width() == expected_width.
  /// If expected_load ≥ 0, checks load() ≤ expected_load; otherwise applies
  /// the paper's default (one-to-one when the guest fits).
  ///
  /// The per-edge checks and the width computation run as one sweep
  /// sharded over guest edges on the par::TaskPool.  Failure selection is
  /// deterministic: the error thrown is always the first failing edge's
  /// (chunks partition the edge range in order and the pool rethrows the
  /// lowest throwing chunk), identical to the serial scan.
  void verify_or_throw(int expected_width = -1, int expected_load = -1) const;

 private:
  Digraph guest_;
  Hypercube host_;
  std::vector<Node> eta_;
  std::vector<std::vector<HostPath>> bundles_;
};

/// A k-copy embedding (Section 3): k one-to-one node maps of the same guest
/// into Q_n, each edge mapped to a single path per copy.  The congestion of
/// a host edge is summed over all copies.
class KCopyEmbedding {
 public:
  KCopyEmbedding(Digraph guest, int host_dims);

  const Digraph& guest() const { return guest_; }
  const Hypercube& host() const { return host_; }
  int num_copies() const { return static_cast<int>(copies_.size()); }

  /// Appends a copy: a one-to-one node map plus one path per guest edge
  /// (paths[e] corresponds to guest().edge(e)).
  void add_copy(std::vector<Node> eta, std::vector<HostPath> paths);

  Node host_of(int copy, Node guest_node) const {
    return copies_[copy].eta[guest_node];
  }
  std::span<const Node> node_map(int copy) const { return copies_[copy].eta; }
  const HostPath& path(int copy, std::size_t edge_id) const {
    return copies_[copy].paths[edge_id];
  }

  int dilation() const;

  /// Edge-congestion summed across copies, per host directed edge.
  /// Sharded over copies on the par::TaskPool with per-worker scratch
  /// merged in fixed order (bit-identical for every thread count).
  std::vector<std::uint32_t> congestion_per_link() const;
  int edge_congestion() const;

  /// Dilation + edge-congestion (+ the per-link vector) in one sharded
  /// sweep over the copies instead of one re-walk per metric.
  struct Metrics {
    int dilation = 0;
    int edge_congestion = 0;
    std::vector<std::uint32_t> congestion_per_link;
  };
  Metrics metrics() const;

  /// Checks: every copy's η is one-to-one, every path valid with correct
  /// endpoints.  If expected_congestion ≥ 0, also checks
  /// edge_congestion() ≤ expected_congestion.  Copies are checked in
  /// parallel on the par::TaskPool; the error thrown is always the first
  /// failing copy's first failing check, identical to the serial scan.
  void verify_or_throw(int expected_congestion = -1) const;

 private:
  struct Copy {
    std::vector<Node> eta;
    std::vector<HostPath> paths;
  };
  Digraph guest_;
  Hypercube host_;
  std::vector<Copy> copies_;
};

}  // namespace hyperpath
