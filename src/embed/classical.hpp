// Classical (width-1) embeddings and the Lemma-1 multiple-copy cycles.
//
// These are the baselines the paper's constructions are measured against:
//
//   * the binary reflected Gray-code embedding of the directed cycle
//     (Figure 1) — dilation 1, congestion 1, but it cannot use idle links:
//     with m packets per node it needs ≥ m/2 steps (Section 2);
//   * the cross-product Gray-code embedding of k-axis grids/tori with
//     power-of-two sides — the "traditional gray code method" of Section 2;
//   * the spanning binomial tree (Ho–Johnsson [14]) used for broadcasts;
//   * the multiple-copy embedding of directed cycles from Lemma 1.
#pragma once

#include "embed/embedding.hpp"
#include "graph/builders.hpp"

namespace hyperpath {

/// Figure 1: the 2^n-node directed cycle embedded along the Gray-code
/// Hamiltonian cycle of Q_n.  Width 1, dilation 1, congestion 1, load 1.
MultiPathEmbedding gray_code_cycle_embedding(int n);

/// The classical cross-product Gray-code embedding of a k-axis grid or torus
/// whose sides are all powers of two.  Axis a with side 2^{b_a} occupies its
/// own field of b_a address bits; every grid edge maps to a single hypercube
/// edge (dilation 1).  Torus wrap edges rely on the Gray cycle closing.
MultiPathEmbedding gray_code_grid_embedding(const GridSpec& spec);

/// The spanning binomial tree of Q_n as an embedding of its own tree graph:
/// node v's parent is v with its highest set bit cleared.  Returns the
/// embedding of the symmetric tree (both directions), dilation 1.
MultiPathEmbedding spanning_binomial_tree_embedding(int n);

/// Lemma 1: 2⌊n/2⌋ copies of the 2^n-node directed cycle in Q_n, dilation 1,
/// total edge-congestion 1.  (n copies for even n, n−1 for odd.)
KCopyEmbedding multicopy_directed_cycles(int n);

}  // namespace hyperpath
