// Serialization of embeddings to a simple line-oriented text format.
//
// Constructing the larger embeddings (Theorem 1 at Q_16, Theorem 5) takes
// real time; a deployment can compute them once, ship the file, and load it
// with full re-verification.  The format is versioned and entirely
// self-describing:
//
//   hyperpath-multipath v1
//   host <dims>
//   guest <nodes> <edges>
//   edge <from> <to>                       × edges   (guest digraph)
//   eta <v0> <v1> …                                  (node map)
//   bundle <edge-id> <path-count>
//   path <len> <n0> <n1> …                 × path-count, per bundle
//
// load_multipath() re-runs verify_or_throw(), so a corrupted or hand-edited
// file cannot produce a structurally invalid embedding.
#pragma once

#include <iosfwd>

#include "embed/embedding.hpp"

namespace hyperpath {

/// Writes the embedding to `os`.
void save_multipath(std::ostream& os, const MultiPathEmbedding& emb);

/// Reads an embedding from `is` and verifies it (with the given load bound;
/// -1 applies the default one-to-one rule).  Throws hyperpath::Error on any
/// malformed input.
MultiPathEmbedding load_multipath(std::istream& is, int expected_load = -1);

}  // namespace hyperpath
