#include "embed/io.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "base/error.hpp"

namespace hyperpath {

namespace {

constexpr const char* kMagic = "hyperpath-multipath";
constexpr const char* kVersion = "v1";

void expect_token(std::istream& is, const char* want) {
  std::string got;
  HP_CHECK(static_cast<bool>(is >> got) && got == want,
           std::string("expected token '") + want + "', got '" + got + "'");
}

template <typename T>
T read_value(std::istream& is, const char* what) {
  T v;
  HP_CHECK(static_cast<bool>(is >> v), std::string("failed to read ") + what);
  return v;
}

}  // namespace

void save_multipath(std::ostream& os, const MultiPathEmbedding& emb) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "host " << emb.host().dims() << '\n';
  const Digraph& g = emb.guest();
  os << "guest " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    os << "edge " << e.from << ' ' << e.to << '\n';
  }
  os << "eta";
  for (Node v : emb.node_map()) os << ' ' << v;
  os << '\n';
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto bundle = emb.paths(e);
    os << "bundle " << e << ' ' << bundle.size() << '\n';
    for (const HostPath& p : bundle) {
      os << "path " << p.size();
      for (Node v : p) os << ' ' << v;
      os << '\n';
    }
  }
}

MultiPathEmbedding load_multipath(std::istream& is, int expected_load) {
  expect_token(is, kMagic);
  expect_token(is, kVersion);
  expect_token(is, "host");
  const int dims = read_value<int>(is, "host dims");
  expect_token(is, "guest");
  const Node n_nodes = read_value<Node>(is, "guest node count");
  const std::size_t n_edges = read_value<std::size_t>(is, "guest edge count");

  DigraphBuilder b(n_nodes);
  for (std::size_t e = 0; e < n_edges; ++e) {
    expect_token(is, "edge");
    const Node from = read_value<Node>(is, "edge tail");
    const Node to = read_value<Node>(is, "edge head");
    b.add_edge(from, to);
  }
  MultiPathEmbedding emb(std::move(b).build(), dims);
  HP_CHECK(emb.guest().num_edges() == n_edges, "edge count mismatch");

  expect_token(is, "eta");
  std::vector<Node> eta(n_nodes);
  for (Node& v : eta) v = read_value<Node>(is, "eta entry");
  emb.set_node_map(std::move(eta));

  for (std::size_t e = 0; e < n_edges; ++e) {
    expect_token(is, "bundle");
    const std::size_t id = read_value<std::size_t>(is, "bundle edge id");
    HP_CHECK(id == e, "bundles out of order");
    const std::size_t count = read_value<std::size_t>(is, "bundle size");
    HP_CHECK(count >= 1 && count <= 4096, "implausible bundle size");
    std::vector<HostPath> bundle(count);
    for (auto& p : bundle) {
      expect_token(is, "path");
      const std::size_t len = read_value<std::size_t>(is, "path length");
      HP_CHECK(len >= 1 && len <= 1u << 20, "implausible path length");
      p.resize(len);
      for (Node& v : p) v = read_value<Node>(is, "path node");
    }
    emb.set_paths(e, std::move(bundle));
  }
  emb.verify_or_throw(-1, expected_load);
  return emb;
}

}  // namespace hyperpath
