// Embeddings whose host is an arbitrary digraph (not necessarily Q_n).
//
// Section 5.4 and Theorem 5 build embeddings by *composition*: the CBT
// embeds in the butterfly, the butterfly in the CCC, the CCC in the
// hypercube — and metrics compose multiplicatively (dilation) /
// multiplicatively-bounded (congestion).  GraphEmbedding is the common
// representation: a node map plus one host path per guest edge.
#pragma once

#include <span>
#include <vector>

#include "base/types.hpp"
#include "graph/digraph.hpp"

namespace hyperpath {

class GraphEmbedding {
 public:
  GraphEmbedding(Digraph guest, Digraph host);

  const Digraph& guest() const { return guest_; }
  const Digraph& host() const { return host_; }

  void set_node_map(std::vector<Node> eta);
  Node host_of(Node guest_node) const { return eta_[guest_node]; }
  std::span<const Node> node_map() const { return eta_; }

  /// Sets the host path (node sequence) of guest edge `edge_id`.
  void set_path(std::size_t edge_id, std::vector<Node> path);
  const std::vector<Node>& path(std::size_t edge_id) const {
    return paths_[edge_id];
  }

  int load() const;
  int dilation() const;
  /// Congestion per host edge (indexed by host edge id) and its maximum.
  std::vector<std::uint32_t> congestion_per_edge() const;
  int congestion() const;

  /// Checks: η in range, every path a valid host walk from η(u) to η(v).
  /// Optional bounds are verified when >= 0.
  void verify_or_throw(int max_dilation = -1, int max_congestion = -1,
                       int max_load = -1) const;

 private:
  Digraph guest_;
  Digraph host_;
  std::vector<Node> eta_;
  std::vector<std::vector<Node>> paths_;
};

/// Composes two single-path embeddings: inner embeds A into B, outer embeds
/// B into C; the result embeds A into C (η = η_outer ∘ η_inner; each inner
/// path is expanded hop by hop through the outer paths).
GraphEmbedding compose(const GraphEmbedding& outer, const GraphEmbedding& inner);

class MultiPathEmbedding;

/// Composes a single-path embedding of A into a graph X with a width-w
/// multipath embedding of X into Q_n: the k-th path of an A edge chains the
/// k-th bundle paths of its X hops.  Width is preserved; the result is
/// verified before return.
MultiPathEmbedding compose_multipath(const MultiPathEmbedding& outer,
                                     const GraphEmbedding& inner);

}  // namespace hyperpath
