// Shared driver of the offline trace analyzer, used by both the standalone
// `trace_query` binary and the `hyperpath_cli analyze` subcommand (one
// parser, one output format — the binary is just a thin main()).
//
//   <trace.jsonl>                    JSONL trace (obs::JsonlFileSink format)
//   --json [FILE]                    machine-readable summary
//                                    (default SUMMARY_trace_query.json)
//   --heatmap [FILE]                 queue-depth heatmap CSV, step × dim
//                                    (default HEATMAP_trace_query.csv)
//   --blame [K]                      slowest-packet blame report (default 5)
//   --dims N                         host dimension override (else taken
//                                    from the trace's meta header line)
//   --packets-per-edge P --width W   phase-workload grouping: adds latency
//                                    percentiles per bundle-path index
//   --expect-makespan M              verify the reconstruction against the
//   --expect-delivered D             originating SimResult; mismatch → exit 1
//
// The analyzer re-derives makespan, delivered/dropped counts and
// transmissions from the event stream alone and cross-checks every queue
// depth the sweep recorded; any inconsistency makes the exit status
// nonzero, so a zero exit *proves* the trace is complete and internally
// consistent.  Depends only on hyperpath_obs.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace hyperpath::tools {

struct AnalyzeOptions {
  std::string trace_path;
  bool json = false;
  std::string json_path;
  bool heatmap = false;
  std::string heatmap_path;
  int blame = 0;
  int dims = -1;
  int packets_per_edge = 0;
  int width = 0;
  long long expect_makespan = -1;
  long long expect_delivered = -1;
};

inline void analyze_usage(std::FILE* out) {
  std::fputs(
      "usage: analyze <trace.jsonl> [options]\n"
      "  --json [FILE]            write machine-readable summary JSON\n"
      "  --heatmap [FILE]         write queue-depth heatmap CSV (step x "
      "dimension)\n"
      "  --blame [K]              print the K slowest packets with their "
      "blockers (default 5)\n"
      "  --dims N                 host dimension (default: trace meta "
      "header)\n"
      "  --packets-per-edge P --width W\n"
      "                           phase grouping: latency percentiles per "
      "bundle-path index\n"
      "  --expect-makespan M      fail unless the reconstructed makespan == "
      "M\n"
      "  --expect-delivered D     fail unless the reconstructed deliveries "
      "== D\n",
      out);
}

/// Parses analyzer flags; returns false (after printing usage) on a flag
/// it does not understand.
inline bool parse_analyze_args(int argc, char** argv, AnalyzeOptions* opt) {
  const auto value_or_eq = [&](const std::string& a, const char* flag,
                               int& i, std::string* out) {
    const std::string f = flag;
    if (a == f && i + 1 < argc) {
      *out = argv[++i];
      return true;
    }
    if (a.rfind(f + "=", 0) == 0) {
      *out = a.substr(f.size() + 1);
      return true;
    }
    return false;
  };
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (a == "--json" && (i + 1 >= argc || argv[i + 1][0] == '-')) {
      opt->json = true;
    } else if (value_or_eq(a, "--json", i, &v)) {
      opt->json = true;
      opt->json_path = v;
    } else if (a == "--heatmap" && (i + 1 >= argc || argv[i + 1][0] == '-')) {
      opt->heatmap = true;
    } else if (value_or_eq(a, "--heatmap", i, &v)) {
      opt->heatmap = true;
      opt->heatmap_path = v;
    } else if (a == "--blame" && (i + 1 >= argc || argv[i + 1][0] == '-')) {
      opt->blame = 5;
    } else if (value_or_eq(a, "--blame", i, &v)) {
      opt->blame = std::atoi(v.c_str());
    } else if (value_or_eq(a, "--dims", i, &v)) {
      opt->dims = std::atoi(v.c_str());
    } else if (value_or_eq(a, "--packets-per-edge", i, &v)) {
      opt->packets_per_edge = std::atoi(v.c_str());
    } else if (value_or_eq(a, "--width", i, &v)) {
      opt->width = std::atoi(v.c_str());
    } else if (value_or_eq(a, "--expect-makespan", i, &v)) {
      opt->expect_makespan = std::atoll(v.c_str());
    } else if (value_or_eq(a, "--expect-delivered", i, &v)) {
      opt->expect_delivered = std::atoll(v.c_str());
    } else if (opt->trace_path.empty() && !a.empty() && a[0] != '-') {
      opt->trace_path = a;
    } else {
      std::fprintf(stderr, "analyze: unknown argument '%s'\n", a.c_str());
      analyze_usage(stderr);
      return false;
    }
  }
  if (opt->trace_path.empty()) {
    std::fprintf(stderr, "analyze: missing trace file\n");
    analyze_usage(stderr);
    return false;
  }
  return true;
}

/// "link 1043 (130->131 dim 3)" when dims is known, "link 1043" otherwise.
inline std::string describe_link(std::uint64_t link, int dims) {
  if (link == obs::TraceEvent::kNoLink) return "no link";
  std::string s = "link " + std::to_string(link);
  if (dims > 0) {
    const std::uint64_t tail = link / static_cast<std::uint64_t>(dims);
    const int d = static_cast<int>(link % static_cast<std::uint64_t>(dims));
    const std::uint64_t head = tail ^ (std::uint64_t{1} << d);
    s += " (" + std::to_string(tail) + "->" + std::to_string(head) +
         " dim " + std::to_string(d) + ")";
  }
  return s;
}

/// Latency histograms grouped by bundle-path index.  Phase workloads number
/// packets edge-major (id = edge * p + j) and assign packet j to bundle
/// path j mod w (sim/phase.hpp), so the path index is recoverable from the
/// id alone when all bundles share one width — true for the paper's
/// constructions.
inline std::vector<obs::FixedHistogram> latency_by_path_index(
    const obs::FlightRecorder& rec, int packets_per_edge, int width) {
  std::vector<obs::FixedHistogram> out(
      static_cast<std::size_t>(width), obs::FixedHistogram::exponential());
  for (const obs::FlightRecord& r : rec.records()) {
    if (!r.delivered()) continue;
    const std::uint32_t j =
        r.packet % static_cast<std::uint32_t>(packets_per_edge);
    out[j % static_cast<std::uint32_t>(width)].observe(
        static_cast<double>(r.latency));
  }
  return out;
}

inline bool write_heatmap_csv(const std::string& path,
                              const obs::FlightRecorder& rec, int dims,
                              int makespan) {
  // queued[s][d]: packets sitting in a dim-d link queue at the sweep of
  // step s, via interval endpoints (hop present from enqueue to transmit;
  // a dropped pending hop until the step before the purge removed it).
  std::vector<std::int64_t> diff(
      static_cast<std::size_t>(makespan + 1) * dims, 0);
  const auto bump = [&](std::int32_t from, std::int32_t to, int d) {
    if (from > to || from >= makespan) return;
    to = std::min(to, makespan - 1);
    diff[static_cast<std::size_t>(from) * dims + d] += 1;
    diff[static_cast<std::size_t>(to + 1) * dims + d] -= 1;
  };
  for (const obs::FlightRecord& r : rec.records()) {
    for (const obs::HopSpan& h : r.hops) {
      bump(h.enqueue_step, h.transmit_step, static_cast<int>(h.link % dims));
    }
    if (r.dropped() && r.pending_enqueue_step >= 0 &&
        r.drop_link != obs::TraceEvent::kNoLink) {
      bump(r.pending_enqueue_step, r.end_step - 1,
           static_cast<int>(r.drop_link % dims));
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::perror(path.c_str());
    return false;
  }
  std::fputs("step", f);
  for (int d = 0; d < dims; ++d) std::fprintf(f, ",dim%d", d);
  std::fputc('\n', f);
  std::vector<std::int64_t> row(static_cast<std::size_t>(dims), 0);
  for (int s = 0; s < makespan; ++s) {
    std::fprintf(f, "%d", s);
    for (int d = 0; d < dims; ++d) {
      row[d] += diff[static_cast<std::size_t>(s) * dims + d];
      std::fprintf(f, ",%lld", static_cast<long long>(row[d]));
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
  return true;
}

inline void print_blame_report(const obs::FlightRecorder& rec, int top,
                               int dims) {
  const auto& records = rec.records();
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto wa = records[a].total_queue_wait();
    const auto wb = records[b].total_queue_wait();
    if (wa != wb) return wa > wb;
    if (records[a].packet != records[b].packet) {
      return records[a].packet < records[b].packet;
    }
    return records[a].generation < records[b].generation;
  });
  const obs::TransmitIndex index(rec);
  const int count = std::min<int>(top, static_cast<int>(order.size()));
  std::printf("blame: top %d flights by total queue wait\n", count);
  for (int rank = 0; rank < count; ++rank) {
    const obs::FlightRecord& r = records[order[rank]];
    const char* fate = r.delivered() ? "delivered"
                      : r.dropped()  ? "dropped"
                                     : "in flight";
    std::printf(
        "  #%d packet %u gen %u: released %d, %s at step %d, %zu hops, "
        "waited %lld steps",
        rank + 1, r.packet, r.generation, r.release_step, fate, r.end_step,
        r.hops.size(), static_cast<long long>(r.total_queue_wait()));
    if (r.delivered()) {
      std::printf(" (latency %llu)",
                  static_cast<unsigned long long>(r.latency));
    }
    std::printf("\n");
    // The hop that cost the most, and who was holding the link.
    const obs::HopSpan* worst = nullptr;
    for (const obs::HopSpan& h : r.hops) {
      if (!worst || h.queue_wait() > worst->queue_wait()) worst = &h;
    }
    if (worst && worst->queue_wait() > 0) {
      std::printf("     worst hop: %s waited %d [enqueued %d, crossed %d]",
                  describe_link(worst->link, dims).c_str(),
                  worst->queue_wait(), worst->enqueue_step,
                  worst->transmit_step);
      const auto blocker =
          index.at(worst->link, worst->transmit_step - 1);
      if (blocker.valid()) {
        std::printf(", blocked by packet %u",
                    records[blocker.flight].packet);
      }
      std::printf("\n");
    }
    if (r.dropped()) {
      std::printf("     truncated at %s\n",
                  describe_link(r.drop_link, dims).c_str());
    }
  }
}

inline bool write_summary_json(
    const std::string& path, const AnalyzeOptions& opt,
    const obs::FlightRecorder& rec, const obs::TraceAnalysis& a, int dims,
    const std::vector<obs::FixedHistogram>& by_path) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("experiment", "trace_query");
  w.key("params").begin_object();
  w.field("trace_file", opt.trace_path);
  w.field("dims", dims);
  w.field("packets_per_edge", opt.packets_per_edge);
  w.field("width", opt.width);
  w.end_object();
  w.key("metrics").begin_object();
  w.field("makespan", a.makespan);
  w.field("delivered", a.delivered);
  w.field("dropped", a.dropped);
  w.field("releases", a.releases);
  w.field("transmissions", a.transmissions);
  w.field("retransmissions", a.retransmissions);
  w.field("faults", a.faults);
  w.field("repairs", a.repairs);
  w.field("stalled_packet_steps", rec.stalled_packet_steps());
  w.field("max_generation",
          static_cast<std::uint64_t>(rec.max_generation()));
  w.field("peak_congestion", a.peak_congestion);
  w.field("peak_congestion_link", a.peak_congestion_link ==
                                          obs::TraceEvent::kNoLink
                                      ? -1.0
                                      : static_cast<double>(
                                            a.peak_congestion_link));
  w.field("links_used", a.links_used);
  w.field("max_queue", static_cast<std::uint64_t>(a.max_queue));
  w.field("queue_wait_p50", a.queue_wait.quantile(0.5));
  w.field("queue_wait_p99", a.queue_wait.quantile(0.99));
  w.field("queue_wait_max", a.queue_wait.max());
  w.field("latency_p50", a.latency.quantile(0.5));
  w.field("latency_p99", a.latency.quantile(0.99));
  w.field("critical_path_length", a.critical_path.length());
  w.field("critical_path_handoffs", a.critical_path.handoffs);
  w.field("depth_mismatches", a.depth_mismatches);
  w.field("inconsistencies", a.inconsistencies);
  w.end_object();
  w.key("queue_wait");
  a.queue_wait.write_json(w);
  w.key("total_wait");
  a.total_wait.write_json(w);
  w.key("latency");
  a.latency.write_json(w);
  if (!by_path.empty()) {
    w.key("latency_by_path_index").begin_array();
    for (std::size_t i = 0; i < by_path.size(); ++i) {
      w.begin_object();
      w.field("path_index", i);
      w.field("count", by_path[i].count());
      w.field("p50", by_path[i].quantile(0.5));
      w.field("p99", by_path[i].quantile(0.99));
      w.field("mean", by_path[i].mean());
      w.field("max", by_path[i].max());
      w.end_object();
    }
    w.end_array();
  }
  // Full chain for short runs; truncated (but still bracketed by
  // start/end) beyond 4096 nodes so pathological traces stay loadable.
  constexpr std::size_t kMaxChainNodes = 4096;
  const auto& chain = a.critical_path.nodes;
  w.key("critical_path").begin_object();
  w.field("start_step", a.critical_path.start_step);
  w.field("end_step", a.critical_path.end_step);
  w.field("length", a.critical_path.length());
  w.field("handoffs", a.critical_path.handoffs);
  w.field("truncated", chain.size() > kMaxChainNodes);
  w.key("nodes").begin_array();
  for (std::size_t i = 0; i < chain.size() && i < kMaxChainNodes; ++i) {
    const obs::ChainNode& nd = chain[i];
    w.begin_object();
    w.field("step", nd.step);
    w.field("packet", static_cast<std::uint64_t>(nd.packet));
    w.field("generation", static_cast<std::uint64_t>(nd.generation));
    w.field("link", nd.link == obs::TraceEvent::kNoLink
                        ? -1.0
                        : static_cast<double>(nd.link));
    w.field("blocks_successor", nd.blocks_successor);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::perror(path.c_str());
    return false;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

/// Runs the analyzer over argv (flags only — no program/subcommand name).
/// Exit status: 0 clean, 1 on load failure / trace inconsistency /
/// expectation mismatch, 2 on usage errors.
inline int run_analyze(int argc, char** argv) {
  AnalyzeOptions opt;
  if (!parse_analyze_args(argc, argv, &opt)) return 2;
  if ((opt.packets_per_edge > 0) != (opt.width > 0)) {
    std::fprintf(stderr,
                 "analyze: --packets-per-edge and --width go together\n");
    return 2;
  }

  obs::FlightRecorder rec;
  const obs::TraceLoadResult load =
      obs::load_trace_jsonl(opt.trace_path, rec);
  if (!load.ok) {
    std::fprintf(stderr, "analyze: %s: %s\n", opt.trace_path.c_str(),
                 load.error.c_str());
    return 1;
  }
  const int dims = opt.dims > 0 ? opt.dims : load.dims;

  const obs::TraceAnalysis a = obs::analyze_flights(rec);

  std::printf("%s: %zu events on %zu lines%s\n", opt.trace_path.c_str(),
              load.events, load.lines,
              rec.worm_trace() ? " (wormhole trace)" : "");
  // Cross-reference the live-telemetry toolchain: a traced run made with
  // --telemetry leaves its time-series next to the trace under the
  // <stem>.telemetry.jsonl convention.
  {
    std::string sibling = opt.trace_path;
    const std::string ext = ".jsonl";
    if (sibling.size() > ext.size() &&
        sibling.compare(sibling.size() - ext.size(), ext.size(), ext) == 0) {
      sibling.resize(sibling.size() - ext.size());
    }
    sibling += ".telemetry.jsonl";
    if (std::FILE* f = std::fopen(sibling.c_str(), "r")) {
      std::fclose(f);
      std::printf(
          "telemetry time-series alongside this trace: %s "
          "(hyperpath_cli watch %s)\n",
          sibling.c_str(), sibling.c_str());
    }
  }
  std::printf(
      "reconstruction: makespan %d, %llu delivered, %llu dropped, %llu "
      "transmissions, %llu retransmissions\n",
      a.makespan, static_cast<unsigned long long>(a.delivered),
      static_cast<unsigned long long>(a.dropped),
      static_cast<unsigned long long>(a.transmissions),
      static_cast<unsigned long long>(a.retransmissions));
  std::printf(
      "congestion: peak %llu on %s, %llu links used, max queue %u\n",
      static_cast<unsigned long long>(a.peak_congestion),
      describe_link(a.peak_congestion_link, dims).c_str(),
      static_cast<unsigned long long>(a.links_used), a.max_queue);
  std::printf("queue wait: p50 %.1f, p99 %.1f, max %.0f over %llu hops\n",
              a.queue_wait.quantile(0.5), a.queue_wait.quantile(0.99),
              a.queue_wait.max(),
              static_cast<unsigned long long>(a.queue_wait.count()));
  if (a.latency.count() > 0) {
    std::printf("latency: p50 %.1f, p99 %.1f, max %.0f\n",
                a.latency.quantile(0.5), a.latency.quantile(0.99),
                a.latency.max());
  }
  if (!rec.worm_trace()) {
    std::printf(
        "critical path: %d steps [%d, %d], %d handoffs; depth cross-check: "
        "%llu mismatches\n",
        a.critical_path.length(), a.critical_path.start_step,
        a.critical_path.end_step, a.critical_path.handoffs,
        static_cast<unsigned long long>(a.depth_mismatches));
  }

  std::vector<obs::FixedHistogram> by_path;
  if (opt.packets_per_edge > 0 && opt.width > 0) {
    by_path = latency_by_path_index(rec, opt.packets_per_edge, opt.width);
    for (std::size_t i = 0; i < by_path.size(); ++i) {
      std::printf(
          "path %zu: %llu delivered, latency p50 %.1f, p99 %.1f, max %.0f\n",
          i, static_cast<unsigned long long>(by_path[i].count()),
          by_path[i].quantile(0.5), by_path[i].quantile(0.99),
          by_path[i].max());
    }
  }

  if (opt.blame > 0) print_blame_report(rec, opt.blame, dims);

  if (opt.heatmap) {
    if (dims <= 0) {
      std::fprintf(stderr,
                   "analyze: --heatmap needs --dims (trace has no meta "
                   "header)\n");
      return 2;
    }
    if (opt.heatmap_path.empty()) {
      opt.heatmap_path = "HEATMAP_trace_query.csv";
    }
    if (!write_heatmap_csv(opt.heatmap_path, rec, dims, a.makespan)) {
      return 1;
    }
    std::printf("wrote %s\n", opt.heatmap_path.c_str());
  }

  if (opt.json) {
    if (opt.json_path.empty()) opt.json_path = "SUMMARY_trace_query.json";
    if (!write_summary_json(opt.json_path, opt, rec, a, dims, by_path)) {
      return 1;
    }
    std::printf("wrote %s\n", opt.json_path.c_str());
  }

  int status = 0;
  if (a.inconsistencies > 0) {
    std::fprintf(stderr, "analyze: %llu stream inconsistencies (first: %s)\n",
                 static_cast<unsigned long long>(a.inconsistencies),
                 rec.first_inconsistency().c_str());
    status = 1;
  }
  if (a.depth_mismatches > 0) {
    std::fprintf(stderr, "analyze: %llu queue-depth mismatches\n",
                 static_cast<unsigned long long>(a.depth_mismatches));
    status = 1;
  }
  if (opt.expect_makespan >= 0 && a.makespan != opt.expect_makespan) {
    std::fprintf(stderr, "analyze: makespan %d != expected %lld\n",
                 a.makespan, opt.expect_makespan);
    status = 1;
  }
  if (opt.expect_delivered >= 0 &&
      static_cast<long long>(a.delivered) != opt.expect_delivered) {
    std::fprintf(stderr, "analyze: delivered %llu != expected %lld\n",
                 static_cast<unsigned long long>(a.delivered),
                 opt.expect_delivered);
    status = 1;
  }
  return status;
}

}  // namespace hyperpath::tools
