// bench_runner — executes the declared suite of bench binaries in --json
// mode and merges their reports into one BENCH_SUITE.json.
//
//   bench_runner [--json [FILE]] [--bench-dir DIR] [--only a,b,c]
//                [--history [FILE]] [--telemetry-period N]
//
// --history additionally appends the run to the cross-run performance
// ledger (default bench/history/BENCH_HISTORY.jsonl): one JSONL line with
// the run's provenance, effective thread count and telemetry sampling
// period plus every report metric flattened to "<bench>.<metric>".
// tools/bench_trend reads that ledger for median-based drift detection;
// the threads/period stamps keep it from ever comparing series sampled
// under different configurations.
//
// Each bench runs as `bench_<name> --json BENCH_<name>.json
// --benchmark_filter=NONE` (tables only, no google-benchmark timings — the
// per-phase numbers come from the construction profiler embedded in every
// report).  Benches are independent child processes, so they execute
// concurrently as par::TaskPool tasks (one bench per task, HYPERPATH_THREADS
// at a time); every bench writes into its own pre-assigned result slot and
// the suite is merged from those slots in declared order, so the output
// document is byte-identical to a serial run.  Per-bench reports land next
// to the suite file; the merged document is
//
//   {"suite": "hyperpath", "meta": {...run metadata...},
//    "reports": {"theorem1": {...}, ...}}
//
// Exit status is nonzero if any bench fails to run or emits an unparsable
// report; the suite is still written with whatever succeeded.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/run_metadata.hpp"
#include "obs/trend.hpp"
#include "par/task_pool.hpp"

namespace fs = std::filesystem;

namespace {

// The full bench suite, in experiment order.  Keep in sync with
// bench/CMakeLists.txt (bench_<name> targets).
const std::vector<std::string> kSuite = {
    "illustration", "theorem1",   "theorem2",     "lower_bound",
    "grids",        "relaxation", "hamdecomp",    "ccc_multicopy",
    "transform",    "trees",      "bitserial",    "largecopy",
    "faults",       "recovery",   "mc",           "parallel_sim",
    "simcore",      "ablation",   "par",          "oracle",
};

/// Outcome slot of one bench, filled by its pool task and consumed in
/// declared suite order.
struct BenchResult {
  bool ok = false;
  std::string text;   // raw report JSON when ok
  std::string error;  // diagnostic when !ok
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--json [FILE]] [--bench-dir DIR] [--only a,b,c]\n"
      "          [--history [FILE]] [--telemetry-period N]\n"
      "  --json [FILE]   suite output path (default BENCH_SUITE.json)\n"
      "  --bench-dir DIR directory holding bench_<name> binaries\n"
      "                  (default: <runner dir>/../bench)\n"
      "  --only a,b,c    run a subset of the suite\n"
      "  --history [FILE]\n"
      "                  append this run to the performance ledger\n"
      "                  (default bench/history/BENCH_HISTORY.jsonl)\n"
      "  --telemetry-period N\n"
      "                  stamp the ledger entry with the telemetry sampling\n"
      "                  period the benches ran under (0 = telemetry off)\n",
      argv0);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path out_path = "BENCH_SUITE.json";
  fs::path bench_dir;
  std::vector<std::string> names;
  {
    // Dedup the declared suite while preserving order.
    for (const std::string& n : kSuite) {
      bool seen = false;
      for (const std::string& m : names) seen = seen || (m == n);
      if (!seen) names.push_back(n);
    }
  }

  bool history = false;
  fs::path history_path = "bench/history/BENCH_HISTORY.jsonl";
  int telemetry_period = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--bench-dir" && i + 1 < argc) {
      bench_dir = argv[++i];
    } else if (arg == "--only" && i + 1 < argc) {
      names = split_csv(argv[++i]);
    } else if (arg == "--history") {
      history = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') history_path = argv[++i];
    } else if (arg == "--telemetry-period" && i + 1 < argc) {
      telemetry_period = std::atoi(argv[++i]);
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (bench_dir.empty()) {
    std::error_code ec;
    fs::path self = fs::canonical(argv[0], ec);
    if (ec) self = argv[0];
    bench_dir = self.parent_path().parent_path() / "bench";
  }

  const fs::path report_dir =
      out_path.has_parent_path() ? out_path.parent_path() : fs::path(".");

  // Run every bench as one pool task (the bench itself is a child process,
  // so tasks block in std::system and the pool size caps how many benches
  // run at once).  Each task only touches its own slot; diagnostics are
  // buffered there too and printed in declared order below, so output and
  // suite bytes never depend on completion order.
  std::vector<BenchResult> slots(names.size());
  hyperpath::par::parallel_for_chunks(
      0, names.size(), /*grain=*/1,
      [&](std::size_t, std::size_t lo, std::size_t hi, int) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::string& name = names[i];
          BenchResult& slot = slots[i];
          const fs::path bin = bench_dir / ("bench_" + name);
          const fs::path report = report_dir / ("BENCH_" + name + ".json");
          if (!fs::exists(bin)) {
            slot.error = "missing binary " + bin.string();
            continue;
          }
          const std::string cmd = "\"" + bin.string() + "\" --json \"" +
                                  report.string() +
                                  "\" --benchmark_filter=NONE > /dev/null 2>&1";
          std::printf("bench_runner: running bench_%s ...\n", name.c_str());
          std::fflush(stdout);
          const int rc = std::system(cmd.c_str());
          if (rc != 0) {
            slot.error =
                "bench_" + name + " exited with status " + std::to_string(rc);
            continue;
          }
          std::ifstream in(report);
          std::stringstream buf;
          buf << in.rdbuf();
          std::string text = buf.str();
          hyperpath::obs::JsonParseError err;
          const auto parsed = hyperpath::obs::json_parse(text, &err);
          if (!parsed || !parsed->find("experiment")) {
            slot.error = "bench_" + name +
                         " produced an invalid report (offset " +
                         std::to_string(err.offset) + ": " + err.message + ")";
            continue;
          }
          slot.ok = true;
          slot.text = std::move(text);
        }
      });

  int failures = 0;
  std::vector<std::pair<std::string, std::string>> reports;  // name -> raw
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!slots[i].ok) {
      std::fprintf(stderr, "bench_runner: %s\n", slots[i].error.c_str());
      ++failures;
      continue;
    }
    reports.emplace_back(names[i], std::move(slots[i].text));
  }

  hyperpath::obs::JsonWriter w;
  w.begin_object();
  w.field("suite", "hyperpath");
  w.key("meta");
  hyperpath::obs::RunMetadata::collect().write_json(w);
  w.key("reports");
  w.begin_object();
  for (const auto& [name, text] : reports) {
    w.key(name);
    w.raw_value(text);
  }
  w.end_object();
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  std::printf("bench_runner: wrote %s (%zu/%zu reports)\n",
              out_path.string().c_str(), reports.size(), names.size());

  // Ledger append: flatten the suite document just written into one
  // "<bench>.<metric>" line and stamp the sampling configuration, so
  // bench_trend can group comparable runs and refuse the rest.
  if (history && failures == 0) {
    const auto suite = hyperpath::obs::json_parse(w.str());
    if (!suite) {
      std::fprintf(stderr, "bench_runner: suite document failed to re-parse; "
                           "ledger entry not written\n");
      return 1;
    }
    hyperpath::obs::LedgerEntry entry =
        hyperpath::obs::flatten_suite(*suite);
    entry.telemetry_period_steps = telemetry_period;
    if (history_path.has_parent_path()) {
      std::error_code ec;
      fs::create_directories(history_path.parent_path(), ec);
    }
    hyperpath::obs::JsonWriter lw;
    hyperpath::obs::write_ledger_entry(lw, entry);
    std::ofstream ledger(history_path, std::ios::app);
    if (!ledger) {
      std::fprintf(stderr, "bench_runner: cannot open ledger %s\n",
                   history_path.string().c_str());
      return 1;
    }
    ledger << lw.str() << "\n";
    ledger.close();
    std::printf("bench_runner: ledger +1 run (%zu metrics) -> %s\n",
                entry.metrics.size(), history_path.string().c_str());
  } else if (history) {
    std::fprintf(stderr,
                 "bench_runner: %d bench failure(s); ledger entry skipped\n",
                 failures);
  }
  return failures == 0 ? 0 : 1;
}
