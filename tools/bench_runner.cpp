// bench_runner — executes the declared suite of bench binaries in --json
// mode and merges their reports into one BENCH_SUITE.json.
//
//   bench_runner [--json [FILE]] [--bench-dir DIR] [--only a,b,c]
//
// Each bench runs as `bench_<name> --json BENCH_<name>.json
// --benchmark_filter=NONE` (tables only, no google-benchmark timings — the
// per-phase numbers come from the construction profiler embedded in every
// report).  Per-bench reports land next to the suite file; the merged
// document is
//
//   {"suite": "hyperpath", "meta": {...run metadata...},
//    "reports": {"theorem1": {...}, ...}}
//
// Exit status is nonzero if any bench fails to run or emits an unparsable
// report; the suite is still written with whatever succeeded.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/run_metadata.hpp"

namespace fs = std::filesystem;

namespace {

// The full bench suite, in experiment order.  Keep in sync with
// bench/CMakeLists.txt (bench_<name> targets).
const std::vector<std::string> kSuite = {
    "illustration", "theorem1",   "theorem2",     "lower_bound",
    "grids",        "relaxation", "hamdecomp",    "ccc_multicopy",
    "transform",    "trees",      "bitserial",    "largecopy",
    "faults",       "recovery",   "parallel_sim", "simcore",
    "ablation",
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json [FILE]] [--bench-dir DIR] [--only a,b,c]\n"
               "  --json [FILE]   suite output path (default BENCH_SUITE.json)\n"
               "  --bench-dir DIR directory holding bench_<name> binaries\n"
               "                  (default: <runner dir>/../bench)\n"
               "  --only a,b,c    run a subset of the suite\n",
               argv0);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path out_path = "BENCH_SUITE.json";
  fs::path bench_dir;
  std::vector<std::string> names;
  {
    // Dedup the declared suite while preserving order.
    for (const std::string& n : kSuite) {
      bool seen = false;
      for (const std::string& m : names) seen = seen || (m == n);
      if (!seen) names.push_back(n);
    }
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--bench-dir" && i + 1 < argc) {
      bench_dir = argv[++i];
    } else if (arg == "--only" && i + 1 < argc) {
      names = split_csv(argv[++i]);
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (bench_dir.empty()) {
    std::error_code ec;
    fs::path self = fs::canonical(argv[0], ec);
    if (ec) self = argv[0];
    bench_dir = self.parent_path().parent_path() / "bench";
  }

  const fs::path report_dir =
      out_path.has_parent_path() ? out_path.parent_path() : fs::path(".");

  int failures = 0;
  std::vector<std::pair<std::string, std::string>> reports;  // name -> raw
  for (const std::string& name : names) {
    const fs::path bin = bench_dir / ("bench_" + name);
    const fs::path report = report_dir / ("BENCH_" + name + ".json");
    if (!fs::exists(bin)) {
      std::fprintf(stderr, "bench_runner: missing binary %s\n",
                   bin.string().c_str());
      ++failures;
      continue;
    }
    const std::string cmd = "\"" + bin.string() + "\" --json \"" +
                            report.string() +
                            "\" --benchmark_filter=NONE > /dev/null 2>&1";
    std::printf("bench_runner: running bench_%s ...\n", name.c_str());
    std::fflush(stdout);
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench_runner: bench_%s exited with status %d\n",
                   name.c_str(), rc);
      ++failures;
      continue;
    }
    std::ifstream in(report);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    hyperpath::obs::JsonParseError err;
    const auto parsed = hyperpath::obs::json_parse(text, &err);
    if (!parsed || !parsed->find("experiment")) {
      std::fprintf(stderr,
                   "bench_runner: bench_%s produced an invalid report "
                   "(offset %zu: %s)\n",
                   name.c_str(), err.offset, err.message.c_str());
      ++failures;
      continue;
    }
    reports.emplace_back(name, text);
  }

  hyperpath::obs::JsonWriter w;
  w.begin_object();
  w.field("suite", "hyperpath");
  w.key("meta");
  hyperpath::obs::RunMetadata::collect().write_json(w);
  w.key("reports");
  w.begin_object();
  for (const auto& [name, text] : reports) {
    w.key(name);
    w.raw_value(text);
  }
  w.end_object();
  w.end_object();

  std::ofstream out(out_path);
  out << w.str() << "\n";
  out.close();
  std::printf("bench_runner: wrote %s (%zu/%zu reports)\n",
              out_path.string().c_str(), reports.size(), names.size());
  return failures == 0 ? 0 : 1;
}
