// Live telemetry dashboard: the `hyperpath_cli watch` subcommand.
//
//   watch <telemetry.jsonl> [options]
//
//   --follow, -f         keep refreshing as the producer appends samples
//   --interval MS        refresh period in milliseconds (default 1000)
//   --frames N           render N frames then exit (default 1, or
//                        unlimited with --follow)
//
// Renders the newest sample of a TelemetryBus JSONL time-series — queue
// population, active links, per-link depth histogram bars, worker busy%
// derived from consecutive busy_seconds deltas, recovery progress and RSS —
// plus a sparkline of recent queue population.  Each frame re-reads the
// file from the start: samples are rare (one per period) so even long runs
// re-parse in microseconds, and a reader that never keeps an offset cannot
// be confused by truncation when the producer calls enable() again.
// Depends only on hyperpath_obs.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/json_parse.hpp"

namespace hyperpath::tools {

struct WatchOptions {
  std::string path;
  bool follow = false;
  int interval_ms = 1000;
  int frames = 0;  // 0 = one frame, or unlimited when following
};

/// The slice of a telemetry stream one frame renders: the meta header plus
/// every sample currently in the file.
struct WatchFrame {
  bool has_meta = false;
  int period_steps = 0;
  int effective_threads = 0;
  std::string git_sha;
  std::string hostname;
  std::vector<obs::JsonValue> samples;
};

inline void watch_usage(std::FILE* out) {
  std::fputs(
      "usage: watch <telemetry.jsonl> [--follow] [--interval MS] "
      "[--frames N]\n"
      "  --follow, -f     refresh until interrupted (or --frames reached)\n"
      "  --interval MS    refresh period, default 1000\n"
      "  --frames N       render N frames then exit (default 1;\n"
      "                   0 with --follow = run until interrupted)\n"
      "\n"
      "Produce a stream with `hyperpath_cli trace ... --telemetry` or by\n"
      "setting HYPERPATH_TELEMETRY=<file> on any binary.\n",
      out);
}

inline bool watch_load(const std::string& path, WatchFrame* frame) {
  obs::JsonlReader reader(path);
  if (!reader.ok()) return false;
  obs::JsonValue doc;
  while (reader.next(&doc)) {
    const obs::JsonValue* kind = doc.find("kind");
    if (kind == nullptr || !kind->is_string()) continue;
    if (kind->as_string() == "telemetry_meta") {
      frame->has_meta = true;
      if (const auto* v = doc.find("period_steps")) {
        frame->period_steps = static_cast<int>(v->as_number());
      }
      if (const auto* v = doc.find("effective_threads")) {
        frame->effective_threads = static_cast<int>(v->as_number());
      }
      if (const auto* v = doc.find("git_sha")) frame->git_sha = v->as_string();
      if (const auto* v = doc.find("hostname")) {
        frame->hostname = v->as_string();
      }
    } else if (kind->as_string() == "sample") {
      frame->samples.push_back(doc);
    }
  }
  // A torn final line (the producer mid-fprintf) parses as a failure; treat
  // everything before it as the frame and let the next refresh catch up.
  return true;
}

inline double watch_num(const obs::JsonValue& doc, const char* key) {
  const obs::JsonValue* v = doc.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : 0.0;
}

/// One proportional ASCII bar of width <= `width`.
inline std::string watch_bar(double value, double scale, int width) {
  const int n = scale > 0 ? static_cast<int>(value / scale * width + 0.5) : 0;
  return std::string(static_cast<std::size_t>(std::clamp(n, 0, width)), '#');
}

inline void watch_render(const WatchFrame& frame, const std::string& path) {
  std::printf("── hyperpath telemetry ── %s\n", path.c_str());
  if (frame.has_meta) {
    std::printf("period %d steps · %d threads · %s%s%s\n", frame.period_steps,
                frame.effective_threads, frame.hostname.c_str(),
                frame.git_sha.empty() ? "" : " · ",
                frame.git_sha.substr(0, 12).c_str());
  }
  if (frame.samples.empty()) {
    std::printf("(no samples yet)\n");
    return;
  }
  const obs::JsonValue& s = frame.samples.back();
  const double queued = watch_num(s, "queued_packets");
  std::printf(
      "step %6.0f  seq %5.0f  wall %8.2fs  rss %6.0f kB\n"
      "queued %8.0f pkts on %6.0f links (max depth %4.0f)  "
      "undelivered %8.0f  tx %10.0f\n",
      watch_num(s, "step"), watch_num(s, "seq"),
      watch_num(s, "wall_seconds"), watch_num(s, "rss_kb"), queued,
      watch_num(s, "active_links"), watch_num(s, "max_queue_depth"),
      watch_num(s, "undelivered"), watch_num(s, "transmissions"));

  // Live throughput: the producer stamps packet_steps_per_sec directly;
  // streams from older builds lack the field, so fall back to the delta of
  // cumulative transmissions over wall-clock across the last two samples.
  double pps = watch_num(s, "packet_steps_per_sec");
  if (s.find("packet_steps_per_sec") == nullptr &&
      frame.samples.size() >= 2) {
    const obs::JsonValue& prev = frame.samples[frame.samples.size() - 2];
    const double dtx =
        watch_num(s, "transmissions") - watch_num(prev, "transmissions");
    const double dt =
        watch_num(s, "wall_seconds") - watch_num(prev, "wall_seconds");
    if (dtx >= 0 && dt > 0) pps = dtx / dt;
  }
  if (pps > 0) {
    if (pps >= 1e6) {
      std::printf("throughput %8.2f M packet-steps/s\n", pps / 1e6);
    } else {
      std::printf("throughput %10.0f packet-steps/s\n", pps);
    }
  }

  // Queue-depth histogram of the newest sample: one bar per bucket, scaled
  // to the fullest bucket.
  const obs::JsonValue* bounds = s.find("depth_hist", "bounds");
  const obs::JsonValue* counts = s.find("depth_hist", "counts");
  if (bounds != nullptr && counts != nullptr && bounds->is_array() &&
      counts->is_array() && !counts->as_array().empty()) {
    const auto& bs = bounds->as_array();
    const auto& cs = counts->as_array();
    double peak = 0;
    for (const auto& c : cs) peak = std::max(peak, c.as_number());
    std::printf("link queue depths:\n");
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const double c = cs[i].as_number();
      if (c == 0) continue;
      char label[32];
      if (i < bs.size()) {
        std::snprintf(label, sizeof label, "<=%-6.0f", bs[i].as_number());
      } else {
        std::snprintf(label, sizeof label, ">%-7.0f",
                      bs.empty() ? 0.0 : bs.back().as_number());
      }
      std::printf("  %s %8.0f %s\n", label, c,
                  watch_bar(c, peak, 40).c_str());
    }
  }

  // Worker busy%: busy_seconds is cumulative, so the last two samples give
  // a per-worker utilization over the most recent sampling interval.
  if (frame.samples.size() >= 2) {
    const obs::JsonValue& prev = frame.samples[frame.samples.size() - 2];
    const obs::JsonValue* now_busy = s.find("par", "busy_seconds");
    const obs::JsonValue* old_busy = prev.find("par", "busy_seconds");
    const double dt =
        watch_num(s, "wall_seconds") - watch_num(prev, "wall_seconds");
    if (now_busy != nullptr && old_busy != nullptr && now_busy->is_array() &&
        !now_busy->as_array().empty() && dt > 0) {
      const auto& nb = now_busy->as_array();
      const auto& ob = old_busy->as_array();
      std::printf("workers (busy%% over last %.2fs):\n", dt);
      for (std::size_t w = 0; w < nb.size(); ++w) {
        const double before = w < ob.size() ? ob[w].as_number() : 0.0;
        const double frac =
            std::clamp((nb[w].as_number() - before) / dt, 0.0, 1.0);
        std::printf("  w%-2zu %5.1f%% %s\n", w, frac * 100,
                    watch_bar(frac, 1.0, 40).c_str());
      }
    }
  }

  // Recovery progress (all zero outside a recovery run).
  const obs::JsonValue* rec = s.find("recovery");
  if (rec != nullptr) {
    const double delivered = watch_num(*rec, "fragments_delivered");
    const double lost = watch_num(*rec, "fragments_lost");
    if (delivered > 0 || lost > 0) {
      std::printf(
          "recovery: %8.0f delivered  %8.0f lost  %8.0f retransmitted  "
          "%8.0f messages complete\n",
          delivered, lost, watch_num(*rec, "retransmissions"),
          watch_num(*rec, "messages_complete"));
    }
  }

  // Sparkline of queue population over the most recent samples.
  const std::size_t window = std::min<std::size_t>(frame.samples.size(), 60);
  if (window >= 2) {
    static const char kRamp[] = " .:-=+*#@";
    const int levels = static_cast<int>(std::strlen(kRamp)) - 1;
    double peak = 0;
    for (std::size_t i = frame.samples.size() - window;
         i < frame.samples.size(); ++i) {
      peak = std::max(peak, watch_num(frame.samples[i], "queued_packets"));
    }
    std::string line;
    for (std::size_t i = frame.samples.size() - window;
         i < frame.samples.size(); ++i) {
      const double q = watch_num(frame.samples[i], "queued_packets");
      const int lvl =
          peak > 0 ? static_cast<int>(q / peak * levels + 0.5) : 0;
      line.push_back(kRamp[std::clamp(lvl, 0, levels)]);
    }
    std::printf("queued (last %zu samples, peak %.0f): [%s]\n", window, peak,
                line.c_str());
  }
  std::printf("samples in file: %zu\n", frame.samples.size());
}

inline int run_watch(int argc, char** argv) {
  WatchOptions opt;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      watch_usage(stdout);
      return 0;
    } else if (a == "--follow" || a == "-f") {
      opt.follow = true;
    } else if (a == "--interval" && i + 1 < argc) {
      opt.interval_ms = std::atoi(argv[++i]);
    } else if (a.rfind("--interval=", 0) == 0) {
      opt.interval_ms = std::atoi(a.c_str() + 11);
    } else if (a == "--frames" && i + 1 < argc) {
      opt.frames = std::atoi(argv[++i]);
    } else if (a.rfind("--frames=", 0) == 0) {
      opt.frames = std::atoi(a.c_str() + 9);
    } else if (opt.path.empty() && !a.empty() && a[0] != '-') {
      opt.path = a;
    } else {
      watch_usage(stderr);
      return 1;
    }
  }
  if (opt.path.empty()) {
    watch_usage(stderr);
    return 1;
  }
  if (opt.interval_ms <= 0) {
    std::fprintf(stderr, "--interval requires a positive integer\n");
    return 1;
  }
  int frames = opt.frames > 0 ? opt.frames : (opt.follow ? 0 : 1);

  bool tty = false;
#if defined(__linux__) || defined(__APPLE__)
  tty = ::isatty(::fileno(stdout)) != 0;
#endif

  for (int rendered = 0; frames == 0 || rendered < frames; ++rendered) {
    if (rendered > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opt.interval_ms));
    }
    // Home + clear only on a live terminal; piped captures (CI artifacts)
    // get plain frames separated by a rule.
    if (rendered > 0) {
      if (tty) {
        std::printf("\033[H\033[J");
      } else {
        std::printf("\n════════\n");
      }
    }
    WatchFrame frame;
    if (!watch_load(opt.path, &frame)) {
      if (opt.follow) {
        std::printf("waiting for %s ...\n", opt.path.c_str());
        std::fflush(stdout);
        continue;
      }
      std::perror(opt.path.c_str());
      return 1;
    }
    watch_render(frame, opt.path);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace hyperpath::tools
