// bench_trend — cross-run drift detection over the performance ledger.
//
//   bench_trend [--history FILE] [--window N] [--metric-tol X]
//               [--timing-tol X] [--expect-stable] [--json [FILE]]
//
// Reads the JSONL ledger bench_runner --history appends to, groups the
// newest run with its predecessors sharing the same comparison key (host |
// compiler | flags | threads | telemetry period — series sampled under
// different configurations are never compared), and runs median-based step
// detection over every "<bench>.<metric>" series plus the analytic
// floor/ceiling bracket check on the newest run (see obs/trend.hpp).
//
// Metric steps and bounds violations gate; timing steps are printed but
// informational (wall-clock noise is bench_compare's problem, not the
// ledger's).  --expect-stable turns an unstable report — or a ledger too
// thin to analyze (< 2 comparable runs) — into a nonzero exit, which is
// how CI uses this binary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/trend.hpp"

namespace {

using hyperpath::obs::LedgerEntry;
using hyperpath::obs::TrendFinding;
using hyperpath::obs::TrendOptions;
using hyperpath::obs::TrendReport;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--history FILE] [--window N] [--metric-tol X]\n"
      "          [--timing-tol X] [--expect-stable] [--json [FILE]]\n"
      "  --history FILE   ledger to analyze (default "
      "bench/history/BENCH_HISTORY.jsonl)\n"
      "  --window N       newest comparable runs to analyze (default 8)\n"
      "  --metric-tol X   relative step tolerance for metrics (default 0)\n"
      "  --timing-tol X   relative step tolerance for timings (default "
      "0.30)\n"
      "  --expect-stable  exit nonzero on any metric step, bounds violation\n"
      "                   or a ledger with fewer than 2 comparable runs\n"
      "  --json [FILE]    machine-readable report (default "
      "TREND_REPORT.json)\n",
      argv0);
}

void write_findings(hyperpath::obs::JsonWriter& w,
                    const std::vector<TrendFinding>& findings) {
  w.begin_array();
  for (const TrendFinding& f : findings) {
    w.begin_object();
    w.field("name", f.name);
    w.field("split", static_cast<std::uint64_t>(f.split));
    w.field("median_before", f.median_before);
    w.field("median_after", f.median_after);
    w.field("rel_change", f.rel_change);
    w.end_object();
  }
  w.end_array();
}

void print_findings(const char* label,
                    const std::vector<TrendFinding>& findings) {
  std::printf("%s: %zu\n", label, findings.size());
  for (const TrendFinding& f : findings) {
    std::printf("  %-48s median %g -> %g (%+.1f%%) at run %zu of window\n",
                f.name.c_str(), f.median_before, f.median_after,
                f.rel_change * 100, f.split);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string history_path = "bench/history/BENCH_HISTORY.jsonl";
  TrendOptions options;
  bool expect_stable = false;
  bool json = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--history" && i + 1 < argc) {
      history_path = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      options.window = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--metric-tol" && i + 1 < argc) {
      options.metric_tol = std::atof(argv[++i]);
    } else if (arg == "--timing-tol" && i + 1 < argc) {
      options.timing_tol = std::atof(argv[++i]);
    } else if (arg == "--expect-stable") {
      expect_stable = true;
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (options.window < 2) {
    std::fprintf(stderr, "bench_trend: --window must be at least 2\n");
    return 2;
  }

  std::vector<LedgerEntry> entries;
  {
    hyperpath::obs::JsonlReader reader(history_path);
    if (!reader.ok()) {
      std::fprintf(stderr, "bench_trend: cannot read %s\n",
                   history_path.c_str());
      return expect_stable ? 1 : 2;
    }
    hyperpath::obs::JsonValue doc;
    while (reader.next(&doc)) {
      std::string err;
      if (auto e = hyperpath::obs::parse_ledger_entry(doc, &err)) {
        entries.push_back(std::move(*e));
      } else {
        std::fprintf(stderr, "bench_trend: %s line %zu skipped: %s\n",
                     history_path.c_str(), reader.line(), err.c_str());
      }
    }
    if (reader.failed()) {
      std::fprintf(stderr, "bench_trend: %s line %zu: %s\n",
                   history_path.c_str(), reader.line(),
                   reader.error().message.c_str());
      return 2;
    }
  }

  const TrendReport report = hyperpath::obs::analyze_trend(entries, options);

  std::printf("ledger: %zu run(s) in %s\n", entries.size(),
              history_path.c_str());
  std::printf("comparison key: %s\n",
              report.key.empty() ? "(empty ledger)" : report.key.c_str());
  std::printf("analyzed: %zu run(s), %zu metric series (window %zu)\n",
              report.runs, report.series, options.window);
  for (const std::string& key : report.skipped_keys) {
    std::printf("skipped incomparable key: %s\n", key.c_str());
  }
  print_findings("metric steps (gating)", report.metric_steps);
  print_findings("timing steps (informational)", report.timing_steps);
  std::printf("bounds violations: %zu\n", report.bounds_violations.size());
  for (const std::string& v : report.bounds_violations) {
    std::printf("  %s\n", v.c_str());
  }

  // Throughput of the newest comparable run: "pps_*" spans carry simulated
  // packet-steps/second (SimResult::packet_steps_per_sec recorded by the
  // benches) rather than seconds — surfaced here so the ledger answers
  // "how fast is the simulator today" without opening the suite JSON.
  std::vector<std::pair<std::string, double>> throughput;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (hyperpath::obs::comparison_key(*it) != report.key) continue;
    for (const auto& [name, value] : it->timings) {
      const std::size_t dot = name.find('.');
      if (dot != std::string::npos &&
          name.compare(dot + 1, 4, "pps_") == 0) {
        throughput.emplace_back(name, value);
      }
    }
    break;
  }
  if (!throughput.empty()) {
    std::printf("throughput (newest run):\n");
    for (const auto& [name, value] : throughput) {
      std::printf("  %-48s %12.0f packet-steps/s\n", name.c_str(), value);
    }
  }

  if (json) {
    if (json_path.empty()) json_path = "TREND_REPORT.json";
    hyperpath::obs::JsonWriter w;
    w.begin_object();
    w.field("kind", "trend_report");
    w.field("history", history_path);
    w.field("comparison_key", report.key);
    w.field("runs", static_cast<std::uint64_t>(report.runs));
    w.field("series", static_cast<std::uint64_t>(report.series));
    w.field("window", static_cast<std::uint64_t>(options.window));
    w.field("stable", report.stable());
    w.key("metric_steps");
    write_findings(w, report.metric_steps);
    w.key("timing_steps");
    write_findings(w, report.timing_steps);
    w.key("bounds_violations").begin_array();
    for (const std::string& v : report.bounds_violations) w.value(v);
    w.end_array();
    w.key("skipped_keys").begin_array();
    for (const std::string& k : report.skipped_keys) w.value(k);
    w.end_array();
    w.key("throughput").begin_object();
    for (const auto& [name, value] : throughput) w.field(name, value);
    w.end_object();
    w.end_object();
    std::ofstream out(json_path);
    out << w.str() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (expect_stable) {
    if (report.runs < 2) {
      std::fprintf(stderr,
                   "bench_trend: --expect-stable needs >= 2 comparable runs "
                   "(got %zu)\n",
                   report.runs);
      return 1;
    }
    if (!report.stable()) {
      std::fprintf(stderr, "bench_trend: UNSTABLE — %zu metric step(s), %zu "
                           "bounds violation(s)\n",
                   report.metric_steps.size(),
                   report.bounds_violations.size());
      return 1;
    }
    std::printf("bench_trend: stable\n");
  }
  return 0;
}
