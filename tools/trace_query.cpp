// trace_query — offline analyzer for JSONL simulator traces.
//
// Streams a trace produced by obs::JsonlFileSink (e.g. `hyperpath_cli
// trace cycle 8`), reassembles per-packet flight records, and reports
// latency percentiles, per-link congestion, the makespan-determining
// critical path, a slowest-packet blame report, a queue-depth heatmap CSV
// and a machine-readable JSON summary.  See tools/analyze_driver.hpp for
// the flag reference; `hyperpath_cli analyze` is the same driver.
#include <cstdio>

#include "analyze_driver.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    hyperpath::tools::analyze_usage(stderr);
    return 2;
  }
  return hyperpath::tools::run_analyze(argc - 1, argv + 1);
}
