// hyperpath command-line inspector.
//
//   hyperpath_cli cycle <n>             Theorem 1/2 metrics + measured costs
//   hyperpath_cli grid  <torus|grid> <side>...   grid embedding metrics
//   hyperpath_cli ccc   <n>             Theorem 3 multicopy metrics
//   hyperpath_cli decomp <n>            Hamiltonian decomposition summary
//   hyperpath_cli moments <n>           moment table of Q_n
//   hyperpath_cli faults <n> <count> [seed]   fault-tolerance snapshot
//   hyperpath_cli faults replay <schedule-file> [...]   timed-fault replay
//   hyperpath_cli campaign <n> [...]    Monte-Carlo reliability campaign
//   hyperpath_cli trace <cycle|grid|ccc> ...  traced phase simulation
//   hyperpath_cli analyze <trace.jsonl> ...   offline trace analytics
//   hyperpath_cli watch <telemetry.jsonl> ... live telemetry dashboard
//
// The global `--threads N` (or `--threads=N`) flag, accepted anywhere on
// the command line, sizes the process-wide par::TaskPool — overriding the
// HYPERPATH_THREADS environment variable — and thereby every parallel
// construction/verification pass and the parallel simulator's default.
//
// `campaign` fans a seeded Monte-Carlo fault campaign (sim/montecarlo.hpp)
// across the process pool: every trial draws its own randomized timed
// fault schedule and runs sender-side recovery over the Theorem 1 cycle
// embedding on Q_n (or the width-1 Gray baseline with --gray).  The
// campaign digest printed at the end is bit-identical at every --threads
// value and under any --begin/--end partition of the trial range — CI
// gates on exactly that.  Flags: --trials T, --seed S, --begin/--end
// (trial subrange of [0,T)), --rate R (link-fault intensity), --node-rate,
// --window, --transient F, --timeout s, --retries k, --threshold m,
// --sweep r1,r2,... (reliability envelope; prints the critical rate where
// delivery drops below --min-delivery, default 0.99), --json [FILE].
//
// `faults replay` parses a FaultSchedule text file (see
// sim/faults.hpp: `dims N` header, then `<step> link-down|link-up|
// node-down|node-up <u> [<v>]` lines) and replays one Theorem 1 cycle
// phase on Q_dims under that schedule with sender-side recovery —
// timeout detection, failover onto surviving bundle paths, bounded
// retries.  Flags: --timeout s, --retries k, --threshold m (default
// w-1, i.e. IDA dispersal; 0 = all fragments required), --json [FILE].
//
// The trace subcommand runs one phase of the chosen embedding through the
// store-and-forward simulator with a streaming JSONL trace sink attached:
//
//   hyperpath_cli trace cycle 8 [p] [--trace t.jsonl] [--json summary.json]
//   hyperpath_cli trace grid torus 16 16 [--packets p] [...]
//   hyperpath_cli trace ccc 4 [p] [...]
//
// It dumps the step-level trace (default TRACE_<kind>.jsonl, prefixed with
// a {"kind":"meta",...} header recording the host dimension), prints a
// per-dimension link-utilization summary plus the latency histogram, and
// with --json writes a machine-readable {experiment, params, metrics,
// timings} record.  The construction-phase profiler runs throughout and a
// chrome://tracing span timeline lands in CHROME_TRACE_<kind>.json (or
// --chrome FILE); load it at chrome://tracing or ui.perfetto.dev.
//
// The analyze subcommand (same driver as the standalone trace_query
// binary, see tools/analyze_driver.hpp) consumes such a trace offline:
// flight-record reassembly, latency percentiles, critical path, blame
// report, queue-depth heatmap CSV and a JSON summary that reproduces the
// SimResult makespan/delivery counts from the trace alone.
//
// A quick way to poke at the library without writing code.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/moment.hpp"
#include "ccc/ccc_embed.hpp"
#include "core/algebraic_oracle.hpp"
#include "core/cycle_multipath.hpp"
#include "core/grid_multipath.hpp"
#include "embed/classical.hpp"
#include "hamdecomp/decomposition.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "par/task_pool.hpp"
#include "sim/faults.hpp"
#include "sim/montecarlo.hpp"
#include "sim/phase.hpp"
#include "sim/recovery.hpp"

#include "analyze_driver.hpp"
#include "watch_driver.hpp"

namespace hyperpath {
namespace {

int cmd_cycle(int n) {
  if (!cycle_multipath_supported(n)) {
    std::fprintf(stderr, "n = %d unsupported (need ⌊n/4⌋ a power of two)\n",
                 n);
    return 1;
  }
  const auto t1 = theorem1_cycle_embedding(n);
  std::printf("Theorem 1 (2^%d-cycle): width %d, dilation %d, load %d, "
              "congestion %d\n",
              n, t1.width(), t1.dilation(), t1.load(), t1.congestion());
  std::printf("  ⌊n/2⌋-packet cost: %d\n",
              measure_phase_cost(t1, n / 2).makespan);
  const auto t2 = theorem2_cycle_embedding(n);
  std::printf("Theorem 2 (2^%d-cycle): width %d, dilation %d, load %d\n",
              n + 1, t2.width(), t2.dilation(), t2.load());
  const auto r = measure_phase_cost(t2, t2.width());
  std::printf("  w-packet cost: %d, link utilization:", r.makespan);
  for (double u : r.utilization.profile()) std::printf(" %.3f", u);
  std::printf("\n");
  return 0;
}

int cmd_grid(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: grid <torus|grid> <side>...\n");
    return 1;
  }
  GridSpec spec;
  spec.wrap = !std::strcmp(argv[0], "torus");
  for (int i = 1; i < argc; ++i) {
    spec.sides.push_back(static_cast<Node>(std::atoi(argv[i])));
  }
  if (!grid_multipath_supported(spec)) {
    std::fprintf(stderr, "unsupported grid spec\n");
    return 1;
  }
  const auto emb = grid_multipath_embedding(spec);
  std::printf("%s in Q_%d: width %d, dilation %d, load %d, expansion %.3g\n",
              spec.wrap ? "torus" : "grid", emb.host().dims(), emb.width(),
              emb.dilation(), emb.load(), emb.expansion());
  std::printf("  2-packet phase cost: %d\n",
              measure_phase_cost(emb, 2).makespan);
  return 0;
}

// route: print bundle paths for one guest edge straight from the algebraic
// oracle — no embedding is ever materialized, so Q_24+ hosts answer
// instantly.  --verify-sample K additionally runs the sampling-verification
// contract (endpoints, host adjacency, declared lengths, edge-disjointness)
// over K seeded random guest edges.
int cmd_route(int argc, char** argv) {
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: route <cycle N | torus SIDE... | grid SIDE... | "
                 "largecopy N>\n"
                 "             [--edge FROM[,TO]] [--path I] "
                 "[--verify-sample K] [--seed S]\n");
    return 1;
  };
  if (argc < 2) return usage();

  std::unique_ptr<PathOracle> oracle;
  const std::string fam = argv[0];
  int i = 1;
  if (fam == "cycle") {
    const int n = std::atoi(argv[i++]);
    if (!cycle_multipath_supported(n)) {
      std::fprintf(stderr, "n = %d unsupported (need ⌊n/4⌋ a power of two)\n",
                   n);
      return 1;
    }
    oracle = algebraic_theorem1_oracle(n);
  } else if (fam == "largecopy") {
    const int n = std::atoi(argv[i++]);
    if (n < 2 || n > 15) {
      std::fprintf(stderr, "largecopy needs 2 <= n <= 15\n");
      return 1;
    }
    oracle = algebraic_largecopy_oracle(n);
  } else if (fam == "torus" || fam == "grid") {
    GridSpec spec;
    spec.wrap = fam == "torus";
    while (i < argc && argv[i][0] != '-') {
      spec.sides.push_back(static_cast<Node>(std::atoi(argv[i++])));
    }
    if (!algebraic_grid_supported(spec)) {
      std::fprintf(stderr, "unsupported %s spec for the algebraic oracle\n",
                   fam.c_str());
      return 1;
    }
    oracle = algebraic_grid_oracle(spec);
  } else {
    return usage();
  }

  bool have_edge = false, have_to = false;
  OracleEdge edge;
  long long path_index = -1;
  std::uint64_t verify = 0, seed = 1;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--edge" && i + 1 < argc) {
      char* rest = nullptr;
      edge.from = std::strtoull(argv[++i], &rest, 10);
      if (rest != nullptr && *rest == ',') {
        edge.to = std::strtoull(rest + 1, nullptr, 10);
        have_to = true;
      }
      have_edge = true;
    } else if (a == "--path" && i + 1 < argc) {
      path_index = std::atoll(argv[++i]);
    } else if (a == "--verify-sample" && i + 1 < argc) {
      verify = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }

  std::printf("%s oracle: host Q_%d, guest %llu nodes / %llu edges\n",
              oracle->family(), oracle->host_dims(),
              static_cast<unsigned long long>(oracle->guest_nodes()),
              static_cast<unsigned long long>(oracle->guest_edges()));

  if (have_edge) {
    if (edge.from >= oracle->guest_nodes()) {
      std::fprintf(stderr, "guest node %llu out of range\n",
                   static_cast<unsigned long long>(edge.from));
      return 1;
    }
    if (!have_to) {
      if (oracle->out_degree(edge.from) == 0) {
        std::fprintf(stderr, "guest node %llu has no out-edges\n",
                     static_cast<unsigned long long>(edge.from));
        return 1;
      }
      edge = oracle->out_edge(edge.from, 0);
    }
    const int w = oracle->width(edge);
    std::printf("edge %llu -> %llu: eta %u -> %u, width %d\n",
                static_cast<unsigned long long>(edge.from),
                static_cast<unsigned long long>(edge.to),
                oracle->host_of(edge.from), oracle->host_of(edge.to), w);
    const int lo = path_index >= 0 ? static_cast<int>(path_index) : 0;
    const int hi = path_index >= 0 ? static_cast<int>(path_index) + 1 : w;
    if (lo >= w) {
      std::fprintf(stderr, "path index %d out of range (width %d)\n", lo, w);
      return 1;
    }
    for (int idx = lo; idx < hi; ++idx) {
      const HostPath p = oracle->path_vec(edge, idx);
      std::printf("  path %d (%u hops):", idx, oracle->path_hops(edge, idx));
      for (Node v : p) std::printf(" %u", v);
      std::printf("\n");
    }
  }

  if (verify > 0) {
    const OracleSampleReport rep = oracle_sample_check(*oracle, verify, seed);
    std::printf("verify-sample: %llu edges, %llu paths, %llu hops checked; "
                "digest %016llx\n",
                static_cast<unsigned long long>(rep.edges_checked),
                static_cast<unsigned long long>(rep.paths_checked),
                static_cast<unsigned long long>(rep.hops_checked),
                static_cast<unsigned long long>(rep.node_digest));
  }
  return 0;
}

int cmd_ccc(int n) {
  const auto emb = ccc_multicopy_embedding(n);
  std::printf("Theorem 3: %d copies of CCC_%d in Q_%d — dilation %d, "
              "edge-congestion %d\n",
              emb.num_copies(), n, emb.host().dims(), emb.dilation(),
              emb.edge_congestion());
  return 0;
}

int cmd_decomp(int n) {
  const auto& d = hamiltonian_decomposition(n);
  std::printf("Q_%d: %zu Hamiltonian cycles", n, d.cycles.size());
  if (!d.matching.empty()) {
    std::printf(" + perfect matching (%zu edges)", d.matching.size());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < d.cycles.size() && n <= 4; ++i) {
    std::printf("  cycle %zu:", i);
    for (Node v : d.cycles[i]) std::printf(" %u", v);
    std::printf("\n");
  }
  return 0;
}

int cmd_moments(int n) {
  std::printf("moments of Q_%d (Definition 1):\n", n);
  for (Node v = 0; v < (Node{1} << n); ++v) {
    std::printf("%3u → %u%s", v, moment(v), (v % 8 == 7) ? "\n" : "   ");
  }
  std::printf("\n");
  return 0;
}

int cmd_faults(int n, int count, std::uint64_t seed) {
  if (!cycle_multipath_supported(n)) {
    std::fprintf(stderr, "n = %d unsupported\n", n);
    return 1;
  }
  const auto emb = theorem1_cycle_embedding(n);
  Rng rng(seed);
  const auto f = FaultSet::random(n, count, rng);
  int dead = 0, degraded = 0;
  for (const auto& d : deliver_phase(f, emb)) {
    dead += (d.paths_alive == 0);
    degraded += (d.paths_alive > 0 && d.paths_alive < d.paths_total);
  }
  std::printf("%d faults on Q_%d (width %d): %d edges degraded, %d dead of "
              "%zu\n",
              count, n, emb.width(), degraded, dead,
              emb.guest().num_edges());
  return 0;
}

int cmd_faults_replay(int argc, char** argv) {
  std::string file, json_path, trace_path;
  bool json = false;
  RecoveryConfig cfg;
  int threshold = -1;  // -1 = width - 1 (IDA), resolved once width is known
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--timeout" && i + 1 < argc) {
      cfg.timeout = std::atoi(argv[++i]);
    } else if (a == "--retries" && i + 1 < argc) {
      cfg.max_retries = std::atoi(argv[++i]);
    } else if (a == "--threshold" && i + 1 < argc) {
      threshold = std::atoi(argv[++i]);
    } else if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (file.empty() && !a.empty() && a[0] != '-') {
      file = a;
    } else {
      std::fprintf(stderr,
                   "usage: faults replay <schedule-file> [--timeout s] "
                   "[--retries k] [--threshold m] [--trace FILE] "
                   "[--json [FILE]]\n");
      return 1;
    }
  }
  if (file.empty()) {
    std::fprintf(stderr, "faults replay: missing schedule file\n");
    return 1;
  }
  std::ifstream in(file);
  if (!in) {
    std::perror(file.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  // A malformed schedule is a user-input error, not an internal one: report
  // it with the parser's line number (same shape as JsonlReader errors),
  // prefixed with the file name, instead of letting the throw escape.
  FaultSchedule schedule(1);
  try {
    schedule = FaultSchedule::parse(buf.str());
  } catch (const Error& e) {
    std::fprintf(stderr, "faults replay: %s: %s\n", file.c_str(), e.what());
    return 1;
  }

  const int n = schedule.dims();
  if (!cycle_multipath_supported(n)) {
    std::fprintf(stderr, "schedule dims %d unsupported by Theorem 1\n", n);
    return 1;
  }
  const auto emb = theorem1_cycle_embedding(n);
  cfg.threshold = threshold >= 0 ? threshold : emb.width() - 1;

  const auto final_state = schedule.final_state();
  std::printf("schedule: %zu events on Q_%d (final state: %zu directed "
              "links dead, %zu nodes dead)\n",
              schedule.size(), n, final_state.num_dead_directed(),
              final_state.num_dead_nodes());

  std::unique_ptr<obs::JsonlFileSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<obs::JsonlFileSink>(trace_path);
    trace_sink->write_meta(n, emb.guest().num_edges() * emb.width());
  }
  const RecoveryResult r = run_recovery(emb, schedule, cfg, trace_sink.get());
  if (trace_sink) {
    std::printf("trace: %llu events -> %s\n",
                static_cast<unsigned long long>(trace_sink->total()),
                trace_path.c_str());
  }
  std::printf("replay: width %d, threshold %d of %d fragments, timeout %d, "
              "max retries %d\n",
              emb.width(), cfg.threshold, emb.width(), cfg.timeout,
              cfg.max_retries);
  std::printf("  messages: %zu/%zu delivered (%.4f), %zu recovered after a "
              "loss\n",
              r.messages_complete, r.messages_total, r.delivery_rate(),
              r.messages_recovered);
  std::printf("  fragments: %llu sent, %llu delivered, %llu lost, %llu "
              "exhausted; %llu retransmissions\n",
              static_cast<unsigned long long>(r.fragments_sent),
              static_cast<unsigned long long>(r.fragments_delivered),
              static_cast<unsigned long long>(r.fragments_lost),
              static_cast<unsigned long long>(r.fragments_exhausted),
              static_cast<unsigned long long>(r.retransmissions));
  std::printf("  recovery latency: mean %.2f, max %.0f steps; makespan %d, "
              "%d waves, goodput %.4f\n",
              r.recovery_latency.mean(), r.recovery_latency.max(),
              r.makespan, r.waves, r.goodput());

  if (json) {
    if (json_path.empty()) json_path = "SUMMARY_faults_replay.json";
    obs::JsonWriter w;
    w.begin_object();
    w.field("experiment", "faults_replay");
    w.key("params").begin_object();
    w.field("schedule_file", file);
    w.field("n", n);
    w.field("events", schedule.size());
    w.field("width", emb.width());
    w.field("threshold", cfg.threshold);
    w.field("timeout", cfg.timeout);
    w.field("max_retries", cfg.max_retries);
    w.end_object();
    w.key("metrics").begin_object();
    w.field("messages_total", r.messages_total);
    w.field("messages_complete", r.messages_complete);
    w.field("messages_recovered", r.messages_recovered);
    w.field("delivery_rate", r.delivery_rate());
    w.field("fragments_sent", r.fragments_sent);
    w.field("fragments_delivered", r.fragments_delivered);
    w.field("fragments_lost", r.fragments_lost);
    w.field("fragments_exhausted", r.fragments_exhausted);
    w.field("retransmissions", r.retransmissions);
    w.field("makespan", r.makespan);
    w.field("waves", r.waves);
    w.field("goodput", r.goodput());
    w.key("recovery_latency");
    r.recovery_latency.write_json(w);
    w.end_object();
    w.end_object();
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::perror(json_path.c_str());
      return 1;
    }
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

void write_campaign_json(obs::JsonWriter& w, const CampaignStats& s) {
  // uint64 digests do not survive a JSON double round-trip; emit exact
  // 32-bit halves (same convention as bench_mc).
  w.field("digest_hi", static_cast<std::uint64_t>(s.digest >> 32));
  w.field("digest_lo", static_cast<std::uint64_t>(s.digest & 0xffffffffull));
  w.field("trials", s.trials);
  w.field("schedule_events", s.schedule_events);
  w.field("messages_total", s.messages_total);
  w.field("messages_complete", s.messages_complete);
  w.field("messages_recovered", s.messages_recovered);
  w.field("retransmissions", s.retransmissions);
  w.field("fragments_lost", s.fragments_lost);
  w.field("fragments_exhausted", s.fragments_exhausted);
  w.field("trials_fully_delivered", s.trials_fully_delivered);
  w.field("delivery_rate", s.delivery_rate());
  w.field("survival_rate", s.survival_rate());
  w.field("max_makespan", s.max_makespan);
  w.field("max_waves", s.max_waves);
  w.key("recovery_latency");
  s.recovery_latency.write_json(w);
  w.key("retransmit_generations");
  s.retransmit_generations.write_json(w);
  w.key("delivery_permille");
  s.delivery_permille.write_json(w);
}

void print_campaign(const CampaignStats& s) {
  std::printf("  digest: %016llx\n",
              static_cast<unsigned long long>(s.digest));
  std::printf("  delivery %.4f (%llu/%llu messages), survival %.4f "
              "(%llu/%llu trials)\n",
              s.delivery_rate(),
              static_cast<unsigned long long>(s.messages_complete),
              static_cast<unsigned long long>(s.messages_total),
              s.survival_rate(),
              static_cast<unsigned long long>(s.trials_fully_delivered),
              static_cast<unsigned long long>(s.trials));
  std::printf("  %llu retransmissions, %llu fragments lost, %llu exhausted; "
              "%llu messages recovered after a loss\n",
              static_cast<unsigned long long>(s.retransmissions),
              static_cast<unsigned long long>(s.fragments_lost),
              static_cast<unsigned long long>(s.fragments_exhausted),
              static_cast<unsigned long long>(s.messages_recovered));
  std::printf("  recovery latency mean %.2f max %.0f steps; max makespan "
              "%d, max waves %d\n",
              s.recovery_latency.mean(), s.recovery_latency.max(),
              s.max_makespan, s.max_waves);
}

int cmd_campaign(int argc, char** argv) {
  int n = -1;
  CampaignConfig cfg;
  int threshold = -1;  // -1 = width - 1 (IDA), resolved once width is known
  bool gray = false, json = false;
  std::string json_path;
  std::vector<double> sweep;
  double min_delivery = 0.99;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trials" && i + 1 < argc) {
      cfg.trials = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--seed" && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--begin" && i + 1 < argc) {
      cfg.trial_begin = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--end" && i + 1 < argc) {
      cfg.trial_end = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--rate" && i + 1 < argc) {
      cfg.schedule.link_rate = std::atof(argv[++i]);
    } else if (a == "--node-rate" && i + 1 < argc) {
      cfg.schedule.node_rate = std::atof(argv[++i]);
    } else if (a == "--window" && i + 1 < argc) {
      cfg.schedule.window = std::atoi(argv[++i]);
    } else if (a == "--transient" && i + 1 < argc) {
      cfg.schedule.transient_fraction = std::atof(argv[++i]);
    } else if (a == "--timeout" && i + 1 < argc) {
      cfg.recovery.timeout = std::atoi(argv[++i]);
    } else if (a == "--retries" && i + 1 < argc) {
      cfg.recovery.max_retries = std::atoi(argv[++i]);
    } else if (a == "--threshold" && i + 1 < argc) {
      threshold = std::atoi(argv[++i]);
    } else if (a == "--min-delivery" && i + 1 < argc) {
      min_delivery = std::atof(argv[++i]);
    } else if (a == "--sweep" && i + 1 < argc) {
      const char* p = argv[++i];
      while (*p) {
        char* end = nullptr;
        sweep.push_back(std::strtod(p, &end));
        if (end == p) break;
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (a == "--gray") {
      gray = true;
    } else if (a == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (n < 0 && !a.empty() && a[0] != '-') {
      n = std::atoi(a.c_str());
    } else {
      std::fprintf(
          stderr,
          "usage: campaign <n> [--trials T] [--seed S] [--begin B] "
          "[--end E] [--rate R] [--node-rate R] [--window W] "
          "[--transient F] [--timeout s] [--retries k] [--threshold m] "
          "[--gray] [--sweep r1,r2,...] [--min-delivery d] "
          "[--json [FILE]]\n");
      return 1;
    }
  }
  if (n < 0) {
    std::fprintf(stderr, "campaign: missing hypercube dimension\n");
    return 1;
  }
  if (!gray && !cycle_multipath_supported(n)) {
    std::fprintf(stderr, "campaign: n=%d unsupported by Theorem 1\n", n);
    return 1;
  }
  const MultiPathEmbedding emb =
      gray ? gray_code_cycle_embedding(n) : theorem1_cycle_embedding(n);
  cfg.recovery.threshold = threshold >= 0 ? threshold : emb.width() - 1;

  std::printf("campaign: Q_%d %s width %d, trials [%u, %u) of %u, seed "
              "%llu\n",
              n, gray ? "gray" : "theorem1", emb.width(), cfg.trial_begin,
              cfg.trial_end ? cfg.trial_end : cfg.trials, cfg.trials,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("  faults: link rate %.3f, node rate %.3f, window %d, "
              "transient %.2f; recovery: timeout %d, retries %d, threshold "
              "%d of %d\n",
              cfg.schedule.link_rate, cfg.schedule.node_rate,
              cfg.schedule.window, cfg.schedule.transient_fraction,
              cfg.recovery.timeout, cfg.recovery.max_retries,
              cfg.recovery.threshold, emb.width());

  const MonteCarloDriver driver(emb);
  obs::JsonWriter w;
  w.begin_object();
  w.field("experiment", "campaign");
  w.key("params").begin_object();
  w.field("n", n);
  w.field("embedding", gray ? "gray" : "theorem1");
  w.field("width", emb.width());
  w.field("trials", static_cast<std::uint64_t>(cfg.trials));
  w.field("seed", cfg.seed);
  w.field("link_rate", cfg.schedule.link_rate);
  w.field("node_rate", cfg.schedule.node_rate);
  w.field("timeout", cfg.recovery.timeout);
  w.field("max_retries", cfg.recovery.max_retries);
  w.field("threshold", cfg.recovery.threshold);
  w.end_object();

  if (sweep.empty()) {
    CampaignStats s;
    {
      obs::ScopedTimer timer("simulate");
      s = driver.run(cfg);
    }
    print_campaign(s);
    w.key("metrics").begin_object();
    write_campaign_json(w, s);
    w.end_object();
  } else {
    std::vector<EnvelopePoint> envelope;
    {
      obs::ScopedTimer timer("simulate");
      envelope = sweep_envelope(emb, cfg, sweep);
    }
    w.key("envelope").begin_array();
    for (const EnvelopePoint& pt : envelope) {
      std::printf("-- link rate %.3f --\n", pt.link_rate);
      print_campaign(pt.stats);
      w.begin_object();
      w.field("link_rate", pt.link_rate);
      write_campaign_json(w, pt.stats);
      w.end_object();
    }
    w.end_array();
    const double critical = critical_fault_rate(envelope, min_delivery);
    if (critical < 0) {
      std::printf("critical link rate: delivery never dropped below %.3f "
                  "within the sweep\n",
                  min_delivery);
    } else {
      std::printf("critical link rate: delivery drops below %.3f at "
                  "%.4f\n",
                  min_delivery, critical);
    }
    w.field("min_delivery", min_delivery);
    w.field("critical_rate", critical);
  }
  w.end_object();

  if (json) {
    if (json_path.empty()) json_path = "SUMMARY_campaign.json";
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::perror(json_path.c_str());
      return 1;
    }
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// trace subcommand

struct TraceOptions {
  std::string trace_path;   // JSONL trace output
  std::string json_path;    // summary JSON output
  std::string chrome_path;  // chrome://tracing span timeline output
  bool json = false;        // write summary (default path if json_path empty)
  int packets = -1;         // packets per guest edge (-1 = kind default)
  bool telemetry = false;       // stream live samples alongside the trace
  std::string telemetry_path;   // default: <trace-stem>.telemetry.jsonl
  int telemetry_period = 64;    // sample every N simulation steps
  bool prom = false;            // dump a Prometheus snapshot after the run
  std::string prom_path;        // default: METRICS_<kind>.prom
  std::vector<std::string> positional;
};

// Accepts --flag value and --flag=value; bare --json selects the default
// summary path (SUMMARY_<kind>.json), mirroring the bench --json handling.
TraceOptions parse_trace_args(int argc, char** argv) {
  TraceOptions opt;
  const auto next_or_eq = [&](const std::string& a, const std::string& flag,
                              int& i, std::string* out) {
    if (a == flag && i + 1 < argc) {
      *out = argv[++i];
      return true;
    }
    if (a.rfind(flag + "=", 0) == 0) {
      *out = a.substr(flag.size() + 1);
      return true;
    }
    return false;
  };
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (next_or_eq(a, "--trace", i, &v)) {
      opt.trace_path = v;
    } else if (next_or_eq(a, "--chrome", i, &v)) {
      opt.chrome_path = v;
    } else if (a == "--json" && (i + 1 >= argc || argv[i + 1][0] == '-')) {
      opt.json = true;
    } else if (next_or_eq(a, "--json", i, &v)) {
      opt.json = true;
      opt.json_path = v;
    } else if (a == "--telemetry" &&
               (i + 1 >= argc || argv[i + 1][0] == '-')) {
      opt.telemetry = true;
    } else if (next_or_eq(a, "--telemetry", i, &v)) {
      opt.telemetry = true;
      opt.telemetry_path = v;
    } else if (next_or_eq(a, "--telemetry-period", i, &v)) {
      opt.telemetry = true;
      opt.telemetry_period = std::atoi(v.c_str());
    } else if (a == "--prom" && (i + 1 >= argc || argv[i + 1][0] == '-')) {
      opt.prom = true;
    } else if (next_or_eq(a, "--prom", i, &v)) {
      opt.prom = true;
      opt.prom_path = v;
    } else if (next_or_eq(a, "--packets", i, &v) ||
               next_or_eq(a, "-p", i, &v)) {
      opt.packets = std::atoi(v.c_str());
    } else {
      opt.positional.push_back(a);
    }
  }
  return opt;
}

void print_trace_summary(const char* kind, const SimResult& r,
                         const Hypercube& host,
                         const obs::JsonlFileSink& sink) {
  std::printf("%s phase: makespan %d, %llu transmissions, max queue %zu, "
              "avg utilization %.4f\n",
              kind, r.makespan,
              static_cast<unsigned long long>(r.total_transmissions),
              r.max_queue, r.average_utilization());
  std::printf("per-dimension transmissions (dimension: count, utilization):\n");
  const double dim_links =
      static_cast<double>(host.num_nodes()) * std::max(r.makespan, 1);
  for (int d = 0; d < host.dims(); ++d) {
    const auto tx = r.dim_transmissions[d];
    std::printf("  dim %2d: %10llu  %.4f\n", d,
                static_cast<unsigned long long>(tx),
                static_cast<double>(tx) / dim_links);
  }
  std::printf("latency: %llu packets, mean %.2f steps, max %.0f\n",
              static_cast<unsigned long long>(r.latency.count()),
              r.latency.mean(), r.latency.max());
  std::printf("trace: %llu events → %s\n",
              static_cast<unsigned long long>(sink.total()),
              sink.path().c_str());
}

void write_trace_json(const std::string& path, const char* kind,
                      const std::vector<std::pair<std::string, double>>& params,
                      const SimResult& r, const obs::JsonlFileSink& sink) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("experiment", std::string("trace_") + kind);
  w.key("params").begin_object();
  for (const auto& [k, v] : params) w.field(k, v);
  w.field("threads", par::global_threads());
  w.field("trace_file", sink.path());
  w.end_object();
  w.key("metrics").begin_object();
  w.field("makespan", r.makespan);
  w.field("total_transmissions", r.total_transmissions);
  w.field("max_queue", r.max_queue);
  w.field("average_utilization", r.average_utilization());
  w.field("trace_events", sink.total());
  w.key("dim_transmissions").begin_array();
  for (auto tx : r.dim_transmissions) w.value(tx);
  w.end_array();
  w.key("utilization");
  r.utilization.write_json(w);
  w.key("latency");
  r.latency.write_json(w);
  w.end_object();
  w.key("timings").begin_object();
  for (const auto& span : obs::MetricsRegistry::global().timings()) {
    w.key(span.name).begin_object();
    w.field("seconds", span.seconds);
    w.field("count", span.count);
    w.end_object();
  }
  w.end_object();
  w.end_object();

  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::perror(path.c_str());
    return;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void dump_chrome_trace(TraceOptions& opt, const char* kind) {
  if (opt.chrome_path.empty()) {
    opt.chrome_path = std::string("CHROME_TRACE_") + kind + ".json";
  }
  if (obs::Profiler::global().dump_chrome_trace(opt.chrome_path)) {
    std::printf("chrome trace: %s\n", opt.chrome_path.c_str());
  } else {
    std::perror(opt.chrome_path.c_str());
  }
}

// Enable the process-wide telemetry bus for a traced run.  The time-series
// lands next to the trace (<trace-stem>.telemetry.jsonl) unless an explicit
// path was given.  The thread pool is touched first so the stream header's
// effective_threads stamp reflects the pool the run will actually use.
void begin_telemetry(const TraceOptions& opt) {
  if (!opt.telemetry) return;
  if (opt.telemetry_period <= 0) {
    std::fprintf(stderr, "--telemetry-period requires a positive integer\n");
    std::exit(1);
  }
  par::global_threads();
  obs::TelemetryBus::Config cfg;
  cfg.period_steps = opt.telemetry_period;
  if (!opt.telemetry_path.empty()) {
    cfg.jsonl_path = opt.telemetry_path;
  } else {
    std::string stem = opt.trace_path;
    const std::string ext = ".jsonl";
    if (stem.size() > ext.size() &&
        stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0) {
      stem.resize(stem.size() - ext.size());
    }
    cfg.jsonl_path = stem + ".telemetry.jsonl";
  }
  obs::TelemetryBus::global().enable(cfg);
}

// Stop sampling, report what the bus captured, and (with --prom) write a
// Prometheus text snapshot of the whole metrics registry.
void end_telemetry(TraceOptions& opt, const char* kind) {
  if (opt.telemetry) {
    obs::TelemetryBus& bus = obs::TelemetryBus::global();
    const std::uint64_t samples = bus.total_samples();
    const std::string path = bus.jsonl_path();
    bus.disable();
    std::printf("telemetry: %llu samples (every %d steps) → %s\n",
                static_cast<unsigned long long>(samples),
                opt.telemetry_period, path.c_str());
  }
  if (opt.prom) {
    if (opt.prom_path.empty()) {
      opt.prom_path = std::string("METRICS_") + kind + ".prom";
    }
    const std::string text =
        obs::MetricsRegistry::global().expose_prometheus();
    FILE* f = std::fopen(opt.prom_path.c_str(), "w");
    if (!f) {
      std::perror(opt.prom_path.c_str());
      return;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::printf("prometheus snapshot: %s\n", opt.prom_path.c_str());
  }
}

void trace_help(std::FILE* out) {
  std::fputs(
      "usage: trace <cycle|grid|ccc> ... [options]\n"
      "\n"
      "  trace cycle <n> [p]            Theorem 1 phase on Q_n, p packets\n"
      "                                 per cycle edge (default n/2)\n"
      "  trace grid <torus|grid> <side>...   grid/torus phase\n"
      "  trace ccc <n> [p]              Theorem 3 multicopy CCC phase\n"
      "\n"
      "options:\n"
      "  --packets p, -p p    packets per guest edge\n"
      "  --trace FILE         JSONL trace output (default "
      "TRACE_<kind>.jsonl);\n"
      "                       first line is a {\"kind\":\"meta\",...} header "
      "with the\n"
      "                       host dimension, then one event per line\n"
      "  --json [FILE]        summary JSON (default SUMMARY_<kind>.json)\n"
      "  --chrome FILE        chrome://tracing span timeline\n"
      "  --telemetry [FILE]   stream live queue/worker/recovery gauges to a\n"
      "                       JSONL time-series (default "
      "<trace-stem>.telemetry.jsonl);\n"
      "                       view live with `hyperpath_cli watch FILE "
      "--follow`\n"
      "  --telemetry-period N sample every N simulator steps (default 64;\n"
      "                       implies --telemetry).  Results are "
      "bit-identical\n"
      "                       at any period — sampling only reads sim "
      "state\n"
      "  --prom [FILE]        Prometheus text snapshot of the metrics\n"
      "                       registry after the run (default "
      "METRICS_<kind>.prom)\n"
      "  --threads N          global thread-pool size\n"
      "\n"
      "Feed the trace to `analyze` (or the standalone trace_query binary)\n"
      "for per-packet flight records, latency percentiles per bundle path,\n"
      "the makespan-critical blocking chain, a blame report and a\n"
      "queue-depth heatmap:\n"
      "\n"
      "  hyperpath_cli trace cycle 8 --trace t.jsonl\n"
      "  hyperpath_cli analyze t.jsonl --blame 5 --heatmap q.csv --json "
      "s.json\n",
      out);
}

int cmd_trace(int argc, char** argv) {
  if (argc < 1) {
    trace_help(stderr);
    return 1;
  }
  const std::string kind = argv[0];
  if (kind == "--help" || kind == "-h" || kind == "help") {
    trace_help(stdout);
    return 0;
  }
  TraceOptions opt = parse_trace_args(argc - 1, argv + 1);
  obs::Profiler::global().set_enabled(true);
  std::vector<std::pair<std::string, double>> params;

  if (kind == "cycle") {
    if (opt.positional.empty()) {
      std::fprintf(stderr, "usage: trace cycle <n> [p]\n");
      return 1;
    }
    const int n = std::atoi(opt.positional[0].c_str());
    if (!cycle_multipath_supported(n)) {
      std::fprintf(stderr, "n = %d unsupported\n", n);
      return 1;
    }
    int p = opt.packets;
    if (p <= 0) {
      p = opt.positional.size() > 1 ? std::atoi(opt.positional[1].c_str())
                                    : n / 2;
    }
    if (opt.trace_path.empty()) opt.trace_path = "TRACE_cycle.jsonl";
    MultiPathEmbedding emb = [&] {
      obs::ScopedTimer t("construct");
      HP_PROFILE_SPAN("construct");
      return theorem1_cycle_embedding(n);
    }();
    obs::JsonlFileSink sink(opt.trace_path);
    sink.write_meta(emb.host().dims(),
                    static_cast<std::uint64_t>(emb.guest().num_edges()) * p);
    begin_telemetry(opt);
    SimResult r;
    {
      obs::ScopedTimer t("simulate");
      HP_PROFILE_SPAN("simulate");
      r = measure_phase_cost(emb, p, Arbitration::kFifo, &sink);
    }
    params = {{"n", static_cast<double>(n)}, {"packets_per_edge",
                                             static_cast<double>(p)}};
    print_trace_summary("cycle", r, emb.host(), sink);
    end_telemetry(opt, "cycle");
    dump_chrome_trace(opt, "cycle");
    if (opt.json) {
      if (opt.json_path.empty()) opt.json_path = "SUMMARY_cycle.json";
      write_trace_json(opt.json_path, "cycle", params, r, sink);
    }
    return 0;
  }

  if (kind == "grid") {
    if (opt.positional.size() < 2) {
      std::fprintf(stderr, "usage: trace grid <torus|grid> <side>... [p]\n");
      return 1;
    }
    GridSpec spec;
    spec.wrap = opt.positional[0] == "torus";
    const int p = opt.packets > 0 ? opt.packets : 2;
    for (std::size_t i = 1; i < opt.positional.size(); ++i) {
      spec.sides.push_back(
          static_cast<Node>(std::atoi(opt.positional[i].c_str())));
    }
    if (!grid_multipath_supported(spec)) {
      std::fprintf(stderr, "unsupported grid spec\n");
      return 1;
    }
    if (opt.trace_path.empty()) opt.trace_path = "TRACE_grid.jsonl";
    MultiPathEmbedding emb = [&] {
      obs::ScopedTimer t("construct");
      HP_PROFILE_SPAN("construct");
      return grid_multipath_embedding(spec);
    }();
    obs::JsonlFileSink sink(opt.trace_path);
    sink.write_meta(emb.host().dims(),
                    static_cast<std::uint64_t>(emb.guest().num_edges()) * p);
    begin_telemetry(opt);
    SimResult r;
    {
      obs::ScopedTimer t("simulate");
      HP_PROFILE_SPAN("simulate");
      r = measure_phase_cost(emb, p, Arbitration::kFifo, &sink);
    }
    params = {{"axes", static_cast<double>(spec.sides.size())},
              {"wrap", spec.wrap ? 1.0 : 0.0},
              {"packets_per_edge", static_cast<double>(p)}};
    print_trace_summary("grid", r, emb.host(), sink);
    end_telemetry(opt, "grid");
    dump_chrome_trace(opt, "grid");
    if (opt.json) {
      if (opt.json_path.empty()) opt.json_path = "SUMMARY_grid.json";
      write_trace_json(opt.json_path, "grid", params, r, sink);
    }
    return 0;
  }

  if (kind == "ccc") {
    if (opt.positional.empty()) {
      std::fprintf(stderr, "usage: trace ccc <n> [p]\n");
      return 1;
    }
    const int n = std::atoi(opt.positional[0].c_str());
    int p = opt.packets;
    if (p <= 0) {
      p = opt.positional.size() > 1 ? std::atoi(opt.positional[1].c_str())
                                    : 1;
    }
    if (opt.trace_path.empty()) opt.trace_path = "TRACE_ccc.jsonl";
    KCopyEmbedding emb = [&] {
      obs::ScopedTimer t("construct");
      HP_PROFILE_SPAN("construct");
      return ccc_multicopy_embedding(n);
    }();
    obs::JsonlFileSink sink(opt.trace_path);
    sink.write_meta(emb.host().dims(),
                    static_cast<std::uint64_t>(emb.guest().num_edges()) * p *
                        emb.num_copies());
    begin_telemetry(opt);
    SimResult r;
    {
      obs::ScopedTimer t("simulate");
      HP_PROFILE_SPAN("simulate");
      r = measure_phase_cost(emb, p, Arbitration::kFifo, &sink);
    }
    params = {{"n", static_cast<double>(n)},
              {"copies", static_cast<double>(emb.num_copies())},
              {"packets_per_edge", static_cast<double>(p)}};
    print_trace_summary("ccc", r, emb.host(), sink);
    end_telemetry(opt, "ccc");
    dump_chrome_trace(opt, "ccc");
    if (opt.json) {
      if (opt.json_path.empty()) opt.json_path = "SUMMARY_ccc.json";
      write_trace_json(opt.json_path, "ccc", params, r, sink);
    }
    return 0;
  }

  std::fprintf(stderr, "unknown trace target '%s'\n", kind.c_str());
  return 1;
}

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  using namespace hyperpath;

  // Strip the global --threads flag (valid anywhere) before dispatch so
  // subcommand parsers never see it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    int threads = 0;
    if (a == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (a.rfind("--threads=", 0) == 0) {
      threads = std::atoi(a.c_str() + 10);
    } else {
      argv[out++] = argv[i];
      continue;
    }
    if (threads <= 0) {
      std::fprintf(stderr, "--threads requires a positive integer\n");
      return 1;
    }
    par::set_global_threads(threads);
  }
  argc = out;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s [--threads N] "
                 "cycle|grid|route|ccc|decomp|moments|faults|campaign|trace|"
                 "analyze|watch ...\n",
                 argv[0]);
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "cycle" && argc >= 3) return cmd_cycle(std::atoi(argv[2]));
    if (cmd == "grid") return cmd_grid(argc - 2, argv + 2);
    if (cmd == "route") return cmd_route(argc - 2, argv + 2);
    if (cmd == "ccc" && argc >= 3) return cmd_ccc(std::atoi(argv[2]));
    if (cmd == "decomp" && argc >= 3) return cmd_decomp(std::atoi(argv[2]));
    if (cmd == "moments" && argc >= 3) return cmd_moments(std::atoi(argv[2]));
    if (cmd == "faults" && argc >= 3 && !std::strcmp(argv[2], "replay")) {
      return cmd_faults_replay(argc - 3, argv + 3);
    }
    if (cmd == "campaign") return cmd_campaign(argc - 2, argv + 2);
    if (cmd == "faults" && argc >= 4) {
      return cmd_faults(std::atoi(argv[2]), std::atoi(argv[3]),
                        argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 1);
    }
    if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
    if (cmd == "analyze") return tools::run_analyze(argc - 2, argv + 2);
    if (cmd == "watch") return tools::run_watch(argc - 2, argv + 2);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown or incomplete command '%s'\n", cmd.c_str());
  return 1;
}
