// hyperpath command-line inspector.
//
//   hyperpath_cli cycle <n>             Theorem 1/2 metrics + measured costs
//   hyperpath_cli grid  <torus|grid> <side>...   grid embedding metrics
//   hyperpath_cli ccc   <n>             Theorem 3 multicopy metrics
//   hyperpath_cli decomp <n>            Hamiltonian decomposition summary
//   hyperpath_cli moments <n>           moment table of Q_n
//   hyperpath_cli faults <n> <count> [seed]   fault-tolerance snapshot
//
// A quick way to poke at the library without writing code.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/moment.hpp"
#include "ccc/ccc_embed.hpp"
#include "core/cycle_multipath.hpp"
#include "core/grid_multipath.hpp"
#include "embed/classical.hpp"
#include "hamdecomp/decomposition.hpp"
#include "sim/faults.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

int cmd_cycle(int n) {
  if (!cycle_multipath_supported(n)) {
    std::fprintf(stderr, "n = %d unsupported (need ⌊n/4⌋ a power of two)\n",
                 n);
    return 1;
  }
  const auto t1 = theorem1_cycle_embedding(n);
  std::printf("Theorem 1 (2^%d-cycle): width %d, dilation %d, load %d, "
              "congestion %d\n",
              n, t1.width(), t1.dilation(), t1.load(), t1.congestion());
  std::printf("  ⌊n/2⌋-packet cost: %d\n",
              measure_phase_cost(t1, n / 2).makespan);
  const auto t2 = theorem2_cycle_embedding(n);
  std::printf("Theorem 2 (2^%d-cycle): width %d, dilation %d, load %d\n",
              n + 1, t2.width(), t2.dilation(), t2.load());
  const auto r = measure_phase_cost(t2, t2.width());
  std::printf("  w-packet cost: %d, link utilization:", r.makespan);
  for (double u : r.utilization) std::printf(" %.3f", u);
  std::printf("\n");
  return 0;
}

int cmd_grid(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: grid <torus|grid> <side>...\n");
    return 1;
  }
  GridSpec spec;
  spec.wrap = !std::strcmp(argv[0], "torus");
  for (int i = 1; i < argc; ++i) {
    spec.sides.push_back(static_cast<Node>(std::atoi(argv[i])));
  }
  if (!grid_multipath_supported(spec)) {
    std::fprintf(stderr, "unsupported grid spec\n");
    return 1;
  }
  const auto emb = grid_multipath_embedding(spec);
  std::printf("%s in Q_%d: width %d, dilation %d, load %d, expansion %.3g\n",
              spec.wrap ? "torus" : "grid", emb.host().dims(), emb.width(),
              emb.dilation(), emb.load(), emb.expansion());
  std::printf("  2-packet phase cost: %d\n",
              measure_phase_cost(emb, 2).makespan);
  return 0;
}

int cmd_ccc(int n) {
  const auto emb = ccc_multicopy_embedding(n);
  std::printf("Theorem 3: %d copies of CCC_%d in Q_%d — dilation %d, "
              "edge-congestion %d\n",
              emb.num_copies(), n, emb.host().dims(), emb.dilation(),
              emb.edge_congestion());
  return 0;
}

int cmd_decomp(int n) {
  const auto& d = hamiltonian_decomposition(n);
  std::printf("Q_%d: %zu Hamiltonian cycles", n, d.cycles.size());
  if (!d.matching.empty()) {
    std::printf(" + perfect matching (%zu edges)", d.matching.size());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < d.cycles.size() && n <= 4; ++i) {
    std::printf("  cycle %zu:", i);
    for (Node v : d.cycles[i]) std::printf(" %u", v);
    std::printf("\n");
  }
  return 0;
}

int cmd_moments(int n) {
  std::printf("moments of Q_%d (Definition 1):\n", n);
  for (Node v = 0; v < (Node{1} << n); ++v) {
    std::printf("%3u → %u%s", v, moment(v), (v % 8 == 7) ? "\n" : "   ");
  }
  std::printf("\n");
  return 0;
}

int cmd_faults(int n, int count, std::uint64_t seed) {
  if (!cycle_multipath_supported(n)) {
    std::fprintf(stderr, "n = %d unsupported\n", n);
    return 1;
  }
  const auto emb = theorem1_cycle_embedding(n);
  Rng rng(seed);
  const auto f = FaultSet::random(n, count, rng);
  int dead = 0, degraded = 0;
  for (const auto& d : deliver_phase(f, emb)) {
    dead += (d.paths_alive == 0);
    degraded += (d.paths_alive > 0 && d.paths_alive < d.paths_total);
  }
  std::printf("%d faults on Q_%d (width %d): %d edges degraded, %d dead of "
              "%zu\n",
              count, n, emb.width(), degraded, dead,
              emb.guest().num_edges());
  return 0;
}

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  using namespace hyperpath;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s cycle|grid|ccc|decomp|moments|faults ...\n",
                 argv[0]);
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "cycle" && argc >= 3) return cmd_cycle(std::atoi(argv[2]));
    if (cmd == "grid") return cmd_grid(argc - 2, argv + 2);
    if (cmd == "ccc" && argc >= 3) return cmd_ccc(std::atoi(argv[2]));
    if (cmd == "decomp" && argc >= 3) return cmd_decomp(std::atoi(argv[2]));
    if (cmd == "moments" && argc >= 3) return cmd_moments(std::atoi(argv[2]));
    if (cmd == "faults" && argc >= 4) {
      return cmd_faults(std::atoi(argv[2]), std::atoi(argv[3]),
                        argc >= 5 ? std::strtoull(argv[4], nullptr, 10) : 1);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown or incomplete command '%s'\n", cmd.c_str());
  return 1;
}
