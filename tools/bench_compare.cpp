// bench_compare — diffs a current BENCH_SUITE.json (or a single
// BENCH_<name>.json report) against a committed baseline.
//
//   bench_compare CURRENT BASELINE [--metric-tol X] [--timing-tol X]
//                 [--report-only]
//
// Deterministic metrics gate at --metric-tol (default 0: exact — any
// deviation in either direction is a regression).  Wall-clock timings are
// skipped unless --timing-tol is given; then only slower regresses.
// Prints a human table plus one machine-readable verdict line:
//
//   BENCH_COMPARE: PASS|FAIL regressions=N compared=M missing=K new=J
//
// Exits nonzero on regression unless --report-only (the CI soft-gate mode,
// which always exits 0 once both inputs load).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json_parse.hpp"
#include "obs/regress.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s CURRENT BASELINE [--metric-tol X] [--timing-tol X] "
               "[--report-only]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path, baseline_path;
  hyperpath::obs::CompareOptions options;
  bool report_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metric-tol" && i + 1 < argc) {
      options.metric_tol = std::atof(argv[++i]);
    } else if (arg == "--timing-tol" && i + 1 < argc) {
      options.timing_tol = std::atof(argv[++i]);
    } else if (arg == "--report-only") {
      report_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
      return 2;
    } else if (current_path.empty()) {
      current_path = arg;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (current_path.empty() || baseline_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  hyperpath::obs::JsonParseError err;
  const auto current = hyperpath::obs::json_parse_file(current_path, &err);
  if (!current) {
    std::fprintf(stderr, "bench_compare: cannot load %s (offset %zu: %s)\n",
                 current_path.c_str(), err.offset, err.message.c_str());
    return 2;
  }
  const auto baseline = hyperpath::obs::json_parse_file(baseline_path, &err);
  if (!baseline) {
    std::fprintf(stderr, "bench_compare: cannot load %s (offset %zu: %s)\n",
                 baseline_path.c_str(), err.offset, err.message.c_str());
    return 2;
  }

  const auto result =
      hyperpath::obs::compare_suites(*current, *baseline, options);

  std::size_t missing = 0, added = 0;
  std::printf("%-14s %-36s %14s %14s %9s  %s\n", "report", "key", "baseline",
              "current", "rel", "verdict");
  for (const auto& d : result.deltas) {
    using hyperpath::obs::DeltaKind;
    if (d.kind == DeltaKind::kMissing) ++missing;
    if (d.kind == DeltaKind::kNew) ++added;
    // Keep the table focused: only print in-tolerance rows when nothing is
    // wrong with them is still useful context, but cap the noise by
    // skipping kOk timings.
    if (d.kind == DeltaKind::kOk && d.is_timing) continue;
    std::printf("%-14s %-36s %14.6g %14.6g %8.2f%%  %s\n", d.report.c_str(),
                d.key.c_str(), d.baseline, d.current, 100.0 * d.rel_change,
                hyperpath::obs::to_string(d.kind));
  }

  const bool pass = result.pass();
  std::printf("BENCH_COMPARE: %s regressions=%zu compared=%zu missing=%zu "
              "new=%zu\n",
              pass ? "PASS" : "FAIL", result.regressions(), result.compared(),
              missing, added);
  if (report_only) return 0;
  return pass ? 0 : 1;
}
