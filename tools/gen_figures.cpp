// Regenerates the paper's illustrative figures as Graphviz DOT.
//
//   gen_figures [output_dir]
//
//   fig1.dot — the binary reflected Gray-code embedding of the directed
//              cycle in Q_3, edges labeled with their hypercube dimension
//              (Figure 1).
//   fig2.txt — the three address fields of Theorem 1 (Figure 2).
//   fig3.dot — the length-2^n cycle C formed from column special cycles,
//              for n = 4: columns as clusters, special-cycle edges solid,
//              row edges dashed (Figure 3).
//   fig4.dot — the length-three detour paths of one special edge
//              (Figure 4).
//   fig5.csv — per-dimension link traffic of a Theorem 1 phase on Q_8:
//              dimension, transmissions, share, per-dimension utilization
//              (not a paper figure; uses the src/obs instrumentation).
//
// Render with:  dot -Tpdf fig1.dot -o fig1.pdf
#include <cstdio>
#include <string>

#include "base/gray.hpp"
#include "base/moment.hpp"
#include "core/cycle_multipath.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

FILE* open_out(const std::string& dir, const char* name) {
  const std::string path = dir + "/" + name;
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::perror(path.c_str());
    std::exit(1);
  }
  std::printf("writing %s\n", path.c_str());
  return f;
}

std::string bits_of(hyperpath::Node v, int width) {
  std::string s(width, '0');
  for (int i = 0; i < width; ++i) {
    if ((v >> i) & 1u) s[width - 1 - i] = '1';
  }
  return s;
}

void fig1(const std::string& dir) {
  FILE* f = open_out(dir, "fig1.dot");
  std::fprintf(f,
               "// Figure 1: the binary reflected graycode embedding (Q_3).\n"
               "digraph fig1 {\n  layout=circo;\n"
               "  node [shape=circle, fontname=monospace];\n");
  const int k = 3;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const Node a = gray_node_at(k, i);
    const Node b = gray_node_at(k, (i + 1) % 8);
    std::fprintf(f, "  \"%s\" -> \"%s\" [label=\"%d\"];\n",
                 bits_of(a, k).c_str(), bits_of(b, k).c_str(),
                 gray_transition_at(k, i));
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

void fig2(const std::string& dir) {
  FILE* f = open_out(dir, "fig2.txt");
  std::fprintf(f,
               "Figure 2: dividing addresses into three fields (n = 4k + r)\n"
               "\n"
               "  +----------+-------------+---------+\n"
               "  |   Row    |     Column name        |\n"
               "  |          |  Position   |  Block  |\n"
               "  |  2k bits |  2k bits    |  r bits |\n"
               "  +----------+-------------+---------+\n"
               "   msb                            lsb\n");
  std::fclose(f);
}

void fig3(const std::string& dir) {
  // The Theorem 1 guest cycle on Q_4 (k = 1, r = 0): 4 columns of 4 rows.
  FILE* f = open_out(dir, "fig3.dot");
  const int n = 4;
  const auto emb = theorem1_cycle_embedding(n);
  std::fprintf(f,
               "// Figure 3: forming the length-2^4 cycle C from column\n"
               "// special cycles.  Solid: special-cycle edges; dashed: row\n"
               "// edges between columns (Gray order).\n"
               "digraph fig3 {\n  rankdir=LR;\n"
               "  node [shape=circle, fontname=monospace];\n");
  // Cluster per column (low 2 bits).
  for (Node col = 0; col < 4; ++col) {
    std::fprintf(f, "  subgraph cluster_c%u {\n    label=\"column %u "
                 "(cycle M=%u)\";\n", col, col, moment(col));
    for (Node row = 0; row < 4; ++row) {
      std::fprintf(f, "    \"%u\";\n", (row << 2) | col);
    }
    std::fprintf(f, "  }\n");
  }
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    const Node a = emb.host_of(ge.from);
    const Node b = emb.host_of(ge.to);
    const bool row_edge = ((a ^ b) & 0b11u) != 0;  // low bits differ
    std::fprintf(f, "  \"%u\" -> \"%u\"%s;\n", a, b,
                 row_edge ? " [style=dashed, constraint=false]" : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

void fig4(const std::string& dir) {
  // One special edge of the Q_4 embedding and its whole bundle.
  FILE* f = open_out(dir, "fig4.dot");
  const auto emb = theorem1_cycle_embedding(4);
  // Pick a column edge: guest edge whose host endpoints differ in a row dim.
  std::size_t pick = 0;
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    if (((emb.host_of(ge.from) ^ emb.host_of(ge.to)) & 0b11u) == 0) {
      pick = e;
      break;
    }
  }
  std::fprintf(f,
               "// Figure 4: the length-three paths widening one special\n"
               "// edge (plus the direct edge).\n"
               "digraph fig4 {\n  rankdir=LR;\n"
               "  node [shape=circle, fontname=monospace];\n");
  const char* colors[] = {"red", "blue", "darkgreen", "orange", "purple"};
  const auto bundle = emb.paths(pick);
  for (std::size_t p = 0; p < bundle.size(); ++p) {
    for (std::size_t i = 0; i + 1 < bundle[p].size(); ++i) {
      std::fprintf(f, "  \"%u\" -> \"%u\" [color=%s];\n", bundle[p][i],
                   bundle[p][i + 1], colors[p % 5]);
    }
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

void fig5(const std::string& dir) {
  // Per-dimension traffic of a ⌊n/2⌋-packet Theorem 1 phase on Q_8.  The
  // schedule's row/column field split shows up as unequal dimension use.
  FILE* f = open_out(dir, "fig5.csv");
  const int n = 8;
  const auto emb = theorem1_cycle_embedding(n);
  const auto r = measure_phase_cost(emb, n / 2);
  // Each dimension has 2^n directed links, each busy ≤ makespan steps.
  const double dim_slots =
      static_cast<double>(emb.host().num_nodes()) *
      (r.makespan > 0 ? r.makespan : 1);
  std::fprintf(f, "dimension,transmissions,share,utilization\n");
  for (std::size_t d = 0; d < r.dim_transmissions.size(); ++d) {
    const double share =
        r.total_transmissions
            ? static_cast<double>(r.dim_transmissions[d]) /
                  static_cast<double>(r.total_transmissions)
            : 0.0;
    std::fprintf(f, "%zu,%llu,%.6f,%.6f\n", d,
                 static_cast<unsigned long long>(r.dim_transmissions[d]),
                 share, static_cast<double>(r.dim_transmissions[d]) /
                            dim_slots);
  }
  std::fclose(f);
}

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  hyperpath::fig1(dir);
  hyperpath::fig2(dir);
  hyperpath::fig3(dir);
  hyperpath::fig4(dir);
  hyperpath::fig5(dir);
  return 0;
}
