// Infrastructure benchmark: the work-stealing parallel layer (src/par)
// under the PR's acceptance workloads — Theorem-1 on Q_16 and the
// Corollary-1 torus product on Q_14 (128×128).
//
// Not a paper experiment — this measures the library itself: construction
// and verification wall-clock serial (threads=1 PoolScope) vs parallel
// (threads=8 PoolScope), plus the fused metrics() sweep against the four
// legacy single-metric re-walks.  Every metric in the report is a
// deterministic output (metric values, congestion checksums, and
// serial==parallel equality flags, which the determinism contract pins to
// 1) and is held to exact equality by the bench_compare CI gate;
// wall-clock — and with it any speedup, which depends on the host's core
// count — goes into the timings section only.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "core/grid_multipath.hpp"
#include "embed/embedding.hpp"
#include "par/task_pool.hpp"

namespace hyperpath {
namespace {

constexpr int kParThreads = 8;

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t checksum(const std::vector<std::uint32_t>& v) {
  // Order-sensitive FNV-1a so any per-link difference, including a swap,
  // changes the value.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint32_t x : v) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return h;
}

struct Workload {
  const char* name;   // metric key suffix
  const char* label;  // table row label
  std::function<MultiPathEmbedding()> make;
};

std::vector<Workload> workloads() {
  return {
      {"t1_q16", "Theorem 1, Q_16",
       [] { return theorem1_cycle_embedding(16); }},
      {"c1_q14", "Corollary 1 torus 128x128, Q_14",
       [] { return grid_multipath_embedding(GridSpec{{128, 128}, true}); }},
  };
}

void print_construct_verify_table(bench::Report& report) {
  // P1: construction (which internally verifies) and a standalone
  // re-verification, serial vs kParThreads-way.  The embeddings themselves
  // must be bit-identical — checked field by field here, not just assumed.
  bench::Table t("P1: construction + verification — serial vs parallel pool",
                 {"workload", "edges", "construct s1 ms",
                  "construct p8 ms", "speedup", "verify s1 ms",
                  "verify p8 ms", "speedup", "identical"});
  auto& reg = obs::MetricsRegistry::global();
  for (const auto& w : workloads()) {
    par::TaskPool pool1(1), poolN(kParThreads);

    MultiPathEmbedding serial = [&] {
      par::PoolScope scope(pool1);
      return w.make();
    }();
    double s_construct1 = 0, s_constructN = 0;
    {
      par::PoolScope scope(pool1);
      s_construct1 = seconds_of([&] { w.make(); });
    }
    std::optional<MultiPathEmbedding> parallel_opt;
    {
      par::PoolScope scope(poolN);
      s_constructN = seconds_of([&] { parallel_opt.emplace(w.make()); });
    }
    const MultiPathEmbedding& parallel = *parallel_opt;

    double s_verify1 = 0, s_verifyN = 0;
    {
      par::PoolScope scope(pool1);
      s_verify1 = seconds_of([&] { serial.verify_or_throw(); });
    }
    {
      par::PoolScope scope(poolN);
      s_verifyN = seconds_of([&] { parallel.verify_or_throw(); });
    }

    bool identical = serial.guest().num_edges() == parallel.guest().num_edges();
    for (Node v = 0; identical && v < serial.guest().num_nodes(); ++v) {
      identical = serial.host_of(v) == parallel.host_of(v);
    }
    for (std::size_t e = 0; identical && e < serial.guest().num_edges();
         ++e) {
      const auto pa = serial.paths(e);
      const auto pb = parallel.paths(e);
      identical = pa.size() == pb.size();
      for (std::size_t j = 0; identical && j < pa.size(); ++j) {
        identical = pa[j] == pb[j];
      }
    }
    if (!identical) {
      std::fprintf(stderr, "FATAL: parallel construction diverged on %s\n",
                   w.name);
      std::exit(1);
    }

    t.row(w.label, serial.guest().num_edges(), s_construct1 * 1e3,
          s_constructN * 1e3, s_construct1 / s_constructN, s_verify1 * 1e3,
          s_verifyN * 1e3, s_verify1 / s_verifyN, 1);

    const std::string key(w.name);
    reg.record_span("construct_serial_" + key, s_construct1);
    reg.record_span("construct_par8_" + key, s_constructN);
    reg.record_span("verify_serial_" + key, s_verify1);
    reg.record_span("verify_par8_" + key, s_verifyN);
    report.metric("identical_" + key, 1);
    report.metric("edges_" + key, serial.guest().num_edges());
  }
  t.print();
  report.table(t);
}

void print_metrics_table(bench::Report& report) {
  // P2: the fused metrics() sweep against the four legacy single-metric
  // accessors (each a full re-walk), serial and parallel.  The fused sweep
  // wins even at threads=1 — one pass instead of four.
  bench::Table t("P2: fused metric sweep vs four single-metric re-walks",
                 {"workload", "4-pass s1 ms", "fused s1 ms", "speedup",
                  "fused p8 ms", "speedup vs 4-pass", "congestion",
                  "checksum ok"});
  auto& reg = obs::MetricsRegistry::global();
  for (const auto& w : workloads()) {
    const MultiPathEmbedding emb = w.make();
    par::TaskPool pool1(1), poolN(kParThreads);

    int load = 0, dilation = 0, width = 0, congestion = 0;
    double s_four = 0;
    {
      par::PoolScope scope(pool1);
      s_four = seconds_of([&] {
        load = emb.load();
        dilation = emb.dilation();
        width = emb.width();
        congestion = emb.congestion();
      });
    }
    EmbeddingMetrics fused1, fusedN;
    double s_fused1 = 0, s_fusedN = 0;
    {
      par::PoolScope scope(pool1);
      s_fused1 = seconds_of([&] { fused1 = emb.metrics(); });
    }
    {
      par::PoolScope scope(poolN);
      s_fusedN = seconds_of([&] { fusedN = emb.metrics(); });
    }

    const bool agree = fused1.load == load && fused1.dilation == dilation &&
                       fused1.width == width &&
                       fused1.congestion == congestion &&
                       fused1.load == fusedN.load &&
                       fused1.dilation == fusedN.dilation &&
                       fused1.width == fusedN.width &&
                       fused1.congestion == fusedN.congestion &&
                       fused1.congestion_per_link == fusedN.congestion_per_link;
    if (!agree) {
      std::fprintf(stderr, "FATAL: metric passes disagree on %s\n", w.name);
      std::exit(1);
    }

    t.row(w.label, s_four * 1e3, s_fused1 * 1e3, s_four / s_fused1,
          s_fusedN * 1e3, s_four / s_fusedN, congestion, 1);

    const std::string key(w.name);
    reg.record_span("metrics_four_pass_" + key, s_four);
    reg.record_span("metrics_fused_serial_" + key, s_fused1);
    reg.record_span("metrics_fused_par8_" + key, s_fusedN);
    report.metric("load_" + key, fused1.load);
    report.metric("dilation_" + key, fused1.dilation);
    report.metric("width_" + key, fused1.width);
    report.metric("congestion_" + key, fused1.congestion);
    report.metric("congestion_checksum_" + key,
                  checksum(fused1.congestion_per_link));
    report.metric("metrics_agree_" + key, 1);
  }
  t.print();
  report.table(t);
}

void print_pool_table(bench::Report& report) {
  // P3: pool accounting for one parallel verification region — how many
  // tasks ran and how much total worker time the region consumed.  Steal
  // counts are scheduling artifacts (nondeterministic), so they appear here
  // and in the timings only, never as gated metrics.
  bench::Table t("P3: pool accounting (threads=8 verification region)",
                 {"workload", "regions", "tasks", "steals", "busy ms"});
  auto& reg = obs::MetricsRegistry::global();
  for (const auto& w : workloads()) {
    const MultiPathEmbedding emb = w.make();
    par::TaskPool pool(kParThreads);
    par::PoolScope scope(pool);
    emb.verify_or_throw();
    const auto s = pool.stats();
    double busy = 0;
    for (double b : s.busy_seconds) busy += b;
    t.row(w.label, s.regions, s.tasks, s.steals, busy * 1e3);
    reg.record_span("pool_busy_" + std::string(w.name), busy);
  }
  t.print();
  report.table(t);
  report.metric("pool_threads", kParThreads);
}

void BM_VerifySerial(benchmark::State& state) {
  const auto emb = theorem1_cycle_embedding(16);
  par::TaskPool pool(1);
  par::PoolScope scope(pool);
  for (auto _ : state) emb.verify_or_throw();
}
BENCHMARK(BM_VerifySerial)->Unit(benchmark::kMillisecond);

void BM_VerifyParallel(benchmark::State& state) {
  const auto emb = theorem1_cycle_embedding(16);
  par::TaskPool pool(static_cast<int>(state.range(0)));
  par::PoolScope scope(pool);
  for (auto _ : state) emb.verify_or_throw();
}
BENCHMARK(BM_VerifyParallel)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FusedMetrics(benchmark::State& state) {
  const auto emb = theorem1_cycle_embedding(16);
  par::TaskPool pool(static_cast<int>(state.range(0)));
  par::PoolScope scope(pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emb.metrics().congestion);
  }
}
BENCHMARK(BM_FusedMetrics)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("par", &argc, argv);
  hyperpath::print_construct_verify_table(report);
  hyperpath::print_metrics_table(report);
  hyperpath::print_pool_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
