// Experiment E2 (Theorem 1).
//
// The 2^n-node directed cycle in Q_n: width ⌊n/2⌋ (2⌊n/4⌋+1 paths built),
// ⌊n/2⌋-packet cost 3, and the stronger (2k+2)-packet cost 3 via the
// staged direct-path schedule.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "core/lower_bounds.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

/// Flight-record pass over the Q_16 ⌊n/2⌋-packet phase: replays it with a
/// FlightRecorder attached and exports the measured edge congestion
/// bracketed by the analytic floor and the Lemma 3 / construction ceiling.
/// All values are deterministic, so they gate exactly in bench_compare.
void report_q16_flight_metrics(bench::Report& report) {
  const int n = 16;
  const int p = n / 2;
  const auto emb = theorem1_cycle_embedding(n);
  obs::FlightRecorder rec;
  SimResult r;
  {
    obs::ScopedTimer timer("simulate");
    r = measure_phase_cost(emb, p, Arbitration::kFifo, &rec);
  }
  const obs::TraceAnalysis a = obs::analyze_flights(rec);
  const PhaseCongestionBounds bounds = phase_congestion_bounds(emb, p);

  // The reconstruction must agree with the simulator bit for bit; a
  // disagreement means the trace stream is incomplete.
  if (a.makespan != r.makespan || a.delivered != r.latency.count() ||
      a.transmissions != r.total_transmissions ||
      a.inconsistencies != 0 || a.depth_mismatches != 0) {
    std::fprintf(stderr, "FATAL: flight records disagree with SimResult\n");
    std::exit(1);
  }

  std::printf("Q_16 flight records: peak congestion %llu in [%lld, %lld], "
              "critical path %d steps (%d handoffs), queue wait p99 %.2f\n\n",
              static_cast<unsigned long long>(a.peak_congestion),
              static_cast<long long>(bounds.floor),
              static_cast<long long>(bounds.ceiling),
              a.critical_path.length(), a.critical_path.handoffs,
              a.queue_wait.quantile(0.99));

  report.metric("q16_flight_makespan", a.makespan);
  report.metric("q16_flight_delivered", a.delivered);
  report.metric("q16_peak_congestion", a.peak_congestion);
  report.metric("q16_congestion_floor", bounds.floor);
  report.metric("q16_congestion_ceiling", bounds.ceiling);
  report.metric("q16_congestion_in_bounds",
                bounds.contains(static_cast<std::int64_t>(
                    a.peak_congestion))
                    ? 1
                    : 0);
  report.metric("q16_congestion_floor_margin",
                static_cast<std::int64_t>(a.peak_congestion) - bounds.floor);
  report.metric("q16_congestion_ceiling_margin",
                bounds.ceiling -
                    static_cast<std::int64_t>(a.peak_congestion));
  report.metric("q16_critical_path_length", a.critical_path.length());
  report.metric("q16_critical_path_handoffs", a.critical_path.handoffs);
  report.metric("q16_queue_wait_p50", a.queue_wait.quantile(0.5));
  report.metric("q16_queue_wait_p99", a.queue_wait.quantile(0.99));
  report.metric("q16_depth_mismatches", a.depth_mismatches);
}

void print_table(bench::Report& report) {
  bench::Table t(
      "E2: Theorem 1 — width-⌊n/2⌋ cycle embeddings",
      {"n", "width built", "⌊n/2⌋", "load", "dilation",
       "⌊n/2⌋-pkt cost (paper: 3)", "(2k+2)-pkt cost (paper: 3)",
       "3-step slot slack"});
  const std::vector<int> dims = {4, 5, 6, 7, 8, 9, 10, 11, 16};
  int worst_cost = 0;
  for (int n : dims) {
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return theorem1_cycle_embedding(n);
    }();
    const int k = n / 4;
    StoreForwardSim sim(n);
    obs::ScopedTimer timer("simulate");
    const int cost_halfn = measure_phase_cost(emb, n / 2).makespan;
    const int cost_2k2 =
        sim.run(theorem1_schedule_packets(emb, 2 * k + 2)).makespan;
    worst_cost = std::max({worst_cost, cost_halfn, cost_2k2});
    t.row(n, emb.width(), n / 2, emb.load(), emb.dilation(), cost_halfn,
          cost_2k2, edge_slot_slack(emb, 3));
  }
  t.print();
  report.param("dims_min", dims.front());
  report.param("dims_max", dims.back());
  report.metric("worst_phase_cost", worst_cost);
  report.metric("paper_claimed_cost", 3);
  report.table(t);
}

void BM_Theorem1Construct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem1_cycle_embedding(n).width());
  }
}
BENCHMARK(BM_Theorem1Construct)->Arg(8)->Arg(10)->Arg(16);

void BM_Theorem1Phase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto emb = theorem1_cycle_embedding(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_phase_cost(emb, n / 2).makespan);
  }
}
BENCHMARK(BM_Theorem1Phase)->Arg(8)->Arg(10);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("theorem1", &argc, argv);
  hyperpath::print_table(report);
  hyperpath::report_q16_flight_metrics(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
