// Experiment E2 (Theorem 1).
//
// The 2^n-node directed cycle in Q_n: width ⌊n/2⌋ (2⌊n/4⌋+1 paths built),
// ⌊n/2⌋-packet cost 3, and the stronger (2k+2)-packet cost 3 via the
// staged direct-path schedule.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "core/lower_bounds.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  bench::Table t(
      "E2: Theorem 1 — width-⌊n/2⌋ cycle embeddings",
      {"n", "width built", "⌊n/2⌋", "load", "dilation",
       "⌊n/2⌋-pkt cost (paper: 3)", "(2k+2)-pkt cost (paper: 3)",
       "3-step slot slack"});
  const std::vector<int> dims = {4, 5, 6, 7, 8, 9, 10, 11, 16};
  int worst_cost = 0;
  for (int n : dims) {
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return theorem1_cycle_embedding(n);
    }();
    const int k = n / 4;
    StoreForwardSim sim(n);
    obs::ScopedTimer timer("simulate");
    const int cost_halfn = measure_phase_cost(emb, n / 2).makespan;
    const int cost_2k2 =
        sim.run(theorem1_schedule_packets(emb, 2 * k + 2)).makespan;
    worst_cost = std::max({worst_cost, cost_halfn, cost_2k2});
    t.row(n, emb.width(), n / 2, emb.load(), emb.dilation(), cost_halfn,
          cost_2k2, edge_slot_slack(emb, 3));
  }
  t.print();
  report.param("dims_min", dims.front());
  report.param("dims_max", dims.back());
  report.metric("worst_phase_cost", worst_cost);
  report.metric("paper_claimed_cost", 3);
  report.table(t);
}

void BM_Theorem1Construct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem1_cycle_embedding(n).width());
  }
}
BENCHMARK(BM_Theorem1Construct)->Arg(8)->Arg(10)->Arg(16);

void BM_Theorem1Phase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto emb = theorem1_cycle_embedding(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_phase_cost(emb, n / 2).makespan);
  }
}
BENCHMARK(BM_Theorem1Phase)->Arg(8)->Arg(10);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("theorem1", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
