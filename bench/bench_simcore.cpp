// Infrastructure benchmark: the flat-arena simulator core (simcore.hpp)
// against the retained map-based reference implementation
// (reference_sim.hpp).
//
// Not a paper experiment — this measures the simulator itself: steps/sec
// and packet-hops/sec throughput of the store-and-forward core (serial and
// parallel, traced and untraced) and the wormhole core, on Theorem-1-phase
// workloads (the heaviest traffic the paper's tables run) and a bit-reversal
// wormhole permutation.  Every simulation metric in the report is a
// deterministic output (makespans, transmissions, active-set visits, trace
// event counts) and is held to exact equality by the bench_compare CI gate;
// wall-clock goes into the timings section only.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "bench/table.hpp"
#include "core/bitserial.hpp"
#include "obs/telemetry.hpp"
#include "core/cycle_multipath.hpp"
#include "core/grid_multipath.hpp"
#include "par/task_pool.hpp"
#include "sim/montecarlo.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/phase.hpp"
#include "sim/reference_sim.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"
#include "sim/wormhole.hpp"

namespace hyperpath {
namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double mhops_per_sec(std::uint64_t hops, double seconds) {
  return static_cast<double>(hops) / seconds / 1e6;
}

// Theorem-1 phase traffic on Q_n with p = n packets per guest edge.
// theorem1_cycle_embedding's direct range needs ⌊n/4⌋ to be a power of two,
// which excludes 12 and 14 — those use the Corollary-1 torus product
// (64×64 and 128×128; every axis embedded by Theorem 1) instead.
MultiPathEmbedding phase_embedding(int n) {
  if (cycle_multipath_supported(n)) return theorem1_cycle_embedding(n);
  const Node side = static_cast<Node>(1) << (n / 2);
  return grid_multipath_embedding(GridSpec{{side, side}, true});
}

void print_store_forward_table(bench::Report& report) {
  // The acceptance workload of the flat-arena PR: Theorem-1 phases with
  // p = n packets per guest edge on Q_12..Q_16.  Q_12 and Q_14 are not in
  // theorem1_cycle_embedding's direct range (⌊n/4⌋ must be a power of two),
  // so they run the Corollary-1 torus product — every axis embedded by
  // Theorem 1 — at 64×64 and 128×128; Q_16 is the direct Theorem-1 cycle.
  // "speedup" is map-reference seconds / flat seconds for the serial
  // simulator; the parallel column uses 4 shards.
  bench::Table t("S1: store-and-forward core — map reference vs flat arena",
                 {"n", "packets", "makespan", "Mhops", "ref ms", "flat ms",
                  "speedup", "ref Mhops/s", "flat Mhops/s", "par4 ms"});
  auto& reg = obs::MetricsRegistry::global();
  for (int n : {12, 14, 16}) {
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return phase_embedding(n);
    }();
    const auto packets = phase_packets(emb, n);
    const refsim::RefStoreForwardSim ref(n);
    const StoreForwardSim flat(n);
    const ParallelStoreForwardSim par(n, 4);

    SimResult rr, rf, rp;
    obs::ScopedTimer timer("simulate");
    const double s_ref = seconds_of([&] { rr = ref.run(packets); });
    const double s_flat = seconds_of([&] { rf = flat.run(packets); });
    const double s_par = seconds_of([&] { rp = par.run(packets); });
    if (rr.makespan != rf.makespan || rr.makespan != rp.makespan ||
        rr.total_transmissions != rf.total_transmissions) {
      std::fprintf(stderr, "FATAL: core variants disagree on n=%d\n", n);
      std::exit(1);
    }
    t.row(n, packets.size(), rf.makespan,
          static_cast<double>(rf.total_transmissions) / 1e6, s_ref * 1e3,
          s_flat * 1e3, s_ref / s_flat,
          mhops_per_sec(rr.total_transmissions, s_ref),
          mhops_per_sec(rf.total_transmissions, s_flat), s_par * 1e3);

    const std::string sn = std::to_string(n);
    reg.record_span("ref_serial_n" + sn, s_ref);
    reg.record_span("flat_serial_n" + sn, s_flat);
    reg.record_span("flat_parallel4_n" + sn, s_par);
    report.metric("makespan_n" + sn, rf.makespan);
    report.metric("hops_n" + sn, rf.total_transmissions);
    report.metric("link_visits_n" + sn, rf.link_visits);
    report.metric("max_queue_n" + sn, rf.max_queue);
  }
  t.print();
  report.table(t);
}

void print_tracing_table(bench::Report& report) {
  // Observation overhead of the flat core on the Q_12 phase workload:
  // trace sink (every event) and live telemetry (one ring-buffer sample
  // every period steps) against the plain run.  Both must leave the
  // simulation bit-identical; the sample counts are deterministic outputs
  // (gated by bench_compare), the overhead ratios are wall-clock and live
  // in the timings section only.  The telemetry acceptance bound is <= 5%
  // at the default period of 64.
  bench::Table t("S2: flat core observation overhead (tracing + telemetry)",
                 {"n", "packets", "plain ms", "traced ms", "tele64 ms",
                  "tele1 ms", "events", "samples64", "samples1"});
  const int n = 12;
  const auto emb = phase_embedding(n);
  const auto packets = phase_packets(emb, n);
  const StoreForwardSim flat(n);

  SimResult rp, rt, r64, r1;
  obs::RingBufferSink ring;
  obs::ScopedTimer timer("simulate");
  const double s_plain = seconds_of([&] { rp = flat.run(packets); });
  const double s_traced = seconds_of(
      [&] { rt = flat.run(packets, Arbitration::kFifo, 1 << 22, &ring); });

  // Telemetry at the default period and at the worst case (every step),
  // ring-only so no I/O rides the measurement.
  obs::TelemetryBus& bus = obs::TelemetryBus::global();
  const auto telemetry_run = [&](int period, SimResult* out) {
    obs::TelemetryBus::Config cfg;
    cfg.period_steps = period;
    bus.enable(cfg);
    const double s = seconds_of([&] { *out = flat.run(packets); });
    bus.disable();
    return s;
  };
  const double s_tele64 = telemetry_run(64, &r64);
  const std::uint64_t samples64 = bus.total_samples();
  const double s_tele1 = telemetry_run(1, &r1);
  const std::uint64_t samples1 = bus.total_samples();

  const auto same = [&](const SimResult& r) {
    return r.makespan == rp.makespan &&
           r.total_transmissions == rp.total_transmissions &&
           r.max_queue == rp.max_queue && r.link_visits == rp.link_visits &&
           r.dim_transmissions == rp.dim_transmissions &&
           r.latency == rp.latency && r.utilization == rp.utilization;
  };
  if (!same(rt) || !same(r64) || !same(r1)) {
    std::fprintf(stderr, "FATAL: observation changed the simulation\n");
    std::exit(1);
  }
  t.row(n, packets.size(), s_plain * 1e3, s_traced * 1e3, s_tele64 * 1e3,
        s_tele1 * 1e3, ring.total(), samples64, samples1);
  t.print();
  report.table(t);
  auto& reg = obs::MetricsRegistry::global();
  reg.record_span("flat_plain_n12", s_plain);
  reg.record_span("flat_traced_n12", s_traced);
  reg.record_span("flat_telemetry64_n12", s_tele64);
  reg.record_span("flat_telemetry1_n12", s_tele1);
  reg.record_span("telemetry64_overhead_ratio", s_tele64 / s_plain);
  reg.record_span("telemetry1_overhead_ratio", s_tele1 / s_plain);
  report.metric("trace_events_n12", ring.total());
  report.metric("telemetry_samples_p64_n12", samples64);
  report.metric("telemetry_samples_p1_n12", samples1);
}

void print_wormhole_table(bench::Report& report) {
  // Wormhole core on the bit-reversal permutation (the classic hard
  // pattern for dimension-ordered routes): map/set reference vs held-link
  // bitmap + compacted worm worklists.
  bench::Table t("S3: wormhole core — set reference vs bitmap worklists",
                 {"n", "worms", "flits", "makespan", "ref ms", "flat ms",
                  "speedup"});
  auto& reg = obs::MetricsRegistry::global();
  for (int n : {10, 12}) {
    const auto pattern = bit_reversal_pattern(n);
    const auto worms = ecube_worms(n, pattern, 32);
    const refsim::RefWormholeSim ref(n);
    const WormholeSim flat(n);

    WormResult rr, rf;
    obs::ScopedTimer timer("simulate");
    const double s_ref = seconds_of([&] { rr = ref.run(worms); });
    const double s_flat = seconds_of([&] { rf = flat.run(worms); });
    if (rr.makespan != rf.makespan ||
        rr.total_flit_hops != rf.total_flit_hops) {
      std::fprintf(stderr, "FATAL: wormhole variants disagree on n=%d\n", n);
      std::exit(1);
    }
    t.row(n, worms.size(), 32, rf.makespan, s_ref * 1e3, s_flat * 1e3,
          s_ref / s_flat);
    const std::string sn = std::to_string(n);
    reg.record_span("ref_wormhole_n" + sn, s_ref);
    reg.record_span("flat_wormhole_n" + sn, s_flat);
    report.metric("worm_makespan_n" + sn, rf.makespan);
    report.metric("worm_flit_hops_n" + sn, rf.total_flit_hops);
  }
  t.print();
  report.table(t);
}

void print_engine_table(bench::Report& report) {
  // S4: the retained flat-arena step loop (SimEngine::kFlatArena) against
  // the SoA route-plan kernel (kSoa, the production default) — same
  // Theorem-1 phase workloads as S1, untraced and fault-free, which is
  // exactly the branch-light specialization step_sweep<false, false>.
  // Every SimResult field must match bit-exactly (FATAL otherwise); the
  // packet-steps/second columns are the first-class throughput metric
  // (SimResult::packet_steps_per_sec) and land in the timings section as
  // pps_* spans so bench_runner --history and bench_trend chart them.
  bench::Table t("S4: step-sweep engine — flat arena vs SoA route plan",
                 {"n", "packets", "makespan", "flat ms", "soa ms", "speedup",
                  "flat Mpps", "soa Mpps"});
  auto& reg = obs::MetricsRegistry::global();
  for (int n : {12, 14, 16}) {
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return phase_embedding(n);
    }();
    const auto packets = phase_packets(emb, n);
    const StoreForwardSim flat(n, SimEngine::kFlatArena);
    const StoreForwardSim soa(n, SimEngine::kSoa);

    obs::ScopedTimer timer("simulate");
    // One warm-up pair so neither engine pays the cold-cache/page-fault
    // toll, then the measured pair.
    (void)flat.run(packets);
    (void)soa.run(packets);
    const SimResult rf = flat.run(packets);
    const SimResult rs = soa.run(packets);
    if (rf.makespan != rs.makespan ||
        rf.total_transmissions != rs.total_transmissions ||
        rf.max_queue != rs.max_queue || rf.link_visits != rs.link_visits ||
        rf.dim_transmissions != rs.dim_transmissions ||
        rf.latency != rs.latency || rf.utilization != rs.utilization) {
      std::fprintf(stderr, "FATAL: step-sweep engines disagree on n=%d\n", n);
      std::exit(1);
    }
    const double pps_flat = rf.packet_steps_per_sec();
    const double pps_soa = rs.packet_steps_per_sec();
    t.row(n, packets.size(), rs.makespan, rf.elapsed_seconds * 1e3,
          rs.elapsed_seconds * 1e3, rf.elapsed_seconds / rs.elapsed_seconds,
          pps_flat / 1e6, pps_soa / 1e6);

    const std::string sn = std::to_string(n);
    reg.record_span("flatengine_serial_n" + sn, rf.elapsed_seconds);
    reg.record_span("soa_serial_n" + sn, rs.elapsed_seconds);
    reg.record_span("pps_flat_serial_n" + sn, pps_flat);
    reg.record_span("pps_soa_serial_n" + sn, pps_soa);
    report.metric("s4_makespan_n" + sn, rs.makespan);
    report.metric("s4_hops_n" + sn, rs.total_transmissions);
    report.metric("s4_link_visits_n" + sn, rs.link_visits);
  }
  t.print();
  report.table(t);

  // The same comparison end-to-end: a 1000-trial Q_10 Monte-Carlo fault
  // campaign per engine (serial transport, threshold w-1, moderate
  // transient-heavy intensity).  The campaign digest folds every field of
  // every trial, so any behavioural difference anywhere in recovery —
  // fates, truncation steps, retransmit scheduling — trips the gate.
  const auto emb10 = [&] {
    obs::ScopedTimer timer("construct");
    return theorem1_cycle_embedding(10);
  }();
  CampaignConfig cfg;
  cfg.seed = 2026;
  cfg.trials = 1000;
  cfg.schedule.window = 8;
  cfg.schedule.link_rate = 0.05;
  cfg.schedule.transient_fraction = 0.5;
  cfg.recovery.timeout = 4;
  cfg.recovery.max_retries = 5;
  cfg.recovery.threshold = emb10.width() - 1;
  cfg.live_metrics = false;

  par::TaskPool pool(8);
  par::PoolScope scope(pool);
  const MonteCarloDriver driver(emb10);
  obs::ScopedTimer timer("simulate");
  cfg.recovery.engine = SimEngine::kFlatArena;
  double s_mc_flat = 0;
  CampaignStats mc_flat;
  s_mc_flat = seconds_of([&] { mc_flat = driver.run(cfg); });
  cfg.recovery.engine = SimEngine::kSoa;
  double s_mc_soa = 0;
  CampaignStats mc_soa;
  s_mc_soa = seconds_of([&] { mc_soa = driver.run(cfg); });
  if (mc_flat.digest != mc_soa.digest ||
      mc_flat.messages_complete != mc_soa.messages_complete ||
      mc_flat.retransmissions != mc_soa.retransmissions ||
      mc_flat.fragments_lost != mc_soa.fragments_lost ||
      mc_flat.max_makespan != mc_soa.max_makespan) {
    std::fprintf(stderr,
                 "FATAL: Monte-Carlo campaign diverges across engines "
                 "(digests %016llx / %016llx)\n",
                 static_cast<unsigned long long>(mc_flat.digest),
                 static_cast<unsigned long long>(mc_soa.digest));
    std::exit(1);
  }
  std::printf("S4 Monte-Carlo gate: Q_10 x %u trials, digest %016llx on "
              "both engines (flat %.2fs, soa %.2fs)\n\n",
              cfg.trials, static_cast<unsigned long long>(mc_soa.digest),
              s_mc_flat, s_mc_soa);
  reg.record_span("mc_flatengine_q10", s_mc_flat);
  reg.record_span("mc_soa_q10", s_mc_soa);
  // uint64 digests do not survive a JSON double round-trip (> 2^53): carry
  // the gated value as two exact 32-bit halves.
  report.metric("s4_mc_digest_hi", static_cast<std::uint64_t>(mc_soa.digest >> 32));
  report.metric("s4_mc_digest_lo",
                static_cast<std::uint64_t>(mc_soa.digest & 0xffffffffull));
  report.metric("s4_mc_messages_complete", mc_soa.messages_complete);
  report.metric("s4_mc_retransmissions", mc_soa.retransmissions);
}

void BM_FlatSerialPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto emb = phase_embedding(n);
  const auto packets = phase_packets(emb, n);
  const StoreForwardSim sim(n);
  std::uint64_t hops = 0;
  for (auto _ : state) {
    const auto r = sim.run(packets);
    benchmark::DoNotOptimize(r.makespan);
    hops += r.total_transmissions;
  }
  state.counters["hops/s"] = benchmark::Counter(
      static_cast<double>(hops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlatSerialPhase)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_RefSerialPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto emb = phase_embedding(n);
  const auto packets = phase_packets(emb, n);
  const refsim::RefStoreForwardSim sim(n);
  std::uint64_t hops = 0;
  for (auto _ : state) {
    const auto r = sim.run(packets);
    benchmark::DoNotOptimize(r.makespan);
    hops += r.total_transmissions;
  }
  state.counters["hops/s"] = benchmark::Counter(
      static_cast<double>(hops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RefSerialPhase)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_FlatParallelPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto emb = phase_embedding(n);
  const auto packets = phase_packets(emb, n);
  const ParallelStoreForwardSim sim(n, threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(packets).makespan);
  }
}
BENCHMARK(BM_FlatParallelPhase)
    ->Args({14, 2})
    ->Args({14, 4})
    ->Unit(benchmark::kMillisecond);

void BM_FlatWormhole(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto worms = ecube_worms(n, bit_reversal_pattern(n), 32);
  const WormholeSim sim(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(worms).makespan);
  }
}
BENCHMARK(BM_FlatWormhole)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("simcore", &argc, argv);
  hyperpath::print_store_forward_table(report);
  hyperpath::print_tracing_table(report);
  hyperpath::print_wormhole_table(report);
  hyperpath::print_engine_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
