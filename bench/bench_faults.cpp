// Experiment E14 (the fault-tolerance application, §1 and §9).
//
// A width-w bundle tolerates link faults structurally: with f random link
// faults we measure, over the Theorem 1 embedding's guest edges, how many
// still have ≥ 1, ≥ w−1 and all w paths alive — and how often IDA-coded
// transfers (threshold w−1 of w fragments) survive where a single-path
// embedding loses the edge outright.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "embed/classical.hpp"
#include "sim/faults.hpp"
#include "sim/ida.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  const int n = 8;
  const auto multi = [&] {
    obs::ScopedTimer timer("construct");
    return theorem1_cycle_embedding(n);
  }();
  const auto gray = gray_code_cycle_embedding(n);
  const int w = multi.width();
  const std::size_t edges = multi.guest().num_edges();

  bench::Table t(
      "E14: link faults on Q_8 — width-5 Theorem 1 vs width-1 Gray code",
      {"faults", "gray edges dead", "multi edges fully dead",
       "multi IDA-recoverable (w-1 of w)", "multi all paths alive"});
  Rng rng(1234);
  std::size_t last_gray_dead = 0, last_full_dead = 0, last_ida_ok = 0;
  for (int f : {1, 4, 16, 64, 128}) {
    const auto faults = FaultSet::random(n, f, rng);
    std::size_t gray_dead = 0;
    for (const auto& d : deliver_phase(faults, gray)) {
      gray_dead += (d.paths_alive == 0);
    }
    std::size_t full_dead = 0, ida_ok = 0, intact = 0;
    for (const auto& d : deliver_phase(faults, multi)) {
      full_dead += (d.paths_alive == 0);
      ida_ok += (d.paths_alive >= w - 1);
      intact += (d.paths_alive == d.paths_total);
    }
    last_gray_dead = gray_dead;
    last_full_dead = full_dead;
    last_ida_ok = ida_ok;
    t.row(f, std::to_string(gray_dead) + "/" + std::to_string(edges),
          std::to_string(full_dead) + "/" + std::to_string(edges),
          std::to_string(ida_ok) + "/" + std::to_string(edges),
          std::to_string(intact) + "/" + std::to_string(edges));
  }
  t.print();
  report.param("n", n);
  report.param("max_faults", 128);
  report.metric("gray_dead_at_128_faults", last_gray_dead);
  report.metric("multi_dead_at_128_faults", last_full_dead);
  report.metric("ida_recoverable_at_128_faults", last_ida_ok);
  report.table(t);

  // End-to-end check: one IDA transfer over a faulty bundle.
  const auto faults = FaultSet::random(n, 32, rng);
  std::vector<std::uint8_t> msg(4096);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const auto frags = ida_encode(msg, w, w - 1);
  std::size_t recovered = 0, attempted = 0;
  for (std::size_t e = 0; e < edges; ++e) {
    const auto bundle = multi.paths(e);
    std::vector<IdaFragment> got;
    for (int i = 0; i < w; ++i) {
      if (faults.path_alive(bundle[i])) got.push_back(frags[i]);
    }
    ++attempted;
    const auto decoded = ida_decode(got, w - 1, msg.size());
    recovered += (decoded.has_value() && *decoded == msg);
  }
  std::printf("IDA end-to-end: %zu/%zu guest edges recovered a 4 KiB message "
              "under 32 link faults\n\n",
              recovered, attempted);
  report.metric("ida_end_to_end_recovered", recovered);
  report.metric("ida_end_to_end_attempted", attempted);

  // Node faults: a dead processor takes out all 2n incident links at once,
  // so the damage per fault is much larger — but a width-w bundle still
  // tolerates any set of faults that spares one path (and the endpoints).
  bench::Table tn(
      "E14b: node faults on Q_8 — width-5 Theorem 1 vs width-1 Gray code",
      {"node faults", "gray edges dead", "multi edges fully dead",
       "multi IDA-recoverable (w-1 of w)", "multi all paths alive"});
  std::size_t last_gray_node_dead = 0, last_full_node_dead = 0,
              last_node_ida_ok = 0;
  for (int f : {1, 4, 16, 32}) {
    const auto faults = FaultSet::random_nodes(n, f, rng);
    std::size_t gray_dead = 0;
    for (const auto& d : deliver_phase(faults, gray)) {
      gray_dead += (d.paths_alive == 0);
    }
    std::size_t full_dead = 0, ida_ok = 0, intact = 0;
    for (const auto& d : deliver_phase(faults, multi)) {
      full_dead += (d.paths_alive == 0);
      ida_ok += (d.paths_alive >= w - 1);
      intact += (d.paths_alive == d.paths_total);
    }
    last_gray_node_dead = gray_dead;
    last_full_node_dead = full_dead;
    last_node_ida_ok = ida_ok;
    tn.row(f, std::to_string(gray_dead) + "/" + std::to_string(edges),
           std::to_string(full_dead) + "/" + std::to_string(edges),
           std::to_string(ida_ok) + "/" + std::to_string(edges),
           std::to_string(intact) + "/" + std::to_string(edges));
  }
  tn.print();
  report.metric("gray_dead_at_32_node_faults", last_gray_node_dead);
  report.metric("multi_dead_at_32_node_faults", last_full_node_dead);
  report.metric("ida_recoverable_at_32_node_faults", last_node_ida_ok);
  report.table(tn);
}

void BM_IdaEncode(benchmark::State& state) {
  std::vector<std::uint8_t> msg(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ida_encode(msg, 5, 4).size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IdaEncode)->Arg(4096)->Arg(65536);

void BM_FaultPhase(benchmark::State& state) {
  const auto multi = theorem1_cycle_embedding(8);
  Rng rng(5);
  const auto faults = FaultSet::random(8, 32, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deliver_phase(faults, multi).size());
  }
}
BENCHMARK(BM_FaultPhase);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("faults", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
