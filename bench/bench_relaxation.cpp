// Experiment E6 (Section 2 grid relaxation + Section 8.3 mapping choices).
//
// An M×M grid relaxation runs on an N×N process torus (N² hypercube
// nodes); each process exchanges its M/N boundary values with neighbors
// every step.  The paper's claim is asymptotic: Θ(M/(N log N)) per phase
// for the multipath mapping vs Θ(M/N) classical — a Θ(log N) speed-up.
//
// What is measurable at laptop scale: the multipath cost per packet is
// ≈ 3/w with w = ⌊log N/2⌋-ish paths per edge (≈ 6/w when both directions
// of every axis are active, since reverse traffic reuses the same detour
// dimensions), while the Gray-code cost per packet is a constant 1.  The
// table reports both absolute steps and the normalized cost·w product,
// which is flat — the Θ(1/ log N) trend — and the crossover prediction:
// multipath wins outright once w > 6 (bidirectional) or w > 3
// (unidirectional sweeps, e.g. wavefront relaxations), i.e. at larger N
// than a 2^24-node simulation can hold.  The unidirectional rows already
// show multipath ahead at N = 256.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/grid_multipath.hpp"
#include "embed/classical.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  {
    bench::Table t(
        "E6a: unidirectional sweep (wavefront) — steps per phase",
        {"N per side", "w", "M/N pkts", "gray steps", "multipath steps",
         "speed-up", "steps·w/pkts (≈3, flat)"});
    double last_norm_cost = 0.0;
    for (int a : {4, 6, 8}) {  // N = 2^a per side
      const Node n_side = Node{1} << a;
      const GridSpec spec{{n_side, n_side}, true};
      if (!grid_multipath_supported(spec)) continue;
      const auto multi = [&] {
        obs::ScopedTimer timer("construct");
        return grid_multipath_embedding(spec);
      }();
      const int w = multi.width();
      obs::ScopedTimer timer("simulate");
      // Gray unidirectional: same directed guest, width-1 direct links.
      for (int mn : {8, 32}) {
        const int gray_steps = mn;  // dedicated link per edge serializes
        const int ms = measure_phase_cost(multi, mn).makespan;
        last_norm_cost = static_cast<double>(ms) * w / mn;
        t.row(static_cast<int>(n_side), w, mn, gray_steps, ms,
              static_cast<double>(gray_steps) / ms, last_norm_cost);
      }
    }
    t.print();
    report.metric("unidir_norm_cost_largest", last_norm_cost);
    report.table(t);
  }
  {
    bench::Table t(
        "E6b: full 4-neighbor exchange — steps per phase",
        {"N per side", "M/N pkts", "gray steps", "multipath steps (2 dirs)",
         "norm. cost·w/(6·pkts)", "crossover (needs w>6 ⇒ N≥2^13)"});
    for (int a : {4, 5}) {
      const Node n_side = Node{1} << a;
      const GridSpec spec{{n_side, n_side}, true};
      if (!grid_multipath_supported(spec)) continue;
      const auto multi = [&] {
        obs::ScopedTimer timer("construct");
        return grid_multipath_embedding(spec);
      }();
      const auto gray = gray_code_grid_embedding(spec);
      const int w = multi.width();
      obs::ScopedTimer timer("simulate");
      for (int mn : {16, 64}) {
        const int gray_steps = measure_phase_cost(gray, mn).makespan;
        const int ms = 2 * measure_phase_cost(multi, mn).makespan;
        t.row(static_cast<int>(n_side), mn, gray_steps, ms,
              static_cast<double>(ms) * w / (6.0 * mn),
              w > 6 ? "yes" : "not yet");
      }
    }
    t.print();
    report.table(t);
  }
  std::printf(
      "Section 8.3 traffic totals (analytic): point-per-process large-copy "
      "O(M^2); blocked multipath O(MN); blocked large-copy O(MN log N).\n\n");
}

void BM_RelaxPhaseGray(benchmark::State& state) {
  const auto gray = gray_code_grid_embedding(GridSpec{{16, 16}, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_phase_cost(gray, 16).makespan);
  }
}
BENCHMARK(BM_RelaxPhaseGray);

void BM_RelaxPhaseMultipath(benchmark::State& state) {
  const auto multi = grid_multipath_embedding(GridSpec{{16, 16}, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_phase_cost(multi, 16).makespan);
  }
}
BENCHMARK(BM_RelaxPhaseMultipath);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("relaxation", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
