// Experiment E7 (Lemma 1 / §3.1, after Alspach–Bermond–Sotteau).
//
// Hamiltonian decompositions of Q_n: ⌊n/2⌋ edge-disjoint Hamiltonian
// cycles (+ a perfect matching for odd n), re-oriented into the 2⌊n/2⌋
// directed Hamiltonian cycles of Lemma 1 with dilation 1 and joint
// congestion 1.  Also times the constructive solver itself.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/table.hpp"
#include "embed/classical.hpp"
#include "hamdecomp/decomposition.hpp"
#include "hamdecomp/solver.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  bench::Table t("E7: Lemma 1 — multiple-copy directed Hamiltonian cycles",
                 {"n", "undirected cycles", "matching", "directed copies",
                  "dilation", "joint congestion", "1-pkt phase cost",
                  "link util (even n: 1.0)"});
  int worst_congestion = 0;
  int worst_cost = 0;
  for (int n : {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}) {
    const auto& d = [&]() -> const HamDecomposition& {
      obs::ScopedTimer timer("construct");
      return hamiltonian_decomposition(n);
    }();
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return multicopy_directed_cycles(n);
    }();
    obs::ScopedTimer timer("simulate");
    const auto r = measure_phase_cost(emb, 1);
    worst_congestion = std::max(worst_congestion, emb.edge_congestion());
    worst_cost = std::max(worst_cost, r.makespan);
    t.row(n, d.cycles.size(), d.matching.size(), emb.num_copies(),
          emb.dilation(), emb.edge_congestion(), r.makespan,
          r.utilization.empty() ? 0.0 : r.utilization.profile()[0]);
  }
  t.print();
  report.param("dims_max", 13);
  report.metric("worst_joint_congestion", worst_congestion);
  report.metric("worst_phase_cost", worst_cost);
  report.table(t);
}

void BM_SolveEvenDecomposition(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_even_decomposition(dims, seed++).cycles.size());
  }
}
BENCHMARK(BM_SolveEvenDecomposition)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_SpliceOdd(benchmark::State& state) {
  const auto& even = hamiltonian_decomposition(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(splice_odd_decomposition(even).cycles.size());
  }
}
BENCHMARK(BM_SpliceOdd);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("hamdecomp", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
