// Infrastructure benchmark: thread-parallel phase simulation.
//
// Not a paper experiment — this measures the simulator itself: the sharded
// parallel store-and-forward simulator must match the serial one bit for
// bit (tests enforce that) and should win wall-clock on large phases.  The
// table also measures tracing overhead: a traced run (flight recorder
// assembling per-packet records in-line) against the untraced baseline,
// and confirms makespans agree.  Flight-record summaries (queue-wait
// percentiles, critical-path length) are exported as exact gated metrics —
// traced parallel runs are bit-identical to serial, so every one of them
// is thread-count invariant.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_table(bench::Report& report) {
  bench::Table t("E15: parallel simulator — serial vs sharded vs traced",
                 {"n", "packets", "makespan", "serial ms", "parallel ms (4t)",
                  "speedup", "traced ms", "trace events"});
  for (int n : {10, 16}) {
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return theorem1_cycle_embedding(n);
    }();
    const auto packets = phase_packets(emb, n);
    StoreForwardSim serial(n);
    ParallelStoreForwardSim parallel(n, 4);

    SimResult rs, rp, rt;
    obs::FlightRecorder rec;
    obs::ScopedTimer timer("simulate");
    const double s_serial = seconds_of([&] { rs = serial.run(packets); });
    const double s_par = seconds_of([&] { rp = parallel.run(packets); });
    const double s_traced = seconds_of([&] {
      rt = serial.run(packets, Arbitration::kFifo, 1 << 22, &rec);
    });
    if (rs.makespan != rp.makespan || rs.makespan != rt.makespan) {
      std::fprintf(stderr, "FATAL: simulator variants disagree on n=%d\n", n);
      std::exit(1);
    }
    const obs::TraceAnalysis a = obs::analyze_flights(rec);
    if (a.makespan != rt.makespan || a.delivered != rt.latency.count() ||
        a.inconsistencies != 0 || a.depth_mismatches != 0) {
      std::fprintf(stderr, "FATAL: flight records disagree on n=%d\n", n);
      std::exit(1);
    }
    t.row(n, packets.size(), rs.makespan, s_serial * 1e3, s_par * 1e3,
          s_serial / s_par, s_traced * 1e3, rec.events_seen());
    // Wall-clock goes into the timings section (compared only with an
    // explicit --timing-tol), never into metrics: the bench_compare CI
    // gate holds metrics to exact equality, which only deterministic
    // simulation outputs can satisfy.
    auto& reg = obs::MetricsRegistry::global();
    reg.record_span("serial_n" + std::to_string(n), s_serial);
    reg.record_span("parallel_n" + std::to_string(n), s_par);
    reg.record_span("traced_n" + std::to_string(n), s_traced);
    const std::string suffix = "_n" + std::to_string(n);
    report.metric("makespan" + suffix, rs.makespan);
    report.metric("trace_events" + suffix, rec.events_seen());
    report.metric("queue_wait_p50" + suffix, a.queue_wait.quantile(0.5));
    report.metric("queue_wait_p99" + suffix, a.queue_wait.quantile(0.99));
    report.metric("critical_path" + suffix, a.critical_path.length());
    report.metric("critical_path_handoffs" + suffix,
                  a.critical_path.handoffs);
    report.metric("peak_congestion" + suffix, a.peak_congestion);
  }
  t.print();
  report.param("threads", 4);
  report.table(t);
}

void BM_SerialPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, n);
  StoreForwardSim sim(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(packets).makespan);
  }
}
BENCHMARK(BM_SerialPhase)->Arg(10)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ParallelPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, n);
  ParallelStoreForwardSim sim(n, threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(packets).makespan);
  }
}
BENCHMARK(BM_ParallelPhase)
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

void BM_TracedSerialPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, n);
  StoreForwardSim sim(n);
  obs::RingBufferSink ring;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.run(packets, Arbitration::kFifo, 1 << 22, &ring).makespan);
  }
}
BENCHMARK(BM_TracedSerialPhase)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("parallel_sim", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
