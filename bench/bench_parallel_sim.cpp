// Infrastructure benchmark: thread-parallel phase simulation.
//
// Not a paper experiment — this measures the simulator itself: the sharded
// parallel store-and-forward simulator must match the serial one bit for
// bit (tests enforce that) and should win wall-clock on large phases.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void BM_SerialPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, n);
  StoreForwardSim sim(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(packets).makespan);
  }
}
BENCHMARK(BM_SerialPhase)->Arg(10)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_ParallelPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, n);
  ParallelStoreForwardSim sim(n, threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(packets).makespan);
  }
}
BENCHMARK(BM_ParallelPhase)
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hyperpath

BENCHMARK_MAIN();
