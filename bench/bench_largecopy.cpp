// Experiment E13 (Corollary 3, Lemma 9, §8.2 comparison).
//
// Large-copy embeddings: dilation-1, congestion ≤ 2 packings that use every
// link without forwarding, at the price of load n — and the §8.2
// three-family comparison for cycle workloads.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "core/largecopy.hpp"
#include "embed/classical.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  {
    bench::Table t("E13a: large-copy embeddings (Corollary 3, Lemma 9)",
                   {"guest", "n", "guest nodes", "load", "dilation",
                    "congestion", "1-pkt cost", "link util"});
    double cycle_util_at_8 = 0.0;
    for (int n : {4, 6, 8}) {
      const auto cyc = [&] {
        obs::ScopedTimer timer("construct");
        return largecopy_directed_cycle(n);
      }();
      const auto r = measure_phase_cost(cyc, 1);
      const double util =
          r.utilization.empty() ? 0.0 : r.utilization.profile()[0];
      if (n == 8) cycle_util_at_8 = util;
      t.row("directed cycle", n, cyc.guest().num_nodes(), cyc.load(),
            cyc.dilation(), cyc.congestion(), r.makespan, util);
    }
    for (int n : {4, 6}) {
      const auto ccc = [&] {
        obs::ScopedTimer timer("construct");
        return largecopy_ccc(n);
      }();
      const auto r = measure_phase_cost(ccc, 1);
      t.row("CCC", n, ccc.guest().num_nodes(), ccc.load(), ccc.dilation(),
            ccc.congestion(), r.makespan,
            r.utilization.empty() ? 0.0 : r.utilization.profile()[0]);
      const auto bf = largecopy_butterfly(n);
      t.row("butterfly", n, bf.guest().num_nodes(), bf.load(), bf.dilation(),
            bf.congestion(), measure_phase_cost(bf, 1).makespan, "");
      const auto fft = largecopy_fft(n);
      t.row("FFT", n, fft.guest().num_nodes(), fft.load(), fft.dilation(),
            fft.congestion(), measure_phase_cost(fft, 1).makespan, "");
    }
    t.print();
    report.metric("directed_cycle_util_q8", cycle_util_at_8);
    report.table(t);
  }
  {
    // §8.2: three ways to run cycle traffic with m packets per guest edge.
    const int n = 8;
    bench::Table t(
        "E13b: §8.2 comparison — cycle traffic on Q_8, m packets/edge",
        {"method", "guest nodes", "load", "m", "steps", "forwarding?"});
    const auto multi = theorem1_cycle_embedding(n);
    const auto kcopy = multicopy_directed_cycles(n);
    const auto large = largecopy_directed_cycle(n);
    obs::ScopedTimer timer("simulate");
    int multi_steps_16 = 0, large_steps_16 = 0;
    for (int m : {4, 16}) {
      StoreForwardSim sim(n);
      const int s_multi = sim.run(theorem1_schedule_packets(multi, m)).makespan;
      const int s_large = measure_phase_cost(large, m).makespan;
      if (m == 16) {
        multi_steps_16 = s_multi;
        large_steps_16 = s_large;
      }
      t.row("multipath (Thm 1)", multi.guest().num_nodes(), multi.load(), m,
            s_multi, "yes (3-step paths)");
      t.row("multicopy (Lem 1)", kcopy.guest().num_nodes(), "n", m,
            measure_phase_cost(kcopy, m).makespan, "no");
      t.row("large-copy (Cor 3)", large.guest().num_nodes(), large.load(), m,
            s_large, "no");
    }
    t.print();
    report.metric("multipath_steps_m16", multi_steps_16);
    report.metric("largecopy_steps_m16", large_steps_16);
    report.table(t);
  }
}

void BM_LargeCopyCycle(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(largecopy_directed_cycle(8).load());
  }
}
BENCHMARK(BM_LargeCopyCycle);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("largecopy", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
