// Experiment E5 (Corollaries 1–2, Section 4.5).
//
// k-axis grids and tori via cross products of Theorem 1 embeddings: width
// ⌊⌈log L⌉/2⌋ (2⌊a/4⌋+1 paths built per axis), cost 3, expansion from
// per-axis power-of-two rounding.  The paper's grid-squaring route to O(1)
// expansion for unequal sides is substituted by rounding (see DESIGN.md;
// the paper itself lists unequal sides as open in Section 9).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/table.hpp"
#include "core/grid_multipath.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

std::string spec_name(const GridSpec& s) {
  std::string out;
  for (std::size_t i = 0; i < s.sides.size(); ++i) {
    if (i) out += "x";
    out += std::to_string(s.sides[i]);
  }
  return out + (s.wrap ? " torus" : " grid");
}

void print_table(bench::Report& report) {
  bench::Table t("E5: grid/torus multipath embeddings (Corollary 1)",
                 {"guest", "host dims", "width", "load", "expansion",
                  "cost@⌊a/2⌋ pkts (paper: 3)"});
  const std::vector<GridSpec> specs = {
      {{16, 16}, true},   {{16, 16}, false},  {{32, 32}, true},
      {{16, 16, 16}, true}, {{10, 16}, false}, {{20, 30}, false},
  };
  int built = 0, worst_cost = 0;
  double worst_expansion = 0;
  for (const auto& spec : specs) {
    if (!grid_multipath_supported(spec)) continue;
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return grid_multipath_embedding(spec);
    }();
    obs::ScopedTimer timer("simulate");
    const auto r = measure_phase_cost(emb, 2);
    ++built;
    worst_cost = std::max(worst_cost, r.makespan);
    worst_expansion = std::max(worst_expansion, emb.expansion());
    t.row(spec_name(spec), emb.host().dims(), emb.width(), emb.load(),
          emb.expansion(), r.makespan);
  }
  t.print();
  report.param("specs", static_cast<int>(specs.size()));
  report.param("packets_per_edge", 2);
  report.metric("embeddings_built", built);
  report.metric("worst_phase_cost", worst_cost);
  report.metric("worst_expansion", worst_expansion);
  report.table(t);
}

void BM_GridConstruct(benchmark::State& state) {
  const GridSpec spec{{16, 16}, true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid_multipath_embedding(spec).width());
  }
}
BENCHMARK(BM_GridConstruct);

void BM_GridPhase(benchmark::State& state) {
  const auto emb = grid_multipath_embedding(GridSpec{{16, 16}, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_phase_cost(emb, 2).makespan);
  }
}
BENCHMARK(BM_GridPhase);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("grids", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
