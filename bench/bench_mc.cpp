// Experiment E18: Monte-Carlo reliability campaigns (§1/§9 as a measured
// failure envelope instead of one anecdotal schedule).
//
// Thousands of independent trials — each with its own seeded random timed
// fault schedule — fan across the work-stealing pool.  Three gates run
// before any number is reported:
//
//   1. Determinism: the Q_8 and Q_10 campaign statistics (digest, every
//      count, every histogram) must be bit-identical at 1, 2 and 8 pool
//      threads.  The digest is a wrapping sum of position-mixed per-trial
//      hashes, so any divergence in any trial at any thread count trips it.
//   2. Reliability dominance: sweeping the fault intensity, the Theorem 1
//      width-5 bundle with IDA dispersal must deliver at least as well as
//      the width-1 Gray-code embedding at every point of the envelope.
//   3. Congestion bracket: a fault-free trial's measured peak congestion
//      (reconstructed from flight records) must sit inside the analytic
//      floor/ceiling of core/lower_bounds.hpp — wave-0 of recovery is
//      exactly the w-packet phase workload, one fragment per bundle path.
//
// The reported envelope then gives the critical fault rate: the intensity
// where each embedding's delivery first drops below 99%.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "core/lower_bounds.hpp"
#include "embed/classical.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight.hpp"
#include "par/task_pool.hpp"
#include "sim/montecarlo.hpp"

namespace hyperpath {
namespace {

constexpr std::uint64_t kCampaignSeed = 2026;
constexpr std::uint32_t kCampaignTrials = 1000;

/// The campaign every gate runs: moderate transient-heavy fault intensity,
/// IDA threshold w-1, short detection timeout so recovery dominates.
CampaignConfig campaign_config(const MultiPathEmbedding& emb) {
  CampaignConfig cfg;
  cfg.seed = kCampaignSeed;
  cfg.trials = kCampaignTrials;
  cfg.schedule.window = 8;
  cfg.schedule.link_rate = 0.05;
  cfg.schedule.transient_fraction = 0.5;
  cfg.recovery.timeout = 4;
  cfg.recovery.max_retries = 5;
  cfg.recovery.threshold = emb.width() - 1;
  cfg.live_metrics = false;  // gates re-run the campaign; don't double-count
  return cfg;
}

bool same_stats(const CampaignStats& a, const CampaignStats& b) {
  return a.digest == b.digest && a.trials == b.trials &&
         a.schedule_events == b.schedule_events &&
         a.messages_total == b.messages_total &&
         a.messages_complete == b.messages_complete &&
         a.messages_recovered == b.messages_recovered &&
         a.retransmissions == b.retransmissions &&
         a.fragments_lost == b.fragments_lost &&
         a.fragments_exhausted == b.fragments_exhausted &&
         a.trials_fully_delivered == b.trials_fully_delivered &&
         a.max_makespan == b.max_makespan && a.max_waves == b.max_waves &&
         a.recovery_latency == b.recovery_latency &&
         a.retransmit_generations == b.retransmit_generations &&
         a.trial_makespan == b.trial_makespan &&
         a.delivery_permille == b.delivery_permille;
}

/// Runs the campaign under a pool of `threads` workers.
CampaignStats run_at(const MultiPathEmbedding& emb, const CampaignConfig& cfg,
                     int threads) {
  par::TaskPool pool(threads);
  par::PoolScope scope(pool);
  return MonteCarloDriver(emb).run(cfg);
}

/// Gate 1: thread-count invariance of the whole campaign statistic set.
CampaignStats gated_campaign(const char* name, const MultiPathEmbedding& emb,
                             const CampaignConfig& cfg) {
  obs::ScopedTimer timer("simulate");
  const CampaignStats t1 = run_at(emb, cfg, 1);
  const CampaignStats t2 = run_at(emb, cfg, 2);
  const CampaignStats t8 = run_at(emb, cfg, 8);
  if (!same_stats(t1, t2) || !same_stats(t1, t8)) {
    std::fprintf(stderr,
                 "FATAL: %s campaign diverges across thread counts "
                 "(digests %llx / %llx / %llx)\n",
                 name, static_cast<unsigned long long>(t1.digest),
                 static_cast<unsigned long long>(t2.digest),
                 static_cast<unsigned long long>(t8.digest));
    std::exit(1);
  }
  return t1;
}

/// uint64 digests do not survive a JSON double round-trip (> 2^53), so the
/// report carries each digest as two exact 32-bit halves.
void report_digest(bench::Report& report, const std::string& prefix,
                   std::uint64_t digest) {
  report.metric(prefix + "_digest_hi",
                static_cast<std::uint64_t>(digest >> 32));
  report.metric(prefix + "_digest_lo",
                static_cast<std::uint64_t>(digest & 0xffffffffull));
}

void report_campaign(bench::Report& report, const std::string& prefix,
                     const CampaignStats& s) {
  report_digest(report, prefix, s.digest);
  report.metric(prefix + "_trials", s.trials);
  report.metric(prefix + "_schedule_events", s.schedule_events);
  report.metric(prefix + "_messages_total", s.messages_total);
  report.metric(prefix + "_messages_complete", s.messages_complete);
  report.metric(prefix + "_messages_recovered", s.messages_recovered);
  report.metric(prefix + "_retransmissions", s.retransmissions);
  report.metric(prefix + "_fragments_exhausted", s.fragments_exhausted);
  report.metric(prefix + "_delivery_rate", s.delivery_rate());
  report.metric(prefix + "_survival_rate", s.survival_rate());
  report.metric(prefix + "_max_makespan", s.max_makespan);
  report.metric(prefix + "_max_waves", s.max_waves);
  report.metric(prefix + "_recovery_latency_mean", s.recovery_latency.mean());
  report.metric(prefix + "_recovery_latency_max", s.recovery_latency.max());
  report.metric(prefix + "_retransmit_generations_mean",
                s.retransmit_generations.mean());
}

/// Gate 3: wave 0 of a fault-free trial is the p = w phase workload
/// (round-robin puts exactly one packet on each bundle path), so its
/// flight-measured peak congestion must obey the analytic bracket.
void congestion_bracket(bench::Report& report, const MultiPathEmbedding& emb,
                        const CampaignConfig& cfg) {
  Rng rng(trial_seed(cfg.seed, 0));
  RandomScheduleSpec calm = cfg.schedule;
  calm.link_rate = 0;
  calm.node_rate = 0;
  const FaultSchedule schedule =
      FaultSchedule::random(emb.host().dims(), calm, rng);
  RecoveryConfig rcfg = cfg.recovery;
  rcfg.update_registry = false;
  obs::FlightRecorder rec;
  const RecoveryResult r = run_recovery(emb, schedule, rcfg, &rec);
  const obs::TraceAnalysis a = obs::analyze_flights(rec);
  const PhaseCongestionBounds bounds =
      phase_congestion_bounds(emb, emb.width());
  if (r.messages_complete != r.messages_total || a.inconsistencies != 0 ||
      !bounds.contains(static_cast<std::int64_t>(a.peak_congestion))) {
    std::fprintf(stderr,
                 "FATAL: fault-free campaign trial outside congestion "
                 "bracket: peak %llu not in [%lld, %lld] (delivered %zu/%zu, "
                 "%llu inconsistencies)\n",
                 static_cast<unsigned long long>(a.peak_congestion),
                 static_cast<long long>(bounds.floor),
                 static_cast<long long>(bounds.ceiling), r.messages_complete,
                 r.messages_total,
                 static_cast<unsigned long long>(a.inconsistencies));
    std::exit(1);
  }
  std::printf("congestion bracket: fault-free peak %llu in [%lld, %lld]\n\n",
              static_cast<unsigned long long>(a.peak_congestion),
              static_cast<long long>(bounds.floor),
              static_cast<long long>(bounds.ceiling));
  report.metric("congestion_floor", bounds.floor);
  report.metric("congestion_ceiling", bounds.ceiling);
  report.metric("congestion_peak", a.peak_congestion);
  report.metric("congestion_in_bounds",
                bounds.contains(static_cast<std::int64_t>(a.peak_congestion))
                    ? 1
                    : 0);
}

std::string rate_tag(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "r%03d",
                static_cast<int>(rate * 1000 + 0.5));
  return buf;
}

void print_table(bench::Report& report) {
  const int n = 8;
  const auto multi = [&] {
    obs::ScopedTimer timer("construct");
    return theorem1_cycle_embedding(n);
  }();
  const auto gray = gray_code_cycle_embedding(n);
  const auto multi10 = theorem1_cycle_embedding(10);

  const CampaignConfig cfg8 = campaign_config(multi);
  const CampaignConfig cfg10 = campaign_config(multi10);

  // Gate 1 on both hosts, then the full streamed statistics of each.
  const CampaignStats q8 = gated_campaign("Q_8", multi, cfg8);
  const CampaignStats q10 = gated_campaign("Q_10", multi10, cfg10);

  bench::Table t(
      "E18: Monte-Carlo fault campaigns (1000 trials, link rate 0.05)",
      {"host", "width", "trials", "delivery", "survival", "retransmits",
       "exhausted", "rec lat mean", "max waves", "digest"});
  const auto campaign_row = [&](const char* host, int width,
                                const CampaignStats& s) {
    char digest[20];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(s.digest));
    t.row(host, width, s.trials, s.delivery_rate(), s.survival_rate(),
          s.retransmissions, s.fragments_exhausted, s.recovery_latency.mean(),
          s.max_waves, std::string(digest));
  };
  campaign_row("Q_8", multi.width(), q8);
  campaign_row("Q_10", multi10.width(), q10);
  t.print();

  report.param("n", n);
  report.param("width", multi.width());
  report.param("trials", kCampaignTrials);
  report.param("seed", kCampaignSeed);
  report.param("link_rate", cfg8.schedule.link_rate);
  report.param("timeout", cfg8.recovery.timeout);
  report.param("max_retries", cfg8.recovery.max_retries);
  report_campaign(report, "q8", q8);
  report_campaign(report, "q10", q10);

  // Gate 2: the failure envelope.  Same seeds at every intensity (common
  // random numbers), theorem1+ida vs gray on Q_8.
  const std::vector<double> rates = {0.01, 0.03, 0.06, 0.10,
                                     0.15, 0.22, 0.32, 0.45};
  CampaignConfig env_cfg = cfg8;
  env_cfg.trials = 250;
  CampaignConfig gray_cfg = env_cfg;
  gray_cfg.recovery.threshold = 0;  // width 1: every fragment must arrive

  par::TaskPool pool(8);
  par::PoolScope scope(pool);
  const auto multi_env = [&] {
    obs::ScopedTimer timer("simulate");
    return sweep_envelope(multi, env_cfg, rates);
  }();
  const auto gray_env = sweep_envelope(gray, gray_cfg, rates);

  bench::Table e("E18: failure envelope on Q_8 (250 trials per point)",
                 {"link rate", "multi delivery", "multi survival",
                  "gray delivery", "gray survival", "advantage"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double md = multi_env[i].stats.delivery_rate();
    const double gd = gray_env[i].stats.delivery_rate();
    if (md < gd) {
      std::fprintf(stderr,
                   "FATAL: theorem1+ida delivery %.4f below gray %.4f at "
                   "link rate %.2f\n",
                   md, gd, rates[i]);
      std::exit(1);
    }
    e.row(rates[i], md, multi_env[i].stats.survival_rate(), gd,
          gray_env[i].stats.survival_rate(), md - gd);
    const std::string tag = rate_tag(rates[i]);
    report.metric("multi_delivery_" + tag, md);
    report.metric("multi_survival_" + tag,
                  multi_env[i].stats.survival_rate());
    report.metric("gray_delivery_" + tag, gd);
    report.metric("gray_survival_" + tag, gray_env[i].stats.survival_rate());
  }
  e.print();

  const double multi_critical = critical_fault_rate(multi_env, 0.99);
  const double gray_critical = critical_fault_rate(gray_env, 0.99);
  std::printf("critical link rate (delivery < 99%%): theorem1+ida %.4f, "
              "gray %.4f\n\n",
              multi_critical, gray_critical);
  report.metric("multi_critical_rate", multi_critical);
  report.metric("gray_critical_rate", gray_critical);

  congestion_bracket(report, multi, cfg8);

  report.table(t);
  report.table(e);
}

void BM_CampaignQ8(benchmark::State& state) {
  const auto emb = theorem1_cycle_embedding(8);
  CampaignConfig cfg = campaign_config(emb);
  cfg.trials = static_cast<std::uint32_t>(state.range(0));
  const MonteCarloDriver driver(emb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver.run(cfg).digest);
  }
  state.SetItemsProcessed(state.iterations() * cfg.trials);
}
BENCHMARK(BM_CampaignQ8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_CampaignTrial(benchmark::State& state) {
  const auto emb = theorem1_cycle_embedding(8);
  const CampaignConfig cfg = campaign_config(emb);
  const MonteCarloDriver driver(emb);
  std::uint32_t trial = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        driver.run_trial(cfg, trial++ % cfg.trials).messages_complete);
  }
}
BENCHMARK(BM_CampaignTrial)->Unit(benchmark::kMicrosecond);

void BM_RandomSchedule(benchmark::State& state) {
  RandomScheduleSpec spec;
  spec.link_rate = 0.05;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultSchedule::random(10, spec, rng).size());
  }
}
BENCHMARK(BM_RandomSchedule);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("mc", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
