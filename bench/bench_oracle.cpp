// PathOracle benchmark: algebraic closed-form routing vs the materialized
// pipeline (DESIGN.md §10).
//
// Three claims, each FATAL-gated so CI fails loudly instead of recording a
// regression:
//
//   O1 — the algebraic backend is bit-identical to the materialized one
//        where both exist (sample digests must match at n ≤ 16).
//   O2 — time-to-first-route and peak RSS: the algebraic oracle answers
//        its first route in O(1) state, the materialized pipeline builds
//        every bundle first.  Gates at Q_20: ≥ 10× lower TTFR, ≥ 5× lower
//        RSS (measured margins are orders of magnitude beyond both).
//   O3 — a Q_24 store-and-forward phase runs end to end from the algebraic
//        backend alone, every packet delivered, measured peak congestion
//        at or above the analytic floor (core/lower_bounds), inside a
//        2 GiB RSS budget.
//
// Metric discipline: everything in the metrics section is a deterministic
// algorithmic output (digests, counts, makespans, gate booleans) held to
// exact equality by bench_compare; wall-clock seconds and RSS deltas are
// machine-dependent and go to record_span timings, which the ledger
// records and bench_trend reports without gating.
//
// RSS note: getrusage's ru_maxrss is a process-lifetime high-water mark,
// so phases are measured as deltas and the algebraic (small) measurements
// run before the materialized (large) ones — growth only registers beyond
// the previous peak, which is exactly the order that keeps every delta
// meaningful.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "bench/table.hpp"
#include "core/algebraic_oracle.hpp"
#include "core/cycle_multipath.hpp"
#include "core/grid_multipath.hpp"
#include "core/lower_bounds.hpp"
#include "embed/path_oracle.hpp"
#include "obs/metrics.hpp"
#include "sim/oracle_sim.hpp"

namespace hyperpath {
namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double rss_kb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_maxrss);  // KiB on Linux
}

/// Sink that counts hops without storing them — the streaming throughput
/// measurement (no allocation per path, like a real RoutePlan consumer).
class CountingSink final : public NodeSink {
 public:
  void push(Node v) override {
    ++nodes_;
    checksum_ ^= v;
  }
  std::uint64_t nodes() const { return nodes_; }
  Node checksum() const { return checksum_; }

 private:
  std::uint64_t nodes_ = 0;
  Node checksum_ = 0;
};

// O1: backend equivalence digests.  The property suite checks every edge
// exhaustively; the bench re-checks a seeded sample on both backends and
// FATALs on digest mismatch, so a broken generator can never publish
// numbers.
void print_equivalence_table(bench::Report& report) {
  bench::Table t("O1: backend equivalence — sampled digests, both backends",
                 {"family", "host", "edges", "paths", "digest", "match"});
  struct Case {
    const char* tag;
    std::function<MultiPathEmbedding()> build;
    std::function<std::unique_ptr<PathOracle>()> oracle;
  };
  const Case cases[] = {
      {"theorem1_n8", [] { return theorem1_cycle_embedding(8); },
       [] { return algebraic_theorem1_oracle(8); }},
      {"theorem1_n16", [] { return theorem1_cycle_embedding(16); },
       [] { return algebraic_theorem1_oracle(16); }},
      {"torus_64x16",
       [] { return grid_multipath_embedding(GridSpec{{64, 16}, true}); },
       [] { return algebraic_grid_oracle(GridSpec{{64, 16}, true}); }},
  };
  for (const Case& c : cases) {
    const auto alg = c.oracle();
    const MultiPathEmbedding emb = c.build();
    const MaterializedOracle mat(emb);
    const OracleSampleReport ra = oracle_sample_check(*alg, 256, 42);
    const OracleSampleReport rm = oracle_sample_check(mat, 256, 42);
    const bool match = ra.node_digest == rm.node_digest &&
                       ra.hops_checked == rm.hops_checked;
    if (!match) {
      std::fprintf(stderr, "FATAL: %s algebraic/materialized digests differ\n",
                   c.tag);
      std::exit(1);
    }
    char digest[20];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(ra.node_digest));
    t.row(c.tag, alg->host_dims(), ra.edges_checked, ra.paths_checked,
          std::string(digest), "yes");
    const std::string tag = c.tag;
    report.metric("digest_hi_" + tag,
                  static_cast<std::uint64_t>(ra.node_digest >> 32));
    report.metric("digest_lo_" + tag,
                  static_cast<std::uint64_t>(ra.node_digest & 0xffffffffull));
    report.metric("equiv_" + tag, 1);
  }
  t.print();
  report.table(t);
}

// O2: time-to-first-route and peak RSS, materialized vs algebraic,
// Q_12..Q_24.  TTFR is cold-start: construct the backend AND answer one
// bundle-path query.  The materialized column at Q_24 would need tens of
// GiB and is skipped — which is the point of the oracle.
void print_ttfr_table(bench::Report& report) {
  bench::Table t("O2: time-to-first-route and peak RSS — mat vs alg",
                 {"host", "mat ms", "alg ms", "ttfr ratio", "mat MB",
                  "alg MB", "rss ratio", "alg Mpaths/s"});
  auto& reg = obs::MetricsRegistry::global();

  struct Case {
    const char* tag;
    int dims;
    GridSpec spec;
    bool materialize;
  };
  const Case cases[] = {
      {"q12", 12, GridSpec{{64, 64}, true}, true},
      {"q16", 16, GridSpec{{256, 256}, true}, true},
      {"q20", 20, GridSpec{{1024, 1024}, true}, true},
      {"q24", 24, GridSpec{{256, 256, 256}, true}, false},
  };

  for (const Case& c : cases) {
    // Algebraic first (RSS ordering, see header comment).
    const double alg_rss0 = rss_kb();
    HostPath first;
    const double s_alg = seconds_of([&] {
      const auto oracle = algebraic_grid_oracle(c.spec);
      const OracleEdge e = oracle->out_edge(0, 0);
      first = oracle->path_vec(e, 0);
    });
    const double alg_rss = rss_kb() - alg_rss0;

    // Streaming throughput: every bundle path of a seeded edge sample.
    const auto oracle = algebraic_grid_oracle(c.spec);
    const auto edges = sample_guest_edges(*oracle, 20000, 11);
    CountingSink sink;
    std::uint64_t paths = 0;
    const double s_stream = seconds_of([&] {
      for (const OracleEdge& e : edges) {
        const int w = oracle->width(e);
        for (int i = 0; i < w; ++i) {
          oracle->path(e, i, sink);
          ++paths;
        }
      }
    });
    const double mpaths = static_cast<double>(paths) / s_stream / 1e6;

    double s_mat = 0.0, mat_rss = 0.0;
    if (c.materialize) {
      const double mat_rss0 = rss_kb();
      s_mat = seconds_of([&] {
        const MultiPathEmbedding emb = grid_multipath_embedding(c.spec);
        const MaterializedOracle mat(emb);
        const OracleEdge e = mat.out_edge(0, 0);
        first = mat.path_vec(e, 0);
      });
      mat_rss = rss_kb() - mat_rss0;
    }
    // A backend whose whole state fits in the page already mapped reads a
    // zero delta; clamp to one page so ratios stay finite.
    const double alg_rss_c = std::max(alg_rss, 4.0);
    const double ttfr_ratio = c.materialize ? s_mat / s_alg : 0.0;
    const double rss_ratio = c.materialize ? mat_rss / alg_rss_c : 0.0;

    t.row(c.tag, c.materialize ? s_mat * 1e3 : 0.0, s_alg * 1e3, ttfr_ratio,
          mat_rss / 1024.0, alg_rss / 1024.0, rss_ratio, mpaths);

    const std::string tag = c.tag;
    reg.record_span("ttfr_alg_" + tag, s_alg);
    reg.record_span("alg_rss_kb_" + tag, alg_rss);
    reg.record_span("alg_mpaths_per_s_" + tag, mpaths);
    if (c.materialize) {
      reg.record_span("ttfr_mat_" + tag, s_mat);
      reg.record_span("mat_rss_kb_" + tag, mat_rss);
      reg.record_span("ttfr_ratio_" + tag, ttfr_ratio);
      reg.record_span("rss_ratio_" + tag, rss_ratio);
    }
    report.metric("stream_paths_" + tag, paths);
    report.metric("stream_nodes_" + tag, sink.nodes());

    if (c.tag == std::string("q20")) {
      const bool ttfr_ok = ttfr_ratio >= 10.0;
      const bool rss_ok = rss_ratio >= 5.0;
      if (!ttfr_ok || !rss_ok) {
        std::fprintf(stderr,
                     "FATAL: Q_20 oracle advantage gate failed "
                     "(ttfr %.1fx, rss %.1fx)\n",
                     ttfr_ratio, rss_ratio);
        std::exit(1);
      }
      report.metric("ttfr_gate_10x_q20", 1);
      report.metric("rss_gate_5x_q20", 1);
    }
  }
  t.print();
  report.table(t);
}

// O3: the acceptance workload — a Q_24 phase end to end from the algebraic
// backend, measured congestion gated against the analytic floor, inside a
// 2 GiB RSS budget.
void print_q24_phase_table(bench::Report& report) {
  bench::Table t("O3: Q_24 phase from the algebraic backend",
                 {"edges", "p", "packets", "makespan", "peak", "floor",
                  "links", "plan MB", "sim s"});
  auto& reg = obs::MetricsRegistry::global();

  const auto oracle = algebraic_grid_oracle(GridSpec{{256, 256, 256}, true});
  const auto edges = sample_guest_edges(*oracle, 50000, 7);
  const int p = 32;

  const double rss0 = rss_kb();
  OraclePhaseSpec spec;
  spec.packets_per_edge = p;
  OraclePhaseResult r;
  const double s_sim =
      seconds_of([&] { r = run_oracle_phase(*oracle, edges, spec); });
  const double rss_delta = rss_kb() - rss0;
  const OraclePhaseFloor floor = oracle_phase_floor(*oracle, edges, p);

  const std::uint64_t expect =
      static_cast<std::uint64_t>(edges.size()) * static_cast<std::uint64_t>(p);
  if (r.delivered != expect) {
    std::fprintf(stderr, "FATAL: Q_24 phase dropped packets (%llu of %llu)\n",
                 static_cast<unsigned long long>(r.delivered),
                 static_cast<unsigned long long>(expect));
    std::exit(1);
  }
  if (static_cast<std::int64_t>(r.peak_congestion) < floor.floor) {
    std::fprintf(stderr, "FATAL: measured congestion %llu below floor %lld\n",
                 static_cast<unsigned long long>(r.peak_congestion),
                 static_cast<long long>(floor.floor));
    std::exit(1);
  }
  const double budget_kb = 2.0 * 1024 * 1024;  // 2 GiB
  if (rss_delta > budget_kb) {
    std::fprintf(stderr, "FATAL: Q_24 phase RSS delta %.0f KiB over budget\n",
                 rss_delta);
    std::exit(1);
  }

  t.row(edges.size(), p, expect, r.makespan, r.peak_congestion, floor.floor,
        r.unique_links, static_cast<double>(r.compiled_bytes) / 1048576.0,
        s_sim);
  report.metric("q24_makespan", r.makespan);
  report.metric("q24_delivered", r.delivered);
  report.metric("q24_transmissions", r.total_transmissions);
  report.metric("q24_peak_congestion", r.peak_congestion);
  report.metric("q24_floor", floor.floor);
  report.metric("q24_unique_links", r.unique_links);
  report.metric("q24_route_nodes", r.route_nodes);
  report.metric("q24_compiled_bytes", r.compiled_bytes);
  report.metric("q24_congestion_gate", 1);
  report.metric("q24_rss_gate_2gib", 1);
  reg.record_span("q24_phase_sim", s_sim);
  reg.record_span("q24_phase_rss_kb", rss_delta);
  t.print();
  report.table(t);
}

void BM_AlgebraicFirstRoute(benchmark::State& state) {
  const GridSpec spec{{256, 256, 256}, true};
  for (auto _ : state) {
    const auto oracle = algebraic_grid_oracle(spec);
    benchmark::DoNotOptimize(oracle->path_vec(oracle->out_edge(0, 0), 0));
  }
}
BENCHMARK(BM_AlgebraicFirstRoute)->Unit(benchmark::kMicrosecond);

void BM_AlgebraicPathStream(benchmark::State& state) {
  const auto oracle = algebraic_grid_oracle(GridSpec{{256, 256, 256}, true});
  const auto edges = sample_guest_edges(*oracle, 1024, 3);
  CountingSink sink;
  std::size_t i = 0;
  for (auto _ : state) {
    const OracleEdge& e = edges[i++ % edges.size()];
    oracle->path(e, 0, sink);
    benchmark::DoNotOptimize(sink.checksum());
  }
}
BENCHMARK(BM_AlgebraicPathStream);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("oracle", &argc, argv);
  hyperpath::print_equivalence_table(report);
  hyperpath::print_ttfr_table(report);
  hyperpath::print_q24_phase_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
