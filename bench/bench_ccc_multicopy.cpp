// Experiments E8 and E9 (Theorem 3 and §5.4).
//
// n copies of the n-stage directed CCC in Q_{n + log n}: dilation 1 and
// edge-congestion exactly 2, flat in n — with the per-dimension breakdown
// the proof promises (cross-edges ≤ 1 per link and none on dimension 1;
// straight-edges ≤ 1 except ≤ 2 on dimension 1).  The undirected variant
// stays within congestion 4, and the butterfly inherits multiple copies
// through the CCC with O(1) congestion.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/table.hpp"
#include "ccc/ccc_embed.hpp"
#include "core/tree_multipath.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  {
    bench::Table t("E8: Theorem 3 — n-copy CCC embeddings",
                   {"n (stages)", "host dims", "copies", "dilation",
                    "edge congestion (paper: 2)", "max dim-1 congestion",
                    "1-pkt phase cost"});
    int worst_congestion = 0;
    for (int n : {2, 4, 8}) {
      const auto emb = [&] {
        obs::ScopedTimer timer("construct");
        return ccc_multicopy_embedding(n);
      }();
      const auto cong = emb.congestion_per_link();
      std::uint32_t dim1 = 0;
      const Hypercube& q = emb.host();
      for (Node v = 0; v < q.num_nodes(); ++v) {
        dim1 = std::max(dim1, cong[q.edge_id(v, 1)]);
      }
      obs::ScopedTimer timer("simulate");
      const auto r = measure_phase_cost(emb, 1);
      worst_congestion = std::max(worst_congestion, emb.edge_congestion());
      t.row(n, emb.host().dims(), emb.num_copies(), emb.dilation(),
            emb.edge_congestion(), dim1, r.makespan);
    }
    t.print();
    report.metric("directed_ccc_worst_congestion", worst_congestion);
    report.metric("paper_claimed_congestion", 2);
    report.table(t);
  }
  {
    bench::Table t(
        "E8b: Lemma 4 for general n — dilation 1 (even) / 2 (odd)",
        {"n (stages)", "host dims", "dilation", "paper claim"});
    int worst_dilation = 0;
    for (int n : {3, 5, 6, 7, 9, 12}) {
      const auto emb = [&] {
        obs::ScopedTimer timer("construct");
        return ccc_single_embedding_general(n);
      }();
      worst_dilation = std::max(worst_dilation, emb.dilation());
      t.row(n, emb.host().dims(), emb.dilation(),
            n % 2 == 0 ? "1 (even)" : "2 (odd)");
    }
    t.print();
    report.metric("lemma4_worst_dilation", worst_dilation);
    report.table(t);
  }
  {
    bench::Table t("E9: §5.4 extensions — undirected CCC and butterfly copies",
                   {"network", "n", "copies", "dilation",
                    "congestion (paper bound)"});
    int und_worst = 0, bf_worst = 0;
    for (int n : {4, 8}) {
      const auto und = [&] {
        obs::ScopedTimer timer("construct");
        return ccc_multicopy_embedding_undirected(n);
      }();
      und_worst = std::max(und_worst, und.edge_congestion());
      t.row("undirected CCC", n, und.num_copies(), und.dilation(),
            std::to_string(und.edge_congestion()) + " (<=4)");
    }
    for (int m : {4, 8}) {
      const auto bf = [&] {
        obs::ScopedTimer timer("construct");
        return butterfly_multicopy_embedding(m);
      }();
      bf_worst = std::max(bf_worst, bf.edge_congestion());
      t.row("sym. butterfly", m, bf.num_copies(), bf.dilation(),
            std::to_string(bf.edge_congestion()) + " (O(1), <=8)");
    }
    t.print();
    report.metric("undirected_ccc_worst_congestion", und_worst);
    report.metric("butterfly_worst_congestion", bf_worst);
    report.table(t);
  }
}

void BM_CccMulticopyConstruct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccc_multicopy_embedding(n).num_copies());
  }
}
BENCHMARK(BM_CccMulticopyConstruct)->Arg(4)->Arg(8);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("ccc_multicopy", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
