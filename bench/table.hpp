// Shared table printer and JSON exporter for the benchmark harness.
//
// Every bench binary regenerates one experiment row from DESIGN.md's index:
// it prints the measured table (the paper's "shape" — who wins, by what
// factor, where bounds sit) and then runs google-benchmark timings for the
// construction/simulation kernels.
//
// JSON export: constructing a bench::Report strips a `--json [path]` flag
// from argv (before benchmark::Initialize sees it).  When the flag is
// present the report writes one machine-readable record — params, metrics,
// every registered table, and the wall-clock timer spans accumulated in
// obs::MetricsRegistry — to `path` (default BENCH_<experiment>.json), so
// perf trajectories can be tracked across PRs instead of eyeballed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/run_metadata.hpp"

namespace hyperpath::bench {

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  template <typename... Cells>
  void row(Cells... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  const std::string& title() const { return title_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void print() const {
    // Width covers the widest row, not just the header, so a row with more
    // cells than columns renders under an empty heading instead of indexing
    // past the width vector; short rows are padded when printed.
    std::size_t ncols = columns_.size();
    for (const auto& r : rows_) ncols = std::max(ncols, r.size());
    std::vector<std::size_t> width(ncols, 0);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      width[c] = columns_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    std::printf("\n== %s ==\n", title_.c_str());
    print_row(columns_, width);
    std::string sep;
    for (std::size_t c = 0; c < width.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& r : rows_) print_row(r, width);
    std::printf("\n");
  }

 private:
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
  }
  template <typename T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  static void print_row(const std::vector<std::string>& r,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const char* cell = c < r.size() ? r[c].c_str() : "";
      std::printf("%-*s  ", static_cast<int>(width[c]), cell);
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable record of one bench run:
///   {"experiment":..., "meta":{git sha, compiler, flags, host, ...},
///    "params":{...}, "metrics":{...},
///    "tables":[{"title":..., "columns":[...], "rows":[[...]]}],
///    "timings":{"name":{"seconds":...,"count":...}},
///    "profile":{span tree}}
/// Written on destruction when `--json [path]` was passed.
///
/// Constructing a Report also enables the global span profiler, so the
/// construction/simulation spans the library brackets (HP_PROFILE_SPAN)
/// land in the exported "profile" tree without per-bench wiring.
class Report {
 public:
  /// Strips `--json`, `--json <path>` or `--json=<path>` from argv.
  Report(std::string experiment, int* argc, char** argv)
      : experiment_(std::move(experiment)) {
    obs::Profiler::global().set_enabled(true);
    for (int i = 1; i < *argc; ++i) {
      const char* a = argv[i];
      int consumed = 0;
      if (!std::strncmp(a, "--json=", 7)) {
        path_ = a + 7;
        consumed = 1;
      } else if (!std::strcmp(a, "--json")) {
        if (i + 1 < *argc && argv[i + 1][0] != '-') {
          path_ = argv[i + 1];
          consumed = 2;
        } else {
          consumed = 1;
        }
      }
      if (consumed == 0) continue;
      enabled_ = true;
      if (path_.empty()) path_ = "BENCH_" + experiment_ + ".json";
      for (int j = i; j + consumed < *argc; ++j) argv[j] = argv[j + consumed];
      *argc -= consumed;
      break;
    }
  }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report() {
    if (enabled_) write();
  }

  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  void param(const std::string& key, const std::string& v) {
    params_.emplace_back(key, "\"" + obs::json_escape(v) + "\"");
  }
  void param(const std::string& key, const char* v) {
    param(key, std::string(v));
  }
  template <typename T>
  void param(const std::string& key, T v) {
    params_.emplace_back(key, number(v));
  }

  template <typename T>
  void metric(const std::string& key, T v) {
    metrics_.emplace_back(key, number(v));
  }

  /// Registers a table for export (call after the table's rows are final).
  void table(const Table& t) { tables_.push_back(t); }

  void write() const {
    obs::JsonWriter w;
    w.begin_object();
    w.field("experiment", experiment_);
    w.key("meta");
    obs::RunMetadata::collect().write_json(w);
    w.key("params").begin_object();
    for (const auto& [k, v] : params_) w.key(k).raw_value(v);
    w.end_object();
    w.key("metrics").begin_object();
    for (const auto& [k, v] : metrics_) w.key(k).raw_value(v);
    w.end_object();
    w.key("tables").begin_array();
    for (const Table& t : tables_) {
      w.begin_object();
      w.field("title", t.title());
      w.key("columns").begin_array();
      for (const auto& c : t.columns()) w.value(c);
      w.end_array();
      w.key("rows").begin_array();
      for (const auto& r : t.rows()) {
        w.begin_array();
        for (const auto& cell : r) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("timings").begin_object();
    for (const auto& span : obs::MetricsRegistry::global().timings()) {
      w.key(span.name).begin_object();
      w.field("seconds", span.seconds);
      w.field("count", span.count);
      w.end_object();
    }
    w.end_object();
    w.key("profile");
    obs::Profiler::global().write_json(w);
    w.end_object();

    if (std::FILE* f = std::fopen(path_.c_str(), "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
    }
  }

 private:
  template <typename T>
  static std::string number(T v) {
    if constexpr (std::is_floating_point_v<T>) {
      // %.17g would print "nan"/"inf" — not JSON tokens.  Match
      // JsonWriter::value(double): non-finite becomes null.
      if (!std::isfinite(static_cast<double>(v))) return "null";
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(v));
      return buf;
    } else {
      return std::to_string(v);
    }
  }

  std::string experiment_;
  std::string path_;
  bool enabled_ = false;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<Table> tables_;
};

}  // namespace hyperpath::bench
