// Shared table printer for the benchmark harness.
//
// Every bench binary regenerates one experiment row from DESIGN.md's index:
// it prints the measured table (the paper's "shape" — who wins, by what
// factor, where bounds sit) and then runs google-benchmark timings for the
// construction/simulation kernels.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hyperpath::bench {

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  template <typename... Cells>
  void row(Cells... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print() const {
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      width[c] = columns_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    std::printf("\n== %s ==\n", title_.c_str());
    print_row(columns_, width);
    std::string sep;
    for (std::size_t c = 0; c < width.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& r : rows_) print_row(r, width);
    std::printf("\n");
  }

 private:
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
  }
  template <typename T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  static void print_row(const std::vector<std::string>& r,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), r[c].c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hyperpath::bench
