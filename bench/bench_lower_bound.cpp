// Experiment E4 (Lemma 3).
//
// The bounds that sandwich Theorems 1 and 2: any width-w (w > 2) embedding
// has dilation ≥ 3, and no cost-3 embedding of the 2^{n+1}-cycle carries
// more than ⌊n/2⌋ packets.  The table shows the constructions sitting at
// (Theorem 2, n ≡ 0 mod 4) or within one of (other n) the bound, plus the
// counting-argument slack: negative slack would disprove a cost-3 claim.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "core/lower_bounds.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  bench::Table t("E4: Lemma 3 — width/cost bounds vs achieved",
                 {"n", "bound ⌊n/2⌋", "Thm2 width", "at bound?",
                  "Thm1 dilation (≥3 req)", "Thm1 slack@3", "Thm2 slack@3"});
  long long min_slack = 0;
  bool first = true;
  for (int n : {4, 5, 6, 7, 8, 9, 10, 11, 16}) {
    const auto t1 = [&] {
      obs::ScopedTimer timer("construct");
      return theorem1_cycle_embedding(n);
    }();
    const auto t2 = theorem2_cycle_embedding(n);
    const int cap = lemma3_max_cost3_packets(n);
    const auto s1 = edge_slot_slack(t1, 3);
    const auto s2 = edge_slot_slack(t2, 3);
    const long long here = std::min<long long>(s1, s2);
    min_slack = first ? here : std::min(min_slack, here);
    first = false;
    t.row(n, cap, t2.width(), t2.width() == cap ? "yes" : "within 1",
          t1.dilation(), s1, s2);
  }
  t.print();
  report.metric("min_slot_slack_at_cost3", min_slack);
  report.table(t);
}

void BM_SlackAudit(benchmark::State& state) {
  const auto emb = theorem2_cycle_embedding(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge_slot_slack(emb, 3));
  }
}
BENCHMARK(BM_SlackAudit)->Arg(8)->Arg(10);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("lower_bound", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
