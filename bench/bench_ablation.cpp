// Ablation study: what each design choice in the paper actually buys.
//
//   A. Theorem 3's overlapping windows vs the two §5.3 straw men — the
//      paper predicts congestion n/r for both naive window choices and a
//      flat 2 for the overlapping construction.
//   B. Theorem 2's moment-indexed special cycles vs a constant selection —
//      without Lemma 2 the 2k neighbor projections pile onto the same host
//      edges and the measured w-packet cost degrades from 3 to Θ(k).
//   C. Link arbitration: FIFO vs farthest-first on a congested random
//      workload (an implementation choice, not a paper claim — included to
//      show the measured costs above are not arbitration artifacts).
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "ccc/strawmen.hpp"
#include "core/cycle_multipath.hpp"
#include "sim/phase.hpp"
#include "sim/workloads.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  {
    bench::Table t("Ablation A: CCC window choices (copies × congestion)",
                   {"construction", "n", "copies", "edge congestion",
                    "paper prediction"});
    int good_cong = 0, naive_cong = 0;
    for (int n : {4, 8}) {
      const auto good = [&] {
        obs::ScopedTimer timer("construct");
        return ccc_multicopy_embedding(n);
      }();
      good_cong = good.edge_congestion();
      t.row("Theorem 3 overlapping", n, good.num_copies(),
            good.edge_congestion(), "2");
      const auto same = ccc_multicopy_same_windows(n);
      naive_cong = same.edge_congestion();
      t.row("same windows (naive)", n, same.num_copies(),
            same.edge_congestion(), "≥ n/r");
      const auto disj = ccc_multicopy_disjoint_windows(n);
      t.row("disjoint windows (naive)", n, disj.num_copies(),
            disj.edge_congestion(), "≥ copies on some dim");
    }
    t.print();
    report.metric("ccc_overlapping_congestion_q8", good_cong);
    report.metric("ccc_same_windows_congestion_q8", naive_cong);
    report.table(t);
  }
  {
    bench::Table t(
        "Ablation B: Theorem 2 with vs without moment cycle selection",
        {"n", "variant", "width", "congestion", "w-pkt cost"});
    int good_cost_16 = 0, naive_cost_16 = 0;
    for (int n : {8, 10, 16}) {
      const int w = 2 * (n / 4);
      const auto good = [&] {
        obs::ScopedTimer timer("construct");
        return theorem2_cycle_embedding(n);
      }();
      obs::ScopedTimer timer("simulate");
      const int gc = measure_phase_cost(good, w).makespan;
      t.row(n, "moments (Lemma 2)", good.width(), good.congestion(), gc);
      const auto naive = theorem2_cycle_embedding_naive(n);
      const int nc = measure_phase_cost(naive, w).makespan;
      t.row(n, "constant cycle 0", naive.width(), naive.congestion(), nc);
      if (n == 16) {
        good_cost_16 = gc;
        naive_cost_16 = nc;
      }
    }
    t.print();
    report.metric("moments_cost_q16", good_cost_16);
    report.metric("naive_cost_q16", naive_cost_16);
    report.table(t);
  }
  {
    bench::Table t("Ablation C: link arbitration on Theorem 1 phases",
                   {"n", "m", "FIFO steps", "farthest-first steps"});
    obs::ScopedTimer timer("simulate");
    for (int n : {8, 10}) {
      const auto emb = theorem1_cycle_embedding(n);
      for (int m : {n, 4 * n}) {
        t.row(n, m, measure_phase_cost(emb, m, Arbitration::kFifo).makespan,
              measure_phase_cost(emb, m, Arbitration::kFarthestFirst)
                  .makespan);
      }
    }
    t.print();
    report.table(t);
  }
}

void BM_NaiveVsMoments(benchmark::State& state) {
  const auto naive = theorem2_cycle_embedding_naive(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_phase_cost(naive, 4).makespan);
  }
}
BENCHMARK(BM_NaiveVsMoments);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("ablation", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
