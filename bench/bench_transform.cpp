// Experiment E10 (Theorem 4).
//
// The multiple-copy → multiple-path transform: from the n-copy cycle
// embedding (cost c = 1, out-degree δ = 1) it builds a width-n embedding of
// X(cycle) in Q_{2n} with measured n-packet cost c + 2δ = 3; from the
// m-copy butterfly embedding (δ = 4 symmetric) a width-n X(butterfly).
// Non-power-of-two n pays one extra step (moments collide mod n).
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/transform.hpp"
#include "core/tree_multipath.hpp"
#include "embed/classical.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  bench::Table t("E10: Theorem 4 — width-n embeddings of X(G) in Q_{2n}",
                 {"G", "n", "X nodes", "width", "dilation",
                  "n-pkt cost (paper: c+2δ)", "c+2δ"});
  int cycle_cost_n4 = 0;
  for (int n : {2, 4, 6}) {
    const auto copies = multicopy_directed_cycles(n);
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return theorem4_transform(copies);
    }();
    obs::ScopedTimer timer("simulate");
    const auto r = measure_phase_cost(emb, n);
    if (n == 4) cycle_cost_n4 = r.makespan;
    t.row("directed cycle", n, emb.guest().num_nodes(), emb.width(),
          emb.dilation(), r.makespan,
          std::string("3") + (n == 6 ? " (+1: n not a power of 2)" : ""));
  }
  {
    const int m = 4;
    const int n = 6;
    const auto copies = repeat_copies(butterfly_multicopy_embedding(m), n);
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return theorem4_transform(copies);
    }();
    obs::ScopedTimer timer("simulate");
    const auto r = measure_phase_cost(emb, n);
    report.metric("butterfly_x_cost", r.makespan);
    t.row("sym. butterfly (m=4)", n, emb.guest().num_nodes(), emb.width(),
          emb.dilation(), r.makespan, "c + 8, c = multicopy cost");
  }
  t.print();
  report.metric("cycle_x_cost_n4", cycle_cost_n4);
  report.metric("paper_claimed_cost", 3);
  report.table(t);
}

void BM_Theorem4Cycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto copies = multicopy_directed_cycles(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem4_transform(copies).width());
  }
}
BENCHMARK(BM_Theorem4Cycle)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("transform", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
