// Experiment E16: dynamic fault injection with sender-side recovery (§1/§9
// made executable).
//
// A seeded random schedule of timed link faults plays out *during* the
// simulation on Q_8; every guest edge sends one message dispersed over its
// path bundle.  The schedule is built greedily so that every width-5
// Theorem 1 bundle keeps at least one surviving path — the regime the paper
// claims the embedding tolerates.  Under sender-side failover (timeout
// detection, cyclic path probing, exponential backoff) the Theorem 1
// embedding then delivers 100% of messages, paying only measured recovery
// latency; the width-1 Gray-code embedding has nowhere to fail over to and
// loses every message whose single path is cut.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "embed/classical.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight.hpp"
#include "sim/recovery.hpp"

namespace hyperpath {
namespace {

/// Seeded schedule of permanent link faults over steps [0, window) that
/// leaves every bundle of `emb` at least one alive path in the final state.
/// The window must sit inside the phase's active steps (a cycle phase on
/// Q_8 completes within a handful of steps), or the faults fire after the
/// traffic has already drained.
FaultSchedule survivable_schedule(const MultiPathEmbedding& emb,
                                  int target_faults, std::uint64_t seed,
                                  int window = 2) {
  const int n = emb.host().dims();
  const Hypercube q(n);
  Rng rng(seed);
  FaultSchedule schedule(n);
  FaultSet accum(n);
  const auto every_bundle_survives = [&] {
    for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
      if (deliver_over_bundle(accum, emb.paths(e)).paths_alive == 0) {
        return false;
      }
    }
    return true;
  };
  int added = 0;
  for (int tries = 0; tries < 50 * target_faults && added < target_faults;
       ++tries) {
    const Node u = static_cast<Node>(rng.below(q.num_nodes()));
    const Dim d = static_cast<Dim>(rng.below(n));
    const Node v = q.neighbor(u, d);
    if (accum.link_dead(u, v)) continue;
    accum.kill_link(u, v);
    if (!every_bundle_survives()) {
      accum.revive_link(u, v);
      continue;
    }
    schedule.link_down(static_cast<int>(rng.below(window)), u, v);
    ++added;
  }
  return schedule;
}

void print_table(bench::Report& report) {
  const int n = 8;
  const auto multi = [&] {
    obs::ScopedTimer timer("construct");
    return theorem1_cycle_embedding(n);
  }();
  const auto gray = gray_code_cycle_embedding(n);
  const int w = multi.width();

  // One schedule, built against the Theorem 1 bundles (the claim under
  // test), replayed against both embeddings.
  const FaultSchedule schedule = survivable_schedule(multi, 48, 2024);

  RecoveryConfig cfg;
  cfg.timeout = 8;
  cfg.max_retries = 6;

  bench::Table t("E16: mid-run link faults + sender failover on Q_8",
                 {"embedding", "width", "messages", "delivered", "rate",
                  "retransmits", "rec lat mean", "rec lat max", "goodput",
                  "makespan"});
  const auto run_one = [&](const char* name, const MultiPathEmbedding& emb,
                           int threshold, obs::TraceSink* sink = nullptr) {
    RecoveryConfig c = cfg;
    c.threshold = threshold;
    obs::ScopedTimer timer("simulate");
    const RecoveryResult r = run_recovery(emb, schedule, c, sink);
    t.row(name, emb.width(), r.messages_total, r.messages_complete,
          r.delivery_rate(), r.retransmissions, r.recovery_latency.mean(),
          r.recovery_latency.max(), r.goodput(), r.makespan);
    return r;
  };

  // Theorem 1 with IDA dispersal (any w-1 of w fragments reconstruct).  A
  // flight recorder rides along: the fault/retransmit chains and re-release
  // generations it reconstructs must agree with the recovery engine.
  obs::FlightRecorder rec;
  const RecoveryResult multi_r = run_one("theorem1+ida", multi, w - 1, &rec);
  // Gray code: one path, one fragment, nowhere to fail over to.
  const RecoveryResult gray_r = run_one("gray", gray, 0);
  t.print();

  const obs::TraceAnalysis fa = obs::analyze_flights(rec);
  if (fa.makespan != multi_r.makespan ||
      fa.retransmissions != multi_r.retransmissions ||
      fa.inconsistencies != 0 || fa.depth_mismatches != 0) {
    std::fprintf(stderr,
                 "FATAL: flight records disagree with recovery result\n");
    std::exit(1);
  }

  std::printf("schedule: %zu timed link faults; theorem1 recovery: %zu/%zu "
              "messages needed failover, worst %g steps\n\n",
              schedule.size(), multi_r.messages_recovered,
              multi_r.messages_total, multi_r.recovery_latency.max());

  report.param("n", n);
  report.param("width", w);
  report.param("faults", schedule.size());
  report.param("timeout", cfg.timeout);
  report.param("max_retries", cfg.max_retries);

  report.metric("multi_delivery_rate", multi_r.delivery_rate());
  report.metric("multi_messages_complete", multi_r.messages_complete);
  report.metric("multi_messages_recovered", multi_r.messages_recovered);
  report.metric("multi_retransmissions", multi_r.retransmissions);
  report.metric("multi_recovery_latency_mean", multi_r.recovery_latency.mean());
  report.metric("multi_recovery_latency_max", multi_r.recovery_latency.max());
  report.metric("multi_goodput", multi_r.goodput());
  report.metric("multi_makespan", multi_r.makespan);
  report.metric("multi_waves", multi_r.waves);
  report.metric("multi_flight_makespan", fa.makespan);
  report.metric("multi_flight_retransmits", fa.retransmissions);
  report.metric("multi_flight_dropped", fa.dropped);
  report.metric("multi_flight_faults", fa.faults);
  report.metric("multi_flight_max_generation",
                static_cast<std::uint64_t>(rec.max_generation()));
  report.metric("multi_queue_wait_p50", fa.queue_wait.quantile(0.5));
  report.metric("multi_queue_wait_p99", fa.queue_wait.quantile(0.99));
  report.metric("multi_critical_path", fa.critical_path.length());
  report.metric("multi_peak_congestion", fa.peak_congestion);
  report.metric("gray_delivery_rate", gray_r.delivery_rate());
  report.metric("gray_messages_complete", gray_r.messages_complete);
  report.metric("gray_messages_lost",
                gray_r.messages_total - gray_r.messages_complete);
  report.metric("gray_retransmissions", gray_r.retransmissions);
  report.table(t);
}

void BM_RecoveryPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto emb = theorem1_cycle_embedding(n);
  const FaultSchedule schedule = survivable_schedule(emb, 16, 7);
  RecoveryConfig cfg;
  cfg.timeout = 8;
  cfg.max_retries = 4;
  cfg.threshold = emb.width() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_recovery(emb, schedule, cfg).messages_complete);
  }
}
BENCHMARK(BM_RecoveryPhase)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ScheduleStateAt(benchmark::State& state) {
  const auto emb = theorem1_cycle_embedding(8);
  const FaultSchedule schedule = survivable_schedule(emb, 32, 11);
  int step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule.state_at(step++ % 40).num_dead_directed());
  }
}
BENCHMARK(BM_ScheduleStateAt);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("recovery", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
