// Experiment E1 (Figure 1 + Section 2 illustration).
//
// The classical binary reflected Gray-code embedding of the directed cycle
// uses one of each node's n outgoing links; with m packets per node the
// dimension-0 counting argument forces ≥ m/2 steps.  Theorem 1's
// multiple-path embedding delivers the same traffic in Θ(m/n) steps.
//
// Paper shape to reproduce: classical cost grows linearly in m while the
// multipath cost is ~3 per width-batch, a Θ(n) speed-up.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "embed/classical.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  bench::Table t("E1: m-packet cycle phase — classical Gray code vs Theorem 1",
                 {"n", "m", "gray cost", "multipath cost", "speed-up",
                  "gray bound m/2", "multipath Θ(m/n) ≈ 3·⌈m/w⌉"});
  double best_speedup = 0.0;
  for (int n : {4, 6, 8, 10, 16}) {
    const auto gray = gray_code_cycle_embedding(n);
    const auto multi = [&] {
      obs::ScopedTimer timer("construct");
      return theorem1_cycle_embedding(n);
    }();
    const int w = multi.width();
    obs::ScopedTimer timer("simulate");
    for (int m : {n / 2, 2 * n, n <= 10 ? 8 * n : 4 * n}) {
      const int gray_cost = measure_phase_cost(gray, m).makespan;
      StoreForwardSim sim(n);
      const int multi_cost =
          sim.run(theorem1_schedule_packets(multi, m)).makespan;
      const double speedup = static_cast<double>(gray_cost) / multi_cost;
      best_speedup = std::max(best_speedup, speedup);
      t.row(n, m, gray_cost, multi_cost, speedup, m / 2,
            3 * ((m + w - 1) / w));
    }
  }
  t.print();
  report.metric("best_speedup", best_speedup);
  report.table(t);
}

void BM_GrayPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto gray = gray_code_cycle_embedding(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_phase_cost(gray, 2 * n).makespan);
  }
}
BENCHMARK(BM_GrayPhase)->Arg(6)->Arg(8)->Arg(10);

void BM_MultipathPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto multi = theorem1_cycle_embedding(n);
  StoreForwardSim sim(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.run(theorem1_schedule_packets(multi, 2 * n)).makespan);
  }
}
BENCHMARK(BM_MultipathPhase)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("illustration", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
