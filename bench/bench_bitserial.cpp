// Experiment E12 (Section 7: bit-serial permutation routing).
//
// Random permutations of M-flit messages on Q_{n + log n}:
//
//   * store-and-forward on e-cube routes: each queueing point can hold a
//     message for Θ(M) steps — completion grows like n·M;
//   * whole-message wormhole through one CCC copy: serialization on shared
//     CCC links again costs Θ(M) per conflict;
//   * the paper's scheme: split each message into n pieces of M/n flits and
//     route piece k through copy k of Theorem 3's CCC embedding —
//     completion drops to O(M).
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/bitserial.hpp"
#include "core/transform.hpp"
#include "core/tree_multipath.hpp"
#include "sim/store_forward.hpp"

namespace hyperpath {
namespace {

void print_two_phase_table(bench::Report& report);

int store_forward_makespan(int dims, const Pattern& pattern, int flits) {
  // Message-granularity store-and-forward: a whole M-flit message must be
  // received before it is forwarded, so every link transfer costs M steps.
  // The queueing structure is that of one packet per message; the makespan
  // scales by M (the Θ(nM) behaviour Section 7 describes).
  StoreForwardSim sim(dims);
  std::vector<Packet> packets;
  const Hypercube q(dims);
  for (Node v = 0; v < pattern.size(); ++v) {
    if (pattern[v] == v) continue;
    Packet p;
    p.route = ecube_route(q, v, pattern[v]);
    packets.push_back(std::move(p));
  }
  return sim.run(packets).makespan * flits;
}

void print_table(bench::Report& report) {
  const int stages = 8;  // CCC_8 in Q_11
  const auto emb = [&] {
    obs::ScopedTimer timer("construct");
    return ccc_multicopy_embedding(stages);
  }();
  const int dims = emb.host().dims();
  WormholeSim worm(dims);
  Rng rng(42);
  const auto pattern = random_permutation_pattern(dims, rng);

  bench::Table t(
      "E12a: §7 — M-flit random permutation on Q_11 (CCC_8 copies)",
      {"M", "store&forward e-cube", "wormhole 1 CCC copy",
       "wormhole n-split (paper: O(M))", "split speed-up vs 1 copy"});
  obs::ScopedTimer timer("simulate");
  double speedup_at_1024 = 0.0;
  for (int m : {16, 64, 256, 1024}) {
    const int sf = store_forward_makespan(dims, pattern, m);
    const int single =
        worm.run(ccc_single_copy_worms(emb, 0, pattern, m)).makespan;
    const int split = worm.run(ccc_split_worms(emb, pattern, m)).makespan;
    if (m == 1024) speedup_at_1024 = static_cast<double>(single) / split;
    t.row(m, sf, single, split, static_cast<double>(single) / split);
  }
  t.print();
  report.param("stages", stages);
  report.metric("split_speedup_m1024", speedup_at_1024);
  report.table(t);
  print_two_phase_table(report);
}

// The two-phase X(butterfly) router (end of §7): messages between X
// vertices take a row butterfly then a column butterfly, each X hop split
// across the width-n bundles.
void print_two_phase_table(bench::Report& report) {
  const int m = 4;
  const int n = 6;  // m + log m
  const auto copies = [&] {
    obs::ScopedTimer timer("construct");
    return repeat_copies(butterfly_multicopy_embedding(m), n);
  }();
  const auto x = theorem4_transform(copies);
  WormholeSim worm(x.host().dims());
  Rng rng(77);

  bench::Table t(
      "E12b: §7 — two-phase routing on X(butterfly), Q_12, 64 messages",
      {"M", "split worms", "makespan", "makespan / M"});
  obs::ScopedTimer timer("simulate");
  double last_ratio = 0.0;
  // A partial permutation: 64 random disjoint source→dest pairs.
  for (int mflits : {24, 96, 384}) {
    Pattern pattern(x.guest().num_nodes());
    for (Node v = 0; v < pattern.size(); ++v) pattern[v] = v;
    auto nodes = rng.permutation(static_cast<std::uint32_t>(pattern.size()));
    for (int i = 0; i < 128; i += 2) pattern[nodes[i]] = nodes[i + 1];
    const auto worms = x_two_phase_worms(m, x, copies, pattern, mflits);
    const auto r = worm.run(worms);
    last_ratio = static_cast<double>(r.makespan) / mflits;
    t.row(mflits, worms.size(), r.makespan, last_ratio);
  }
  t.print();
  report.metric("two_phase_makespan_per_flit_m384", last_ratio);
  report.table(t);
}

void BM_SplitRouting(benchmark::State& state) {
  const auto emb = ccc_multicopy_embedding(4);
  Rng rng(3);
  const auto pattern = random_permutation_pattern(emb.host().dims(), rng);
  WormholeSim sim(emb.host().dims());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.run(ccc_split_worms(emb, pattern, 64)).makespan);
  }
}
BENCHMARK(BM_SplitRouting);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("bitserial", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
