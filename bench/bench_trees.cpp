// Experiment E11 (Theorem 5 + §6.2).
//
// Width-n embedding of the complete binary tree into Q_{2n} at O(1) load
// and cost, and arbitrary binary trees composed through the CBT (heuristic
// tree → CBT stage; the paper's [6] proves O(log levels) for that stage —
// the table reports what the heuristic measures on random trees).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/table.hpp"
#include "base/rng.hpp"
#include "ccc/netmaps.hpp"
#include "core/tree_multipath.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  {
    bench::Table t("E11a: Theorem 5 — CBT multipath embeddings",
                   {"m", "CBT nodes", "host dims", "width", "load",
                    "dilation", "n-pkt cost (O(1))"});
    for (int m : {4}) {
      const auto emb = [&] {
        obs::ScopedTimer timer("construct");
        return theorem5_cbt_embedding(m);
      }();
      const int n = emb.host().dims() / 2;
      obs::ScopedTimer timer("simulate");
      const auto r = measure_phase_cost(emb, n);
      report.metric("cbt_width", emb.width());
      report.metric("cbt_load", emb.load());
      report.metric("cbt_phase_cost", r.makespan);
      t.row(m, emb.guest().num_nodes(), emb.host().dims(), emb.width(),
            emb.load(), emb.dilation(), r.makespan);
    }
    t.print();
    report.table(t);
  }
  {
    bench::Table t(
        "E11b: §6.2 — arbitrary binary trees via the CBT (m = 4, Q_12)",
        {"tree nodes", "tree→CBT dilation", "tree→CBT congestion", "width",
         "n-pkt cost", "2m (CBT levels)"});
    Rng rng(2026);
    int worst_cost = 0;
    for (Node size : {31u, 100u, 200u, 255u}) {
      std::vector<Node> parent;
      const Digraph tree = random_binary_tree(size, rng, &parent);
      const auto t2c = tree_into_cbt(tree, parent, 8);
      const auto emb = [&] {
        obs::ScopedTimer timer("construct");
        return arbitrary_tree_multipath(tree, parent, 4);
      }();
      obs::ScopedTimer timer("simulate");
      const auto r = measure_phase_cost(emb, emb.width());
      worst_cost = std::max(worst_cost, r.makespan);
      t.row(size, t2c.dilation(), t2c.congestion(), emb.width(), r.makespan,
            8);
    }
    t.print();
    report.metric("arbitrary_tree_worst_cost", worst_cost);
    report.table(t);
  }
}

void BM_Theorem5Construct(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem5_cbt_embedding(4).width());
  }
}
BENCHMARK(BM_Theorem5Construct)->Unit(benchmark::kMillisecond);

void BM_TreeIntoCbt(benchmark::State& state) {
  Rng rng(7);
  std::vector<Node> parent;
  const Digraph tree = random_binary_tree(200, rng, &parent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree_into_cbt(tree, parent, 8).dilation());
  }
}
BENCHMARK(BM_TreeIntoCbt);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("trees", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
