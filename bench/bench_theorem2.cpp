// Experiment E3 (Theorem 2).
//
// The 2^{n+1}-node cycle with load 2: width w(n) = 2⌊n/4⌋, w(n)-packet
// cost 3, and — for n ≡ 0 (mod 4) — every hypercube link busy in every one
// of the 3 steps (the "fully utilize the links" headline).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/table.hpp"
#include "core/cycle_multipath.hpp"
#include "core/lower_bounds.hpp"
#include "sim/phase.hpp"

namespace hyperpath {
namespace {

void print_table(bench::Report& report) {
  bench::Table t("E3: Theorem 2 — load-2 cycle embeddings",
                 {"n", "n mod 4", "width", "paper w(n)", "cost (paper: 3)",
                  "min step util", "Lemma-3 cap ⌊n/2⌋"});
  int worst_cost = 0;
  double worst_min_util = 1.0;
  for (int n : {4, 5, 6, 7, 8, 9, 10, 11, 16}) {
    const auto emb = [&] {
      obs::ScopedTimer timer("construct");
      return theorem2_cycle_embedding(n);
    }();
    const int k = n / 4;
    const int w_paper = (n % 4 <= 1) ? n / 2 : n / 2 - 1;
    obs::ScopedTimer timer("simulate");
    const auto r = measure_phase_cost(emb, 2 * k);
    double min_util = 1.0;
    for (double u : r.utilization.profile()) min_util = std::min(min_util, u);
    worst_cost = std::max(worst_cost, r.makespan);
    if (n % 4 == 0) worst_min_util = std::min(worst_min_util, min_util);
    t.row(n, n % 4, emb.width(), w_paper, r.makespan, min_util,
          lemma3_max_cost3_packets(n));
  }
  t.print();
  report.metric("worst_phase_cost", worst_cost);
  report.metric("paper_claimed_cost", 3);
  report.metric("worst_min_util_n_mod4_0", worst_min_util);
  report.table(t);
}

void BM_Theorem2Construct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem2_cycle_embedding(n).width());
  }
}
BENCHMARK(BM_Theorem2Construct)->Arg(8)->Arg(10);

}  // namespace
}  // namespace hyperpath

int main(int argc, char** argv) {
  hyperpath::bench::Report report("theorem2", &argc, argv);
  hyperpath::print_table(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
