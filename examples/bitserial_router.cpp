// Bit-serial message routing through the multiple-copy CCC (Section 7).
//
//   $ ./bitserial_router [flits] [pattern]     pattern ∈ {random, reversal,
//                                              transpose, complement}
//
// Every hypercube node sends one long message to its destination under the
// chosen permutation.  Three routers are compared on the wormhole
// simulator: whole messages on e-cube store-and-forward, whole messages
// through one CCC copy, and the paper's n-way split across the Theorem 3
// copies.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/bitserial.hpp"
#include "sim/store_forward.hpp"

int main(int argc, char** argv) {
  using namespace hyperpath;
  const int flits = argc > 1 ? std::atoi(argv[1]) : 256;
  const char* pattern_name = argc > 2 ? argv[2] : "random";

  const int stages = 8;  // CCC_8 → Q_11
  const auto emb = ccc_multicopy_embedding(stages);
  const int dims = emb.host().dims();

  Rng rng(7);
  Pattern pattern;
  if (!std::strcmp(pattern_name, "reversal")) {
    pattern = bit_reversal_pattern(dims);
  } else if (!std::strcmp(pattern_name, "transpose")) {
    if (dims % 2) {
      std::fprintf(stderr, "transpose needs even dims\n");
      return 1;
    }
    pattern = transpose_pattern(dims);
  } else if (!std::strcmp(pattern_name, "complement")) {
    pattern = complement_pattern(dims);
  } else {
    pattern = random_permutation_pattern(dims, rng);
  }

  std::printf("Q_%d, %s permutation, %d-flit messages\n", dims, pattern_name,
              flits);

  // Store-and-forward: whole messages, M steps per link.
  {
    StoreForwardSim sim(dims);
    std::vector<Packet> pkts;
    const Hypercube q(dims);
    for (Node v = 0; v < pattern.size(); ++v) {
      if (pattern[v] == v) continue;
      Packet p;
      p.route = ecube_route(q, v, pattern[v]);
      pkts.push_back(std::move(p));
    }
    const int steps = sim.run(pkts).makespan * flits;
    std::printf("  store-and-forward (e-cube):  %d steps (Θ(nM))\n", steps);
  }

  WormholeSim worm(dims);
  const int single =
      worm.run(ccc_single_copy_worms(emb, 0, pattern, flits)).makespan;
  std::printf("  wormhole, one CCC copy:      %d steps\n", single);

  const int split = worm.run(ccc_split_worms(emb, pattern, flits)).makespan;
  std::printf("  wormhole, %d-way split:       %d steps (paper: O(M))\n",
              emb.num_copies(), split);
  std::printf("  split speed-up vs one copy:  %.2fx\n",
              static_cast<double>(single) / split);
  return 0;
}
