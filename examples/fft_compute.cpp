// Distributed FFT over the large-copy embedding (Lemma 9).
//
//   $ ./fft_compute [log2_points]
//
// The (n+1)-level FFT graph collapses onto Q_n with its column paths
// internal and its cross edges on dimension edges at congestion ≤ 2
// (Lemma 9).  This example actually computes a 2^n-point radix-2 DIT FFT
// with one hypercube processor per column: level ℓ exchanges values across
// dimension ℓ (simulated to count the real communication steps), then
// applies the butterfly update locally.  The result is checked against a
// direct O(N²) DFT.
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <vector>

#include "base/bits.hpp"
#include "core/largecopy.hpp"
#include "sim/store_forward.hpp"

int main(int argc, char** argv) {
  using namespace hyperpath;
  using cd = std::complex<double>;
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const Node points = Node{1} << n;

  // The embedding whose communication structure we charge against.
  const auto emb = largecopy_fft(n);
  std::printf("FFT graph: %u vertices on Q_%d, load %d, congestion %d\n",
              emb.guest().num_nodes(), n, emb.load(), emb.congestion());

  // Input signal: two tones plus a DC offset.
  std::vector<cd> x(points);
  for (Node i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / points;
    x[i] = cd(0.5 + std::sin(2 * std::numbers::pi * 3 * t) +
                  0.25 * std::cos(2 * std::numbers::pi * 17 * t),
              0.0);
  }

  // Radix-2 DIT over the hypercube: processor c holds x[bitrev(c)]; level ℓ
  // pairs processors across dimension ℓ.  Each level is one exchange phase.
  std::vector<cd> a(points);
  for (Node c = 0; c < points; ++c) a[c] = x[bit_reverse(c, n)];

  StoreForwardSim sim(n);
  int comm_steps = 0;
  for (int l = 0; l < n; ++l) {
    // Communication: every processor sends its value across dimension ℓ —
    // exactly the FFT graph's level-ℓ cross edges under Lemma 9.
    std::vector<Packet> phase;
    phase.reserve(points);
    for (Node c = 0; c < points; ++c) {
      Packet p;
      p.route = {c, flip_bit(c, l)};
      phase.push_back(std::move(p));
    }
    comm_steps += sim.run(phase).makespan;

    // Computation: the level-ℓ butterflies.
    const Node block = Node{1} << l;
    std::vector<cd> next(points);
    for (Node c = 0; c < points; ++c) {
      const Node partner = flip_bit(c, l);
      const Node j = c & (block - 1);  // twiddle index within the block
      const cd w = std::polar(1.0, -std::numbers::pi *
                                        static_cast<double>(j) / block);
      if (!test_bit(c, l)) {
        next[c] = a[c] + w * a[partner];
      } else {
        next[c] = a[partner] - w * a[c];
      }
    }
    a.swap(next);
  }

  // Check against the direct DFT.
  double max_err = 0.0;
  for (Node k = 0; k < points; ++k) {
    cd ref(0, 0);
    for (Node i = 0; i < points; ++i) {
      ref += x[i] * std::polar(1.0, -2 * std::numbers::pi *
                                        static_cast<double>(i) * k / points);
    }
    max_err = std::max(max_err, std::abs(ref - a[k]));
  }

  std::printf("%u-point FFT: %d levels, %d communication steps (1 per "
              "level — congestion-1 cross edges)\n",
              points, n, comm_steps);
  std::printf("max |FFT − direct DFT| = %.3e %s\n", max_err,
              max_err < 1e-6 ? "(correct)" : "(WRONG)");
  return max_err < 1e-6 ? 0 : 1;
}
