// Fault-tolerant bulk transfer with IDA over a multiple-path embedding
// (the application sketched in the paper's introduction via Rabin's IDA).
//
//   $ ./fault_tolerant_transfer [faults] [kilobytes]
//
// Encodes a message into w fragments (any w−1 reconstruct), sends one
// fragment down each of the w edge-disjoint paths of a Theorem 1 bundle,
// kills random links, and reconstructs from whatever arrived.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cycle_multipath.hpp"
#include "sim/faults.hpp"
#include "sim/ida.hpp"

int main(int argc, char** argv) {
  using namespace hyperpath;
  const int faults = argc > 1 ? std::atoi(argv[1]) : 24;
  const int kib = argc > 2 ? std::atoi(argv[2]) : 64;
  const int n = 8;

  const auto emb = theorem1_cycle_embedding(n);
  const int w = emb.width();
  std::printf("Q_%d, width-%d bundles; injecting %d random link faults\n", n,
              w, faults);

  Rng rng(20260706);
  const auto fault_set = FaultSet::random(n, faults, rng);

  // The payload.
  std::vector<std::uint8_t> message(static_cast<std::size_t>(kib) * 1024);
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 13);
  }

  // Encode into w fragments, threshold w−1 (tolerates one dead path per
  // edge at ~w/(w−1) redundancy).
  const auto fragments = ida_encode(message, w, w - 1);
  std::size_t frag_bytes = 0;
  for (const auto& f : fragments) frag_bytes += f.payload.size();
  std::printf("message %zu bytes → %d fragments, %zu bytes total (%.2fx)\n",
              message.size(), w, frag_bytes,
              static_cast<double>(frag_bytes) / message.size());

  // Transfer over every guest edge's bundle and tally outcomes.
  std::size_t ok = 0, degraded = 0, lost = 0, single_path_lost = 0;
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const auto bundle = emb.paths(e);
    std::vector<IdaFragment> received;
    for (int i = 0; i < w; ++i) {
      if (fault_set.path_alive(bundle[i])) received.push_back(fragments[i]);
    }
    // The single-path comparison: ship everything down the direct path.
    single_path_lost += !fault_set.path_alive(bundle.back());

    const auto decoded = ida_decode(received, w - 1, message.size());
    if (decoded && *decoded == message) {
      (static_cast<int>(received.size()) == w ? ok : degraded) += 1;
    } else {
      ++lost;
    }
  }
  const std::size_t edges = emb.guest().num_edges();
  std::printf("\nper-edge outcomes over %zu guest edges:\n", edges);
  std::printf("  all %d paths intact, recovered:    %zu\n", w, ok);
  std::printf("  paths lost but IDA recovered:      %zu\n", degraded);
  std::printf("  unrecoverable (>1 path dead):      %zu\n", lost);
  std::printf("  single-path scheme would lose:     %zu\n", single_path_lost);
  return 0;
}
