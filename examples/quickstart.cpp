// Quickstart: embed a cycle in a hypercube three ways and measure one
// communication phase.
//
//   $ ./quickstart [n]
//
// Builds the classical Gray-code embedding (width 1), the Theorem 1
// multiple-path embedding (width ⌊n/2⌋), and the Lemma 1 multiple-copy
// family, then runs an m-packet phase of each on the synchronous link
// simulator and prints what the paper predicts next to what was measured.
#include <cstdio>
#include <cstdlib>

#include "core/cycle_multipath.hpp"
#include "embed/classical.hpp"
#include "sim/phase.hpp"

int main(int argc, char** argv) {
  using namespace hyperpath;
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  if (!cycle_multipath_supported(n)) {
    std::fprintf(stderr,
                 "n = %d unsupported (need ⌊n/4⌋ a power of two; try 8)\n", n);
    return 1;
  }

  std::printf("Q_%d: %d nodes, %d directed links\n", n, 1 << n, n << n);

  // 1. Classical Gray-code embedding — dilation 1 but one link per node.
  const auto gray = gray_code_cycle_embedding(n);
  std::printf("\nGray code cycle:  width %d, dilation %d, congestion %d\n",
              gray.width(), gray.dilation(), gray.congestion());

  // 2. Theorem 1 — every edge gets 2⌊n/4⌋ length-3 paths plus the direct
  //    edge, all pairwise edge-disjoint (verified at construction).
  const auto multi = theorem1_cycle_embedding(n);
  std::printf("Theorem 1 cycle:  width %d, dilation %d, load %d\n",
              multi.width(), multi.dilation(), multi.load());

  // 3. Lemma 1 — 2⌊n/2⌋ independent dilation-1 copies.
  const auto copies = multicopy_directed_cycles(n);
  std::printf("Lemma 1 copies:   %d copies, joint congestion %d\n",
              copies.num_copies(), copies.edge_congestion());

  // One phase with m packets per cycle edge.
  std::printf("\n%-10s %-12s %-12s\n", "m packets", "gray steps",
              "multipath steps");
  for (int m : {n / 2, n, 4 * n}) {
    const int g = measure_phase_cost(gray, m).makespan;
    StoreForwardSim sim(n);
    const int s = sim.run(theorem1_schedule_packets(multi, m)).makespan;
    std::printf("%-10d %-12d %-12d\n", m, g, s);
  }
  std::printf("\nThe multipath column grows like 3·m/width — the Θ(n) "
              "speed-up of the paper.\n");
  return 0;
}
