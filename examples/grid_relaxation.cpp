// Grid relaxation (the Section 2 motivating application).
//
//   $ ./grid_relaxation [log2_side] [boundary_packets]
//
// Runs an actual Jacobi relaxation of the 2-D Laplace equation on an
// N×N process torus embedded in a hypercube.  Each process owns a block of
// grid points; every sweep exchanges boundary values with the four
// neighbors over the multipath torus embedding and then updates its block.
// The communication steps charged per sweep come from the simulator, so
// the printed totals are the costs a real hypercube would pay.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/grid_multipath.hpp"
#include "embed/classical.hpp"
#include "sim/phase.hpp"

int main(int argc, char** argv) {
  using namespace hyperpath;
  const int a = argc > 1 ? std::atoi(argv[1]) : 4;   // N = 2^a per side
  const int mn = argc > 2 ? std::atoi(argv[2]) : 8;  // boundary packets
  const Node n_side = Node{1} << a;

  const GridSpec spec{{n_side, n_side}, true};
  if (!grid_multipath_supported(spec)) {
    std::fprintf(stderr, "unsupported torus side 2^%d\n", a);
    return 1;
  }
  const auto multi = grid_multipath_embedding(spec);
  const auto gray = gray_code_grid_embedding(spec);

  // Each process relaxes a block; boundary exchange = mn packets per
  // directed torus edge (two directed phases for the 4-neighbor exchange
  // under the multipath embedding, one symmetric phase under Gray).
  const int multi_steps = 2 * measure_phase_cost(multi, mn).makespan;
  const int gray_steps = measure_phase_cost(gray, mn).makespan;

  // A small real relaxation to make the workload concrete: each process
  // block is mn×mn points; run sweeps until the residual shrinks 100×.
  const int block = mn;
  const Node procs = n_side * n_side;
  std::vector<double> u(procs * block * block, 0.0);
  // Boundary condition: the first process row is held at 1.0.
  auto idx = [&](Node p, int y, int x) {
    return (static_cast<std::size_t>(p) * block + y) * block + x;
  };
  int sweeps = 0;
  double residual = 1.0;
  while (residual > 1e-2 && sweeps < 200) {
    residual = 0.0;
    ++sweeps;
    for (Node p = 0; p < procs; ++p) {
      const bool top_row = (p / n_side) == 0;
      for (int y = 0; y < block; ++y) {
        for (int x = 0; x < block; ++x) {
          const double up = (y > 0) ? u[idx(p, y - 1, x)] : (top_row ? 1.0 : 0);
          const double dn = (y + 1 < block) ? u[idx(p, y + 1, x)] : 0;
          const double lf = (x > 0) ? u[idx(p, y, x - 1)] : 0;
          const double rt = (x + 1 < block) ? u[idx(p, y, x + 1)] : 0;
          const double nv = 0.25 * (up + dn + lf + rt);
          residual = std::max(residual, std::abs(nv - u[idx(p, y, x)]));
          u[idx(p, y, x)] = nv;
        }
      }
    }
  }

  std::printf("relaxation: %u^2 processes, %d^2 points each, %d sweeps to "
              "converge\n",
              static_cast<unsigned>(n_side), block, sweeps);
  std::printf("communication per sweep: gray %d steps, multipath %d steps\n",
              gray_steps, multi_steps);
  std::printf("total communication:     gray %d steps, multipath %d steps\n",
              gray_steps * sweeps, multi_steps * sweeps);
  std::printf("(the multipath advantage is Θ(log N); it crosses over once "
              "⌊log N⌋/2 detour paths beat the 2-phase direction split)\n");
  return 0;
}
