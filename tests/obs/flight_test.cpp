// Tests for the flight recorder (src/obs/flight.hpp): hop-span
// reconstruction from handcrafted streams, generation handling, the JSONL
// streaming loader (including malformed-input line diagnostics), and the
// completeness contract — every simulator mode's SimResult must be
// reproducible from its trace alone, identically across thread counts.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "core/cycle_multipath.hpp"
#include "obs/critical_path.hpp"
#include "obs/json_parse.hpp"
#include "sim/faults.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/phase.hpp"
#include "sim/recovery.hpp"
#include "sim/store_forward.hpp"
#include "sim/workloads.hpp"
#include "sim/wormhole.hpp"

namespace hyperpath {
namespace {

using obs::FlightRecord;
using obs::FlightRecorder;
using obs::TraceEvent;
using obs::TraceEventKind;

constexpr auto kNoPkt = TraceEvent::kNoPacket;
constexpr auto kNoLink = TraceEvent::kNoLink;

std::string write_temp(const char* name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(FlightRecorder, ReconstructsQueueWaitFromContention) {
  // Two packets released at step 0 on link 5; FIFO serves packet 0 first.
  FlightRecorder rec;
  rec.add({0, TraceEventKind::kRelease, 0, 5, 0});
  rec.add({0, TraceEventKind::kRelease, 1, 5, 0});
  rec.add({0, TraceEventKind::kQueueDepth, kNoPkt, 5, 2});
  rec.add({0, TraceEventKind::kTransmit, 0, 5, 2});
  rec.add({0, TraceEventKind::kArrive, 0, kNoLink, 1});
  rec.add({1, TraceEventKind::kTransmit, 1, 5, 1});
  rec.add({1, TraceEventKind::kArrive, 1, kNoLink, 2});

  ASSERT_EQ(rec.records().size(), 2u);
  const FlightRecord& p0 = rec.records()[0];
  const FlightRecord& p1 = rec.records()[1];
  EXPECT_TRUE(p0.delivered());
  ASSERT_EQ(p0.hops.size(), 1u);
  EXPECT_EQ(p0.hops[0].queue_wait(), 0);
  ASSERT_EQ(p1.hops.size(), 1u);
  EXPECT_EQ(p1.hops[0], (obs::HopSpan{5, 0, 1, 1}));
  EXPECT_EQ(p1.total_queue_wait(), 1);
  EXPECT_EQ(rec.makespan(), 2);
  EXPECT_EQ(rec.inconsistencies(), 0u);
}

TEST(FlightRecorder, ReleaseAfterTerminalOpensNewGeneration) {
  FlightRecorder rec;
  for (int start : {0, 2}) {
    rec.add({start, TraceEventKind::kRelease, 0, 3, 0});
    rec.add({start, TraceEventKind::kTransmit, 0, 3, 1});
    rec.add({start, TraceEventKind::kArrive, 0, kNoLink, 1});
  }
  ASSERT_EQ(rec.records().size(), 2u);
  EXPECT_EQ(rec.records()[0].generation, 0u);
  EXPECT_EQ(rec.records()[1].generation, 1u);
  EXPECT_EQ(rec.records()[1].release_step, 2);
  EXPECT_EQ(rec.max_generation(), 1u);
  EXPECT_EQ(rec.inconsistencies(), 0u);
}

TEST(FlightRecorder, MidFlightDropKeepsPendingHop) {
  FlightRecorder rec;
  rec.add({0, TraceEventKind::kRelease, 0, 2, 0});
  rec.add({0, TraceEventKind::kTransmit, 0, 2, 1});
  rec.add({1, TraceEventKind::kFault, kNoPkt, 7, 0});
  rec.add({1, TraceEventKind::kDrop, 0, 7, 1});  // value = hops completed
  ASSERT_EQ(rec.records().size(), 1u);
  const FlightRecord& f = rec.records()[0];
  EXPECT_TRUE(f.dropped());
  EXPECT_EQ(f.drop_link, 7u);
  EXPECT_EQ(f.end_step, 1);
  EXPECT_EQ(f.pending_enqueue_step, 1);  // joined the dead link at step 1
  ASSERT_EQ(rec.fault_events().size(), 1u);
  EXPECT_FALSE(rec.fault_events()[0].repaired);
  EXPECT_EQ(rec.inconsistencies(), 0u);
}

TEST(FlightRecorder, FlagsMalformedStreams) {
  FlightRecorder rec;
  rec.add({0, TraceEventKind::kArrive, 9, kNoLink, 1});
  EXPECT_EQ(rec.inconsistencies(), 1u);
  EXPECT_NE(rec.first_inconsistency().find("never released"),
            std::string::npos);
}

TEST(JsonlReader, ReportsMalformedLineWithLineNumber) {
  const std::string path = write_temp(
      "flight_bad.jsonl",
      "{\"step\":0,\"kind\":\"release\",\"packet\":0,\"link\":3}\n"
      "\n"
      "{\"step\":0,\"kind\":\"transmit\",\n"
      "{\"step\":1}\n");
  obs::JsonlReader reader(path);
  ASSERT_TRUE(reader.ok());
  obs::JsonValue v;
  EXPECT_TRUE(reader.next(&v));   // line 1 parses (line 2 is blank)
  EXPECT_FALSE(reader.next(&v));  // line 3 is truncated JSON
  EXPECT_TRUE(reader.failed());
  EXPECT_NE(reader.error().message.find("line 3"), std::string::npos);
  // A poisoned reader stays done.
  EXPECT_FALSE(reader.next(&v));
  std::remove(path.c_str());
}

TEST(JsonlReader, MissingFileFailsCleanly) {
  obs::JsonlReader reader(::testing::TempDir() + "no_such_trace.jsonl");
  EXPECT_FALSE(reader.ok());
  obs::JsonValue v;
  EXPECT_FALSE(reader.next(&v));
}

TEST(LoadTrace, RejectsRecordsWithoutAKind) {
  const std::string path =
      write_temp("flight_nokind.jsonl", "{\"step\":0}\n");
  FlightRecorder rec;
  const auto r = obs::load_trace_jsonl(path, rec);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 1"), std::string::npos);
  EXPECT_NE(r.error.find("kind"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LoadTrace, RoundTripsALiveTraceThroughJsonl) {
  const int dims = 6;
  Rng rng(41);
  const Hypercube q(dims);
  std::vector<Packet> packets;
  for (int i = 0; i < 300; ++i) {
    Packet p;
    p.route = ecube_route(q, static_cast<Node>(rng.below(q.num_nodes())),
                          static_cast<Node>(rng.below(q.num_nodes())));
    p.release = static_cast<int>(rng.below(3));
    packets.push_back(std::move(p));
  }

  // The simulator is deterministic, so two identically-configured runs —
  // one feeding the file sink, one the live recorder — see the same stream.
  const std::string path = ::testing::TempDir() + "flight_roundtrip.jsonl";
  const StoreForwardSim sim(dims);
  FlightRecorder live;
  const SimResult r =
      sim.run(packets, Arbitration::kFifo, 1 << 22, &live);
  {
    obs::JsonlFileSink sink(path);
    sink.write_meta(dims, packets.size());
    sim.run(packets, Arbitration::kFifo, 1 << 22, &sink);
  }
  FlightRecorder loaded;
  const auto load = obs::load_trace_jsonl(path, loaded);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.dims, dims);
  EXPECT_EQ(load.meta_packets, packets.size());
  EXPECT_EQ(load.events, live.events_seen());

  // The offline recorder must agree with the live one record for record.
  ASSERT_EQ(loaded.records().size(), live.records().size());
  for (std::size_t i = 0; i < live.records().size(); ++i) {
    const FlightRecord& a = live.records()[i];
    const FlightRecord& b = loaded.records()[i];
    EXPECT_EQ(a.packet, b.packet);
    EXPECT_EQ(a.release_step, b.release_step);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.fate, b.fate);
    EXPECT_EQ(a.end_step, b.end_step);
    EXPECT_EQ(a.latency, b.latency);
  }
  EXPECT_EQ(loaded.makespan(), r.makespan);
  EXPECT_EQ(loaded.transmissions(), r.total_transmissions);
  EXPECT_EQ(loaded.delivered(), r.latency.count());
  EXPECT_EQ(loaded.inconsistencies(), 0u);
  std::remove(path.c_str());
}

// --- The completeness contract: each simulator mode's results must be
// --- reproducible from its trace alone.

TEST(FlightCompleteness, SerialStoreForwardPhase) {
  const int n = 8;
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, n);
  FlightRecorder rec;
  const auto r =
      StoreForwardSim(n).run(packets, Arbitration::kFifo, 1 << 22, &rec);
  const auto a = obs::analyze_flights(rec);
  EXPECT_EQ(a.makespan, r.makespan);
  EXPECT_EQ(a.delivered, r.latency.count());
  EXPECT_EQ(a.transmissions, r.total_transmissions);
  EXPECT_EQ(a.max_queue, r.max_queue);
  EXPECT_EQ(a.inconsistencies, 0u);
  EXPECT_EQ(a.depth_mismatches, 0u);
}

TEST(FlightCompleteness, ParallelStoreForwardAcrossThreadCounts) {
  const int n = 8;
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, 2 * n);
  const auto serial = StoreForwardSim(n).run(packets);
  for (int threads : {1, 2, 8}) {
    FlightRecorder rec;
    const auto r =
        ParallelStoreForwardSim(n, threads).run(packets, 1 << 22, &rec);
    const auto a = obs::analyze_flights(rec);
    EXPECT_EQ(a.makespan, serial.makespan) << threads;
    EXPECT_EQ(a.makespan, r.makespan) << threads;
    EXPECT_EQ(a.delivered, r.latency.count()) << threads;
    EXPECT_EQ(a.transmissions, serial.total_transmissions) << threads;
    EXPECT_EQ(a.inconsistencies, 0u) << threads;
    EXPECT_EQ(a.depth_mismatches, 0u) << threads;
    EXPECT_EQ(a.critical_path.length(), a.makespan) << threads;
  }
}

TEST(FlightCompleteness, FaultReplayRun) {
  const int n = 6;
  const auto emb = theorem1_cycle_embedding(n);
  const auto packets = phase_packets(emb, n);
  FaultSchedule schedule(n);
  const Hypercube q(n);
  schedule.link_down(0, 0, q.neighbor(0, 0));
  schedule.link_down(1, 5, q.neighbor(5, 2));
  schedule.transient_link(0, 1, 9, q.neighbor(9, 1));
  FlightRecorder rec;
  const auto fr = StoreForwardSim(n).run_with_faults(
      packets, schedule, Arbitration::kFifo, 1 << 22, &rec);
  const auto a = obs::analyze_flights(rec);
  EXPECT_EQ(a.makespan, fr.sim.makespan);
  EXPECT_EQ(a.delivered, fr.delivered);
  EXPECT_EQ(a.dropped, fr.lost);
  EXPECT_EQ(a.transmissions, fr.sim.total_transmissions);
  EXPECT_GT(a.faults, 0u);
  EXPECT_EQ(a.repairs, 2u);  // the transient repair, one per direction
  EXPECT_EQ(a.inconsistencies, 0u);
  EXPECT_EQ(a.depth_mismatches, 0u);
}

TEST(FlightCompleteness, RecoveryRunAcrossThreadCounts) {
  const int n = 6;
  const auto emb = theorem1_cycle_embedding(n);
  FaultSchedule schedule(n);
  const Hypercube q(n);
  schedule.link_down(0, 1, q.neighbor(1, 0));
  schedule.link_down(1, 7, q.neighbor(7, 3));
  RecoveryConfig cfg;
  cfg.timeout = 4;
  cfg.max_retries = 4;
  cfg.threshold = 0;  // all fragments required: every loss retransmits

  FlightRecorder serial_rec;
  const auto serial = run_recovery(emb, schedule, cfg, &serial_rec);
  ASSERT_GT(serial.retransmissions, 0u);
  const auto sa = obs::analyze_flights(serial_rec);
  EXPECT_EQ(sa.makespan, serial.makespan);
  EXPECT_EQ(sa.delivered, serial.fragments_delivered);
  EXPECT_EQ(sa.dropped, serial.fragments_lost);
  EXPECT_EQ(sa.retransmissions, serial.retransmissions);
  EXPECT_EQ(sa.transmissions, serial.total_transmissions);
  EXPECT_EQ(sa.inconsistencies, 0u);
  EXPECT_EQ(sa.depth_mismatches, 0u);

  for (int threads : {1, 2, 8}) {
    RecoveryConfig pc = cfg;
    pc.parallel = true;
    pc.threads = threads;
    FlightRecorder rec;
    const auto r = run_recovery(emb, schedule, pc, &rec);
    const auto a = obs::analyze_flights(rec);
    EXPECT_EQ(r.makespan, serial.makespan) << threads;
    EXPECT_EQ(a.makespan, sa.makespan) << threads;
    EXPECT_EQ(a.delivered, sa.delivered) << threads;
    EXPECT_EQ(a.dropped, sa.dropped) << threads;
    EXPECT_EQ(a.retransmissions, sa.retransmissions) << threads;
    EXPECT_EQ(rec.events_seen(), serial_rec.events_seen()) << threads;
  }
}

TEST(FlightCompleteness, WormholeRun) {
  const int dims = 5;
  const Hypercube q(dims);
  std::vector<Worm> worms;
  for (Node s = 0; s < 16; ++s) {
    Worm w;
    w.route = ecube_route(q, s, static_cast<Node>(q.num_nodes() - 1 - s));
    w.flits = 4;
    worms.push_back(std::move(w));
  }
  FlightRecorder rec;
  WormholeSim sim(dims);
  const auto r = sim.run(worms, 1 << 22, &rec);
  EXPECT_TRUE(rec.worm_trace());
  EXPECT_EQ(rec.makespan(), r.makespan);
  EXPECT_EQ(rec.delivered(), worms.size());
  EXPECT_EQ(rec.records().size(), worms.size());
  EXPECT_EQ(rec.inconsistencies(), 0u);
}

}  // namespace
}  // namespace hyperpath
