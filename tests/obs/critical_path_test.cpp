// Tests for causal critical-path extraction (src/obs/critical_path.hpp):
// blocker resolution, chain-length == makespan on phase workloads, the
// queue-depth cross-check, and the Theorem 1 congestion acceptance bounds.
#include "obs/critical_path.hpp"

#include <gtest/gtest.h>

#include "core/cycle_multipath.hpp"
#include "core/lower_bounds.hpp"
#include "sim/phase.hpp"
#include "sim/store_forward.hpp"

namespace hyperpath {
namespace {

using obs::FlightRecorder;
using obs::TraceEvent;
using obs::TraceEventKind;
using obs::TransmitIndex;

constexpr auto kNoPkt = TraceEvent::kNoPacket;
constexpr auto kNoLink = TraceEvent::kNoLink;

FlightRecorder contention_trace() {
  // Packets 0 and 1 both queue on link 5 at step 0; FIFO serves 0 first.
  FlightRecorder rec;
  rec.add({0, TraceEventKind::kRelease, 0, 5, 0});
  rec.add({0, TraceEventKind::kRelease, 1, 5, 0});
  rec.add({0, TraceEventKind::kQueueDepth, kNoPkt, 5, 2});
  rec.add({0, TraceEventKind::kTransmit, 0, 5, 2});
  rec.add({0, TraceEventKind::kArrive, 0, kNoLink, 1});
  rec.add({1, TraceEventKind::kTransmit, 1, 5, 1});
  rec.add({1, TraceEventKind::kArrive, 1, kNoLink, 2});
  return rec;
}

TEST(TransmitIndex, ResolvesWhoCrossedALinkAtAStep) {
  const FlightRecorder rec = contention_trace();
  const TransmitIndex index(rec);
  const auto r0 = index.at(5, 0);
  ASSERT_TRUE(r0.valid());
  EXPECT_EQ(rec.records()[r0.flight].packet, 0u);
  const auto r1 = index.at(5, 1);
  ASSERT_TRUE(r1.valid());
  EXPECT_EQ(rec.records()[r1.flight].packet, 1u);
  EXPECT_FALSE(index.at(5, 2).valid());
  EXPECT_FALSE(index.at(6, 0).valid());
}

TEST(CriticalPath, BlockedHopHandsOffToItsProximateBlocker) {
  const FlightRecorder rec = contention_trace();
  const TransmitIndex index(rec);
  const auto chain =
      obs::extract_critical_path(rec, index, obs::makespan_terminal(rec));
  // Packet 1 set the makespan; it waited one step behind packet 0's
  // transmit, so the chain is p0@0 -> p1@1 with one blocking handoff.
  ASSERT_EQ(chain.nodes.size(), 2u);
  EXPECT_EQ(chain.nodes[0].packet, 0u);
  EXPECT_EQ(chain.nodes[0].step, 0);
  EXPECT_TRUE(chain.nodes[0].blocks_successor);
  EXPECT_EQ(chain.nodes[1].packet, 1u);
  EXPECT_EQ(chain.nodes[1].step, 1);
  EXPECT_EQ(chain.handoffs, 1);
  EXPECT_EQ(chain.length(), rec.makespan());
}

TEST(CriticalPath, DropTerminatedChainStillSpansTheMakespan) {
  FlightRecorder rec;
  rec.add({0, TraceEventKind::kRelease, 0, 2, 0});
  rec.add({0, TraceEventKind::kTransmit, 0, 2, 1});
  rec.add({1, TraceEventKind::kFault, kNoPkt, 7, 0});
  rec.add({1, TraceEventKind::kDrop, 0, 7, 1});
  const TransmitIndex index(rec);
  const auto chain =
      obs::extract_critical_path(rec, index, obs::makespan_terminal(rec));
  EXPECT_EQ(chain.length(), rec.makespan());
  ASSERT_FALSE(chain.nodes.empty());
  // The chain ends at the truncation, on the dead link.
  EXPECT_EQ(chain.nodes.back().link, 7u);
  EXPECT_EQ(chain.nodes.back().step, 1);
}

TEST(CriticalPath, ChainLengthEqualsMakespanOnPhaseWorkloads) {
  for (int n : {6, 8}) {
    const auto emb = theorem1_cycle_embedding(n);
    for (int p : {n / 2, n, 2 * n}) {
      FlightRecorder rec;
      const auto r = measure_phase_cost(emb, p, Arbitration::kFifo, &rec);
      const auto a = obs::analyze_flights(rec);
      // Phase packets all release at step 0, so the backward walk roots at
      // a step-0 release and the chain must span the whole run.
      EXPECT_EQ(a.critical_path.length(), r.makespan) << n << "/" << p;
      EXPECT_EQ(a.critical_path.start_step, 0) << n << "/" << p;
      EXPECT_EQ(a.depth_mismatches, 0u) << n << "/" << p;
      EXPECT_EQ(a.inconsistencies, 0u) << n << "/" << p;
    }
  }
}

TEST(CongestionBounds, FloorNeverExceedsCeiling) {
  for (int n : {6, 8, 10}) {
    const auto emb = theorem1_cycle_embedding(n);
    for (int p : {1, n / 2, n}) {
      const auto b = phase_congestion_bounds(emb, p);
      EXPECT_GE(b.floor, 1) << n << "/" << p;
      EXPECT_LE(b.floor, b.ceiling) << n << "/" << p;
      EXPECT_FALSE(b.contains(b.floor - 1)) << n << "/" << p;
      EXPECT_TRUE(b.contains(b.floor)) << n << "/" << p;
      EXPECT_TRUE(b.contains(b.ceiling)) << n << "/" << p;
      EXPECT_FALSE(b.contains(b.ceiling + 1)) << n << "/" << p;
    }
  }
}

TEST(CongestionBounds, MeasuredPhaseCongestionSitsInsideTheBounds) {
  for (int n : {6, 8}) {
    const auto emb = theorem1_cycle_embedding(n);
    const int p = n / 2;
    FlightRecorder rec;
    measure_phase_cost(emb, p, Arbitration::kFifo, &rec);
    const auto a = obs::analyze_flights(rec);
    const auto b = phase_congestion_bounds(emb, p);
    EXPECT_TRUE(b.contains(static_cast<std::int64_t>(a.peak_congestion)))
        << "n=" << n << " peak=" << a.peak_congestion << " not in ["
        << b.floor << ", " << b.ceiling << "]";
  }
}

// Acceptance: the Q_16 Theorem 1 phase's measured per-link congestion lies
// between the analytic demand floor and the construction ceiling.
TEST(CongestionBounds, Q16Theorem1PhaseWithinAnalyticBounds) {
  const int n = 16;
  const int p = n / 2;
  const auto emb = theorem1_cycle_embedding(n);
  FlightRecorder rec;
  const auto r = measure_phase_cost(emb, p, Arbitration::kFifo, &rec);
  const auto a = obs::analyze_flights(rec);
  const auto b = phase_congestion_bounds(emb, p);
  EXPECT_EQ(a.makespan, r.makespan);
  EXPECT_EQ(a.transmissions, r.total_transmissions);
  EXPECT_EQ(a.depth_mismatches, 0u);
  EXPECT_TRUE(b.contains(static_cast<std::int64_t>(a.peak_congestion)))
      << "peak=" << a.peak_congestion << " not in [" << b.floor << ", "
      << b.ceiling << "]";
  EXPECT_EQ(a.critical_path.length(), r.makespan);
}

}  // namespace
}  // namespace hyperpath
