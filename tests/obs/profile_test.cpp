// Tests for the hierarchical span profiler: nesting/aggregation semantics,
// CPU-vs-wall sanity, chrome-trace export validity, and the disabled-state
// cost contract (no state mutation at all).
#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace hyperpath {
namespace {

using obs::JsonValue;
using obs::Profiler;
using obs::ProfileSpan;
using obs::json_parse;

// Burns a little CPU so spans have measurable nonzero durations.
volatile std::uint64_t g_sink = 0;
void spin(int iters = 200000) {
  std::uint64_t acc = 0;
  for (int i = 0; i < iters; ++i) acc += static_cast<std::uint64_t>(i) * 2654435761u;
  g_sink = g_sink + acc;
}

TEST(Profiler, DisabledSpansRecordNothing) {
  Profiler p;
  ASSERT_FALSE(p.enabled());
  {
    ProfileSpan outer("outer", &p);
    ProfileSpan inner("inner", &p);
    spin(1000);
  }
  EXPECT_TRUE(p.nodes().empty());
  EXPECT_EQ(p.events_dropped(), 0u);
}

TEST(Profiler, NestingBuildsATree) {
  Profiler p;
  p.set_enabled(true);
  {
    ProfileSpan a("a", &p);
    {
      ProfileSpan b("b", &p);
      spin();
    }
    {
      ProfileSpan c("c", &p);
      spin();
    }
  }
  const auto nodes = p.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0].name, "a");
  EXPECT_EQ(nodes[0].depth, 0);
  EXPECT_EQ(nodes[1].name, "b");
  EXPECT_EQ(nodes[1].depth, 1);
  EXPECT_EQ(nodes[2].name, "c");
  EXPECT_EQ(nodes[2].depth, 1);
  // Parent wall time covers both children.
  EXPECT_GE(nodes[0].wall_seconds,
            nodes[1].wall_seconds + nodes[2].wall_seconds);
}

TEST(Profiler, RevisitedSpansAggregate) {
  Profiler p;
  p.set_enabled(true);
  {
    ProfileSpan root("root", &p);
    for (int i = 0; i < 100; ++i) {
      ProfileSpan child("child", &p);
    }
  }
  const auto nodes = p.nodes();
  ASSERT_EQ(nodes.size(), 2u);  // 100 visits, one node
  EXPECT_EQ(nodes[1].name, "child");
  EXPECT_EQ(nodes[1].count, 100u);
  EXPECT_EQ(nodes[0].count, 1u);
}

TEST(Profiler, SameNameDifferentParentsAreDistinctNodes) {
  Profiler p;
  p.set_enabled(true);
  {
    ProfileSpan a("a", &p);
    ProfileSpan s("setup", &p);
  }
  {
    ProfileSpan b("b", &p);
    ProfileSpan s("setup", &p);
  }
  const auto nodes = p.nodes();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].name, "a");
  EXPECT_EQ(nodes[1].name, "setup");
  EXPECT_EQ(nodes[2].name, "b");
  EXPECT_EQ(nodes[3].name, "setup");
}

TEST(Profiler, CpuTimeIsSaneAgainstWallTime) {
  Profiler p;
  p.set_enabled(true);
  {
    ProfileSpan busy("busy", &p);
    // Spin for a fixed wall duration so CPU accounting granularity (which
    // can be several ms) still registers nonzero usage.
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(30)) {
      spin(100000);
    }
  }
  const auto nodes = p.nodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_GT(nodes[0].wall_seconds, 0.0);
  EXPECT_GT(nodes[0].cpu_seconds, 0.0);
  // A pure spin loop cannot use more CPU than ~wall (scheduling noise and
  // getrusage granularity allow some slack).
  EXPECT_LT(nodes[0].cpu_seconds, nodes[0].wall_seconds + 0.05);
}

TEST(Profiler, JsonTreeParsesAndMirrorsNesting) {
  Profiler p;
  p.set_enabled(true);
  {
    ProfileSpan outer("construct", &p);
    ProfileSpan inner("guest_walk", &p);
    spin();
  }
  const auto doc = json_parse(p.to_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* outer = doc->find("construct");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->find("count")->as_number(), 1);
  const JsonValue* inner = outer->find("children", "guest_walk");
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->find("wall_seconds")->as_number(), 0.0);
}

TEST(Profiler, ChromeTraceIsValidAndNested) {
  Profiler p;
  p.set_enabled(true);
  {
    ProfileSpan outer("construct", &p);
    spin();
    {
      ProfileSpan inner("bundles", &p);
      spin();
    }
  }
  const auto doc = json_parse(p.chrome_trace_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 2u);
  double outer_start = 0, outer_end = 0, inner_start = 0, inner_end = 0;
  for (const JsonValue& e : events->as_array()) {
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    const double ts = e.find("ts")->as_number();
    const double dur = e.find("dur")->as_number();
    if (e.find("name")->as_string() == "construct") {
      outer_start = ts;
      outer_end = ts + dur;
    } else {
      EXPECT_EQ(e.find("name")->as_string(), "bundles");
      inner_start = ts;
      inner_end = ts + dur;
    }
  }
  // Complete events nest by interval containment in the trace viewer.
  EXPECT_LE(outer_start, inner_start);
  EXPECT_GE(outer_end, inner_end);
}

TEST(Profiler, PeakRssDeltaLandsOnTheAllocatingSpan) {
  Profiler p;
  p.set_enabled(true);
  struct rusage before, after;
  ASSERT_EQ(getrusage(RUSAGE_SELF, &before), 0);
  {
    ProfileSpan span("alloc", &p);
    // Touch every page of a fresh 96 MiB block so the resident set grows.
    std::vector<std::uint8_t> big(96u << 20);
    for (std::size_t i = 0; i < big.size(); i += 4096) big[i] = 1;
    g_sink = g_sink + big[big.size() / 2];
  }
  ASSERT_EQ(getrusage(RUSAGE_SELF, &after), 0);
  const auto nodes = p.nodes();
  ASSERT_EQ(nodes.size(), 1u);
  // The span's delta is exactly the process peak growth it caused (both
  // sides read the same monotone ru_maxrss counter).  If this process had
  // already peaked above the allocation the delta is legitimately zero.
  const std::uint64_t grew =
      after.ru_maxrss > before.ru_maxrss
          ? static_cast<std::uint64_t>(after.ru_maxrss - before.ru_maxrss)
          : 0;
  if (grew > 0) {
    EXPECT_GT(nodes[0].max_rss_delta_kb, 0u);
    EXPECT_LE(nodes[0].max_rss_delta_kb, grew);
  } else {
    EXPECT_EQ(nodes[0].max_rss_delta_kb, 0u);
  }

  // The field is exported in both JSON forms.
  const auto doc = json_parse(p.to_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* rss = doc->find("alloc", "max_rss_delta_kb");
  ASSERT_NE(rss, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(rss->as_number()),
            nodes[0].max_rss_delta_kb);
  const auto trace = json_parse(p.chrome_trace_json());
  ASSERT_TRUE(trace.has_value());
  const auto& events = trace->find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 1u);
  const JsonValue* args_rss = events[0].find("args", "rss_delta_kb");
  ASSERT_NE(args_rss, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(args_rss->as_number()),
            nodes[0].max_rss_delta_kb);
}

TEST(Profiler, ResetDropsEverything) {
  Profiler p;
  p.set_enabled(true);
  { ProfileSpan a("a", &p); }
  ASSERT_FALSE(p.nodes().empty());
  p.reset();
  EXPECT_TRUE(p.nodes().empty());
  EXPECT_EQ(p.events_dropped(), 0u);
  { ProfileSpan b("b", &p); }
  ASSERT_EQ(p.nodes().size(), 1u);
  EXPECT_EQ(p.nodes()[0].name, "b");
}

TEST(Profiler, EventRingDropsOldestButTreeStaysExact) {
  Profiler p;
  p.set_enabled(true);
  const int total = static_cast<int>(Profiler::kMaxEvents) + 100;
  {
    ProfileSpan root("root", &p);
    for (int i = 0; i < total; ++i) {
      ProfileSpan child("child", &p);
    }
  }
  EXPECT_GT(p.events_dropped(), 0u);
  const auto nodes = p.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[1].count, static_cast<std::uint64_t>(total));
  // The chrome trace still parses with the retained tail.
  EXPECT_TRUE(json_parse(p.chrome_trace_json()).has_value());
}

TEST(Profiler, GlobalProfilerSpansViaMacro) {
  auto& g = Profiler::global();
  const bool was_enabled = g.enabled();
  g.set_enabled(true);
  g.reset();
  {
    HP_PROFILE_SPAN("macro_span");
  }
  bool found = false;
  for (const auto& n : g.nodes()) found = found || n.name == "macro_span";
  EXPECT_TRUE(found);
  g.reset();
  g.set_enabled(was_enabled);
}

}  // namespace
}  // namespace hyperpath
