// Tests for benchmark regression diffing (obs/regress.hpp): unchanged
// suites pass, perturbed metrics regress, timing tolerance semantics, and
// suite/report shape handling.
#include "obs/regress.hpp"

#include <gtest/gtest.h>

#include <string>

#include "base/error.hpp"
#include "obs/json_parse.hpp"

namespace hyperpath {
namespace {

using obs::CompareOptions;
using obs::DeltaKind;
using obs::compare_suites;
using obs::json_parse;

obs::JsonValue suite(const std::string& text) {
  const auto doc = json_parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return *doc;
}

const char* kBaseline = R"({
  "reports": {
    "theorem1": {
      "experiment": "theorem1",
      "metrics": {"worst_phase_cost": 3, "paper_claimed_cost": 3},
      "timings": {"construct": {"seconds": 1.0}}
    },
    "theorem2": {
      "experiment": "theorem2",
      "metrics": {"worst_phase_cost": 3}
    }
  }
})";

TEST(Regress, UnchangedSuitePasses) {
  const auto base = suite(kBaseline);
  const auto result = compare_suites(base, base);
  EXPECT_TRUE(result.pass());
  EXPECT_EQ(result.regressions(), 0u);
  EXPECT_EQ(result.compared(), 3u);  // 3 metrics; timings skipped by default
}

TEST(Regress, PerturbedMetricRegresses) {
  auto cur = suite(R"({
    "reports": {
      "theorem1": {
        "experiment": "theorem1",
        "metrics": {"worst_phase_cost": 4, "paper_claimed_cost": 3},
        "timings": {"construct": {"seconds": 1.0}}
      },
      "theorem2": {
        "experiment": "theorem2",
        "metrics": {"worst_phase_cost": 3}
      }
    }
  })");
  const auto result = compare_suites(cur, suite(kBaseline));
  EXPECT_FALSE(result.pass());
  EXPECT_EQ(result.regressions(), 1u);
  bool found = false;
  for (const auto& d : result.deltas) {
    if (d.kind != DeltaKind::kRegression) continue;
    found = true;
    EXPECT_EQ(d.report, "theorem1");
    EXPECT_EQ(d.key, "worst_phase_cost");
    EXPECT_EQ(d.baseline, 3);
    EXPECT_EQ(d.current, 4);
  }
  EXPECT_TRUE(found);
}

TEST(Regress, MetricImprovementStillRegressesAtZeroTolerance) {
  // Deterministic metrics gate both directions: a lower makespan than the
  // committed baseline means the baseline is stale, not that all is well.
  auto cur = suite(R"({
    "reports": {
      "theorem2": {"experiment": "theorem2",
                   "metrics": {"worst_phase_cost": 2}}
    }
  })");
  const auto result = compare_suites(cur, suite(kBaseline));
  EXPECT_FALSE(result.pass());
}

TEST(Regress, MetricTolerancePermitsSmallDrift) {
  auto cur = suite(R"({
    "reports": {
      "theorem2": {"experiment": "theorem2",
                   "metrics": {"worst_phase_cost": 3.2}}
    }
  })");
  // 3 -> 3.2 is a 6.7% relative change.
  CompareOptions opt;
  opt.metric_tol = 0.05;
  EXPECT_FALSE(compare_suites(cur, suite(kBaseline), opt).pass());
  opt.metric_tol = 0.10;
  EXPECT_TRUE(compare_suites(cur, suite(kBaseline), opt).pass());
}

TEST(Regress, TimingsSkippedByDefaultGatedWhenEnabled) {
  auto cur = suite(R"({
    "reports": {
      "theorem1": {
        "experiment": "theorem1",
        "metrics": {"worst_phase_cost": 3, "paper_claimed_cost": 3},
        "timings": {"construct": {"seconds": 2.0}}
      }
    }
  })");
  // Default: 2x slower construct is invisible.
  EXPECT_TRUE(compare_suites(cur, suite(kBaseline)).pass());
  // With a 50% budget it regresses.
  CompareOptions opt;
  opt.timing_tol = 0.5;
  const auto result = compare_suites(cur, suite(kBaseline), opt);
  EXPECT_FALSE(result.pass());
  // Faster-than-baseline is an improvement, never a regression.
  auto fast = suite(R"({
    "reports": {
      "theorem1": {
        "experiment": "theorem1",
        "metrics": {"worst_phase_cost": 3, "paper_claimed_cost": 3},
        "timings": {"construct": {"seconds": 0.1}}
      }
    }
  })");
  const auto fast_result = compare_suites(fast, suite(kBaseline), opt);
  EXPECT_TRUE(fast_result.pass());
  bool improvement = false;
  for (const auto& d : fast_result.deltas) {
    improvement = improvement || d.kind == DeltaKind::kImprovement;
  }
  EXPECT_TRUE(improvement);
}

TEST(Regress, MissingAndNewReportsAreNotRegressions) {
  auto cur = suite(R"({
    "reports": {
      "theorem1": {"experiment": "theorem1",
                   "metrics": {"worst_phase_cost": 3,
                                "paper_claimed_cost": 3}},
      "brand_new": {"experiment": "brand_new", "metrics": {"x": 1}}
    }
  })");
  const auto result = compare_suites(cur, suite(kBaseline));
  EXPECT_TRUE(result.pass());
  std::size_t missing = 0, added = 0;
  for (const auto& d : result.deltas) {
    missing += d.kind == DeltaKind::kMissing;
    added += d.kind == DeltaKind::kNew;
  }
  EXPECT_GE(missing, 1u);  // theorem2 gone
  EXPECT_GE(added, 1u);    // brand_new appeared
}

TEST(Regress, BareReportActsAsOneReportSuite) {
  auto bare = suite(R"({
    "experiment": "theorem2", "metrics": {"worst_phase_cost": 3}
  })");
  const auto result = compare_suites(bare, suite(kBaseline));
  EXPECT_TRUE(result.pass());
  EXPECT_EQ(result.compared(), 1u);
}

TEST(Regress, RejectsUnrecognizedShape) {
  EXPECT_THROW(compare_suites(suite("[1,2]"), suite(kBaseline)), Error);
  EXPECT_THROW(compare_suites(suite(R"({"foo": 1})"), suite(kBaseline)),
               Error);
}

}  // namespace
}  // namespace hyperpath
