// Tests for the JSON writer/parser pair: escaping edge cases (control
// chars, DEL, UTF-8 passthrough), non-finite doubles, and round-tripping
// writer output through the parser.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "obs/json_parse.hpp"

namespace hyperpath {
namespace {

using obs::JsonParseError;
using obs::JsonValue;
using obs::JsonWriter;
using obs::json_escape;
using obs::json_parse;

TEST(JsonEscape, ControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscape, DelIsEscaped) {
  EXPECT_EQ(json_escape("a\x7f" "b"), "a\\u007fb");
}

TEST(JsonEscape, MultiByteUtf8PassesThrough) {
  // "⌊n/2⌋" and a 4-byte emoji must pass through byte-for-byte.
  const std::string floor = "⌊n/2⌋";
  EXPECT_EQ(json_escape(floor), floor);
  const std::string emoji = "\xf0\x9f\x9a\x80";
  EXPECT_EQ(json_escape(emoji), emoji);
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
  // And the document must parse.
  EXPECT_TRUE(json_parse(w.str()).has_value());
}

TEST(JsonWriter, OutputRoundTripsThroughParser) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "E2: ⌊n/2⌋ paths");
  w.field("count", std::uint64_t{42});
  w.field("ratio", 0.25);
  w.field("ok", true);
  w.key("nested");
  w.begin_object();
  w.key("list");
  w.begin_array();
  w.value(1);
  w.value(-2);
  w.end_array();
  w.end_object();
  w.end_object();

  const auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("name")->as_string(), "E2: ⌊n/2⌋ paths");
  EXPECT_EQ(doc->find("count")->as_number(), 42);
  EXPECT_EQ(doc->find("ratio")->as_number(), 0.25);
  EXPECT_TRUE(doc->find("ok")->as_bool());
  const auto* list = doc->find("nested", "list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->as_array().size(), 2u);
  EXPECT_EQ(list->as_array()[1].as_number(), -2);
}

TEST(JsonParse, EscapesAndSurrogatePairs) {
  // 🚀 is the surrogate pair for U+1F680; raw UTF-8 passes too.
  const auto doc = json_parse(R"({"s":"aA\n\ud83d\ude80","raw":"🚀"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->as_string(), "aA\n\xf0\x9f\x9a\x80");
  EXPECT_EQ(doc->find("raw")->as_string(), "\xf0\x9f\x9a\x80");
}

TEST(JsonParse, ReportsErrorOffset) {
  JsonParseError err;
  EXPECT_FALSE(json_parse("{\"a\": }", &err).has_value());
  EXPECT_GT(err.offset, 0u);
  EXPECT_FALSE(err.message.empty());
}

TEST(JsonParse, RejectsTrailingGarbage) {
  EXPECT_FALSE(json_parse("{} x").has_value());
  EXPECT_TRUE(json_parse("  {}  ").has_value());
}

TEST(JsonParse, NumbersAndNull) {
  const auto doc = json_parse(R"([0, -1.5e3, null, 1e-2])");
  ASSERT_TRUE(doc.has_value());
  const auto& a = doc->as_array();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0].as_number(), 0);
  EXPECT_EQ(a[1].as_number(), -1500);
  EXPECT_TRUE(a[2].is_null());
  EXPECT_DOUBLE_EQ(a[3].as_number(), 0.01);
}

}  // namespace
}  // namespace hyperpath
