// Tests for FixedHistogram::quantile: bucket-edge exactness, linear
// interpolation inside buckets, overflow-bucket behavior, clamping, and
// monotonicity.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hyperpath {
namespace {

using obs::FixedHistogram;

TEST(HistogramQuantile, EmptyHistogramYieldsZero) {
  FixedHistogram h({1, 2, 4});
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramQuantile, QIsClampedToUnitInterval) {
  FixedHistogram h({10});
  h.observe(5);
  EXPECT_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(HistogramQuantile, ExactAtBucketEdges) {
  // 4 samples in (0,1], 4 in (1,2]: rank q=0.5 lands exactly on the first
  // bucket's cumulative count, so the estimate is its upper bound.
  FixedHistogram h({1, 2, 4});
  for (int i = 0; i < 4; ++i) h.observe(1.0);
  for (int i = 0; i < 4; ++i) h.observe(2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(HistogramQuantile, InterpolatesLinearlyWithinABucket) {
  // 10 samples, all in (0,10] with max landing on the bound: quantile(q)
  // interpolates to 10q.
  FixedHistogram h({10});
  for (int i = 1; i <= 10; ++i) h.observe(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 9.9);
}

TEST(HistogramQuantile, OverflowBucketInterpolatesUpToMax) {
  FixedHistogram h({1, 2});
  h.observe(0.5);
  h.observe(100);  // overflow: bucket (2, max()]
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // Halfway into the overflow bucket's rank range sits between the last
  // bound and max, never beyond max.
  const double q75 = h.quantile(0.75);
  EXPECT_GE(q75, 2.0);
  EXPECT_LE(q75, 100.0);
}

TEST(HistogramQuantile, NeverExceedsMax) {
  // The only sample sits well below its bucket's upper bound; the estimate
  // is capped at max() rather than interpolating past the real data.
  FixedHistogram h({1024});
  h.observe(3);
  EXPECT_LE(h.quantile(1.0), 3.0);
  EXPECT_LE(h.quantile(0.999), 3.0);
}

TEST(HistogramQuantile, MonotoneInQ) {
  FixedHistogram h = FixedHistogram::exponential();
  for (int i = 1; i <= 1000; ++i) h.observe(i % 97);
  double prev = -1;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramQuantile, SingleSample) {
  FixedHistogram h({1, 2, 4});
  h.observe(3);
  // One sample in (2,4]: every q interpolates inside that bucket, capped
  // by max() == 3.
  EXPECT_GT(h.quantile(0.5), 2.0);
  EXPECT_LE(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(HistogramMerge, EquivalentToObservingBothMultisets) {
  // The telemetry reducer's contract: per-shard histograms built from the
  // same template, merged in shard order, must equal one histogram that
  // observed every sample directly — counts, count, sum, max and every
  // quantile.
  FixedHistogram whole = FixedHistogram::exponential(12);
  FixedHistogram a = FixedHistogram::exponential(12);
  FixedHistogram b = FixedHistogram::exponential(12);
  FixedHistogram c = FixedHistogram::exponential(12);
  for (int i = 1; i <= 300; ++i) {
    const double v = static_cast<double>((i * 37) % 4096);
    whole.observe(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).observe(v);
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a, whole);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

TEST(HistogramMerge, EmptyAdoptsOtherShape) {
  FixedHistogram empty;
  FixedHistogram h({1, 2, 4});
  h.observe(3);
  empty.merge(h);
  EXPECT_EQ(empty, h);
}

TEST(HistogramMerge, MergingEmptyIsANoop) {
  FixedHistogram h({1, 2, 4});
  h.observe(3);
  const FixedHistogram before = h;
  h.merge(FixedHistogram{});
  EXPECT_EQ(h, before);
  // An empty histogram *with* matching bounds is also a no-op.
  h.merge(FixedHistogram({1, 2, 4}));
  EXPECT_EQ(h, before);
}

TEST(HistogramMerge, AccumulatesCountSumAndMax) {
  FixedHistogram a({10, 100});
  FixedHistogram b({10, 100});
  a.observe(5);
  a.observe(50);
  b.observe(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 555.0);
  EXPECT_DOUBLE_EQ(a.max(), 500.0);
  EXPECT_EQ(a.counts(), (std::vector<std::uint64_t>{1, 1, 1}));
}

}  // namespace
}  // namespace hyperpath
