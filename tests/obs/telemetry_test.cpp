// Tests for the live telemetry bus (obs/telemetry.hpp): sampling gate,
// ring-buffer retention, JSONL stream round-trip with its provenance
// header, serial/parallel sampling equivalence, Prometheus exposition
// validity, and the in-tree promtool-shaped validator itself.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/cycle_multipath.hpp"
#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/phase.hpp"
#include "sim/store_forward.hpp"

namespace hyperpath {
namespace {

using obs::FixedHistogram;
using obs::SimTelemetry;
using obs::TelemetryBus;
using obs::TelemetrySample;
using obs::validate_prometheus_text;

SimTelemetry sim_at_step(int step) {
  SimTelemetry t;
  t.step = step;
  t.active_links = static_cast<std::uint64_t>(step) + 1;
  t.queued_packets = static_cast<std::uint64_t>(step) * 10;
  t.depth_hist = obs::telemetry_depth_histogram();
  t.depth_hist.observe(static_cast<double>(step + 1));
  return t;
}

TEST(Telemetry, DepthHistogramHasCanonicalShape) {
  const FixedHistogram h = obs::telemetry_depth_histogram();
  ASSERT_EQ(h.bounds().size(),
            static_cast<std::size_t>(obs::kTelemetryDepthBuckets));
  EXPECT_DOUBLE_EQ(h.bounds().front(), 1.0);
  EXPECT_DOUBLE_EQ(h.bounds().back(), 2048.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Telemetry, ShouldSampleFollowsThePeriod) {
  TelemetryBus bus;
  EXPECT_FALSE(bus.enabled());
  EXPECT_FALSE(bus.should_sample(0));  // disabled: no step samples

  TelemetryBus::Config cfg;
  cfg.period_steps = 7;
  bus.enable(cfg);
  EXPECT_TRUE(bus.enabled());
  EXPECT_EQ(bus.period_steps(), 7);
  EXPECT_TRUE(bus.should_sample(0));
  EXPECT_FALSE(bus.should_sample(1));
  EXPECT_FALSE(bus.should_sample(6));
  EXPECT_TRUE(bus.should_sample(7));
  EXPECT_TRUE(bus.should_sample(70));

  bus.disable();
  EXPECT_FALSE(bus.enabled());
  EXPECT_FALSE(bus.should_sample(0));
}

TEST(Telemetry, SampleIsDroppedWhenDisabled) {
  TelemetryBus bus;
  bus.sample(sim_at_step(0));
  EXPECT_EQ(bus.total_samples(), 0u);
  EXPECT_TRUE(bus.snapshot().empty());
}

TEST(Telemetry, SamplesCarryThroughputAndMirrorTheGauge) {
  TelemetryBus bus;
  TelemetryBus::Config cfg;
  cfg.period_steps = 1;
  bus.enable(cfg);
  // enable() must pre-create the live throughput gauge and zero it — the
  // sampling path is contractually non-creating.
  obs::Gauge& pps = obs::MetricsRegistry::global().gauge(
      "sim.packet_steps_per_sec");
  EXPECT_EQ(pps.value(), 0.0);

  SimTelemetry t = sim_at_step(0);
  t.transmissions = 5000;
  bus.sample(std::move(t));  // first sample: whole-run average since enable
  const auto snap = bus.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_GT(snap[0].packet_steps_per_sec, 0.0);
  EXPECT_EQ(pps.value(), snap[0].packet_steps_per_sec);

  // A transmissions counter below the previous sample's means a new run
  // started; the cumulative count is the delta (never a negative rate).
  SimTelemetry fresh = sim_at_step(1);
  fresh.transmissions = 10;
  bus.sample(std::move(fresh));
  const auto snap2 = bus.snapshot();
  ASSERT_EQ(snap2.size(), 2u);
  EXPECT_GE(snap2[1].packet_steps_per_sec, 0.0);
}

TEST(Telemetry, RingKeepsNewestSamplesOldestFirst) {
  TelemetryBus bus;
  TelemetryBus::Config cfg;
  cfg.period_steps = 1;
  cfg.ring_capacity = 4;
  bus.enable(cfg);
  for (int step = 0; step < 6; ++step) bus.sample(sim_at_step(step));

  EXPECT_EQ(bus.total_samples(), 6u);  // overwritten samples still counted
  const std::vector<TelemetrySample> snap = bus.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, i + 2) << "slot " << i;
    EXPECT_EQ(snap[i].sim, sim_at_step(static_cast<int>(i) + 2));
  }
}

TEST(Telemetry, ReenableResetsRingAndSequence) {
  TelemetryBus bus;
  TelemetryBus::Config cfg;
  cfg.period_steps = 1;
  bus.enable(cfg);
  bus.sample(sim_at_step(0));
  bus.sample(sim_at_step(1));
  bus.enable(cfg);
  EXPECT_EQ(bus.total_samples(), 0u);
  EXPECT_TRUE(bus.snapshot().empty());
  bus.sample(sim_at_step(5));
  const auto snap = bus.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].seq, 0u);
}

TEST(Telemetry, JsonlStreamRoundTripsHeaderAndSamples) {
  const std::string path = testing::TempDir() + "telemetry_roundtrip.jsonl";
  {
    TelemetryBus bus;
    TelemetryBus::Config cfg;
    cfg.period_steps = 3;
    cfg.jsonl_path = path;
    bus.enable(cfg);
    bus.sample(sim_at_step(0));
    bus.sample(sim_at_step(3));
    bus.disable();
  }

  obs::JsonlReader reader(path);
  ASSERT_TRUE(reader.ok());
  obs::JsonValue doc;

  // Header first: provenance stamps bench_trend keys on (threads, period).
  ASSERT_TRUE(reader.next(&doc));
  ASSERT_NE(doc.find("kind"), nullptr);
  EXPECT_EQ(doc.find("kind")->as_string(), "telemetry_meta");
  ASSERT_NE(doc.find("period_steps"), nullptr);
  EXPECT_EQ(doc.find("period_steps")->as_number(), 3.0);
  EXPECT_NE(doc.find("effective_threads"), nullptr);
  EXPECT_NE(doc.find("hostname"), nullptr);
  EXPECT_NE(doc.find("compiler"), nullptr);

  // Then the two samples, in order, with the simulator gauges intact.
  ASSERT_TRUE(reader.next(&doc));
  EXPECT_EQ(doc.find("kind")->as_string(), "sample");
  EXPECT_EQ(doc.find("seq")->as_number(), 0.0);
  EXPECT_EQ(doc.find("step")->as_number(), 0.0);
  ASSERT_TRUE(reader.next(&doc));
  EXPECT_EQ(doc.find("seq")->as_number(), 1.0);
  EXPECT_EQ(doc.find("step")->as_number(), 3.0);
  EXPECT_EQ(doc.find("queued_packets")->as_number(), 30.0);
  ASSERT_NE(doc.find("depth_hist", "counts"), nullptr);
  ASSERT_NE(doc.find("par", "busy_seconds"), nullptr);
  ASSERT_NE(doc.find("recovery", "fragments_delivered"), nullptr);
  EXPECT_FALSE(reader.next(&doc));
  EXPECT_FALSE(reader.failed());

  std::remove(path.c_str());
}

TEST(Telemetry, SerialAndParallelSimulatorsSampleIdentically) {
  // The parallel simulator builds its per-sample gauges shard by shard and
  // merges the depth histograms; the multiset of (link, depth) it sees is
  // the serial simulator's, so the SimTelemetry streams must be equal.
  const auto emb = theorem1_cycle_embedding(8);
  const auto packets = phase_packets(emb, 4);
  const int dims = emb.host().dims();

  TelemetryBus& bus = TelemetryBus::global();
  TelemetryBus::Config cfg;
  cfg.period_steps = 1;

  bus.enable(cfg);
  StoreForwardSim(dims).run(packets);
  const std::vector<TelemetrySample> serial = bus.snapshot();
  bus.disable();
  ASSERT_FALSE(serial.empty());

  for (int threads : {2, 3, 8}) {
    bus.enable(cfg);
    ParallelStoreForwardSim(dims, threads).run(packets);
    const std::vector<TelemetrySample> par = bus.snapshot();
    bus.disable();
    ASSERT_EQ(par.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < par.size(); ++i) {
      EXPECT_EQ(par[i].sim, serial[i].sim)
          << "threads=" << threads << " sample " << i;
    }
  }
}

TEST(Telemetry, ExposePrometheusPassesTheValidator) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("telemetry_test.events").add(3);
  reg.gauge("telemetry_test.rate").set(0.75);
  auto& h = reg.histogram("telemetry_test.depth", {1, 2, 4});
  h.observe(1);
  h.observe(3);
  h.observe(100);  // overflow bucket
  reg.record_span("telemetry_test.span", 0.25);

  const std::string text = reg.expose_prometheus();
  std::string err;
  EXPECT_TRUE(validate_prometheus_text(text, &err)) << err;

  EXPECT_NE(text.find("hyperpath_telemetry_test_events_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("hyperpath_telemetry_test_rate 0.75"),
            std::string::npos);
  EXPECT_NE(text.find("hyperpath_telemetry_test_depth_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("hyperpath_telemetry_test_span_seconds_total"),
            std::string::npos);
}

TEST(Telemetry, ValidatorAcceptsEdgeForms) {
  std::string err;
  EXPECT_TRUE(validate_prometheus_text("", &err)) << err;
  EXPECT_TRUE(validate_prometheus_text(
      "# plain comment, not TYPE or HELP\n"
      "untyped_metric 1\n"
      "weird_values{a=\"x\\\"y\",b=\"line\\nbreak\"} NaN\n"
      "with_timestamp 2.5 1712345678\n"
      "neg_inf -Inf\n",
      &err))
      << err;
}

TEST(Telemetry, ValidatorRejectsMalformedDocuments) {
  const auto rejects = [](const std::string& text) {
    std::string err;
    const bool ok = validate_prometheus_text(text, &err);
    EXPECT_FALSE(ok) << "accepted: " << text;
    if (!ok) {
      EXPECT_FALSE(err.empty());
    }
    return !ok;
  };
  // Two TYPE lines for one metric.
  rejects("# TYPE m counter\n# TYPE m counter\nm 1\n");
  // TYPE after the metric's samples.
  rejects("m 1\n# TYPE m counter\n");
  // Interleaved (non-contiguous) samples.
  rejects("a 1\nb 2\na 3\n");
  // Duplicate series.
  rejects("m{x=\"1\"} 1\nm{x=\"1\"} 2\n");
  // Unparsable value / bad names / broken labels.
  rejects("m notanumber\n");
  rejects("# TYPE 9bad counter\n");
  rejects("m{9bad=\"v\"} 1\n");
  rejects("m{l=\"unterminated} 1\n");
  rejects("m{l=\"bad\\escape\"} 1\n");
  rejects("m 1 123 extra\n");
  // Histogram rules: descending le, non-cumulative counts, missing +Inf,
  // +Inf disagreeing with _count.
  rejects(
      "# TYPE h histogram\n"
      "h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n"
      "h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n");
  rejects(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\n"
      "h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n");
  rejects(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_sum 3\nh_count 2\n");
  rejects(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\n"
      "h_sum 3\nh_count 2\n");
}

TEST(Telemetry, WorkerStatsProviderFeedsSamples) {
  // Keep this test last in the file: it replaces the provider the par
  // layer registered at static-init time for the rest of the process.
  TelemetryBus::set_worker_stats_provider([] {
    obs::WorkerSnapshot snap;
    snap.regions = 4;
    snap.tasks = 17;
    snap.steals = 2;
    snap.busy_seconds = {0.5, 0.25};
    return snap;
  });
  TelemetryBus bus;
  TelemetryBus::Config cfg;
  cfg.period_steps = 1;
  bus.enable(cfg);
  bus.sample(sim_at_step(0));
  const auto snap = bus.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].par.regions, 4u);
  EXPECT_EQ(snap[0].par.tasks, 17u);
  EXPECT_EQ(snap[0].par.steals, 2u);
  EXPECT_EQ(snap[0].par.busy_seconds,
            (std::vector<double>{0.5, 0.25}));
}

}  // namespace
}  // namespace hyperpath
