// Tests for the cross-run performance ledger (obs/trend.hpp): median step
// detection, comparison-key grouping (series sampled at different thread
// counts or telemetry rates are never compared), analytic-bounds checks,
// and LedgerEntry round-trips through JSONL.
#include "obs/trend.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace hyperpath {
namespace {

using obs::LedgerEntry;
using obs::TrendOptions;
using obs::TrendReport;
using obs::analyze_trend;
using obs::comparison_key;
using obs::detect_step;

LedgerEntry entry(std::map<std::string, double> metrics,
                  std::map<std::string, double> timings = {}) {
  LedgerEntry e;
  e.hostname = "host";
  e.compiler = "GNU 12";
  e.effective_threads = 4;
  e.telemetry_period_steps = 64;
  e.metrics = std::move(metrics);
  e.timings = std::move(timings);
  return e;
}

TEST(DetectStep, FindsAPersistentChange) {
  const auto f = detect_step("m", {10, 10, 10, 20, 20}, 0.0);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->name, "m");
  // The earliest split realizing the max change wins; both split medians
  // sit on the true levels either side of the step.
  EXPECT_GE(f->split, 2u);
  EXPECT_LE(f->split, 3u);
  EXPECT_DOUBLE_EQ(f->median_before, 10.0);
  EXPECT_DOUBLE_EQ(f->median_after, 20.0);
  EXPECT_DOUBLE_EQ(f->rel_change, 1.0);
}

TEST(DetectStep, IgnoresASingleRunBlip) {
  // One noisy run in the middle never moves either split median, so the
  // blip is invisible to the detector even at tolerance 0.
  EXPECT_FALSE(detect_step("m", {10, 10, 30, 10, 10}, 0.0).has_value());
}

TEST(DetectStep, ReportsNegativeStepsToo) {
  const auto f = detect_step("m", {20, 20, 20, 10, 10}, 0.0);
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->rel_change, -0.5);
}

TEST(DetectStep, NeedsAtLeastTwoValues) {
  EXPECT_FALSE(detect_step("m", {}, 0.0).has_value());
  EXPECT_FALSE(detect_step("m", {10}, 0.0).has_value());
}

TEST(DetectStep, ToleranceSuppressesSmallSteps) {
  EXPECT_FALSE(detect_step("m", {1.0, 1.0, 1.2, 1.2}, 0.30).has_value());
  EXPECT_TRUE(detect_step("m", {1.0, 1.0, 1.5, 1.5}, 0.30).has_value());
}

TEST(ComparisonKey, EncodesThreadCountAndSamplingRate) {
  LedgerEntry e = entry({{"b.m", 1}});
  const std::string base = comparison_key(e);
  EXPECT_NE(base.find("threads=4"), std::string::npos);
  EXPECT_NE(base.find("period=64"), std::string::npos);
  LedgerEntry other = e;
  other.effective_threads = 8;
  EXPECT_NE(comparison_key(other), base);
  other = e;
  other.telemetry_period_steps = 1;
  EXPECT_NE(comparison_key(other), base);
}

TEST(AnalyzeTrend, GroupsByTheNewestKeyAndSkipsTheRest) {
  // Two runs at threads=4, then a run at threads=8, then two more at
  // threads=4.  The newest entry picks the key; the threads=8 run is
  // excluded and reported, not compared.
  std::vector<LedgerEntry> ledger;
  ledger.push_back(entry({{"b.m", 10}}));
  ledger.push_back(entry({{"b.m", 10}}));
  LedgerEntry odd = entry({{"b.m", 999}});
  odd.effective_threads = 8;
  ledger.push_back(odd);
  ledger.push_back(entry({{"b.m", 10}}));
  ledger.push_back(entry({{"b.m", 10}}));

  const TrendReport r = analyze_trend(ledger);
  EXPECT_EQ(r.runs, 4u);
  EXPECT_EQ(r.series, 1u);
  EXPECT_TRUE(r.metric_steps.empty());
  EXPECT_TRUE(r.stable());
  ASSERT_EQ(r.skipped_keys.size(), 1u);
  EXPECT_NE(r.skipped_keys[0].find("threads=8"), std::string::npos);
}

TEST(AnalyzeTrend, MetricStepGatesTheReport) {
  std::vector<LedgerEntry> ledger;
  for (double v : {100.0, 100.0, 100.0, 112.0, 112.0}) {
    ledger.push_back(entry({{"simcore.makespan", v}}));
  }
  const TrendReport r = analyze_trend(ledger);
  ASSERT_EQ(r.metric_steps.size(), 1u);
  EXPECT_EQ(r.metric_steps[0].name, "simcore.makespan");
  EXPECT_NEAR(r.metric_steps[0].rel_change, 0.12, 1e-9);
  EXPECT_FALSE(r.stable());
}

TEST(AnalyzeTrend, TimingStepsAreInformationalOnly) {
  std::vector<LedgerEntry> ledger;
  for (double secs : {1.0, 1.0, 2.0, 2.0}) {
    ledger.push_back(entry({{"b.m", 7}}, {{"b.total", secs}}));
  }
  const TrendReport r = analyze_trend(ledger);
  ASSERT_EQ(r.timing_steps.size(), 1u);
  EXPECT_TRUE(r.timing_steps[0].is_timing);
  EXPECT_TRUE(r.metric_steps.empty());
  EXPECT_TRUE(r.stable()) << "timing drift must not gate";
}

TEST(AnalyzeTrend, WindowTrimsOldRuns) {
  // A step lives entirely outside the analysis window: invisible.
  std::vector<LedgerEntry> ledger;
  for (double v : {10.0, 10.0, 20.0, 20.0}) {
    ledger.push_back(entry({{"b.m", v}}));
  }
  TrendOptions opt;
  opt.window = 2;
  const TrendReport r = analyze_trend(ledger, opt);
  EXPECT_EQ(r.runs, 2u);
  EXPECT_TRUE(r.metric_steps.empty());
  EXPECT_TRUE(r.stable());
}

TEST(AnalyzeTrend, MissingSeriesIsNotAStep) {
  // A metric that only exists in newer runs (the suite grew) is skipped,
  // not treated as drift.
  std::vector<LedgerEntry> ledger;
  ledger.push_back(entry({{"b.m", 10}}));
  ledger.push_back(entry({{"b.m", 10}, {"b.new_metric", 42}}));
  const TrendReport r = analyze_trend(ledger);
  EXPECT_EQ(r.series, 1u);
  EXPECT_TRUE(r.stable());
}

TEST(AnalyzeTrend, BoundsViolationsGateOnTheNewestRun) {
  // Floor exceeded directly, ceiling exceeded through the congestion ->
  // peak_congestion naming convention, and a failed *_in_bounds flag.
  std::vector<LedgerEntry> ledger;
  ledger.push_back(entry({
      {"b.makespan", 4},
      {"b.makespan_floor", 6},  // measured 4 below analytic floor 6
      {"b.q16_peak_congestion", 10},
      {"b.q16_congestion_floor", 5},
      {"b.q16_congestion_ceiling", 8},  // measured 10 above ceiling 8
      {"b.schedule_in_bounds", 0},
  }));
  const TrendReport r = analyze_trend(ledger);
  ASSERT_EQ(r.bounds_violations.size(), 3u);
  EXPECT_FALSE(r.stable());

  // And the satisfied version of the same shapes passes.
  ledger.clear();
  ledger.push_back(entry({
      {"b.makespan", 8},
      {"b.makespan_floor", 6},
      {"b.q16_peak_congestion", 7},
      {"b.q16_congestion_floor", 5},
      {"b.q16_congestion_ceiling", 8},
      {"b.schedule_in_bounds", 1},
  }));
  EXPECT_TRUE(analyze_trend(ledger).stable());
}

TEST(LedgerEntry, RoundTripsThroughJsonl) {
  LedgerEntry e = entry({{"b.m", 1.5}, {"b.n", 2}}, {{"b.total", 0.25}});
  e.timestamp = "2026-08-08T00:00:00Z";
  e.git_sha = "abc123";
  e.flags = "-O2";
  e.build_type = "Release";

  obs::JsonWriter w;
  obs::write_ledger_entry(w, e);
  const auto doc = obs::json_parse(w.str());
  ASSERT_TRUE(doc.has_value()) << w.str();
  std::string error;
  const auto back = obs::parse_ledger_entry(*doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->timestamp, e.timestamp);
  EXPECT_EQ(back->git_sha, e.git_sha);
  EXPECT_EQ(back->hostname, e.hostname);
  EXPECT_EQ(back->compiler, e.compiler);
  EXPECT_EQ(back->flags, e.flags);
  EXPECT_EQ(back->build_type, e.build_type);
  EXPECT_EQ(back->effective_threads, e.effective_threads);
  EXPECT_EQ(back->telemetry_period_steps, e.telemetry_period_steps);
  EXPECT_EQ(back->metrics, e.metrics);
  EXPECT_EQ(back->timings, e.timings);
  EXPECT_EQ(comparison_key(*back), comparison_key(e));
}

TEST(LedgerEntry, ParseRejectsEntriesWithoutMetrics) {
  const auto doc = obs::json_parse(
      R"({"kind":"bench_run","hostname":"h","metrics":{}})");
  ASSERT_TRUE(doc.has_value());
  std::string error;
  EXPECT_FALSE(obs::parse_ledger_entry(*doc, &error).has_value());
  EXPECT_FALSE(error.empty());

  const auto wrong_kind = obs::json_parse(R"({"kind":"sample"})");
  ASSERT_TRUE(wrong_kind.has_value());
  EXPECT_FALSE(obs::parse_ledger_entry(*wrong_kind).has_value());
}

TEST(FlattenSuite, LiftsMetricsAndSpanSecondsFromASuiteDocument) {
  const auto suite = obs::json_parse(R"({
    "meta": {"timestamp": "t", "git_sha": "s", "hostname": "h",
             "compiler": "c", "flags": "-O2", "build_type": "Release",
             "effective_threads": 4},
    "reports": {
      "simcore": {
        "metrics": {"makespan": 128, "label": "not-a-number"},
        "timings": {"flat_run": {"seconds": 0.5, "calls": 3}}
      },
      "theorem1": {"metrics": {"paths": 8}}
    }
  })");
  ASSERT_TRUE(suite.has_value());
  const LedgerEntry e = obs::flatten_suite(*suite);
  EXPECT_EQ(e.hostname, "h");
  EXPECT_EQ(e.effective_threads, 4);
  ASSERT_EQ(e.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(e.metrics.at("simcore.makespan"), 128.0);
  EXPECT_DOUBLE_EQ(e.metrics.at("theorem1.paths"), 8.0);
  ASSERT_EQ(e.timings.size(), 1u);
  EXPECT_DOUBLE_EQ(e.timings.at("simcore.flat_run"), 0.5);
}

}  // namespace
}  // namespace hyperpath
