#include "ccc/ccc_embed.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "base/moment.hpp"

namespace hyperpath {
namespace {

TEST(CccSpec, SingleSpecWellFormed) {
  for (int n : {2, 4, 8}) {
    const auto s = ccc_single_spec(n);
    EXPECT_NO_THROW(s.verify_or_throw());
    EXPECT_EQ(static_cast<int>(s.w.size()), s.r);
    EXPECT_EQ(static_cast<int>(s.wbar.size()), n);
  }
  EXPECT_THROW(ccc_single_spec(3), Error);
  EXPECT_THROW(ccc_single_spec(6), Error);
}

TEST(CccSpec, MulticopySpecsWellFormed) {
  for (int n : {2, 4, 8}) {
    for (int k = 0; k < n; ++k) {
      EXPECT_NO_THROW(ccc_multicopy_spec(n, k).verify_or_throw());
    }
  }
  EXPECT_THROW(ccc_multicopy_spec(4, 4), Error);
}

TEST(CccSpec, OverlappingWindowStructure) {
  // "all windows contain dimension 1; of all the windows that contain
  // dimension i, half also contain dimension 2i, the other half 2i+1."
  const int n = 8;
  std::vector<Window> ws;
  for (int k = 0; k < n; ++k) ws.push_back(ccc_multicopy_spec(n, k).w);
  for (const auto& w : ws) EXPECT_EQ(w[0], 1);
  std::map<Dim, std::pair<int, int>> split;  // dim → (with 2d, with 2d+1)
  for (const auto& w : ws) {
    for (std::size_t i = 0; i + 1 < w.size(); ++i) {
      const Dim d = w[i];
      if (w[i + 1] == 2 * d) ++split[d].first;
      if (w[i + 1] == 2 * d + 1) ++split[d].second;
    }
  }
  for (const auto& [d, counts] : split) {
    EXPECT_EQ(counts.first, counts.second) << "dim " << d;
  }
}

TEST(CccSpec, Observation4WindowPrefixes) {
  // λ(W^{k1}, W^{k2}) = λ(k1, k2) + 1.
  const int n = 8, r = 3;
  for (int k1 = 0; k1 < n; ++k1) {
    for (int k2 = 0; k2 < n; ++k2) {
      if (k1 == k2) continue;
      const auto w1 = ccc_multicopy_spec(n, k1).w;
      const auto w2 = ccc_multicopy_spec(n, k2).w;
      EXPECT_EQ(common_prefix_len(w1, w2),
                common_prefix_len(static_cast<Node>(k1),
                                  static_cast<Node>(k2), r) +
                    1);
    }
  }
}

TEST(CccSpec, Observation5HamPrefixes) {
  // λ(H^{k1}(ℓ), H^{k2}(ℓ)) = λ(k1, k2) for every level ℓ.  Signatures are
  // stored position-first (window position i in bit i), so their prefixes
  // read from bit 0; copy numbers are read MSB-first as in the paper.
  const int n = 8, r = 3;
  for (int k1 = 0; k1 < n; ++k1) {
    for (int k2 = 0; k2 < n; ++k2) {
      if (k1 == k2) continue;
      const auto h1 = ccc_multicopy_spec(n, k1).ham;
      const auto h2 = ccc_multicopy_spec(n, k2).ham;
      for (int l = 0; l < n; ++l) {
        EXPECT_EQ(common_prefix_len_lsb(h1[l], h2[l], r),
                  common_prefix_len(static_cast<Node>(k1),
                                    static_cast<Node>(k2), r));
      }
    }
  }
}

TEST(CccSpec, Dimension1CarriesStraightEdgesOfTwoLevelsOnly) {
  // Dimension 1 = window position 0 = the paper's most significant Gray
  // bit, used only at levels n/2 − 1 and n − 1 (Lemma 8's preamble).
  const int n = 8;
  for (int k = 0; k < n; ++k) {
    const auto s = ccc_multicopy_spec(n, k);
    std::set<int> levels_on_dim1;
    for (int l = 0; l < n; ++l) {
      const Node diff = s.ham[l] ^ s.ham[(l + 1) % n];
      if (s.w[count_trailing_zeros(diff)] == 1) levels_on_dim1.insert(l);
    }
    EXPECT_EQ(levels_on_dim1, (std::set<int>{n / 2 - 1, n - 1}));
  }
}

// Lemma 4: single-copy CCC in Q_{n + log n}, dilation 1, one-to-one.
class CccSingle : public ::testing::TestWithParam<int> {};

TEST_P(CccSingle, Lemma4) {
  const int n = GetParam();
  const auto emb = ccc_single_embedding(n);
  EXPECT_EQ(emb.num_copies(), 1);
  EXPECT_EQ(emb.host().dims(), n + floor_log2(n));
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw());
  // Optimal expansion: n·2^n nodes in a 2^{n+log n} = n·2^n-node hypercube.
  EXPECT_EQ(emb.guest().num_nodes(), emb.host().num_nodes());
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, CccSingle, ::testing::Values(2, 4, 8));

// Lemma 4 for general n: dilation 1 (even) / 2 (odd) in Q_{n+⌈log n⌉}.
class CccSingleGeneral : public ::testing::TestWithParam<int> {};

TEST_P(CccSingleGeneral, Lemma4GeneralN) {
  const int n = GetParam();
  const auto emb = ccc_single_embedding_general(n);
  EXPECT_EQ(emb.num_copies(), 1);
  EXPECT_EQ(emb.host().dims(), n + ceil_log2(n));
  EXPECT_EQ(emb.dilation(), (n % 2 == 0) ? 1 : 2);
  EXPECT_NO_THROW(emb.verify_or_throw());
}

INSTANTIATE_TEST_SUITE_P(GeneralN, CccSingleGeneral,
                         ::testing::Values(3, 5, 6, 7, 9, 10, 12, 13));

TEST(CccSingleGeneral, OddSeamIsConfinedToOneLevel) {
  // Only the level n−1 → 0 straight edges may have dilation 2.
  const int n = 5;
  const auto emb = ccc_single_embedding_general(n);
  const LevelColumnLayout lay = ccc_layout(n);
  for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
    const Edge& ge = emb.guest().edge(e);
    const auto& p = emb.path(0, e);
    if (p.size() > 2) {
      EXPECT_EQ(lay.level_of(ge.from), n - 1);
      EXPECT_EQ(lay.level_of(ge.to), 0);
    }
  }
}

// Theorem 3: n copies, dilation 1, edge-congestion exactly 2.
class CccMulti : public ::testing::TestWithParam<int> {};

TEST_P(CccMulti, Theorem3) {
  const int n = GetParam();
  const auto emb = ccc_multicopy_embedding(n);
  EXPECT_EQ(emb.num_copies(), n);
  EXPECT_EQ(emb.dilation(), 1);
  EXPECT_NO_THROW(emb.verify_or_throw(2));
  EXPECT_LE(emb.edge_congestion(), 2);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, CccMulti, ::testing::Values(2, 4, 8));

TEST(CccMulti, CrossEdgeCongestionAtMostOne) {
  // Lemmas 5–7: across all copies, no hypercube edge carries two CCC
  // cross-edges, and dimension-1 edges carry none.
  const int n = 8;
  const auto emb = ccc_multicopy_embedding(n);
  const LevelColumnLayout lay = ccc_layout(n);
  const Hypercube& q = emb.host();
  std::map<std::uint64_t, int> cross_count;
  for (int k = 0; k < n; ++k) {
    for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
      const Edge& ge = emb.guest().edge(e);
      if (lay.level_of(ge.from) != lay.level_of(ge.to)) continue;  // straight
      const auto& p = emb.path(k, e);
      const std::uint64_t id = q.edge_id(p[0], p[1]);
      EXPECT_EQ(++cross_count[id], 1) << "copy " << k;
      EXPECT_NE(q.edge_of_id(id).second, 1) << "cross edge on dimension 1";
    }
  }
}

TEST(CccMulti, StraightEdgeCongestionBound) {
  // Lemma 8: at most one straight-edge per hypercube edge except dimension
  // 1, which may carry two.
  const int n = 8;
  const auto emb = ccc_multicopy_embedding(n);
  const LevelColumnLayout lay = ccc_layout(n);
  const Hypercube& q = emb.host();
  std::map<std::uint64_t, int> straight_count;
  for (int k = 0; k < n; ++k) {
    for (std::size_t e = 0; e < emb.guest().num_edges(); ++e) {
      const Edge& ge = emb.guest().edge(e);
      if (lay.level_of(ge.from) == lay.level_of(ge.to)) continue;  // cross
      const auto& p = emb.path(k, e);
      const std::uint64_t id = q.edge_id(p[0], p[1]);
      const int count = ++straight_count[id];
      if (q.edge_of_id(id).second == 1) {
        EXPECT_LE(count, 2);
      } else {
        EXPECT_LE(count, 1);
      }
    }
  }
}

TEST(CccMulti, Observation1SignatureOfLevelImages) {
  // Every CCC vertex at level ℓ maps, under copy k, to a node whose
  // signature on W^k equals H^k(ℓ).
  const int n = 4;
  const auto emb = ccc_multicopy_embedding(n);
  const LevelColumnLayout lay = ccc_layout(n);
  for (int k = 0; k < n; ++k) {
    const auto spec = ccc_multicopy_spec(n, k);
    for (Node v = 0; v < emb.guest().num_nodes(); ++v) {
      EXPECT_EQ(signature(emb.host_of(k, v), spec.w),
                spec.ham[lay.level_of(v)]);
    }
  }
}

TEST(CccMulti, UndirectedCongestionAtMostFour) {
  const int n = 4;
  const auto emb = ccc_multicopy_embedding_undirected(n);
  EXPECT_NO_THROW(emb.verify_or_throw(4));
}

TEST(ToGraphEmbedding, CopyExtractsFaithfully) {
  const auto emb = ccc_multicopy_embedding(4);
  const auto g = to_graph_embedding(emb, 2);
  EXPECT_NO_THROW(g.verify_or_throw(1));
  for (Node v = 0; v < emb.guest().num_nodes(); ++v) {
    EXPECT_EQ(g.host_of(v), emb.host_of(2, v));
  }
  EXPECT_THROW(to_graph_embedding(emb, 4), Error);
}

}  // namespace
}  // namespace hyperpath
