#include "ccc/netmaps.hpp"

#include <gtest/gtest.h>

#include <set>

#include "base/bits.hpp"
#include "base/error.hpp"
#include "ccc/ccc_embed.hpp"

namespace hyperpath {
namespace {

class ButterflyIntoCcc : public ::testing::TestWithParam<int> {};

TEST_P(ButterflyIntoCcc, Dilation2Congestion2) {
  const int n = GetParam();
  const auto emb = butterfly_into_ccc(n);
  EXPECT_NO_THROW(emb.verify_or_throw(/*dil=*/2, /*cong=*/2, /*load=*/1));
  EXPECT_EQ(emb.dilation(), 2);
  EXPECT_EQ(emb.congestion(), 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ButterflyIntoCcc, ::testing::Values(2, 3, 4, 5));

class FftIntoCcc : public ::testing::TestWithParam<int> {};

TEST_P(FftIntoCcc, Dilation2Congestion2Load2) {
  const int n = GetParam();
  const auto emb = fft_into_ccc(n);
  EXPECT_NO_THROW(emb.verify_or_throw(/*dil=*/2, /*cong=*/2, /*load=*/2));
  EXPECT_EQ(emb.load(), 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftIntoCcc, ::testing::Values(2, 3, 4, 5));

class CbtIntoButterfly : public ::testing::TestWithParam<int> {};

TEST_P(CbtIntoButterfly, NaturalSubtreeIsPerfect) {
  const int m = GetParam();
  const auto emb = cbt_into_butterfly(m);
  EXPECT_EQ(emb.guest().num_nodes(), pow2(m) - 1);
  EXPECT_NO_THROW(emb.verify_or_throw(/*dil=*/1, /*cong=*/1, /*load=*/1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CbtIntoButterfly, ::testing::Values(3, 4, 6));

TEST(CbtIntoButterfly, RejectsTooSmall) {
  EXPECT_THROW(cbt_into_butterfly(2), Error);
}

TEST(CbtIntoButterfly, LeavesOnDistinctColumns) {
  // The property Theorem 5 uses: no two CBT leaves share a butterfly node,
  // and the leaf level occupies level m−1, one leaf per column prefix.
  const int m = 4;
  const auto emb = cbt_into_butterfly(m);
  const LevelColumnLayout lay = butterfly_layout(m);
  std::set<Node> leaf_hosts;
  for (Node leaf = static_cast<Node>(pow2(m - 1) - 1);
       leaf < emb.guest().num_nodes(); ++leaf) {
    const Node h = emb.host_of(leaf);
    EXPECT_TRUE(leaf_hosts.insert(h).second);
    EXPECT_EQ(lay.level_of(h), m - 1);
  }
}

TEST(ComposeChain, ButterflyThroughCccIntoHypercube) {
  // Butterfly → CCC → Q_{n+log n}: dilation ≤ 2, congestion ≤ 4, the O(1)
  // composition §5.4 promises.
  const int n = 4;
  const auto ccc_emb = to_graph_embedding(ccc_multicopy_embedding(n), 0);
  const auto bfly = butterfly_into_ccc(n);
  const auto composed = compose(ccc_emb, bfly);
  EXPECT_NO_THROW(composed.verify_or_throw(/*dil=*/2, /*cong=*/2, /*load=*/1));
}

TEST(TreeIntoCbt, RandomTreesLoadOneAndValid) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const Node n_tree = 40 + static_cast<Node>(rng.below(80));
    std::vector<Node> parent;
    const Digraph t = random_binary_tree(n_tree, rng, &parent);
    const int levels = ceil_log2(n_tree + 1) + 1;
    const auto emb = tree_into_cbt(t, parent, levels);
    EXPECT_NO_THROW(emb.verify_or_throw(-1, -1, /*load=*/1));
    // The heuristic's measured dilation should stay modest: within
    // 2·levels (a full up-down traversal of the CBT).
    EXPECT_LE(emb.dilation(), 2 * levels);
  }
}

TEST(TreeIntoCbt, PathTreeWorstCase) {
  // A path (each node one child) still embeds with load 1.
  const Node n_tree = 63;
  DigraphBuilder b(n_tree);
  std::vector<Node> parent(n_tree, kNoNode);
  for (Node v = 1; v < n_tree; ++v) {
    parent[v] = v - 1;
    b.add_undirected(v - 1, v);
  }
  const auto emb = tree_into_cbt(std::move(b).build(), parent, 6);
  EXPECT_NO_THROW(emb.verify_or_throw(-1, -1, 1));
}

TEST(TreeIntoCbt, RejectsOversizedTree) {
  Rng rng(3);
  std::vector<Node> parent;
  const Digraph t = random_binary_tree(20, rng, &parent);
  EXPECT_THROW(tree_into_cbt(t, parent, 4), Error);  // capacity 15 < 20
}

}  // namespace
}  // namespace hyperpath
