#include "ccc/strawmen.hpp"

#include <gtest/gtest.h>

#include "ccc/ccc_embed.hpp"

namespace hyperpath {
namespace {

// §5.3: "suppose we choose the same partition of hypercube dimensions for
// all n copies ... the edge-congestion is at least n/r."
TEST(StrawMen, SameWindowsCongestsByNOverR) {
  for (int n : {4, 8}) {
    const int r = (n == 4) ? 2 : 3;
    const auto emb = ccc_multicopy_same_windows(n);
    EXPECT_EQ(emb.num_copies(), n);
    EXPECT_NO_THROW(emb.verify_or_throw());
    EXPECT_GE(emb.edge_congestion(), n / r);
    // And strictly worse than Theorem 3.
    EXPECT_GT(emb.edge_congestion(),
              ccc_multicopy_embedding(n).edge_congestion());
  }
}

// §5.3: with pairwise-disjoint windows there is a node to which every copy
// maps a CCC vertex whose cross-edge uses the same dimension.
TEST(StrawMen, DisjointWindowsCongestOnSharedCrossDimension) {
  const auto emb = ccc_multicopy_disjoint_windows(8);
  EXPECT_NO_THROW(emb.verify_or_throw());
  EXPECT_GE(emb.edge_congestion(), emb.num_copies());
}

TEST(StrawMen, StillValidEmbeddings) {
  // The straw men are bad, not broken: every copy is one-to-one with valid
  // dilation-1 paths.
  const auto emb = ccc_multicopy_same_windows(4);
  EXPECT_EQ(emb.dilation(), 1);
}

}  // namespace
}  // namespace hyperpath
