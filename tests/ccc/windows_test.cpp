#include "ccc/windows.hpp"

#include <gtest/gtest.h>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {
namespace {

TEST(Windows, SignatureExtractsListedBits) {
  // Paper's example: node 01001 (bit 0 = 1, bit 3 = 1) over W = {1, 4, 3}:
  // bits at positions 1, 4, 3 are 0, 0, 1 → signature 0b100 under our
  // little-endian packing (first window element → result bit 0).
  const Window w{1, 4, 3};
  EXPECT_EQ(signature(0b01001, w), 0b100u);
  EXPECT_EQ(signature(0b11111, w), 0b111u);
  EXPECT_EQ(signature(0, w), 0u);
}

TEST(Windows, ApplySignatureInvertsSignature) {
  const Window w{0, 3, 5, 2};
  for (Node v : {0u, 0b101101u, 0b111111u, 0b010010u}) {
    for (Node sig = 0; sig < 16; ++sig) {
      const Node applied = apply_signature(v, w, sig);
      EXPECT_EQ(signature(applied, w), sig);
      // Bits outside the window are untouched.
      const Node mask = ~(bit(0) | bit(3) | bit(5) | bit(2));
      EXPECT_EQ(applied & mask, v & mask);
    }
  }
}

TEST(Windows, PrefixBitsMsbFirst) {
  // 6 = 110 in 3 bits: ρ_1 = 1, ρ_2 = 11, ρ_3 = 110.
  EXPECT_EQ(prefix_bits(0b110, 0, 3), 0u);
  EXPECT_EQ(prefix_bits(0b110, 1, 3), 0b1u);
  EXPECT_EQ(prefix_bits(0b110, 2, 3), 0b11u);
  EXPECT_EQ(prefix_bits(0b110, 3, 3), 0b110u);
  EXPECT_THROW(prefix_bits(8, 1, 3), Error);
}

TEST(Windows, CommonPrefixOfNumbers) {
  EXPECT_EQ(common_prefix_len(0b1010, 0b1011, 4), 3);
  EXPECT_EQ(common_prefix_len(0b1010, 0b1010, 4), 4);
  EXPECT_EQ(common_prefix_len(0b0000, 0b1000, 4), 0);
  EXPECT_EQ(common_prefix_len(0b0100, 0b0111, 4), 2);
}

TEST(Windows, CommonPrefixOfWindows) {
  EXPECT_EQ(common_prefix_len(Window{1, 2, 4}, Window{1, 2, 5}), 2);
  EXPECT_EQ(common_prefix_len(Window{1}, Window{1, 2}), 1);
  EXPECT_EQ(common_prefix_len(Window{3}, Window{1}), 0);
}

TEST(Windows, Disjointness) {
  EXPECT_TRUE(windows_disjoint(Window{0, 1}, Window{2, 3}));
  EXPECT_FALSE(windows_disjoint(Window{0, 1}, Window{1, 2}));
  EXPECT_TRUE(windows_disjoint(Window{}, Window{1}));
}

}  // namespace
}  // namespace hyperpath
