#include "base/gray.hpp"

#include <gtest/gtest.h>

#include <set>

#include "base/bits.hpp"
#include "base/error.hpp"

namespace hyperpath {
namespace {

TEST(Gray, OpenSequenceMatchesPaperRecursion) {
  // G'_1 = (0), G'_2 = (0,1,0), G'_3 = (0,1,0,2,0,1,0).
  EXPECT_EQ(gray_transitions_open(1), (std::vector<Dim>{0}));
  EXPECT_EQ(gray_transitions_open(2), (std::vector<Dim>{0, 1, 0}));
  EXPECT_EQ(gray_transitions_open(3), (std::vector<Dim>{0, 1, 0, 2, 0, 1, 0}));
}

TEST(Gray, ClosedSequenceAppendsTopDimension) {
  const auto g3 = gray_transitions_closed(3);
  ASSERT_EQ(g3.size(), 8u);
  EXPECT_EQ(g3.back(), 2);
}

TEST(Gray, ClosedFormMatchesRecursion) {
  for (int k = 1; k <= 12; ++k) {
    const auto seq = gray_transitions_closed(k);
    for (std::uint64_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(gray_transition_at(k, i), seq[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(Gray, WalkVisitsEveryNodeOnceAndCloses) {
  for (int k = 1; k <= 10; ++k) {
    const auto seq = gray_transitions_closed(k);
    std::set<Node> visited;
    Node v = 0;
    for (std::uint64_t i = 0; i < seq.size(); ++i) {
      EXPECT_TRUE(visited.insert(v).second) << "revisit at step " << i;
      v = flip_bit(v, seq[i]);
    }
    EXPECT_EQ(v, 0u) << "cycle must close";
    EXPECT_EQ(visited.size(), pow2(k));
  }
}

TEST(Gray, NodeAtMatchesWalk) {
  for (int k = 1; k <= 10; ++k) {
    Node v = 0;
    for (std::uint64_t i = 0; i < pow2(k); ++i) {
      EXPECT_EQ(gray_node_at(k, i), v);
      v = flip_bit(v, gray_transition_at(k, i));
    }
  }
}

TEST(Gray, ConsecutiveNodesDifferInOneBit) {
  const int k = 8;
  for (std::uint64_t i = 0; i < pow2(k); ++i) {
    const Node a = gray_node_at(k, i);
    const Node b = gray_node_at(k, (i + 1) % pow2(k));
    EXPECT_EQ(popcount(a ^ b), 1);
  }
}

TEST(Gray, RankInvertsNodeAt) {
  for (int k : {1, 2, 3, 7, 13}) {
    for (std::uint64_t i = 0; i < pow2(k); ++i) {
      EXPECT_EQ(gray_rank(k, gray_node_at(k, i)), i);
    }
  }
}

TEST(Gray, CycleNodesMatchesNodeAt) {
  const int k = 6;
  const auto nodes = gray_cycle_nodes(k);
  ASSERT_EQ(nodes.size(), pow2(k));
  for (std::uint64_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i], gray_node_at(k, i));
  }
}

TEST(Gray, DimensionUsageCounts) {
  // In the closed sequence G_k, dimension d < k-1 is used 2^{k-1-d} times and
  // dimension k-1 is used twice.  (This is the skew Section 2 exploits.)
  for (int k = 2; k <= 10; ++k) {
    const auto seq = gray_transitions_closed(k);
    std::vector<int> count(k, 0);
    for (Dim d : seq) ++count[d];
    for (int d = 0; d + 1 < k; ++d) {
      EXPECT_EQ(count[d], static_cast<int>(pow2(k - 1 - d)));
    }
    EXPECT_EQ(count[k - 1], 2);
  }
}

TEST(Gray, RejectsOutOfRange) {
  EXPECT_THROW(gray_transitions_open(0), Error);
  EXPECT_THROW(gray_node_at(3, 8), Error);
  EXPECT_THROW(gray_rank(3, 8), Error);
}

}  // namespace
}  // namespace hyperpath
