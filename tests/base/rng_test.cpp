#include "base/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/error.hpp"

namespace hyperpath {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
  EXPECT_THROW(r.below(0), Error);
}

TEST(Rng, BelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= (v == -2);
    hit_hi |= (v == 2);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(9);
  for (std::uint32_t n : {1u, 2u, 10u, 1000u}) {
    auto p = r.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::sort(p.begin(), p.end());
    for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(p[i], i);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(13);
  std::vector<int> v{1, 1, 2, 3, 5, 8, 13};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace hyperpath
