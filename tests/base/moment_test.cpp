#include "base/moment.hpp"

#include <gtest/gtest.h>

#include <set>

#include "base/bits.hpp"

namespace hyperpath {
namespace {

TEST(Moment, Definition) {
  EXPECT_EQ(moment(0), 0u);
  EXPECT_EQ(moment(0b1), 0u);            // bit 0 → b(0) = 0
  EXPECT_EQ(moment(0b10), 1u);           // bit 1
  EXPECT_EQ(moment(0b11), 0u ^ 1u);      // bits 0,1
  EXPECT_EQ(moment(0b101), 0u ^ 2u);     // bits 0,2
  EXPECT_EQ(moment(0b11010), 1u ^ 3u ^ 4u);
}

TEST(Moment, FlipChangesMomentByDimensionIndex) {
  // M(v XOR 2^i) = M(v) XOR b(i) — the mechanism behind Lemma 2.
  for (Node v = 0; v < 1024; v += 7) {
    for (Dim i = 0; i < 16; ++i) {
      EXPECT_EQ(moment(flip_bit(v, i)), moment(v) ^ static_cast<Node>(i));
    }
  }
}

// Lemma 2: all hypercube neighbors of any node have pairwise distinct
// moments.
class MomentLemma2 : public ::testing::TestWithParam<int> {};

TEST_P(MomentLemma2, NeighborsHaveDistinctMoments) {
  const int n = GetParam();
  for (Node u = 0; u < pow2(n); ++u) {
    std::set<Node> moments;
    for (Dim d = 0; d < n; ++d) {
      EXPECT_TRUE(moments.insert(moment(flip_bit(u, d))).second)
          << "node " << u << " dim " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallCubes, MomentLemma2,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12));

TEST(Moment, ModReducesRange) {
  for (Node v = 0; v < 256; ++v) {
    EXPECT_LT(moment_mod(v, 5), 5u);
    EXPECT_EQ(moment_mod(v, 1), 0u);
  }
}

TEST(Moment, NeighborsDistinctUnderPow2Modulus) {
  // When the modulus is 2^ceil_log2(n) (i.e. at least the moment range of an
  // n-dimensional address), reduction preserves Lemma 2.
  const int n = 8;  // moments of 8-dim addresses live in [0, 8)
  const Node m = 8;
  for (Node u = 0; u < pow2(n); ++u) {
    std::set<Node> seen;
    for (Dim d = 0; d < n; ++d) {
      EXPECT_TRUE(seen.insert(moment_mod(flip_bit(u, d), m)).second);
    }
  }
}

}  // namespace
}  // namespace hyperpath
