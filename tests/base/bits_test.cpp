#include "base/bits.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace hyperpath {
namespace {

TEST(Bits, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(1), 2u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(62), std::uint64_t{1} << 62);
  EXPECT_THROW(pow2(-1), Error);
  EXPECT_THROW(pow2(63), Error);
}

TEST(Bits, BitAndFlip) {
  EXPECT_EQ(bit(0), 1u);
  EXPECT_EQ(bit(5), 32u);
  EXPECT_EQ(flip_bit(0b1010, 0), 0b1011u);
  EXPECT_EQ(flip_bit(0b1010, 1), 0b1000u);
  EXPECT_TRUE(test_bit(0b100, 2));
  EXPECT_FALSE(test_bit(0b100, 1));
}

TEST(Bits, FlipIsInvolution) {
  for (Node v : {0u, 1u, 0xDEADBEEFu >> 4, 12345u}) {
    for (Dim d = 0; d < 28; ++d) {
      EXPECT_EQ(flip_bit(flip_bit(v, d), d), v);
    }
  }
}

TEST(Bits, Logs) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_THROW(floor_log2(0), Error);
  EXPECT_THROW(ceil_log2(0), Error);
}

TEST(Bits, CeilLog2MatchesDefinition) {
  // ceil_log2(v) is the least k with 2^k >= v.
  for (std::uint64_t v = 1; v <= 4096; ++v) {
    const int k = ceil_log2(v);
    EXPECT_GE(pow2(k), v);
    if (k > 0) {
      EXPECT_LT(pow2(k - 1), v);
    }
  }
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2((1u << 20) + 1));
}

TEST(Bits, BitField) {
  const Node v = 0b1101'0110'1011u;
  EXPECT_EQ(bit_field(v, 0, 4), 0b1011u);
  EXPECT_EQ(bit_field(v, 4, 4), 0b0110u);
  EXPECT_EQ(bit_field(v, 8, 4), 0b1101u);
  EXPECT_EQ(bit_field(v, 3, 0), 0u);
  EXPECT_EQ(set_bit_field(v, 4, 4, 0b1111), 0b1101'1111'1011u);
  EXPECT_EQ(set_bit_field(v, 0, 0, 0b1111), v);
}

TEST(Bits, BitFieldRoundTrip) {
  for (Node v : {0u, 0xABCDu, 0x0F0Fu, 0xFFFFu}) {
    for (int lo = 0; lo <= 12; lo += 3) {
      for (int w = 0; w <= 8; w += 2) {
        const Node f = bit_field(v, lo, w);
        EXPECT_EQ(set_bit_field(v, lo, w, f), v);
      }
    }
  }
}

}  // namespace
}  // namespace hyperpath
